"""Plan executor: runs an :class:`~repro.engine.plan.ExecutionPlan`.

This is the single execution path behind every front door
(``masked_spgemm(algo="auto")``, ``masked_spgemm_hybrid``,
``masked_spgemm_chunked``, ``parallel_masked_spgemm``): row bands are
sliced out, optionally cut into column panels, run serially, across a
thread pool, or across the shared-memory process pool per the plan's
``backend``, and the disjoint partial results are merged by
concatenation.  One :class:`~repro.machine.OpCounter` is threaded through
every stage — symbolic sweeps, per-partition workers and per-panel calls
all charge the same counter, so a planned run reports exactly the work a
monolithic run would.
"""

from __future__ import annotations

import logging
from typing import List, Optional

import numpy as np

from ..core.chunked import column_panels, restrict_columns
from ..core.masked_spgemm import masked_spgemm
from ..machine import OpCounter, flops_per_row
from ..observe import runtime as _runtime
from ..observe import tracer as _obs
from ..parallel.executor import normalize_backend, row_slice, run_partitioned
from ..parallel.shards import run_sharded
from ..parallel.partition import (
    balanced_partition,
    block_partition,
    cyclic_partition,
)
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import CSC, CSR
from .plan import ExecutionPlan, RowBand

__all__ = ["execute", "plan_and_execute"]

_log = logging.getLogger("repro.engine")


class _CallNote:
    """Feeds the runtime sampler's calls-per-second throughput series.

    One shared instance wraps every :func:`execute`; exit performs a
    single module-attribute check, so the sampler-off path pays one
    no-op ``with`` per engine call and allocates nothing — the same
    disabled-path discipline as the tracer's ``NULL_SPAN``.
    """

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        sampler = _runtime._INSTALLED
        if sampler is not None:
            sampler.note_call()
        return False


_CALL_NOTE = _CallNote()


def _partition_rows(partition: str, a: CSR, b: CSR, threads: int) -> List[np.ndarray]:
    n_parts = min(threads, max(1, a.nrows))
    if partition == "block":
        return block_partition(a.nrows, n_parts)
    if partition == "cyclic":
        return cyclic_partition(a.nrows, n_parts)
    if partition == "balanced":
        return balanced_partition(flops_per_row(a, b), n_parts)
    raise ValueError("partition must be 'block', 'cyclic' or 'balanced'")


def _run_band(
    plan: ExecutionPlan,
    band: RowBand,
    a_band: CSR,
    b: CSR,
    m_band: CSR,
    *,
    semiring: Semiring,
    impl: str,
    counter: Optional[OpCounter],
    backend: str,
    b_csc: Optional[CSC],
    session=None,
) -> CSR:
    batch = getattr(band, "batch", "auto")
    if plan.threads > 1:
        parts = _partition_rows(plan.partition, a_band, b, plan.threads)
        return run_partitioned(
            a_band,
            b,
            m_band,
            algo=band.algo,
            parts=parts,
            phases=plan.phases,
            complement=plan.complement,
            semiring=semiring,
            impl=impl,
            backend=backend,
            counter=counter,
            b_csc=b_csc,
            batch=batch,
            session=session,
        )
    return masked_spgemm(
        a_band,
        b,
        m_band,
        algo=band.algo,
        phases=plan.phases,
        complement=plan.complement,
        semiring=semiring,
        impl=impl,
        counter=counter,
        b_csc=b_csc,
        batch=batch,
        session=session,
    )


def _run_band_panelled(
    plan: ExecutionPlan,
    band: RowBand,
    a_band: CSR,
    b: CSR,
    m_band: CSR,
    *,
    semiring: Semiring,
    impl: str,
    counter: Optional[OpCounter],
    backend: str,
) -> CSR:
    """The memory-bounded path: one output-column panel at a time (panels
    whose mask slice is empty are skipped under a plain mask — the mask
    proves them empty; a complemented mask is dense exactly there)."""
    tr = _obs.current()
    out_rows: List[np.ndarray] = []
    out_cols: List[np.ndarray] = []
    out_vals: List[np.ndarray] = []
    for lo, hi in column_panels(b.ncols, plan.panel_width):
        m_panel = restrict_columns(m_band, lo, hi)
        if m_panel.nnz == 0 and not plan.complement:
            continue
        b_panel = restrict_columns(b, lo, hi)
        panel_cm = (
            tr.span("engine.panel", {"cols_lo": lo, "cols_hi": hi,
                                     "algo": band.algo})
            if tr is not None else _obs.NULL_SPAN
        )
        with panel_cm:
            c_panel = _run_band(
                plan,
                band,
                a_band,
                b_panel,
                m_panel,
                semiring=semiring,
                impl=impl,
                counter=counter,
                backend=backend,
                b_csc=None,
            )
        r, c, v = c_panel.to_coo()
        out_rows.append(r)
        out_cols.append(c + lo)
        out_vals.append(v)
    if not out_rows:
        return CSR.empty((a_band.nrows, b.ncols))
    return CSR.from_coo(
        (a_band.nrows, b.ncols),
        np.concatenate(out_rows),
        np.concatenate(out_cols),
        np.concatenate(out_vals),
    )


def _preflight_process_backend(plan: ExecutionPlan, semiring: Semiring) -> str:
    """Resolve the process backend before work starts.

    A process-backend plan can only run if the platform supports shared
    memory *and* the semiring can cross the process boundary.  When either
    fails, the run degrades to the thread backend — loudly: a ``repro``
    logger warning plus a note on the plan, so the degradation shows up in
    ``ExecutionPlan.explain()`` and exported traces instead of silently
    changing the execution characteristics.
    """
    from ..parallel import pool as _pool

    if not _pool.process_backend_available():
        reason = "platform lacks shared-memory process support"
    elif _pool.encode_semiring(semiring) is None:
        reason = f"semiring {semiring.name!r} is not transferable (unpicklable)"
    else:
        return "process"
    note = f"process backend fell back to thread: {reason}"
    _log.warning(note)
    if note not in plan.notes:
        plan.notes.append(note)
    return "thread"


def execute(
    plan: ExecutionPlan,
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    semiring: Semiring = PLUS_TIMES,
    impl: str = "auto",
    counter: Optional[OpCounter] = None,
    backend: Optional[str] = None,
    b_csc: Optional[CSC] = None,
    session=None,
) -> CSR:
    """Run ``C = M .* (A @ B)`` (``!M`` per the plan) as the plan dictates.

    ``backend=None`` (default) follows the plan's own ``backend`` field;
    passing ``"serial"``, ``"thread"`` (alias ``"threads"``) or
    ``"process"`` overrides it.  ``serial`` runs the partitioned code path
    without workers (deterministic and GIL-friendly), ``thread`` uses a
    thread pool, and ``process`` dispatches to the shared-memory worker
    pool (:mod:`repro.parallel.pool`) with zero-copy operands.  ``b_csc``
    optionally amortises the CSC build for inner-product bands across calls.

    ``session`` (an :class:`~repro.engine.ExecutionSession`) carries the
    cross-call caches: the inner-product CSC comes from the session memo
    and the process backend serves operand segments from the session's
    registry.  Results are bit-for-bit identical either way.
    """
    plan.validate()
    backend = normalize_backend(plan.backend if backend is None else backend)
    # ``False`` is the app-level "no caching" sentinel; accept it here too
    session = session or None
    if session is not None and not session.caching:
        session = None
    if a.ncols != b.nrows:
        raise ValueError(
            f"inner dimensions of A and B do not agree: {a.shape} @ {b.shape}"
        )
    if (a.nrows, b.ncols) != tuple(plan.shape):
        raise ValueError(
            f"plan shape {tuple(plan.shape)} does not match the operands' "
            f"output shape ({a.nrows}, {b.ncols})"
        )
    if mask.shape != (a.nrows, b.ncols):
        raise ValueError(
            f"mask shape {mask.shape} must match the output shape "
            f"({a.nrows}, {b.ncols})"
        )
    if not plan.bands or a.nrows == 0:
        return CSR.empty(plan.shape)

    if backend == "process":
        backend = _preflight_process_backend(plan, semiring)

    if (
        b_csc is None
        and plan.panel_width is None
        and plan.shards is None
        and any(band.algo == "inner" for band in plan.bands)
    ):
        b_csc = session.csc_of(b) if session is not None else CSC.from_csr(b)

    tr = _obs.current()
    if tr is not None and counter is None:
        # under tracing, every band span carries its counter delta so the
        # prediction ledger can pair measured work with the band's modeled
        # cycles/bytes; allocate a run-local counter when the caller did
        # not pass one (tracing already pays for itself — the disabled
        # path is untouched)
        counter = OpCounter()
    exec_cm = (
        tr.span(
            "engine.execute",
            {"plan": plan.as_dict(), "backend": backend},
            counter=counter,
        )
        if tr is not None else _obs.NULL_SPAN
    )
    with _CALL_NOTE, exec_cm:
        if plan.shards is not None:
            # the sharded dispatch path: DCSR/DCSC shard cells, mask-pruned
            # work list, per-shard segment reuse under a session
            return run_sharded(
                plan, a, b, mask,
                semiring=semiring, impl=impl, counter=counter,
                backend=backend, session=session,
            )
        band_results: List[CSR] = []
        for i, band in enumerate(plan.bands):
            if band.nrows == 0:
                continue
            band_cm = (
                tr.span(
                    "engine.band",
                    {"band": i, "algo": band.algo, "rows": band.nrows,
                     "reason": band.reason, "est_cycles": band.est_cycles,
                     "est_bytes": band.est_bytes, "batch": band.batch,
                     "buckets": dict(band.buckets), "backend": backend,
                     "phases": plan.phases},
                    counter=counter,
                )
                if tr is not None else _obs.NULL_SPAN
            )
            with band_cm:
                full = band.is_full(a.nrows)
                a_band = a if full else row_slice(a, band.rows)
                m_band = mask if full else row_slice(mask, band.rows)
                if plan.panel_width is not None:
                    c_band = _run_band_panelled(
                        plan, band, a_band, b, m_band,
                        semiring=semiring, impl=impl, counter=counter,
                        backend=backend,
                    )
                else:
                    c_band = _run_band(
                        plan, band, a_band, b, m_band,
                        semiring=semiring, impl=impl, counter=counter,
                        backend=backend,
                        b_csc=b_csc if band.algo == "inner" else None,
                        session=session,
                    )
            band_results.append(c_band)

        if len(band_results) == 1:
            return band_results[0]
        if not band_results:
            return CSR.empty(plan.shape)
        rows, cols, vals = zip(*(part.to_coo() for part in band_results))
        return CSR.from_coo(
            plan.shape,
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(vals),
        )


def plan_and_execute(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    machine=None,
    complement: bool = False,
    phases: Optional[int] = None,
    semiring: Semiring = PLUS_TIMES,
    impl: str = "auto",
    counter: Optional[OpCounter] = None,
    backend: Optional[str] = None,
    b_csc: Optional[CSC] = None,
    planner: Optional["Planner"] = None,
    session=None,
    delta=None,
    **plan_kwargs,
) -> CSR:
    """Plan and immediately execute — the ``algo="auto"`` one-call path.

    With a ``session``, planning goes through the session's plan cache
    (keyed on operand structure fingerprints + planner knobs) and execution
    reuses the session's CSC memo and shm segment registry.  Explicit
    ``machine=``/``planner=`` arguments are still honoured alongside a
    session: a forced machine partitions the plan cache, a forced foreign
    planner plans uncached (see :meth:`ExecutionSession.plan`).

    ``delta`` (``"auto"``, ``"force"`` or a dirty-fraction threshold)
    routes the call through :func:`repro.engine.delta.delta_execute`:
    consecutive calls on the same problem diff their operands and
    recompute only dirty rows (``docs/incremental.md``).  Requires a
    caching session — without one, ``"auto"`` degrades to a normal full
    run and ``"force"`` raises.
    """
    from .planner import Planner

    session = session or None
    if delta is not None and delta is not False:
        if session is not None and session.caching:
            from .delta import delta_execute

            return delta_execute(
                a, b, mask,
                session=session, delta=delta, machine=machine,
                complement=complement, phases=phases, semiring=semiring,
                impl=impl, counter=counter, backend=backend, b_csc=b_csc,
                planner=planner, **plan_kwargs,
            )
        if delta == "force":
            raise ValueError(
                "delta='force' requires a caching ExecutionSession"
            )
    if session is not None and session.caching:
        pl = session.plan(
            a, b, mask,
            complement=complement, phases=phases,
            semiring_name=getattr(semiring, "name", None),
            counter=counter, backend=backend,
            machine=machine, planner=planner, **plan_kwargs,
        )
        return execute(
            pl, a, b, mask,
            semiring=semiring, impl=impl, counter=counter,
            backend=None, b_csc=b_csc, session=session,
        )
    pl = (planner or Planner(machine)).plan(
        a, b, mask, complement=complement, phases=phases, **plan_kwargs
    )
    return execute(
        pl, a, b, mask,
        semiring=semiring, impl=impl, counter=counter, backend=backend, b_csc=b_csc,
    )
