"""The :class:`Planner` — turns (A, B, M, machine) into an
:class:`~repro.engine.plan.ExecutionPlan`.

This is where the machine cost model (:class:`repro.machine.RowCostModel`)
finally *drives* execution instead of only narrating it: the planner
evaluates every candidate algorithm's modeled per-row cycles, assigns each
output row to the cheapest one (Figure 7's regime map, computed rather than
eyeballed), decides the 1P/2P phase strategy, picks a row partition and
thread count for the parallel executor, and — given a memory budget — adds
the column panelling of the out-of-core path.

Three banding policies:

* ``"cost"`` (default) — per-row argmin over the cost model, with small
  bands consolidated so dispatch overhead cannot swamp the win;
* ``"ratio"`` — the ratio heuristics of the original hybrid dispatcher
  (:func:`repro.core.hybrid.classify_rows`), kept for ablations;
* ``"none"`` — one band, the modeled-cheapest whole-problem algorithm.

Only algorithms with vectorized fast kernels are candidates: the heap
schemes are reference-tier by design (the paper's algorithmic lower bound)
and are plannable only as a forced ``algo=``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..core.hybrid import classify_rows
from ..core.kernels.batch import BATCH_TIERS, BATCHABLE_ALGOS, bucket_census, \
    per_row_flops
from ..core.masked_spgemm import ALGO_LABELS, ALL_ALGOS, supports_complement
from ..machine import RowCostModel, total_flops
from ..machine.fit import resolve_machine
from ..parallel.executor import normalize_backend
from .plan import ExecutionPlan, RowBand, ShardGrid

__all__ = ["Planner", "plan", "PLAN_CANDIDATES"]

#: default candidate set: the fast-kernel algorithms the executor can run
#: at full speed (heap/heapdot are reference-only and excluded).
PLAN_CANDIDATES = ("inner", "msa", "hash", "mca", "esc")

#: one-line regime rationale per algorithm (paper Sec. 4.3 / Fig. 7)
_REASONS = {
    "inner": "mask much sparser than the product work (pull regime)",
    "mca": "inputs much sparser than the mask (compact accumulator regime)",
    "msa": "comparable densities; dense accumulator is cache-cheap",
    "hash": "comparable densities; compact hash beats an overflowing SPA",
    "esc": "streaming expand-sort-compress cheapest (no accumulator traffic)",
}

_WORD = 8  # bytes per index/value word, as in the paper's analysis


class Planner:
    """Constructs execution plans from matrix statistics + the cost model.

    Parameters
    ----------
    machine:
        The :class:`MachineConfig` whose cost model and capacities drive
        every choice.
    candidates:
        Algorithms the auto planner may select (default
        :data:`PLAN_CANDIDATES`).
    banding:
        ``"cost"``, ``"ratio"`` or ``"none"`` (see module docs).
    pull_ratio / push_ratio:
        Thresholds for ``banding="ratio"`` (see
        :func:`repro.core.hybrid.classify_rows`).
    min_band_fraction:
        Bands carrying less than this fraction of the modeled work are
        folded into the remaining candidates (dispatch-overhead guard).
    rows_per_thread:
        Target rows per worker when choosing a thread count.
    """

    def __init__(
        self,
        machine=None,
        *,
        candidates: Optional[Sequence[str]] = None,
        banding: str = "cost",
        pull_ratio: float = 8.0,
        push_ratio: float = 8.0,
        min_band_fraction: float = 0.02,
        rows_per_thread: int = 512,
    ) -> None:
        if banding not in ("cost", "ratio", "none"):
            raise ValueError("banding must be 'cost', 'ratio' or 'none'")
        # a machine may be named: a preset ("haswell", "knl") or "fitted"
        # (the host-calibrated config persisted by ``repro.machine fit``)
        self.machine = resolve_machine(machine)
        self.candidates = tuple(candidates) if candidates is not None else PLAN_CANDIDATES
        for c in self.candidates:
            if c not in ALL_ALGOS:
                raise ValueError(f"unknown candidate algorithm {c!r}")
        self.banding = banding
        self.pull_ratio = pull_ratio
        self.push_ratio = push_ratio
        self.min_band_fraction = min_band_fraction
        self.rows_per_thread = rows_per_thread

    # ------------------------------------------------------------------
    def plan(
        self,
        a,
        b,
        mask,
        *,
        complement: bool = False,
        algo: Optional[str] = None,
        phases: Optional[int] = None,
        threads: Optional[int] = None,
        partition: Optional[str] = None,
        backend: Optional[str] = None,
        panel_width: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
        shards=None,
        batch: Optional[str] = None,
    ) -> ExecutionPlan:
        """Build a plan for ``C = M .* (A @ B)`` (``!M`` with complement).

        Any of ``algo``, ``phases``, ``threads``, ``partition``, ``backend``
        and ``panel_width`` may be forced; everything left ``None`` (or
        ``algo="auto"``) is decided by the cost model.  ``memory_budget_bytes``
        turns on column panelling when the working set exceeds it.  The
        backend heuristic picks ``"process"`` (shared-memory worker pool)
        only when the modeled work amortises the pool's dispatch overhead
        (:attr:`MachineConfig.process_crossover_cycles`).

        ``shards`` turns on the doubly-compressed shard grid (row blocks of
        A x column panels of B/M; see ``docs/sharding.md``): ``None`` keeps
        the plan unsharded, an ``(nrb, ncp)`` tuple forces the grid shape,
        ``"auto"`` shards exactly when the operands' working set exceeds
        :attr:`MachineConfig.shard_memory_budget_bytes`, and an explicit
        :class:`~repro.engine.plan.ShardGrid` is honoured verbatim.  A
        sharded plan is mutually exclusive with ``panel_width`` (its column
        panels already bound the working set).

        ``batch`` forces the fast kernels' batching tier (``"bucket"`` |
        ``"perrow"``; ``None``/``"auto"`` lets the planner decide per band
        from :attr:`MachineConfig.batch_crossover_flops`).  Tiers are
        bit-for-bit identical, so this is purely a performance choice; the
        resolved tier and the band's flops-size-class census land on each
        :class:`~repro.engine.plan.RowBand` for ``explain()``/``as_dict()``.
        """
        if a.ncols != b.nrows:
            raise ValueError(
                f"inner dimensions of A and B do not agree: {a.shape} @ {b.shape}"
            )
        if mask.shape != (a.nrows, b.ncols):
            raise ValueError(
                f"mask shape {mask.shape} must match the output shape "
                f"({a.nrows}, {b.ncols})"
            )
        if phases is not None and phases not in (1, 2):
            raise ValueError("phases must be 1 or 2")
        if algo is not None and algo.lower() == "auto":
            algo = None
        if batch is not None and batch not in BATCH_TIERS:
            raise ValueError(
                f"batch must be one of {BATCH_TIERS} or None, got {batch!r}"
            )

        notes: list = []
        if algo is not None:
            bands, mode = self._forced_bands(a, algo, complement), "forced"
            estimates: Dict[str, float] = {}
            chosen_phases = 1 if phases is None else phases
        else:
            model = RowCostModel(a, b, mask, self.machine, complement=complement)
            cand = [c for c in self.candidates if not complement or supports_complement(c)]
            if complement and len(cand) < len(self.candidates):
                dropped = [c for c in self.candidates if c not in cand]
                notes.append(
                    "complemented mask: dropped "
                    + "/".join(ALGO_LABELS[c] for c in dropped)
                    + " (no complement support)"
                )
            ests = {c: model.estimate(c, phases=1) for c in cand}
            estimates = {
                c: self.machine.seconds(e.total_cycles) for c, e in ests.items()
            }
            if self.banding == "ratio":
                bands, mode = self._ratio_bands(a, b, mask, complement, notes), "ratio"
            elif self.banding == "none":
                bands, mode = self._single_band(a, ests, model), "auto"
            else:
                bands, mode = self._cost_bands(a, ests, notes, model), "auto"
            chosen_phases = (
                phases if phases is not None else self._pick_phases(model, bands, notes)
            )

        self._assign_batch(a, b, bands, batch, notes)
        if threads is None:
            threads = self._pick_threads(a.nrows, notes)
        if partition is None:
            partition = self._pick_partition(a, b, notes)
        if backend is None:
            backend = self._pick_backend(a, b, bands, threads, notes)
        else:
            backend = normalize_backend(backend)
        shard_grid = (
            self._pick_shards(a, b, mask, shards, complement, notes)
            if shards is not None
            else None
        )
        if shard_grid is not None and panel_width is not None:
            raise ValueError(
                "panel_width and shards are mutually exclusive: the shard "
                "grid's column panels already bound the working set"
            )
        if (
            panel_width is None
            and memory_budget_bytes is not None
            and shard_grid is None
        ):
            panel_width = self._pick_panel_width(b, mask, memory_budget_bytes, notes)
        if mask.nnz == 0 and not complement:
            notes.append("mask is empty: the output is empty regardless of algorithm")

        return ExecutionPlan(
            shape=(a.nrows, b.ncols),
            bands=bands,
            complement=complement,
            phases=chosen_phases,
            threads=threads,
            partition=partition,
            backend=backend,
            panel_width=panel_width,
            shards=shard_grid,
            machine=self.machine.name,
            mode=mode,
            estimates=estimates,
            notes=notes,
        ).validate()

    # ------------------------------------------------------------------
    # banding policies
    # ------------------------------------------------------------------
    def _forced_bands(self, a, algo: str, complement: bool):
        key = algo.lower()
        if key not in ALL_ALGOS:
            raise ValueError(
                f"unknown algorithm {algo!r}; expected one of {ALL_ALGOS}"
            )
        if complement and not supports_complement(key):
            raise ValueError(
                f"{ALGO_LABELS[key]} does not support complemented masks"
            )
        rows = np.arange(a.nrows, dtype=np.int64)
        return [RowBand(rows=rows, algo=key, reason="forced by caller")]

    def _single_band(self, a, ests, model):
        if a.nrows == 0:
            return []
        best = min(ests, key=lambda c: float(ests[c].total_cycles))
        return [
            RowBand(
                rows=np.arange(a.nrows, dtype=np.int64),
                algo=best,
                reason="modeled cheapest whole-problem algorithm",
                est_cycles=float(ests[best].total_cycles),
                est_bytes=float(model.row_bytes(best).sum()),
            )
        ]

    def _cost_bands(self, a, ests, notes, model):
        nrows = a.nrows
        if nrows == 0:
            return []
        cand = list(ests)
        cycles = np.stack([ests[c].row_cycles for c in cand])  # (ncand, nrows)
        winner = np.argmin(cycles, axis=0)
        win_cycles = cycles[winner, np.arange(nrows)]
        total = max(float(win_cycles.sum()), 1e-30)
        # consolidate: drop candidates whose winning rows carry a negligible
        # share of the modeled work, then re-pick among the survivors
        shares = {
            i: float(win_cycles[winner == i].sum()) / total for i in range(len(cand))
        }
        keep = [i for i, s in shares.items() if s >= self.min_band_fraction]
        if not keep:
            keep = [max(shares, key=shares.get)]
        if len(keep) < len(cand):
            folded = [cand[i] for i in range(len(cand)) if i not in keep and np.any(winner == i)]
            if folded:
                notes.append(
                    "folded negligible bands (" + ", ".join(folded) + ") into survivors"
                )
            sub = np.argmin(cycles[keep], axis=0)
            winner = np.asarray(keep)[sub]
        bands = []
        for i, c in enumerate(cand):
            rows = np.flatnonzero(winner == i).astype(np.int64)
            if rows.size == 0:
                continue
            bands.append(
                RowBand(
                    rows=rows,
                    algo=c,
                    reason=_REASONS.get(c, "modeled cheapest for these rows"),
                    est_cycles=float(cycles[i, rows].sum()),
                    est_bytes=float(model.row_bytes(c)[rows].sum()),
                )
            )
        return bands

    def _ratio_bands(self, a, b, mask, complement, notes):
        classes = classify_rows(
            a,
            b,
            mask,
            self.machine,
            pull_ratio=self.pull_ratio,
            push_ratio=self.push_ratio,
            complement=complement,
        )
        notes.append(
            f"ratio banding (pull_ratio={self.pull_ratio}, "
            f"push_ratio={self.push_ratio})"
        )
        return [
            RowBand(
                rows=np.asarray(rows, dtype=np.int64),
                algo=algo,
                reason=_REASONS.get(algo, "ratio-classified"),
            )
            for algo, rows in classes.items()
        ]

    # ------------------------------------------------------------------
    # scalar decisions
    # ------------------------------------------------------------------
    def _assign_batch(self, a, b, bands, forced, notes) -> None:
        """Resolve each band's kernel batching tier and bucket census.

        Batchable algorithms (MSA/Hash/ESC fast kernels) get the bucketed
        tier exactly when the band's upper-bound flops reach the machine's
        ``batch_crossover_flops`` (or whatever ``batch=`` forces); the rest
        are pinned to ``"perrow"``.  Both tiers are bit-for-bit identical,
        so this is a pure performance decision — recorded on the band, with
        a census note mirroring the shard census, so ``explain()`` shows
        what will run batched and why.
        """
        if not bands:
            return
        per = per_row_flops(a, b)
        crossover = int(self.machine.batch_crossover_flops)
        bucketed_rows = 0
        perrow_rows = 0
        any_batchable = False
        for band in bands:
            rows = np.asarray(band.rows)
            band_flops = int(per[rows].sum())
            band.buckets = bucket_census(per[rows])
            if band.algo not in BATCHABLE_ALGOS:
                band.batch = "perrow"
                continue
            any_batchable = True
            if forced is not None and forced != "auto":
                band.batch = forced
            else:
                band.batch = "bucket" if band_flops >= crossover else "perrow"
            if band.batch == "bucket":
                bucketed_rows += band.nrows
            else:
                perrow_rows += band.nrows
        if not any_batchable:
            return
        if forced is not None and forced != "auto":
            notes.append(f"batch tier forced to {forced!r} by caller")
        else:
            notes.append(
                f"batch tiers: {bucketed_rows} rows bucketed, "
                f"{perrow_rows} rows per-row "
                f"(crossover {crossover} upper-bound flops)"
            )

    def _pick_phases(self, model, bands, notes) -> int:
        totals = {1: 0.0, 2: 0.0}
        for band in bands:
            for p in (1, 2):
                est = model.estimate(band.algo, phases=p)
                totals[p] += float(est.row_cycles[band.rows].sum())
        chosen = 1 if totals[1] <= totals[2] else 2
        other = 2 if chosen == 1 else 1
        notes.append(
            f"{chosen}P modeled {totals[other] / max(totals[chosen], 1e-30):.2f}x "
            f"cheaper than {other}P"
        )
        return chosen

    def _pick_threads(self, nrows: int, notes) -> int:
        threads = int(min(self.machine.cores, max(1, nrows // self.rows_per_thread)))
        if threads > 1:
            notes.append(
                f"{threads} threads (~{self.rows_per_thread} rows/worker, "
                f"{self.machine.cores}-core {self.machine.name})"
            )
        return threads

    def _pick_backend(self, a, b, bands, threads: int, notes) -> str:
        """Cost-model heuristic for the execution backend.

        ``process`` pays a per-call dispatch overhead (publish operands into
        shared memory, attach in workers, pickle results back) that only
        amortises on large problems, so it is selected exactly when the
        modeled whole-problem work clears
        :attr:`MachineConfig.process_crossover_cycles` — the crossover a
        host can re-fit via :func:`repro.machine.calibrate_process_crossover`.
        Below the crossover, multi-worker plans stay on the cheap-to-enter
        thread backend; single-worker plans are serial by construction.
        """
        if threads <= 1:
            return "serial"
        work = float(sum(band.est_cycles for band in bands))
        if work <= 0.0:
            # forced plans carry no modeled cycles; fall back to the flop
            # count as a work proxy (an underestimate, hence conservative)
            work = float(total_flops(a, b)) * self.machine.flop_cycles
        crossover = self.machine.process_crossover_cycles
        from ..parallel.pool import process_backend_available

        if work >= crossover and process_backend_available():
            notes.append(
                f"process backend: modeled work {work:.3g} cycles >= "
                f"crossover {crossover:.3g} (zero-copy shm operands, "
                "persistent pool)"
            )
            return "process"
        notes.append(
            f"thread backend: modeled work {work:.3g} cycles below the "
            f"process crossover {crossover:.3g}"
        )
        return "thread"

    def _pick_partition(self, a, b, notes) -> str:
        from ..machine import flops_per_row

        fl = flops_per_row(a, b).astype(np.float64)
        mean = float(fl.mean()) if fl.size else 0.0
        if mean <= 0:
            return "block"
        cv = float(fl.std()) / mean
        if cv > 0.25:
            notes.append(f"balanced partition (row-work CV {cv:.2f})")
            return "balanced"
        return "block"

    def _pick_shards(self, a, b, mask, shards, complement: bool, notes):
        """Resolve the ``shards`` knob into a :class:`ShardGrid` (or None).

        ``"auto"`` shards exactly when the operands' index+value working set
        exceeds :attr:`MachineConfig.shard_memory_budget_bytes`, sizing the
        grid so each cell's share of the working set fits the budget (rows
        and columns split as close to square as the factor allows).  A
        resolved grid gets a census note — how many cells actually carry
        mask entries — because those are the only cells the executor will
        dispatch (plain mask; a complemented mask is dense precisely where
        the mask is empty, so nothing prunes).
        """
        nrows, ncols = a.nrows, b.ncols
        grid: Optional[ShardGrid]
        if isinstance(shards, ShardGrid):
            grid = shards.validate((nrows, ncols))
        elif isinstance(shards, str):
            if shards.lower() != "auto":
                raise ValueError(
                    f"shards must be 'auto', an (nrb, ncp) tuple or a "
                    f"ShardGrid, got {shards!r}"
                )
            budget = int(self.machine.shard_memory_budget_bytes)
            footprint = 2 * _WORD * (a.nnz + b.nnz + mask.nnz)
            if budget <= 0 or footprint <= budget or nrows == 0 or ncols == 0:
                notes.append(
                    f"sharding auto: working set ~{footprint} B fits the "
                    f"{budget} B shard budget; unsharded"
                )
                return None
            factor = -(-footprint // budget)  # ceil
            nrb = min(nrows, int(np.ceil(np.sqrt(factor))))
            ncp = min(ncols, int(-(-factor // max(nrb, 1))))
            if nrb * ncp <= 1:
                return None
            grid = ShardGrid.regular((nrows, ncols), nrb, ncp)
            notes.append(
                f"sharding auto: working set ~{footprint} B > budget "
                f"{budget} B; grid {nrb}x{ncp}"
            )
        else:
            nrb, ncp = shards
            nrb = max(1, min(int(nrb), max(1, nrows)))
            ncp = max(1, min(int(ncp), max(1, ncols)))
            if nrb * ncp <= 1:
                notes.append("shard grid 1x1 degenerates to the unsharded path")
                return None
            grid = ShardGrid.regular((nrows, ncols), nrb, ncp)
        if complement:
            notes.append(
                f"complemented mask: all {grid.ncells} shard cells run "
                "(empty mask cells are dense under the complement)"
            )
        else:
            nonempty = _count_nonempty_cells(mask, grid)
            notes.append(
                f"shard grid {grid.nrb}x{grid.ncp}: {nonempty}/{grid.ncells} "
                f"cells carry mask entries ({grid.ncells - nonempty} pruned "
                "before dispatch)"
            )
        return grid

    def _pick_panel_width(self, b, mask, budget_bytes: int, notes):
        if budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        ncols = b.ncols
        footprint = 2 * (b.nnz + mask.nnz) * _WORD
        if footprint <= budget_bytes or ncols == 0:
            return None
        width = max(1, int(ncols * budget_bytes / footprint))
        notes.append(
            f"column panels of width {width} "
            f"(working set ~{footprint} B > budget {budget_bytes} B)"
        )
        return width


def _count_nonempty_cells(mask, grid: ShardGrid) -> int:
    """How many shard cells carry at least one mask entry (one O(nnz) pass)."""
    if mask.nnz == 0:
        return 0
    rb = np.asarray(grid.row_bounds, dtype=np.int64)
    cb = np.asarray(grid.col_bounds, dtype=np.int64)
    rows = np.repeat(np.arange(mask.nrows, dtype=np.int64), mask.row_nnz())
    ri = np.searchsorted(rb, rows, side="right") - 1
    ci = np.searchsorted(cb, mask.indices, side="right") - 1
    return int(np.unique(ri * grid.ncp + ci).size)


def plan(a, b, mask, *, machine=None, **kwargs) -> ExecutionPlan:
    """One-shot convenience: ``Planner(machine).plan(a, b, mask, **kwargs)``."""
    return Planner(machine).plan(a, b, mask, **kwargs)
