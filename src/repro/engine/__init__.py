"""Cost-model-driven execution engine for masked SpGEMM.

The paper's Section 9 future work — hybrid, regime-aware algorithm
selection — realised as an explicit three-stage pipeline:

1. :class:`Planner` (or the one-shot :func:`plan`) inspects the matrices'
   statistics, the :class:`~repro.machine.MachineConfig` and the per-row
   cost model, and emits an
2. :class:`ExecutionPlan` — an inspectable record of per-row-band algorithm
   choices, 1P/2P phase strategy, row partition + thread count and optional
   column panels, with :meth:`~ExecutionPlan.explain` for auditability —
   which
3. :func:`execute` runs, threading a single
   :class:`~repro.machine.OpCounter` through every stage.

``masked_spgemm(..., algo="auto")``, ``masked_spgemm_hybrid``,
``masked_spgemm_chunked`` and ``parallel_masked_spgemm`` are all thin
fronts over this pipeline; later scaling work (sharding, batching,
multi-backend) plugs in here.
"""

from .delta import DELTA_MAX_FRACTION, DeltaPlan, delta_execute
from .executor import execute, plan_and_execute
from .plan import ExecutionPlan, RowBand, ShardGrid
from .planner import PLAN_CANDIDATES, Planner, plan
from .session import ExecutionSession, Fingerprint, fingerprint_csr, resolve_session

__all__ = [
    "DELTA_MAX_FRACTION",
    "DeltaPlan",
    "delta_execute",
    "ExecutionPlan",
    "RowBand",
    "ShardGrid",
    "Planner",
    "plan",
    "PLAN_CANDIDATES",
    "execute",
    "plan_and_execute",
    "ExecutionSession",
    "Fingerprint",
    "fingerprint_csr",
    "resolve_session",
]
