"""The :class:`ExecutionPlan` — an explicit, inspectable record of *how* a
masked SpGEMM will be executed.

The paper's Section 9 names hybrid, regime-aware algorithm selection as the
key future direction; this module is the data structure that direction hangs
off.  A plan fixes every decision the runtime used to scatter across four
competing entry points:

* **row bands** — which algorithm runs which output rows (the per-row
  regime split of Figure 7 / Section 4.3, generalising the old
  ``masked_spgemm_hybrid``),
* **phases** — the 1P/2P output-formation strategy of Section 6,
* **partition / threads / backend** — the row-parallel decomposition
  (Section 3's coarse-grained parallelism, previously hard-wired into
  ``parallel_masked_spgemm``) and which executor carries it out
  (``serial`` | ``thread`` | ``process`` — the shared-memory worker pool),
* **column panels** — the optional memory-bounding of the old
  ``masked_spgemm_chunked``.

Plans are produced by :class:`repro.engine.Planner` (cost-model driven) or
constructed by hand, and consumed by :func:`repro.engine.execute`.  They are
plain data: no matrix references, so a plan can be logged, serialised
(:meth:`ExecutionPlan.as_dict`) and replayed on equal-shaped inputs.
:meth:`ExecutionPlan.explain` renders the *why* — benchmarks and docs print
it so algorithm choices are auditable rather than folklore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["RowBand", "ShardGrid", "ExecutionPlan"]

#: algorithms a plan may reference (kept in sync with repro.core by tests)
_KNOWN_ALGOS = ("inner", "msa", "hash", "mca", "heap", "heapdot", "esc")
_NO_COMPLEMENT = frozenset({"inner", "mca"})
#: batch tiers a band may carry (kept in sync with repro.core.kernels.batch)
_KNOWN_BATCH = ("auto", "bucket", "perrow")


@dataclass
class RowBand:
    """A contiguous-or-scattered set of output rows bound to one algorithm."""

    rows: np.ndarray  #: sorted global row indices this band owns
    algo: str  #: kernel key ("msa", "hash", "mca", "inner", "esc", ...)
    reason: str = ""  #: one-line rationale recorded by the planner
    est_cycles: float = 0.0  #: modeled cycles for this band (0 if not modeled)
    #: modeled memory traffic for this band in bytes (0 if not modeled);
    #: the prediction ledger pairs it with the measured counters
    est_bytes: float = 0.0
    #: batching tier the band's kernel runs ("auto" | "bucket" | "perrow");
    #: planner-resolved from the machine's batch_crossover_flops for
    #: batchable algorithms, "perrow" for the rest
    batch: str = "auto"
    #: flops-size-class census of the band's rows ({bucket_id: nrows},
    #: bucket = bit_length of the row's upper-bound flops); informational,
    #: rendered by explain()/as_dict()
    buckets: Dict[int, int] = field(default_factory=dict)

    @property
    def nrows(self) -> int:
        return int(np.asarray(self.rows).size)

    def is_full(self, total_rows: int) -> bool:
        """Whether this band covers every output row ``[0, total_rows)``."""
        r = np.asarray(self.rows)
        return (
            r.size == total_rows
            and (total_rows == 0 or (int(r[0]) == 0 and int(r[-1]) == total_rows - 1))
        )

    def is_contiguous(self) -> bool:
        r = np.asarray(self.rows)
        if r.size <= 1:
            return True
        return int(r[-1]) - int(r[0]) + 1 == r.size and bool(np.all(np.diff(r) == 1))


@dataclass(frozen=True)
class ShardGrid:
    """A 2-D shard decomposition of the output: row blocks x column panels.

    ``row_bounds``/``col_bounds`` are monotone boundary tuples spanning
    ``[0, nrows]`` / ``[0, ncols]``; cell ``(i, j)`` covers output rows
    ``[row_bounds[i], row_bounds[i+1])`` and columns
    ``[col_bounds[j], col_bounds[j+1])``.  The executor materialises each
    cell's operands doubly-compressed (DCSR row blocks of A, DCSC column
    panels of B, DCSR mask cells) and prunes any cell whose mask cell is
    empty before dispatch — the masked analogue of hypersparse pruning.
    Bounds are plain int tuples so a grid is hashable (plan-cache keys)
    and JSON-able (:meth:`as_dict`).
    """

    row_bounds: Tuple[int, ...]
    col_bounds: Tuple[int, ...]

    @classmethod
    def regular(cls, shape, nrb: int, ncp: int) -> "ShardGrid":
        """An evenly-spaced ``nrb x ncp`` grid over ``shape``."""
        rb = np.linspace(0, int(shape[0]), int(nrb) + 1).astype(np.int64)
        cb = np.linspace(0, int(shape[1]), int(ncp) + 1).astype(np.int64)
        return cls(tuple(int(x) for x in rb), tuple(int(x) for x in cb))

    @property
    def nrb(self) -> int:
        """Number of row blocks."""
        return len(self.row_bounds) - 1

    @property
    def ncp(self) -> int:
        """Number of column panels."""
        return len(self.col_bounds) - 1

    @property
    def ncells(self) -> int:
        return self.nrb * self.ncp

    def row_blocks(self) -> List[Tuple[int, int]]:
        return [
            (self.row_bounds[i], self.row_bounds[i + 1]) for i in range(self.nrb)
        ]

    def col_panels(self) -> List[Tuple[int, int]]:
        return [
            (self.col_bounds[j], self.col_bounds[j + 1]) for j in range(self.ncp)
        ]

    def validate(self, shape) -> "ShardGrid":
        for bounds, dim, what in (
            (self.row_bounds, int(shape[0]), "row_bounds"),
            (self.col_bounds, int(shape[1]), "col_bounds"),
        ):
            if len(bounds) < 2:
                raise ValueError(f"shard {what} needs at least one block")
            if bounds[0] != 0 or bounds[-1] != dim:
                raise ValueError(f"shard {what} must span [0, {dim}]")
            if any(b > c for b, c in zip(bounds, bounds[1:])):
                raise ValueError(f"shard {what} must be non-decreasing")
        return self

    def as_dict(self) -> dict:
        return {
            "grid": [self.nrb, self.ncp],
            "row_bounds": list(self.row_bounds),
            "col_bounds": list(self.col_bounds),
        }


@dataclass
class ExecutionPlan:
    """Every decision needed to run ``C = M .* (A @ B)`` (or ``!M``).

    ``bands`` must cover each output row exactly once.  ``estimates`` holds
    the planner's modeled whole-problem seconds per candidate algorithm (for
    :meth:`explain`); ``notes`` records free-form planner decisions.
    """

    shape: Tuple[int, int]  #: output (and mask) shape
    bands: List[RowBand]
    complement: bool = False
    phases: int = 1  #: 1 (one-phase) or 2 (symbolic + numeric)
    threads: int = 1
    partition: str = "balanced"  #: "block" | "cyclic" | "balanced"
    backend: str = "thread"  #: "serial" | "thread" | "process"
    panel_width: Optional[int] = None  #: column-panel width, or None
    shards: Optional[ShardGrid] = None  #: 2-D shard grid, or None (unsharded)
    machine: str = "haswell"  #: name of the MachineConfig the plan targets
    mode: str = "auto"  #: "auto" | "ratio" | "forced" | "delta"
    #: a partial plan covers only a subset of the output rows (each at most
    #: once) — the delta engine's patch path re-executes dirty rows only and
    #: splices them into a cached result (see docs/incremental.md)
    partial: bool = False
    estimates: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def algos(self) -> Tuple[str, ...]:
        """Distinct algorithms used, ordered by first appearance."""
        seen: List[str] = []
        for band in self.bands:
            if band.algo not in seen:
                seen.append(band.algo)
        return tuple(seen)

    @property
    def algo(self) -> Optional[str]:
        """The single algorithm when the plan is unbanded, else None."""
        a = self.algos()
        return a[0] if len(a) == 1 else None

    def nrows_per_algo(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for band in self.bands:
            out[band.algo] = out.get(band.algo, 0) + band.nrows
        return out

    # ------------------------------------------------------------------
    def validate(self) -> "ExecutionPlan":
        """Check internal consistency; raises ValueError on a broken plan."""
        nrows = self.shape[0]
        if self.phases not in (1, 2):
            raise ValueError("phases must be 1 or 2")
        if self.threads <= 0:
            raise ValueError("threads must be positive")
        if self.partition not in ("block", "cyclic", "balanced"):
            raise ValueError("partition must be 'block', 'cyclic' or 'balanced'")
        if self.backend not in ("serial", "thread", "process"):
            raise ValueError("backend must be 'serial', 'thread' or 'process'")
        if self.panel_width is not None and self.panel_width <= 0:
            raise ValueError("panel_width must be positive")
        if self.shards is not None:
            if not isinstance(self.shards, ShardGrid):
                raise ValueError("shards must be a ShardGrid or None")
            if self.panel_width is not None:
                raise ValueError(
                    "panel_width and shards are mutually exclusive: the shard "
                    "grid's column panels already bound the working set"
                )
            self.shards.validate(self.shape)
        counts = np.zeros(nrows, dtype=np.int64)
        for band in self.bands:
            if band.algo not in _KNOWN_ALGOS:
                raise ValueError(f"plan references unknown algorithm {band.algo!r}")
            if band.batch not in _KNOWN_BATCH:
                raise ValueError(
                    f"plan references unknown batch tier {band.batch!r}; "
                    f"expected one of {_KNOWN_BATCH}"
                )
            if self.complement and band.algo in _NO_COMPLEMENT:
                raise ValueError(
                    f"plan routes a complemented mask to {band.algo!r}, "
                    "which does not support complement"
                )
            r = np.asarray(band.rows)
            if r.size and (int(r.min()) < 0 or int(r.max()) >= nrows):
                raise ValueError("band rows out of range")
            np.add.at(counts, r, 1)
        if self.partial:
            if self.bands and not bool(np.all(counts <= 1)):
                raise ValueError(
                    "partial plan bands must cover each output row at most once"
                )
        else:
            if self.bands and not bool(np.all(counts == 1)):
                raise ValueError(
                    "plan bands must cover every output row exactly once"
                )
            if not self.bands and nrows != 0:
                raise ValueError("plan has no bands but the output has rows")
        return self

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-able summary (row sets abbreviated to counts)."""
        return {
            "shape": list(self.shape),
            "complement": self.complement,
            "phases": self.phases,
            "threads": self.threads,
            "partition": self.partition,
            "backend": self.backend,
            "panel_width": self.panel_width,
            "shards": self.shards.as_dict() if self.shards is not None else None,
            "machine": self.machine,
            "mode": self.mode,
            "partial": self.partial,
            "bands": [
                {
                    "algo": band.algo,
                    "nrows": band.nrows,
                    "reason": band.reason,
                    "est_cycles": band.est_cycles,
                    "est_bytes": band.est_bytes,
                    "batch": band.batch,
                    "buckets": {int(k): int(v) for k, v in band.buckets.items()},
                }
                for band in self.bands
            ],
            "estimates_seconds": dict(self.estimates),
            "notes": list(self.notes),
        }

    def explain(self) -> str:
        """Human-readable account of what will run and why."""
        nrows = max(1, self.shape[0])
        lines = [
            f"ExecutionPlan[{self.mode}] for {self.shape[0]}x{self.shape[1]} "
            f"output on {self.machine} "
            f"({'complemented' if self.complement else 'plain'} mask)",
            f"  phases={self.phases}P  threads={self.threads} "
            f"({self.partition} partition, {self.backend} backend)  "
            + (
                f"column panels of width {self.panel_width}"
                if self.panel_width
                else "no column panels"
            ),
        ]
        if self.partial:
            covered = sum(band.nrows for band in self.bands)
            lines.append(
                f"  partial plan: {covered} of {self.shape[0]} output rows "
                "(delta patch — untouched rows come from the cached result)"
            )
        if self.shards is not None:
            lines.append(
                f"  shard grid {self.shards.nrb}x{self.shards.ncp} "
                "(DCSR row blocks x DCSC column panels; empty mask cells "
                "pruned before dispatch)"
            )
        for i, band in enumerate(self.bands):
            pct = 100.0 * band.nrows / nrows
            cyc = f", ~{band.est_cycles:.3g} cycles" if band.est_cycles else ""
            why = f" — {band.reason}" if band.reason else ""
            tier = f" batch={band.batch}" if band.batch != "auto" else ""
            census = ""
            if band.buckets:
                top = sorted(
                    band.buckets.items(), key=lambda kv: kv[1], reverse=True
                )[:4]
                body = ", ".join(f"2^{k}: {v}" for k, v in sorted(top))
                more = len(band.buckets) - len(top)
                census = f" buckets{{{body}{f', +{more} more' if more > 0 else ''}}}"
            lines.append(
                f"  band {i}: algo={band.algo:<7s} rows={band.nrows}"
                f" ({pct:.1f}%){cyc}{tier}{census}{why}"
            )
        if self.estimates:
            ranked = sorted(self.estimates.items(), key=lambda kv: kv[1])
            pretty = "  <  ".join(f"{k} {v:.3e}s" for k, v in ranked)
            lines.append(f"  modeled candidates (fastest first): {pretty}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.explain()
