"""Delta-aware masked SpGEMM: recompute only the rows a change can reach.

The paper's iterative applications mutate their operands by a small edge
set per round — k-truss prunes a monotonically shrinking support set
(Section 8.3), MCL's expansion matrix converges, a streaming graph window
slides by a few edges — yet ``C = M .* (A @ B)`` decomposes row-
independently (Buluç & Gilbert), so a change can only affect the output
rows it *reaches*:

* a changed row ``i`` of A (structure or values) dirties output row ``i``;
* a changed row ``j`` of B dirties every output row ``i`` with
  ``A[i, j] != 0`` — found through the session's CSC memo of the *current*
  A (exact: if the new row ``i`` does not reference ``j``, a change in
  ``B[j, :]`` cannot affect it, and if row ``i`` itself changed it is
  already dirty);
* a mask row whose *structure* changed dirties that output row (mask
  values never influence the product, complemented or not).

:func:`delta_execute` diffs consecutive operands against the state cached
on the :class:`~repro.engine.ExecutionSession` — chunked block digests
(:func:`repro.sparse.block_digests`) localise changes, an exact per-row
refinement (:func:`repro.sparse.changed_rows`) inside dirty blocks names
them — and resolves a :class:`DeltaPlan`.  Execution then takes the patch
path: the cached full plan's row bands are intersected with the dirty set
into a ``partial`` :class:`~repro.engine.ExecutionPlan` (same algorithms,
phases, backend, threads and shard grid), only those bands/shard cells
run, and the output is spliced into the cached result via
:meth:`~repro.sparse.CSR.replace_rows`.

Bit-for-bit contract: every kernel in this library assembles each output
row from the same k-set in ascending order regardless of banding, backend
or tier, so a patched row equals the row a full recompute would produce —
in values *and* structure.  The patch differs only in work, which the
``rows_recomputed`` / ``rows_patched`` / ``delta_fallbacks`` counters and
the ``engine.delta`` prediction-ledger rows certify.

Fallback policy: when the dirty fraction exceeds the threshold
(:data:`DELTA_MAX_FRACTION`, or the fraction passed as ``delta=``), a
patch would do most of a full run's work while paying the diff on top, so
the call falls through to the ordinary sessioned plan-and-execute path
(``delta_fallbacks`` is charged).  ``delta="force"`` disables the
fallback — the test hook that proves the patch path alone is exact.
See ``docs/incremental.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..machine import MachineConfig, OpCounter, resolve_machine
from ..observe import tracer as _obs
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import CSR, block_digests, changed_rows, dirty_blocks
from ..sparse.diff import DELTA_BLOCK_ROWS
from .executor import execute
from .plan import ExecutionPlan, RowBand

__all__ = ["DELTA_MAX_FRACTION", "DeltaPlan", "delta_execute"]

#: default dirty-row fraction beyond which a patch falls back to a full
#: recompute: past half the rows, slicing + splicing costs more than the
#: recompute saves (the bench history's ktruss-delta scheme tracks this)
DELTA_MAX_FRACTION = 0.5


@dataclass(frozen=True)
class DeltaPlan:
    """Resolved dirty-row analysis for one incremental call.

    Plain data, produced by the diff stage and consumed by the patch
    stage; surfaced on the ``engine.delta`` span for the prediction
    ledger.  ``dirty_rows`` is the union of the three propagation
    channels (sorted, unique).
    """

    nrows: int
    dirty_rows: np.ndarray  #: output rows that must be recomputed
    a_dirty: np.ndarray  #: rows of A that changed (structure or values)
    b_touched: np.ndarray  #: output rows dirtied through changed B rows
    mask_dirty: np.ndarray  #: mask rows whose structure changed

    @property
    def dirty_count(self) -> int:
        return int(self.dirty_rows.size)

    @property
    def fraction(self) -> float:
        return self.dirty_count / max(1, self.nrows)


class _DeltaState:
    """Everything one (problem-slot, session) pair retains between calls."""

    __slots__ = (
        "a", "b", "mask", "fa", "fb", "fm",
        "da", "db", "dm", "plan", "result",
    )

    def __init__(self, a, b, mask, fa, fb, fm, da, db, dm, plan, result):
        self.a, self.b, self.mask = a, b, mask
        self.fa, self.fb, self.fm = fa, fb, fm
        self.da, self.db, self.dm = da, db, dm
        self.plan = plan
        self.result = result


def _resolve_mode(delta):
    """Normalise the ``delta=`` knob to ``(mode, threshold)``."""
    if delta in ("auto", True):
        return "auto", DELTA_MAX_FRACTION
    if delta == "force":
        return "force", 1.0
    if isinstance(delta, (int, float)) and not isinstance(delta, bool):
        frac = float(delta)
        if not (0.0 < frac <= 1.0):
            raise ValueError(
                f"a numeric delta= threshold must lie in (0, 1], got {delta!r}"
            )
        return "auto", frac
    raise ValueError(
        "delta must be 'auto', 'force', a dirty-fraction threshold in "
        f"(0, 1] or None, got {delta!r}"
    )


def _digests(session, mat, fp, *, values: bool) -> np.ndarray:
    """Session-memoised block digest vector of an operand."""
    return session.block_digests(mat, fp=fp, values=values)


def _dirty_rows(session, old, new, f_old, f_new, *, values: bool) -> np.ndarray:
    """Exact dirty rows of one operand between two calls.

    Fast path on equal fingerprints; otherwise block digests localise the
    change and :func:`changed_rows` names the rows inside dirty blocks.
    """
    if values:
        if f_old.key == f_new.key:
            return np.empty(0, dtype=np.int64)
    elif f_old.structure_key == f_new.structure_key:
        return np.empty(0, dtype=np.int64)
    d_old = _digests(session, old, f_old, values=values)
    d_new = _digests(session, new, f_new, values=values)
    blocks = dirty_blocks(d_old, d_new)
    if blocks.size == 0:
        return np.empty(0, dtype=np.int64)
    spans = [
        np.arange(
            int(bi) * DELTA_BLOCK_ROWS,
            min(new.nrows, (int(bi) + 1) * DELTA_BLOCK_ROWS),
            dtype=np.int64,
        )
        for bi in blocks
    ]
    return changed_rows(old, new, rows=np.concatenate(spans), values=values)


def _propagate_b(session, a, fa, b_changed: np.ndarray) -> np.ndarray:
    """Output rows dirtied by changed B rows: ``{i : A[i, j] != 0}`` for
    changed ``j``, through the session's CSC memo of the current A."""
    if b_changed.size == 0:
        return b_changed
    a_csc = session.csc_of(a, fa)
    starts = a_csc.indptr[b_changed]
    lens = a_csc.indptr[b_changed + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    off = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lens) - lens, lens
    )
    return np.unique(a_csc.indices[np.repeat(starts, lens) + off])


def _patch_plan(plan: ExecutionPlan, dirty: np.ndarray, nrows: int) -> ExecutionPlan:
    """Restrict a cached full plan to the dirty rows.

    Algorithm assignment, phases, partition, threads, backend, panel
    width and shard grid are inherited — the bit-for-bit contract makes a
    stale assignment safe, and inheriting it keeps the patch on the same
    dispatch machinery (bands, shard cells, segments) as the full run.
    Modeled cycles/bytes are scaled by each band's surviving row share so
    the prediction ledger prices the patch, not the full problem.
    """
    sel = np.zeros(nrows, dtype=bool)
    sel[dirty] = True
    bands = []
    for band in plan.bands:
        rows = np.asarray(band.rows)
        keep = rows[sel[rows]]
        if keep.size == 0:
            continue
        share = keep.size / max(1, rows.size)
        bands.append(
            RowBand(
                rows=keep,
                algo=band.algo,
                reason=(band.reason + " [delta]") if band.reason else "delta patch",
                est_cycles=band.est_cycles * share,
                est_bytes=band.est_bytes * share,
                batch=band.batch,
            )
        )
    return ExecutionPlan(
        shape=plan.shape,
        bands=bands,
        complement=plan.complement,
        phases=plan.phases,
        threads=plan.threads,
        partition=plan.partition,
        backend=plan.backend,
        panel_width=plan.panel_width,
        shards=plan.shards,
        machine=plan.machine,
        mode="delta",
        partial=True,
        notes=[f"delta patch: {int(dirty.size)}/{nrows} rows dirty"],
    )


def _slot_key(a, b, mask, *, complement, phases, semiring, impl, backend,
              machine, plan_kwargs) -> tuple:
    """One delta state per distinct problem a session serves."""
    return (
        a.shape, b.shape, mask.shape,
        bool(complement), phases,
        getattr(semiring, "name", None), impl, backend, machine,
        tuple(sorted((k, v) for k, v in plan_kwargs.items() if v is not None)),
    )


def delta_execute(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    session,
    delta="auto",
    machine=None,
    complement: bool = False,
    phases: Optional[int] = None,
    semiring: Semiring = PLUS_TIMES,
    impl: str = "auto",
    counter: Optional[OpCounter] = None,
    backend: Optional[str] = None,
    b_csc=None,
    planner=None,
    **plan_kwargs,
) -> CSR:
    """Incremental ``C = M .* (A @ B)`` against the session's cached state.

    The first call on a problem slot (and any call whose operand shapes
    changed, whose dirty fraction exceeds the threshold, or whose session
    state was invalidated) runs the ordinary sessioned plan-and-execute
    path and caches operands, block digests, plan and result.  Subsequent
    calls diff, patch and splice.  Results are bit-for-bit identical to a
    full recompute in every case.
    """
    mode, threshold = _resolve_mode(delta)
    if machine is not None and not isinstance(machine, MachineConfig):
        machine = resolve_machine(machine)
    nrows = a.nrows
    slot = _slot_key(
        a, b, mask, complement=complement, phases=phases, semiring=semiring,
        impl=impl, backend=backend, machine=machine, plan_kwargs=plan_kwargs,
    )
    fa, fb, fm = (
        session.fingerprint(a),
        session.fingerprint(b),
        session.fingerprint(mask),
    )

    def full_run():
        pl = session.plan(
            a, b, mask,
            complement=complement, phases=phases,
            semiring_name=getattr(semiring, "name", None),
            counter=counter, backend=backend,
            machine=machine, planner=planner, **plan_kwargs,
        )
        c = execute(
            pl, a, b, mask,
            semiring=semiring, impl=impl, counter=counter,
            backend=None, b_csc=b_csc, session=session,
        )
        return pl, c

    def store(plan, result):
        session._delta_store(
            slot,
            _DeltaState(
                a, b, mask, fa, fb, fm,
                _digests(session, a, fa, values=True),
                _digests(session, b, fb, values=True),
                _digests(session, mask, fm, values=False),
                plan, result,
            ),
        )

    state = session._delta_get(slot)
    if state is None or (state.fa.shape, state.fb.shape, state.fm.shape) != (
        fa.shape, fb.shape, fm.shape
    ):
        pl, c = full_run()
        if counter is not None:
            counter.rows_recomputed += nrows
        store(pl, c)
        return c

    # identical problem: A and B byte-equal, mask structure-equal
    if (
        fa.key == state.fa.key
        and fb.key == state.fb.key
        and fm.structure_key == state.fm.structure_key
    ):
        session.delta_hits += 1
        if counter is not None:
            counter.rows_patched += nrows
        return state.result

    a_dirty = _dirty_rows(session, state.a, a, state.fa, fa, values=True)
    m_dirty = _dirty_rows(session, state.mask, mask, state.fm, fm, values=False)
    b_changed = _dirty_rows(session, state.b, b, state.fb, fb, values=True)
    b_touched = _propagate_b(session, a, fa, b_changed)
    dirty = np.unique(np.concatenate([a_dirty, m_dirty, b_touched]))
    dplan = DeltaPlan(
        nrows=nrows, dirty_rows=dirty, a_dirty=a_dirty,
        b_touched=b_touched, mask_dirty=m_dirty,
    )

    if dplan.dirty_count == 0:
        # differing bytes that cannot reach the output (mask values only)
        session.delta_hits += 1
        if counter is not None:
            counter.rows_patched += nrows
        store(state.plan, state.result)
        return state.result

    if mode != "force" and dplan.fraction > threshold:
        session.delta_fallbacks += 1
        if counter is not None:
            counter.delta_fallbacks += 1
            counter.rows_recomputed += nrows
        pl, c = full_run()
        store(pl, c)
        return c

    patched = _patch_plan(state.plan, dirty, nrows)
    tr = _obs.current()
    patch_cm = (
        tr.span(
            "engine.delta",
            {
                "rows_recomputed": dplan.dirty_count,
                "rows_patched": nrows - dplan.dirty_count,
                "dirty_fraction": dplan.fraction,
                "a_dirty": int(a_dirty.size),
                "b_touched": int(b_touched.size),
                "mask_dirty": int(m_dirty.size),
                "est_cycles": float(sum(bd.est_cycles for bd in patched.bands)),
                "est_bytes": float(sum(bd.est_bytes for bd in patched.bands)),
                "backend": patched.backend,
            },
            counter=counter,
        )
        if tr is not None else _obs.NULL_SPAN
    )
    with patch_cm:
        c_patch = execute(
            patched, a, b, mask,
            semiring=semiring, impl=impl, counter=counter,
            backend=None, b_csc=b_csc, session=session,
        )
        result = state.result.replace_rows(dirty, c_patch)
    session.delta_patches += 1
    if counter is not None:
        counter.rows_recomputed += dplan.dirty_count
        counter.rows_patched += nrows - dplan.dirty_count
    store(state.plan, result)
    return result
