"""Cross-call execution sessions: fingerprints, plan cache, segment reuse.

The paper's flagship workloads are iterative — k-truss re-multiplies a
shrinking adjacency every pruning round (Section 8.3), batched BC performs
~2·diameter masked products per batch against a *constant* A (Section 8.4)
— yet a bare ``masked_spgemm`` call is a cold start: the planner
re-classifies rows, the inner-product kernel re-transposes B, and the
process backend republishes every operand into fresh shared-memory
segments.  An :class:`ExecutionSession` amortises all of that across
calls:

* **operand fingerprints** (:class:`Fingerprint`) — identity fast path
  (same CSR object, same backing arrays → cached digest) over a content
  digest (blake2b over ``indptr``/``indices`` for structure, over ``data``
  for values).  Content keys make every downstream cache safe: a *new*
  object with equal bytes hits, a changed operand misses.
* **plan cache** — LRU of :class:`~repro.engine.ExecutionPlan` keyed on
  the operands' structure digests plus the forced planning knobs and
  semiring; planning is structure-driven, so values-only changes reuse
  the plan.
* **segment registry** (:class:`~repro.parallel.segment_cache.SegmentCache`)
  — published shm segments (and derived CSC transposes) stay alive across
  calls; only operands whose fingerprint changed are republished, and a
  values-only change rewrites the data segment in place.
* **derived-CSC memo** — ``CSC.from_csr`` (a lexsort transpose) runs once
  per operand content; the result is memoised on the session *and* on the
  CSR object itself behind the fingerprint.
* **symbolic bound memo** — 1P mask bounds and 2P symbolic sweeps are
  cached per structure; on a hit the recorded counter delta is replayed,
  so sessioned and sessionless runs report identical ``OpCounter`` totals.

Results are bit-for-bit identical with or without a session; the reuse
shows up only in wall time and in the ``plan_cache_hits`` /
``segments_reused`` / ``bytes_republished`` counters (surfaced through
``OpCounter``, ``metrics()`` and ``report()``).

Invalidation contract: caches key on *content*, so stale entries are
unreachable, not wrong — with one exception.  The identity fast path
trusts that a previously fingerprinted CSR object whose three backing
arrays are the same objects has not been mutated *in place*.  Code that
writes into ``mat.data[...]`` (none of this repo's apps do) must call
:meth:`ExecutionSession.invalidate` on the matrix, or run the session
with ``strict=True`` to re-digest every call.  See ``docs/sessions.md``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..machine import MachineConfig, OpCounter, resolve_machine
from ..sparse import CSC, CSR, DCSC, DCSR
from .planner import Planner

__all__ = [
    "ExecutionSession",
    "Fingerprint",
    "fingerprint_csr",
    "resolve_session",
]


def _buf(arr: np.ndarray):
    return memoryview(np.ascontiguousarray(arr))


@dataclass(frozen=True)
class Fingerprint:
    """Content identity of a CSR operand.

    ``structure`` digests ``(shape, sorted_indices, indptr, indices)`` and
    drives plan/bound caching (planning never reads values); ``values``
    digests ``data`` and, together with ``structure``, keys the published
    segments.  Equal fingerprints ⇒ equal bytes (up to digest collision,
    128-bit blake2b — negligible).
    """

    shape: Tuple[int, int]
    nnz: int
    structure: str
    values: str

    @property
    def key(self) -> tuple:
        """Full content key (structure + values)."""
        return (self.shape, self.nnz, self.structure, self.values)

    @property
    def structure_key(self) -> tuple:
        """Pattern-only key (values-insensitive)."""
        return (self.shape, self.nnz, self.structure)


def fingerprint_csr(mat: CSR) -> Fingerprint:
    """Digest a CSR operand (one linear pass over its three arrays)."""
    hs = hashlib.blake2b(digest_size=16)
    hs.update(f"{mat.shape[0]}x{mat.shape[1]}|{int(mat.sorted_indices)}".encode())
    hs.update(_buf(mat.indptr))
    hs.update(_buf(mat.indices))
    hv = hashlib.blake2b(digest_size=16)
    hv.update(mat.data.dtype.str.encode())
    hv.update(_buf(mat.data))
    return Fingerprint(mat.shape, mat.nnz, hs.hexdigest(), hv.hexdigest())


class ExecutionSession:
    """Cross-call reuse context for iterative masked SpGEMM.

    Thread it through ``masked_spgemm(session=...)`` (or the ``session=``
    parameter of the iterative apps, which open one automatically for
    ``algo="auto"``), and close it — ``with ExecutionSession() as sess:``
    — to release the shared-memory segments it keeps alive.

    Parameters
    ----------
    machine:
        Cost-model target for the session's planner (default Haswell).
        Accepts a :class:`MachineConfig`, a preset name (``"haswell"``,
        ``"knl"``) or ``"fitted"`` to load the history-calibrated config
        persisted by ``python -m repro.machine fit`` (see
        ``docs/calibration.md``).
    planner:
        A pre-built :class:`~repro.engine.Planner` to reuse (overrides
        ``machine``).
    plan_defaults:
        Planning knobs (``threads``, ``backend``, ``partition``, ...)
        applied to every ``algo="auto"`` call that does not force them —
        the session carries the execution policy of a whole loop.
    caching:
        ``False`` keeps the planner/plan-defaults behaviour but disables
        every reuse cache — the cold-start baseline for A/B timing
        (``python -m repro.bench --no-session`` uses this).
    strict:
        Re-digest operands on every call instead of trusting the identity
        fast path; required only if operand arrays are mutated in place.
    plan_cache_size / csc_cache_size / bound_cache_size /
    fingerprint_cache_size:
        LRU capacities (entries).
    segment_cache_bytes:
        Byte budget of the shared-memory segment registry.

    Not thread-safe: one session serves one coordinator loop.  Workers
    never see the session — only the published segment specs.
    """

    def __init__(
        self,
        *,
        machine=None,
        planner: Optional[Planner] = None,
        plan_defaults: Optional[dict] = None,
        caching: bool = True,
        strict: bool = False,
        plan_cache_size: int = 128,
        csc_cache_size: int = 16,
        bound_cache_size: int = 64,
        fingerprint_cache_size: int = 64,
        segment_cache_bytes: Optional[int] = None,
    ) -> None:
        self.planner = planner if planner is not None else Planner(machine)
        self.machine = self.planner.machine
        self.plan_defaults = dict(plan_defaults or {})
        self.caching = bool(caching)
        self.strict = bool(strict)
        self._plan_cache_size = int(plan_cache_size)
        self._csc_cache_size = int(csc_cache_size)
        self._bound_cache_size = int(bound_cache_size)
        self._fp_cache_size = int(fingerprint_cache_size)
        self._segment_cache_bytes = segment_cache_bytes
        #: id(mat) -> (mat, (id(indptr), id(indices), id(data)), Fingerprint).
        #: Holding ``mat`` strongly guarantees the id is never recycled
        #: while the entry lives (the LRU bounds how long that is).
        self._fps: "OrderedDict[int, tuple]" = OrderedDict()
        self._plans: "OrderedDict[tuple, object]" = OrderedDict()
        self._cscs: "OrderedDict[tuple, CSC]" = OrderedDict()
        self._dforms: "OrderedDict[tuple, object]" = OrderedDict()
        self._bounds: "OrderedDict[tuple, tuple]" = OrderedDict()
        #: per-content block digest vectors (repro.sparse.block_digests),
        #: keyed (content key, block_rows, values); the delta engine's
        #: diff stage digests each operand content at most once
        self._digests: "OrderedDict[tuple, object]" = OrderedDict()
        #: problem slot -> delta state (operands, digests, plan, result)
        #: retained by repro.engine.delta between incremental calls
        self._delta: "OrderedDict[tuple, object]" = OrderedDict()
        self._delta_cache_size = 8
        self._segments = None  # lazy SegmentCache
        # reuse telemetry
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.csc_cache_hits = 0
        self.csc_cache_misses = 0
        self.shard_form_hits = 0
        self.shard_form_misses = 0
        self.bound_cache_hits = 0
        self.bound_cache_misses = 0
        #: 2P numeric passes that consumed a memoised symbolic bound on the
        #: bucketed kernel tier — the counting sweep was skipped and output
        #: formation was fused into the numeric pass (docs/kernels.md)
        self.fused_numeric_hits = 0
        self.fingerprint_digests = 0
        # delta-execution telemetry (repro.engine.delta): calls returned
        # straight from the cached result, calls patched row-wise, and
        # calls whose dirty fraction forced a full recompute
        self.delta_hits = 0
        self.delta_patches = 0
        self.delta_fallbacks = 0

    # -- fingerprints --------------------------------------------------
    def fingerprint(self, mat: CSR) -> Fingerprint:
        """Fingerprint with an identity fast path (see module docs)."""
        key = id(mat)
        ent = self._fps.get(key)
        if (
            ent is not None
            and not self.strict
            and ent[0] is mat
            and ent[1] == (id(mat.indptr), id(mat.indices), id(mat.data))
        ):
            self._fps.move_to_end(key)
            return ent[2]
        fp = fingerprint_csr(mat)
        self.fingerprint_digests += 1
        self._fps[key] = (mat, (id(mat.indptr), id(mat.indices), id(mat.data)), fp)
        self._fps.move_to_end(key)
        while len(self._fps) > self._fp_cache_size:
            self._fps.popitem(last=False)
        return fp

    def invalidate(self, mat=None) -> None:
        """Evict the caches that depend on one operand's content.

        ``mat`` may be a :class:`~repro.sparse.CSR` (its *cached*
        fingerprint — the stale one, if the matrix was mutated in place —
        names the entries to drop) or a :class:`Fingerprint` directly;
        ``None`` clears every cache.  Eviction is *targeted*: only
        plan-cache, CSC/DCSR/DCSC-memo, bound-memo, digest and delta-state
        entries keyed by that operand's structure or content digest are
        dropped — entries for unrelated operands survive.  Needed only
        after mutating a fingerprinted matrix's arrays *in place* —
        content keys make every other cache self-invalidating."""
        if mat is None:
            self._fps.clear()
            self._plans.clear()
            self._cscs.clear()
            self._dforms.clear()
            self._bounds.clear()
            self._digests.clear()
            self._delta.clear()
            return
        if isinstance(mat, Fingerprint):
            fp = mat
        else:
            ent = self._fps.pop(id(mat), None)
            # no cached fingerprint: digest the matrix as-is (exact for a
            # *new* object; after an unseen in-place mutation the stale
            # entries are unreachable by content anyway)
            fp = ent[2] if ent is not None else fingerprint_csr(mat)
            memo = getattr(mat, "_csc_memo", None)
            if memo is not None and memo[0] == fp.key:
                mat._csc_memo = None
        sk, key = fp.structure_key, fp.key
        self._plans = OrderedDict(
            (k, v) for k, v in self._plans.items() if sk not in k[:3]
        )
        self._bounds = OrderedDict(
            (k, v) for k, v in self._bounds.items() if sk not in k[1:4]
        )
        self._cscs.pop(key, None)
        self._dforms.pop(("dcsr",) + key, None)
        self._dforms.pop(("dcsc",) + key, None)
        self._digests = OrderedDict(
            (k, v) for k, v in self._digests.items() if k[0] not in (key, sk)
        )
        self._delta = OrderedDict(
            (k, v)
            for k, v in self._delta.items()
            if key not in (v.fa.key, v.fb.key) and sk != v.fm.structure_key
        )

    # -- plan cache ----------------------------------------------------
    def plan(
        self,
        a: CSR,
        b: CSR,
        mask: CSR,
        *,
        complement: bool = False,
        phases: Optional[int] = None,
        semiring_name: Optional[str] = None,
        counter: Optional[OpCounter] = None,
        machine=None,
        planner: Optional[Planner] = None,
        **plan_kwargs,
    ):
        """Plan via the session's planner, reusing a cached plan when the
        operands' structure and the forced knobs are unchanged.  Knobs
        left ``None`` fall back to :attr:`plan_defaults`.

        A per-call ``machine`` override is honoured and becomes part of
        the cache key (plans for different cost-model targets never mix);
        a per-call ``planner`` override (other than the session's own) is
        honoured but planned *uncached* — a foreign planner's knobs are
        not keyable, so its plans must not shadow the session's.
        """
        merged = dict(self.plan_defaults)
        merged.update({k: v for k, v in plan_kwargs.items() if v is not None})
        if planner is not None and planner is not self.planner:
            return planner.plan(
                a, b, mask, complement=complement, phases=phases, **merged
            )
        target = self.planner
        if machine is not None and not isinstance(machine, MachineConfig):
            machine = resolve_machine(machine)
        if machine is not None and machine != self.machine:
            target = Planner(machine)
        if not self.caching:
            return target.plan(
                a, b, mask, complement=complement, phases=phases, **merged
            )
        key = (
            self.fingerprint(a).structure_key,
            self.fingerprint(b).structure_key,
            self.fingerprint(mask).structure_key,
            bool(complement),
            phases,
            semiring_name,
            target.machine,
            tuple(sorted(merged.items())),
        )
        pl = self._plans.get(key)
        if pl is not None:
            self._plans.move_to_end(key)
            self.plan_cache_hits += 1
            if counter is not None:
                counter.plan_cache_hits += 1
            return pl
        pl = target.plan(
            a, b, mask, complement=complement, phases=phases, **merged
        )
        self.plan_cache_misses += 1
        self._plans[key] = pl
        while len(self._plans) > self._plan_cache_size:
            self._plans.popitem(last=False)
        return pl

    # -- derived CSC ---------------------------------------------------
    def csc_of(self, mat: CSR, fp: Optional[Fingerprint] = None) -> CSC:
        """``CSC.from_csr(mat)``, transposing at most once per content.

        The result is memoised both in the session LRU and on the CSR
        object itself (``mat._csc_memo``, guarded by the fingerprint), so
        BC's backward sweep stops re-transposing a constant A even when
        the session turns over."""
        if not self.caching:
            return CSC.from_csr(mat)
        fp = self.fingerprint(mat) if fp is None else fp
        memo = getattr(mat, "_csc_memo", None)
        if memo is not None and memo[0] == fp.key:
            self.csc_cache_hits += 1
            self._cscs[fp.key] = memo[1]
            self._cscs.move_to_end(fp.key)
            return memo[1]
        csc = self._cscs.get(fp.key)
        if csc is not None:
            self._cscs.move_to_end(fp.key)
            self.csc_cache_hits += 1
            mat._csc_memo = (fp.key, csc)
            return csc
        csc = CSC.from_csr(mat)
        self.csc_cache_misses += 1
        mat._csc_memo = (fp.key, csc)
        self._cscs[fp.key] = csc
        while len(self._cscs) > self._csc_cache_size:
            self._cscs.popitem(last=False)
        return csc

    # -- doubly-compressed forms (sharded execution) -------------------
    def dcsr_of(self, mat: CSR, fp: Optional[Fingerprint] = None) -> DCSR:
        """``DCSR.from_csr(mat)``, compressing at most once per content.

        The sharded executor's A-side source form: row blocks slice out of
        it in ``O(log nzr + block nnz)``, so an iterative app compresses
        its (unchanged) operand once per session, not once per call."""
        return self._dform("dcsr", DCSR.from_csr, mat, fp)

    def dcsc_of(self, mat: CSR, fp: Optional[Fingerprint] = None) -> DCSC:
        """``DCSC.from_csr(mat)`` (a transpose + compress), memoised per
        content — the sharded executor's B-side source form."""
        return self._dform("dcsc", DCSC.from_csr, mat, fp)

    def _dform(self, kind: str, build, mat: CSR, fp):
        if not self.caching:
            return build(mat)
        fp = self.fingerprint(mat) if fp is None else fp
        key = (kind,) + fp.key
        hit = self._dforms.get(key)
        if hit is not None:
            self._dforms.move_to_end(key)
            self.shard_form_hits += 1
            return hit
        form = build(mat)
        self.shard_form_misses += 1
        self._dforms[key] = form
        while len(self._dforms) > self._csc_cache_size:
            self._dforms.popitem(last=False)
        return form

    # -- block digests / delta state (repro.engine.delta) --------------
    def block_digests(
        self,
        mat: CSR,
        *,
        fp: Optional[Fingerprint] = None,
        values: bool = True,
        block_rows: Optional[int] = None,
    ):
        """Chunked digest vector of ``mat``
        (:func:`repro.sparse.block_digests`), memoised per content — the
        delta engine digests each operand content at most once, so the
        unchanged side of a diff costs one LRU lookup."""
        from ..sparse.diff import DELTA_BLOCK_ROWS, block_digests

        br = DELTA_BLOCK_ROWS if block_rows is None else int(block_rows)
        if not self.caching:
            return block_digests(mat, block_rows=br, values=values)
        fp = self.fingerprint(mat) if fp is None else fp
        key = ((fp.key if values else fp.structure_key), br, values)
        hit = self._digests.get(key)
        if hit is not None:
            self._digests.move_to_end(key)
            return hit
        vec = block_digests(mat, block_rows=br, values=values)
        self._digests[key] = vec
        while len(self._digests) > self._fp_cache_size:
            self._digests.popitem(last=False)
        return vec

    def _delta_get(self, slot: tuple):
        state = self._delta.get(slot)
        if state is not None:
            self._delta.move_to_end(slot)
        return state

    def _delta_store(self, slot: tuple, state) -> None:
        self._delta[slot] = state
        self._delta.move_to_end(slot)
        while len(self._delta) > self._delta_cache_size:
            self._delta.popitem(last=False)

    # -- symbolic bounds -----------------------------------------------
    def one_phase_bound(self, a: CSR, b: CSR, mask: CSR, *, complement: bool):
        """Cached :func:`repro.core.symbolic.one_phase_bound` (pure
        structure function, charges no counters)."""
        from ..core.symbolic import one_phase_bound

        if not self.caching:
            return one_phase_bound(a, b, mask, complement=complement)
        key = self._bound_key("1p", a, b, mask, complement)
        hit = self._bounds.get(key)
        if hit is not None:
            self._bounds.move_to_end(key)
            self.bound_cache_hits += 1
            return hit
        result = one_phase_bound(a, b, mask, complement=complement)
        self.bound_cache_misses += 1
        self._store_bound(key, result)
        return result

    def symbolic_bounds(
        self,
        a: CSR,
        b: CSR,
        mask: CSR,
        *,
        complement: bool,
        counter: Optional[OpCounter] = None,
    ) -> np.ndarray:
        """Cached :func:`repro.core.symbolic.symbolic_masked`.

        The sweep's counter charges are recorded on the first run and
        *replayed* into ``counter`` on every hit, so a sessioned run
        reports exactly the ``symbolic_flops`` a sessionless run would."""
        from ..core.symbolic import symbolic_masked

        if not self.caching:
            return symbolic_masked(a, b, mask, complement=complement,
                                   counter=counter)
        key = self._bound_key("2p", a, b, mask, complement)
        hit = self._bounds.get(key)
        if hit is not None:
            self._bounds.move_to_end(key)
            self.bound_cache_hits += 1
            row_nnz, charged = hit
            if counter is not None:
                counter.merge(charged)
            return row_nnz
        charged = OpCounter()
        row_nnz = symbolic_masked(a, b, mask, complement=complement,
                                  counter=charged)
        if counter is not None:
            counter.merge(charged)
        self.bound_cache_misses += 1
        self._store_bound(key, (row_nnz, charged))
        return row_nnz

    def _bound_key(self, kind: str, a, b, mask, complement: bool) -> tuple:
        return (
            kind,
            self.fingerprint(a).structure_key,
            self.fingerprint(b).structure_key,
            self.fingerprint(mask).structure_key,
            bool(complement),
        )

    def _store_bound(self, key: tuple, value) -> None:
        self._bounds[key] = value
        while len(self._bounds) > self._bound_cache_size:
            self._bounds.popitem(last=False)

    # -- segment registry ----------------------------------------------
    @property
    def segment_cache(self):
        """The session's :class:`~repro.parallel.segment_cache.SegmentCache`
        (created on first process-backend use)."""
        if self._segments is None:
            from ..parallel.segment_cache import SegmentCache

            kwargs = {}
            if self._segment_cache_bytes is not None:
                kwargs["max_bytes"] = int(self._segment_cache_bytes)
            self._segments = SegmentCache(**kwargs)
        return self._segments

    # -- telemetry -----------------------------------------------------
    def stats(self) -> dict:
        """Flat reuse-counter dict (the ``"session"`` key of ``metrics()``)."""
        out = {
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "csc_cache_hits": self.csc_cache_hits,
            "csc_cache_misses": self.csc_cache_misses,
            "shard_form_hits": self.shard_form_hits,
            "shard_form_misses": self.shard_form_misses,
            "bound_cache_hits": self.bound_cache_hits,
            "bound_cache_misses": self.bound_cache_misses,
            "fused_numeric_hits": self.fused_numeric_hits,
            "fingerprint_digests": self.fingerprint_digests,
            "delta_hits": self.delta_hits,
            "delta_patches": self.delta_patches,
            "delta_fallbacks": self.delta_fallbacks,
            "segments_reused": 0,
            "segments_published": 0,
            "values_republished": 0,
            "bytes_published": 0,
            "bytes_republished": 0,
            "cached_entries": 0,
            "cached_bytes": 0,
        }
        if self._segments is not None:
            out.update(self._segments.stats())
        return out

    def metrics(self) -> dict:
        """Session stats plus the persistent kernel-arena telemetry (the
        scratch leases already live for the process lifetime; the session
        surfaces them next to its own reuse counters), the process pool's
        gauges, and — when a :mod:`repro.observe.runtime` sampler is
        installed — its drift-ready summary under ``"runtime"``."""
        from ..core.kernels.arena import arena_stats
        from ..observe import runtime as _runtime
        from ..parallel.pool import pool_stats

        sampler = _runtime.current()
        return {
            "session": self.stats(),
            "arena": arena_stats(),
            "pool": pool_stats(),
            "runtime": sampler.summary() if sampler is not None else {},
        }

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Release everything the session keeps alive — most importantly
        the shared-memory segments.  Idempotent; the session stays usable
        afterwards (cold)."""
        if self._segments is not None:
            self._segments.close()
            self._segments = None
        self._plans.clear()
        self._fps.clear()
        self._cscs.clear()
        self._dforms.clear()
        self._bounds.clear()
        self._digests.clear()
        self._delta.clear()

    def __enter__(self) -> "ExecutionSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def resolve_session(session, *, auto: bool = True, machine=None):
    """Normalise an app-level ``session`` argument.

    Returns ``(session_or_None, owned)``: ``None`` opens a fresh session
    when ``auto`` (the app closes it — ``owned=True``), ``False`` disables
    sessions entirely, and an :class:`ExecutionSession` instance is used
    as-is (the caller keeps ownership).
    """
    if session is False or (session is None and not auto):
        return None, False
    if session is None:
        return ExecutionSession(machine=machine), True
    return session, False
