"""Span-based tracer for the whole execution stack.

The paper's analysis attributes performance to *where the time goes* —
symbolic vs numeric phase (Section 4.4), per-accumulator and per-thread
breakdowns (Figures 8/12/16) — so the reproduction needs one instrument
that sees every layer: the planner's decisions, the engine's bands, the
parallel backends' partitions (including worker *processes*), and the
kernels themselves.  This module is that instrument.

Design constraints, in order:

1. **Tracing off must be free.**  Every instrumented call site performs
   exactly one module-attribute check (``_INSTALLED is None``) and
   allocates nothing on the disabled path.  The kernel micro-benchmarks
   bound the overhead at <2% (``tests/test_observe.py``).
2. **Spans nest and cross threads.**  Each thread keeps its own open-span
   stack (``threading.local``); finished spans are appended to one shared
   list under a lock, labelled with ``(pid, tid)`` so per-thread timelines
   reconstruct exactly.
3. **Spans cross processes.**  A worker in the shared-memory pool installs
   its own :class:`Tracer`, runs its partition, and ships the finished
   spans back as plain dicts next to its COO payload
   (:mod:`repro.parallel.pool`); the coordinator's tracer *ingests* them
   onto its own timeline.  ``time.perf_counter`` is ``CLOCK_MONOTONIC`` on
   Linux — system-wide, so coordinator and worker timestamps are directly
   comparable (on platforms where it is per-process the worker spans still
   carry correct durations and pid labels, only their absolute placement
   shifts).
4. **Counters attach to spans.**  A span opened with a ``counter=`` takes
   an :class:`~repro.machine.OpCounter` snapshot on entry and stores the
   *delta* on exit, so per-phase operation totals (the paper's work
   decomposition) ride along with the wall times.

Exporters live in :mod:`repro.observe.exporters`; the human-readable
modeled-vs-measured report in :mod:`repro.observe.report`.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional

from . import probes as _probes

__all__ = [
    "Span",
    "Tracer",
    "current",
    "set_tracer",
    "tracing",
    "span",
    "timed_span",
    "traced_kernel",
    "NULL_SPAN",
]


class Span:
    """One finished span: a named, attributed ``[t0, t1)`` interval."""

    __slots__ = (
        "span_id", "parent_id", "name", "t0", "t1",
        "attrs", "pid", "tid", "counters",
    )

    def __init__(self, span_id, parent_id, name, t0, t1, attrs, pid, tid, counters):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.t0 = t0
        self.t1 = t1
        self.attrs = attrs
        self.pid = pid
        self.tid = tid
        self.counters = counters

    @property
    def seconds(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> dict:
        """Plain-dict form — what crosses the process boundary."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": self.attrs,
            "pid": self.pid,
            "tid": self.tid,
            "counters": self.counters,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, {self.seconds * 1e3:.3f}ms, pid={self.pid})"


class _LiveSpan:
    """Context manager for an open span (internal)."""

    __slots__ = ("_tracer", "name", "attrs", "_counter", "_snap",
                 "span_id", "parent_id", "t0", "seconds")

    def __init__(self, tracer: "Tracer", name: str, attrs, counter):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs if attrs is not None else {}
        self._counter = counter
        self._snap = None
        self.span_id = 0
        self.parent_id = None
        self.t0 = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "_LiveSpan":
        tr = self._tracer
        stack = tr._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = next(tr._ids)
        stack.append(self)
        if self._counter is not None:
            self._snap = self._counter.snapshot()
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        self.seconds = t1 - self.t0
        tr = self._tracer
        stack = tr._stack()
        # pop ourselves even if inner code misbehaved and left entries above
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        counters = None
        if self._counter is not None:
            counters = self._counter.diff(self._snap)
        attrs = self.attrs
        if exc_type is not None:
            attrs = dict(attrs)
            attrs["error"] = exc_type.__name__
        tr._record(
            Span(
                self.span_id, self.parent_id, self.name, self.t0, t1,
                attrs, tr.pid, threading.get_ident(), counters,
            )
        )
        return False


class _NullSpan:
    """Shared no-op span: the disabled-tracing path allocates nothing."""

    __slots__ = ()
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans from every thread of this process (and, via
    :meth:`ingest`, from worker processes)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._local = threading.local()
        self._ids = itertools.count(1)
        self.pid = os.getpid()

    # ------------------------------------------------------------------
    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None,
             counter=None) -> _LiveSpan:
        """Open a span; use as a context manager."""
        return _LiveSpan(self, name, attrs, counter)

    def _stack(self) -> list:
        st = getattr(self._local, "stack", None)
        if st is None:
            st = self._local.stack = []
        return st

    def _record(self, sp: Span) -> None:
        with self._lock:
            self._spans.append(sp)

    def depth(self) -> int:
        """Open-span depth of the calling thread (0 = no open span)."""
        return len(self._stack())

    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """Finished spans, in completion order (children before parents)."""
        with self._lock:
            return list(self._spans)

    def span_count(self) -> int:
        """Number of finished spans — a gauge read, no copy.

        The runtime sampler derives its spans-per-second series from
        deltas of this; ``len`` of a list is atomic under the GIL, so no
        lock is needed for a monotone counter read.
        """
        return len(self._spans)

    def export(self) -> List[dict]:
        """Finished spans as plain dicts — picklable, JSON-able."""
        return [sp.as_dict() for sp in self.spans]

    def ingest(self, records: List[dict]) -> None:
        """Merge spans exported by another tracer (typically a worker
        process) onto this timeline.

        Span ids are remapped so they cannot collide with local ids;
        parent links *within* the ingested batch are preserved.  The
        records keep their original ``pid``/``tid`` labels — that is the
        point: the merged trace shows which worker did what, when.
        """
        remap: Dict[int, int] = {}
        fresh: List[Span] = []
        for rec in records:
            new_id = next(self._ids)
            remap[rec["span_id"]] = new_id
            fresh.append(
                Span(
                    new_id,
                    rec["parent_id"],  # fixed up below
                    rec["name"],
                    rec["t0"],
                    rec["t1"],
                    rec.get("attrs") or {},
                    rec["pid"],
                    rec["tid"],
                    rec.get("counters"),
                )
            )
        for sp in fresh:
            sp.parent_id = remap.get(sp.parent_id)
        with self._lock:
            self._spans.extend(fresh)

    # ------------------------------------------------------------------
    # convenience: delegate to the exporters without extra imports
    def to_chrome(self) -> dict:
        from .exporters import chrome_trace

        return chrome_trace(self)

    def to_metrics(self, *, machine=None) -> dict:
        from .exporters import metrics

        return metrics(self, machine=machine)

    def report(self, plan=None) -> str:
        from .report import report

        return report(self, plan=plan)


# ----------------------------------------------------------------------
# the installed tracer (module global: one attribute read on the hot path)
# ----------------------------------------------------------------------
_INSTALLED: Optional[Tracer] = None


def current() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _INSTALLED


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or with ``None``, uninstall) the process tracer; returns
    the previously installed one so callers can restore it."""
    global _INSTALLED
    prev = _INSTALLED
    _INSTALLED = tracer
    return prev


@contextmanager
def tracing(tracer: Optional[Tracer] = None):
    """``with tracing() as tr:`` — enable tracing for the block.

    Everything the block executes (engine, backends, kernels, apps) records
    spans into ``tr``; the previous tracer (usually none) is restored on
    exit, even on error.
    """
    tr = tracer if tracer is not None else Tracer()
    prev = set_tracer(tr)
    try:
        yield tr
    finally:
        set_tracer(prev)


def span(name: str, attrs: Optional[Dict[str, Any]] = None, counter=None):
    """A span on the installed tracer, or the shared no-op span.

    For *cold* call sites (apps, engine setup).  Hot paths should check
    :func:`current` themselves so attribute dicts are not even built when
    tracing is off — see :func:`traced_kernel` for the pattern.
    """
    tr = _INSTALLED
    if tr is None:
        return NULL_SPAN
    return tr.span(name, attrs, counter)


class timed_span:
    """A span that *always* measures wall time, traced or not.

    The apps need stage durations for their result objects
    (``spgemm_seconds`` etc.) regardless of tracing; this wrapper times the
    block with ``perf_counter`` and additionally records a real span when a
    tracer is installed — one code path instead of the old ad-hoc
    ``time.perf_counter()`` bookkeeping.  Read ``.seconds`` after the
    ``with`` block.
    """

    __slots__ = ("name", "attrs", "counter", "seconds", "_live", "_t0")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None,
                 counter=None) -> None:
        self.name = name
        self.attrs = attrs
        self.counter = counter
        self.seconds = 0.0
        self._live = None
        self._t0 = 0.0

    def __enter__(self) -> "timed_span":
        tr = _INSTALLED
        if tr is not None:
            self._live = tr.span(self.name, self.attrs, self.counter)
            self._live.__enter__()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._t0
        if self._live is not None:
            self._live.__exit__(exc_type, exc, tb)
            self._live = None
        return False


def traced_kernel(algo: str) -> Callable:
    """Decorator giving a fast kernel a ``kernel.<algo>`` span.

    The wrapper is the kernels' disabled-path contract made concrete: one
    global read, and when no tracer is installed the kernel is entered
    directly — no dict, no context manager, nothing.  When tracing is on,
    the span carries the operand statistics the paper's per-kernel
    breakdowns need plus the kernel's :class:`OpCounter` delta; when probe
    histograms (:mod:`repro.observe.probes`) are *also* enabled, the span
    additionally carries this call's probe deltas under ``attrs["probes"]``
    (attrs are serialized at span exit, so mutating the dict inside the
    span is the supported way to attach results).  The undecorated kernel
    stays reachable as ``fn.__wrapped__`` (the overhead test times both).
    """

    def deco(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(a, b, mask, **kwargs):
            tr = _INSTALLED
            if tr is None:
                return fn(a, b, mask, **kwargs)
            attrs = {
                "algo": algo,
                "phase": "numeric",
                "rows": a.nrows,
                "nnz_a": a.nnz,
                "nnz_b": b.nnz,
                "nnz_mask": mask.nnz,
                "complement": bool(kwargs.get("complement", False)),
            }
            if "batch" in kwargs:
                attrs["batch"] = kwargs["batch"]
            pr = _probes._INSTALLED
            snap = pr.snapshot() if pr is not None else None
            with tr.span("kernel." + algo, attrs, counter=kwargs.get("counter")):
                out = fn(a, b, mask, **kwargs)
                if pr is not None:
                    delta = pr.diff(snap)
                    if delta:
                        attrs["probes"] = delta
                return out

        return wrapper

    return deco
