"""Human-readable trace report: the plan's *why* next to the measured *what*.

:func:`report` interleaves an :class:`~repro.engine.ExecutionPlan`
explanation with the measured span tree, then closes with a
modeled-vs-measured comparison per planner decision — the gap the paper's
model-validation experiments quantify, surfaced per run instead of per
paper figure.  When micro-telemetry probes were enabled
(:mod:`repro.observe.probes`), a per-accumulator section summarizes each
histogram (count / mean / max plus the populated power-of-two buckets).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from . import probes as _probes
from . import runtime as _runtime
from .exporters import _batch_census, _shard_census
from .ledger import format_predictions, predictions
from .probes import BUCKET_LABELS

__all__ = ["report", "format_span_tree", "format_probes"]

#: counters worth echoing inline (the high-signal subset)
_KEY_COUNTERS = ("flops", "symbolic_flops", "output_nnz")


def format_span_tree(spans: List, *, main_pid: Optional[int] = None) -> str:
    """Indented per-(pid, tid) span tree, children under parents."""
    by_id = {sp.span_id: sp for sp in spans}
    children: Dict[Optional[int], list] = {}
    for sp in spans:
        parent = sp.parent_id if sp.parent_id in by_id else None
        children.setdefault(parent, []).append(sp)
    for kids in children.values():
        kids.sort(key=lambda s: s.t0)

    lines: List[str] = []

    def emit(sp, depth: int) -> None:
        extras = []
        for key in ("algo", "phase", "backend", "partition", "band", "rows",
                    "iteration", "depth"):
            if key in sp.attrs:
                extras.append(f"{key}={sp.attrs[key]}")
        if sp.counters:
            for key in _KEY_COUNTERS:
                if key in sp.counters:
                    extras.append(f"{key}={sp.counters[key]}")
        suffix = ("  [" + " ".join(extras) + "]") if extras else ""
        lines.append(
            f"  {'  ' * depth}{sp.name:<24s} {sp.seconds * 1e3:9.3f} ms{suffix}"
        )
        for kid in children.get(sp.span_id, ()):
            emit(kid, depth + 1)

    roots = children.get(None, [])
    tracks = sorted({(sp.pid, sp.tid) for sp in roots})
    for pid, tid in tracks:
        label = "coordinator" if main_pid is not None and pid == main_pid \
            else f"worker pid={pid}"
        lines.append(f"-- {label} (tid {tid}) " + "-" * 20)
        for sp in roots:
            if (sp.pid, sp.tid) == (pid, tid):
                emit(sp, 0)
    return "\n".join(lines)


def format_probes(export: dict) -> str:
    """Render a :meth:`~repro.observe.probes.ProbeRegistry.export` payload
    as an aligned table, one histogram per line, grouped by accumulator
    prefix (``hash.`` / ``msa.`` / ``mca.`` / ``heap.`` / ``mask.``)."""
    lines: List[str] = []
    for name in sorted(export):
        payload = export[name]
        count = int(payload.get("count", 0))
        total = int(payload.get("total", 0))
        vmax = int(payload.get("max", 0))
        mean = total / count if count else 0.0
        populated = [
            f"{BUCKET_LABELS[i]}:{c}"
            for i, c in enumerate(payload.get("buckets", ()))
            if c
        ]
        lines.append(
            f"  {name:<26s} n={count:<10d} mean={mean:8.2f} max={vmax:<8d} "
            + (" ".join(populated) if populated else "(empty)")
        )
    return "\n".join(lines)


def report(tracer, *, plan=None, probes=None, session=None,
           runtime=None) -> str:
    """Render a full trace report (plan, span tree, modeled vs measured,
    and — when a probe registry is installed or passed — the accumulator
    micro-telemetry histograms).  Passing an
    :class:`~repro.engine.ExecutionSession` adds a session-reuse section
    (plan-cache and segment-registry hit rates).

    ``tracer`` may be ``None`` — an *untraced* sessioned run still gets
    its session, pool and runtime telemetry sections, so cache behaviour
    is never invisible outside ``trace()`` blocks.  ``runtime`` may be a
    :class:`~repro.observe.runtime.RuntimeSampler` (default: the installed
    one); when present a "=== runtime ===" block summarises the sampled
    series and the worker fleet.
    """
    if probes is None:
        probes = _probes.current()
    if runtime is None:
        runtime = _runtime.current()
    spans = tracer.spans if tracer is not None else []
    lines: List[str] = []
    if plan is not None:
        lines.append("=== planned ===")
        lines.append(plan.explain())
        lines.append("")
    lines.append(f"=== measured ({len(spans)} spans) ===")
    if spans:
        lines.append(format_span_tree(spans, main_pid=getattr(tracer, "pid", None)))
    else:
        lines.append("  (no spans recorded)")

    if plan is not None and plan.estimates:
        measured = sum(
            sp.seconds for sp in spans if sp.name == "engine.execute"
        )
        if measured > 0.0:
            lines.append("")
            lines.append("=== modeled vs measured ===")
            best = min(plan.estimates.values())
            lines.append(
                f"  engine.execute measured {measured * 1e3:.3f} ms; "
                f"modeled best candidate {best * 1e3:.3f} ms "
                f"({'model optimistic' if best < measured else 'model pessimistic'} "
                f"by {max(measured, best) / max(min(measured, best), 1e-12):.1f}x)"
            )
            for algo, sec in sorted(plan.estimates.items(), key=lambda kv: kv[1]):
                lines.append(f"    candidate {algo:<7s} modeled {sec * 1e3:.3f} ms")

    batch = _batch_census(spans)
    if batch:
        lines.append("")
        lines.append("=== batch census (executed) ===")
        tiers = ", ".join(
            f"{tier}:{rows}" for tier, rows in sorted(batch["rows_by_tier"].items())
        )
        lines.append(f"  rows by tier: {tiers or '(none)'}")
        census = batch["bucket_census"]
        if census:
            top = sorted(census.items(), key=lambda kv: -kv[1])[:6]
            rendered = " ".join(f"2^{b}:{n}" for b, n in top)
            more = f" (+{len(census) - len(top)} more)" if len(census) > len(top) else ""
            lines.append(f"  bucket census: {rendered}{more}")
        if batch["bucket_chunks"]:
            lines.append(f"  bucketed chunks executed: {batch['bucket_chunks']}")

    shards = _shard_census(spans)
    if shards:
        lines.append("")
        lines.append("=== shard census (executed) ===")
        grid = shards.get("grid")
        lines.append(
            f"  grid {grid}  cells={shards.get('cells')} "
            f"nonempty={shards.get('nonempty_cells')} tasks={shards.get('tasks')} "
            f"cell spans={shards.get('cell_spans')}"
        )

    preds = predictions(spans)
    if preds["rows"]:
        lines.append("")
        lines.append("=== prediction ledger (modeled vs measured) ===")
        lines.append(format_predictions(preds))

    if probes is not None:
        export = probes.export() if hasattr(probes, "export") else dict(probes)
        if export:
            lines.append("")
            lines.append("=== accumulator micro-telemetry ===")
            lines.append(format_probes(export))

    if session is not None:
        st = session.stats()
        lines.append("")
        lines.append("=== session reuse ===")
        lines.append(
            f"  plan cache      hits={st['plan_cache_hits']:<8d} "
            f"misses={st['plan_cache_misses']}"
        )
        lines.append(
            f"  csc memo        hits={st['csc_cache_hits']:<8d} "
            f"misses={st['csc_cache_misses']}"
        )
        lines.append(
            f"  symbolic bounds hits={st['bound_cache_hits']:<8d} "
            f"misses={st['bound_cache_misses']}"
        )
        lines.append(
            f"  shm segments    reused={st['segments_reused']:<6d} "
            f"published={st['segments_published']} "
            f"({st['bytes_published']} B fresh, "
            f"{st['bytes_republished']} B value rewrites)"
        )
        lines.append(
            f"  segment cache   entries={st['cached_entries']:<6d} "
            f"bytes={st['cached_bytes']}"
        )
        lines.append(f"  process pool    size={_pool_size()}")

    if runtime is not None:
        summary = runtime.summary()
        lines.append("")
        lines.append("=== runtime ===")
        lines.append(
            f"  sampled {summary['samples']} ticks @ "
            f"{summary['interval_s'] * 1e3:.0f} ms  "
            f"calls={summary['calls_completed']} "
            f"mean cpu={summary['mean_cpu_percent']:.1f}% "
            f"mean spans/s={summary['mean_spans_per_s']:.1f}"
        )
        lines.append(
            f"  peaks: rss={summary['peak_rss_bytes']:.0f} B "
            f"shm={summary['peak_shm_bytes']:.0f} B "
            f"segcache={summary['peak_segcache_bytes']:.0f} B "
            f"inflight={summary['peak_tasks_inflight']:.0f}"
        )
        stale = runtime.stale_workers()
        lines.append(
            f"  workers: {summary['workers_seen']} seen, "
            f"{summary['heartbeats']} heartbeats"
            + (f", STALE pids {stale}" if stale else "")
        )
        for w in runtime.fleet():
            lines.append(
                f"    pid {w['pid']:<8d} rss={w['rss_bytes']:.0f} B "
                f"(peak {w['peak_rss_bytes']:.0f}) cpu={w['cpu_seconds']:.2f} s "
                f"tasks={w['tasks_completed']} forms={w['cached_forms']}"
            )
    return "\n".join(lines)


def _pool_size() -> int:
    from ..parallel.pool import pool_size

    return pool_size()
