"""Traced demo run: R-MAT triangle counting with full-stack tracing.

Usage::

    python -m repro.observe --scale 12 --backend process --out trace-artifacts

Runs one triangle count on an R-MAT graph under the requested backend with
tracing enabled, writes the Chrome trace-event JSON and the flat metrics
JSON into ``--out``, prints the plan-vs-measured report, and cross-checks
the traced run's operation counters bit-for-bit against an untraced serial
run — the acceptance check CI executes and uploads.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..apps import triangle_count_detail
from ..engine import Planner
from ..graphs import relabel_by_degree, rmat
from ..machine import HASWELL, OpCounter
from ..parallel.pool import process_backend_available, shutdown_pool
from . import tracing, write_chrome_trace, write_metrics
from .report import report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.observe")
    parser.add_argument("--scale", type=int, default=12,
                        help="R-MAT scale (2^scale vertices)")
    parser.add_argument("--backend", default="process",
                        choices=("serial", "thread", "process"))
    parser.add_argument("--out", default="trace-artifacts",
                        help="directory for trace + metrics JSON")
    args = parser.parse_args(argv)

    if args.backend == "process" and not process_backend_available():
        print("process backend unavailable on this platform", file=sys.stderr)
        return 2

    g = rmat(args.scale, seed=1)
    low = relabel_by_degree(g.pattern()).tril(-1)
    # the same plan the auto path will build, for the report's plan section
    pl = Planner(HASWELL).plan(low, low, low, backend=args.backend)

    # untraced serial run: the counter/result ground truth
    ref_counter = OpCounter()
    ref = triangle_count_detail(g, algo="auto", backend="serial",
                                counter=ref_counter)
    ref_triangles = ref.triangles

    counter = OpCounter()
    with tracing() as tr:
        res = triangle_count_detail(
            g, algo="auto", backend=args.backend, counter=counter
        )
    if args.backend == "process":
        shutdown_pool()

    os.makedirs(args.out, exist_ok=True)
    trace_path = os.path.join(args.out, "tc_rmat.trace.json")
    metrics_path = os.path.join(args.out, "tc_rmat.metrics.json")
    write_chrome_trace(trace_path, tr)
    write_metrics(metrics_path, tr, machine=HASWELL)

    print(report(tr, plan=pl))
    pids = sorted({sp.pid for sp in tr.spans})
    print(f"\nspans: {len(tr.spans)} across pids {pids}")
    print(f"trace  -> {trace_path}")
    print(f"metrics-> {metrics_path}")

    ok = True
    if res.triangles != ref_triangles:
        print(f"MISMATCH: traced {res.triangles} triangles, "
              f"serial reference {ref_triangles}", file=sys.stderr)
        ok = False
    if counter.as_dict() != ref_counter.as_dict():
        print("MISMATCH: traced-run counters differ from the serial "
              "reference:", file=sys.stderr)
        print(json.dumps({"traced": counter.as_dict(),
                          "serial": ref_counter.as_dict()}, indent=1),
              file=sys.stderr)
        ok = False
    if args.backend == "process" and len(pids) < 3:  # coordinator + 2 workers
        print(f"MISMATCH: expected spans from >=2 worker processes, "
              f"got pids {pids}", file=sys.stderr)
        ok = False
    print("counter totals match the serial reference" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
