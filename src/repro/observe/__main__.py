"""Observability CLI: the traced demo run and the live runtime inspector.

Traced demo (the CI acceptance run)::

    python -m repro.observe --scale 12 --backend process --out trace-artifacts

Runs one triangle count on an R-MAT graph under the requested backend with
tracing enabled, writes the Chrome trace-event JSON and the flat metrics
JSON into ``--out``, prints the plan-vs-measured report, and cross-checks
the traced run's operation counters bit-for-bit against an untraced serial
run.

Live inspector::

    python -m repro.observe top --scale 10 --backend process
    python -m repro.observe top --json --iterations 3 > runtime.ndjson

Drives a sessioned sharded triangle-count workload while a
:class:`~repro.observe.runtime.RuntimeSampler` runs, and refreshes a
terminal dashboard (fleet table, sparkline series, cache/arena gauges)
every sampling interval.  ``--json`` swaps the dashboard for
newline-delimited :meth:`~repro.observe.runtime.RuntimeSampler.snapshot`
dicts — the machine-readable stream CI archives as an artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

from ..apps import triangle_count_detail
from ..engine import Planner
from ..graphs import relabel_by_degree, rmat
from ..machine import HASWELL, OpCounter
from ..parallel.pool import process_backend_available, shutdown_pool
from . import tracing, write_chrome_trace, write_metrics
from .report import report
from .runtime import format_top, sampling


def trace_main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.observe")
    parser.add_argument("--scale", type=int, default=12,
                        help="R-MAT scale (2^scale vertices)")
    parser.add_argument("--backend", default="process",
                        choices=("serial", "thread", "process"))
    parser.add_argument("--out", default="trace-artifacts",
                        help="directory for trace + metrics JSON")
    args = parser.parse_args(argv)

    if args.backend == "process" and not process_backend_available():
        print("process backend unavailable on this platform", file=sys.stderr)
        return 2

    g = rmat(args.scale, seed=1)
    low = relabel_by_degree(g.pattern()).tril(-1)
    # the same plan the auto path will build, for the report's plan section
    pl = Planner(HASWELL).plan(low, low, low, backend=args.backend)

    # untraced serial run: the counter/result ground truth
    ref_counter = OpCounter()
    ref = triangle_count_detail(g, algo="auto", backend="serial",
                                counter=ref_counter)
    ref_triangles = ref.triangles

    counter = OpCounter()
    with tracing() as tr:
        res = triangle_count_detail(
            g, algo="auto", backend=args.backend, counter=counter
        )
    if args.backend == "process":
        shutdown_pool()

    os.makedirs(args.out, exist_ok=True)
    trace_path = os.path.join(args.out, "tc_rmat.trace.json")
    metrics_path = os.path.join(args.out, "tc_rmat.metrics.json")
    write_chrome_trace(trace_path, tr)
    write_metrics(metrics_path, tr, machine=HASWELL)

    print(report(tr, plan=pl))
    pids = sorted({sp.pid for sp in tr.spans})
    print(f"\nspans: {len(tr.spans)} across pids {pids}")
    print(f"trace  -> {trace_path}")
    print(f"metrics-> {metrics_path}")

    ok = True
    if res.triangles != ref_triangles:
        print(f"MISMATCH: traced {res.triangles} triangles, "
              f"serial reference {ref_triangles}", file=sys.stderr)
        ok = False
    if counter.as_dict() != ref_counter.as_dict():
        print("MISMATCH: traced-run counters differ from the serial "
              "reference:", file=sys.stderr)
        print(json.dumps({"traced": counter.as_dict(),
                          "serial": ref_counter.as_dict()}, indent=1),
              file=sys.stderr)
        ok = False
    if args.backend == "process" and len(pids) < 3:  # coordinator + 2 workers
        print(f"MISMATCH: expected spans from >=2 worker processes, "
              f"got pids {pids}", file=sys.stderr)
        ok = False
    print("counter totals match the serial reference" if ok else "FAILED")
    return 0 if ok else 1


def top_main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.observe top")
    parser.add_argument("--scale", type=int, default=10,
                        help="R-MAT scale of the driven workload")
    parser.add_argument("--backend", default="process",
                        choices=("serial", "thread", "process"))
    parser.add_argument("--shards", type=int, nargs=2, default=(2, 2),
                        metavar=("R", "C"),
                        help="shard grid of the driven workload")
    parser.add_argument("--iterations", type=int, default=0,
                        help="sessioned TC calls to drive (0 = by --duration)")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="seconds to drive when --iterations is 0")
    parser.add_argument("--interval", type=float, default=0.25,
                        help="sampling + refresh interval in seconds")
    parser.add_argument("--json", action="store_true",
                        help="stream newline-delimited snapshots instead of "
                             "the dashboard")
    args = parser.parse_args(argv)

    backend = args.backend
    if backend == "process" and not process_backend_available():
        print("process backend unavailable; driving the thread backend",
              file=sys.stderr)
        backend = "thread"

    from ..core import masked_spgemm
    from ..engine import ExecutionSession
    from ..semiring import PLUS_PAIR

    g = rmat(args.scale, seed=1)
    low = relabel_by_degree(g.pattern()).tril(-1)
    errors: list = []
    stop = threading.Event()

    def drive() -> None:
        # the sharded sessioned TC workload (docs/sharding.md): dozens of
        # pool tasks per call, so every series — shm, queue depth, worker
        # heartbeats, segment-cache occupancy — has something to show
        try:
            with ExecutionSession() as session:
                t0 = time.perf_counter()
                i = 0
                while not stop.is_set():
                    masked_spgemm(
                        low, low, low, algo="msa",
                        shards=tuple(args.shards), backend=backend,
                        semiring=PLUS_PAIR, session=session,
                    )
                    i += 1
                    if args.iterations and i >= args.iterations:
                        break
                    if (not args.iterations
                            and time.perf_counter() - t0 >= args.duration):
                        break
        except Exception as exc:  # surfaced after the render loop
            errors.append(exc)

    worker = threading.Thread(target=drive, name="repro-top-workload")
    with sampling(interval_s=args.interval) as rt:
        worker.start()
        try:
            while worker.is_alive():
                worker.join(timeout=args.interval)
                if args.json:
                    print(json.dumps(rt.snapshot()), flush=True)
                else:
                    # ANSI clear + home, like top(1); harmless when piped
                    sys.stdout.write("\x1b[2J\x1b[H" + format_top(rt) + "\n")
                    sys.stdout.flush()
        except KeyboardInterrupt:
            stop.set()
            worker.join()
        # one final frame after the workload ends, with the last sample
        rt.sample_once()
        if args.json:
            print(json.dumps(rt.snapshot()), flush=True)
        else:
            print(format_top(rt))
    if backend == "process":
        shutdown_pool()
    if errors:
        print(f"workload failed: {errors[0]!r}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "top":
        return top_main(argv[1:])
    return trace_main(argv)


if __name__ == "__main__":
    sys.exit(main())
