"""Trace exporters: Chrome trace-event JSON and a flat metrics summary.

Two machine-readable views of one :class:`~repro.observe.Tracer`:

* :func:`chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev.  Every span becomes a
  complete ("X") event on its ``(pid, tid)`` track, with its attributes and
  counter deltas under ``args``; worker processes get named tracks via
  metadata events, so the coordinator/worker decomposition of a
  process-backend run is visible at a glance.
* :func:`metrics` — a flat JSON-able dict: wall seconds aggregated by span
  name and by phase (symbolic/numeric — the paper's Section 4.4 split),
  operation-counter totals summed over *leaf* instrumentation (kernel and
  symbolic-sweep spans, which partition the work without double counting),
  a bytes-moved estimate from the machine model's word accounting, and —
  when micro-telemetry probes (:mod:`repro.observe.probes`) were enabled —
  the accumulator probe histograms under ``"probes"``.

Timestamps are ``perf_counter`` seconds; Chrome wants microseconds and only
relative placement matters, so the export rebases to the earliest span.
"""

from __future__ import annotations

import json
from typing import Dict, List

from . import probes as _probes
from . import runtime as _runtime
from .ledger import predictions as _predictions

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "chrome_trace",
    "metrics",
    "estimated_bytes_moved",
    "write_chrome_trace",
    "write_metrics",
]

#: version of the :func:`metrics` dict layout; bumped whenever a key is
#: renamed/removed or its meaning changes (additions do not bump it), so
#: downstream consumers of archived metrics JSON can dispatch on it
METRICS_SCHEMA_VERSION = 1

#: span-name prefixes whose counter deltas partition the counted work:
#: every operation is charged inside exactly one of these spans, so summing
#: them reproduces the whole-run counter totals without double counting
#: (enclosing spans like ``engine.execute`` see the same operations again).
LEAF_PREFIXES = ("kernel.", "spgemm.symbolic")

_WORD_BYTES = 8  # one index or value word, as in the paper's traffic analysis


def _spans(tracer_or_spans) -> list:
    """Span list of a tracer / span sequence; ``None`` (no tracer was ever
    enabled) exports as cleanly as an empty trace."""
    if tracer_or_spans is None:
        return []
    spans = getattr(tracer_or_spans, "spans", tracer_or_spans)
    return list(spans)


def chrome_trace(tracer_or_spans) -> dict:
    """Trace Event Format dict (``json.dump`` it, load in Perfetto)."""
    spans = _spans(tracer_or_spans)
    base = min((sp.t0 for sp in spans), default=0.0)
    events: List[dict] = []
    seen_tracks = set()
    main_pid = getattr(tracer_or_spans, "pid", None)
    for sp in spans:
        if sp.pid not in seen_tracks:
            seen_tracks.add(sp.pid)
            label = (
                "coordinator" if main_pid is not None and sp.pid == main_pid
                else f"worker pid={sp.pid}"
            )
            events.append(
                {"ph": "M", "name": "process_name", "pid": sp.pid, "tid": 0,
                 "args": {"name": label}}
            )
        args = dict(sp.attrs)
        if sp.counters:
            args["counters"] = dict(sp.counters)
        events.append(
            {
                "name": sp.name,
                "cat": sp.name.split(".", 1)[0],
                "ph": "X",
                "ts": (sp.t0 - base) * 1e6,
                "dur": (sp.t1 - sp.t0) * 1e6,
                "pid": sp.pid,
                "tid": sp.tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def estimated_bytes_moved(counter_totals: Dict[str, int], machine=None) -> int:
    """Machine-model estimate of memory traffic for given counter totals.

    Word accounting in the spirit of Section 4: each evaluated product
    reads two operand words and each accumulator/mask/heap interaction
    touches one word; output nonzeros cost an index and a value word.  This
    is the same *count-to-traffic* substitution the cost model makes — an
    estimate for trend reading, not a hardware measurement (the real
    per-line traffic depends on locality, which
    :mod:`repro.machine.cache` simulates separately).
    """
    g = counter_totals.get
    words = (
        2 * g("flops", 0)
        + g("symbolic_flops", 0)
        + g("accum_inserts", 0)
        + g("accum_removes", 0)
        + g("accum_init", 0)
        + g("spa_resets", 0)
        + g("hash_probes", 0)
        + g("mask_scans", 0)
        + g("heap_pushes", 0)
        + g("heap_pops", 0)
        + 2 * g("output_nnz", 0)
    )
    word_bytes = _WORD_BYTES
    if machine is not None:
        # round traffic up to whole cache lines per word-burst, the
        # pessimistic end of the model's line-granularity assumption
        word_bytes = max(_WORD_BYTES, machine.line_bytes // 8)
    return int(words) * word_bytes


def metrics(tracer_or_spans, *, machine=None, probes=None, session=None,
            runtime=None) -> dict:
    """Flat metrics summary of a trace (see module docs).

    ``tracer_or_spans`` may be ``None`` (tracing was never enabled): the
    summary still carries its schema version plus whatever probe, session
    and runtime telemetry exists — observability outside ``trace()``
    blocks, not an error.

    ``probes`` may be a :class:`~repro.observe.probes.ProbeRegistry`; when
    omitted, the currently installed registry (if any) is used, so a
    ``with probing(): ... metrics(tr)`` block does the right thing.  The
    export lands under the ``"probes"`` key ({} when disabled), keyed by
    histogram name with power-of-two bucket counts plus exact
    count/total/max — see ``docs/observability.md`` for the schema.

    ``session`` may be an :class:`~repro.engine.ExecutionSession`; its
    cache telemetry (plan / CSC / bound hit counts, segment reuse and
    republished bytes) lands under the ``"session"`` key ({} when absent)
    — see ``docs/sessions.md``.

    ``runtime`` may be a :class:`~repro.observe.runtime.RuntimeSampler`;
    when omitted, the installed sampler (if any) is used.  Its ring-buffer
    export — RSS/shm/queue-depth series, worker heartbeat series, the
    drift-ready summary — lands under the ``"runtime"`` key ({} when no
    sampler ran).
    """
    if probes is None:
        probes = _probes.current()
    if runtime is None:
        runtime = _runtime.current()
    spans = _spans(tracer_or_spans)
    by_name: Dict[str, dict] = {}
    by_phase: Dict[str, float] = {}
    totals: Dict[str, int] = {}
    pids = set()
    for sp in spans:
        pids.add(sp.pid)
        agg = by_name.setdefault(sp.name, {"count": 0, "seconds": 0.0})
        agg["count"] += 1
        agg["seconds"] += sp.seconds
        phase = sp.attrs.get("phase")
        if phase is not None:
            by_phase[phase] = by_phase.get(phase, 0.0) + sp.seconds
        if sp.counters and any(sp.name.startswith(p) for p in LEAF_PREFIXES):
            for k, v in sp.counters.items():
                totals[k] = totals.get(k, 0) + v
    wall = 0.0
    if spans:
        wall = max(sp.t1 for sp in spans) - min(sp.t0 for sp in spans)
    return {
        "schema_version": METRICS_SCHEMA_VERSION,
        "batch": _batch_census(spans),
        "shards": _shard_census(spans),
        "predictions": _predictions(spans, machine=machine),
        "span_count": len(spans),
        "process_count": len(pids),
        "wall_seconds": wall,
        "seconds_by_name": by_name,
        "seconds_by_phase": by_phase,
        "counter_totals": totals,
        "bytes_moved_estimate": estimated_bytes_moved(totals, machine),
        "machine": getattr(machine, "name", None),
        "probes": probes.export() if probes is not None else {},
        "session": session.stats() if session is not None else {},
        "runtime": runtime.export() if runtime is not None else {},
    }


def _batch_census(spans) -> dict:
    """Batch tier + bucket census aggregated over the run's band spans.

    ``explain()`` shows the *planned* tiers; this is the executed view —
    which bands ran bucketed vs per-row and the size-class census of the
    bucketed ones (union over bands, rows per power-of-two bucket).
    """
    bands: List[dict] = []
    buckets: Dict[int, int] = {}
    tier_rows: Dict[str, int] = {}
    for sp in spans:
        if sp.name != "engine.band":
            continue
        a = sp.attrs
        tier = a.get("batch", "auto")
        rows = int(a.get("rows", 0) or 0)
        bands.append(
            {
                "band": a.get("band"),
                "algo": a.get("algo"),
                "batch": tier,
                "rows": rows,
                "buckets": dict(a.get("buckets") or {}),
            }
        )
        tier_rows[tier] = tier_rows.get(tier, 0) + rows
        for bid, n in (a.get("buckets") or {}).items():
            buckets[int(bid)] = buckets.get(int(bid), 0) + int(n)
    chunk_count = sum(1 for sp in spans if sp.name == "kernel.bucket")
    if not bands and not chunk_count:
        return {}
    return {
        "bands": bands,
        "rows_by_tier": tier_rows,
        "bucket_census": {str(k): buckets[k] for k in sorted(buckets)},
        "bucket_chunks": chunk_count,
    }


def _shard_census(spans) -> dict:
    """Shard-grid census: the executed grid plus per-cell span counts."""
    for sp in spans:
        if sp.name != "engine.shard":
            continue
        a = sp.attrs
        return {
            "grid": a.get("grid"),
            "cells": a.get("cells"),
            "nonempty_cells": a.get("nonempty_cells"),
            "tasks": a.get("tasks"),
            "backend": a.get("backend"),
            "cell_spans": sum(1 for s in spans if s.name == "parallel.shard"),
        }
    return {}


def write_chrome_trace(path, tracer_or_spans) -> None:
    """Write :func:`chrome_trace` output as JSON."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer_or_spans), fh, indent=1, default=_jsonable)


def write_metrics(path, tracer_or_spans, *, machine=None, probes=None,
                  session=None) -> None:
    """Write :func:`metrics` output as JSON."""
    with open(path, "w") as fh:
        json.dump(metrics(tracer_or_spans, machine=machine, probes=probes,
                          session=session),
                  fh, indent=1, default=_jsonable)


def _jsonable(obj):
    """Fallback serializer: NumPy scalars and stray objects to JSON."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    return str(obj)
