"""Prediction ledger: the modeled→measured loop, closed per executed unit.

The planner annotates every :class:`~repro.engine.RowBand` with the cost
model's prediction (``est_cycles``/``est_bytes``); the executors stamp
those predictions — apportioned per shard cell, per batch-bucket chunk —
into the spans the tracer already records on all three backends (worker
spans arrive via :meth:`~repro.observe.Tracer.ingest`, predictions
riding in their attrs).  This module turns a finished trace into
*prediction rows*: one ``(modeled_cycles, modeled_bytes,
measured_seconds, counters, attrs)`` record per executed band, shard
cell, batch bucket and push/pull direction decision, plus a per-kind
misprediction summary (measured/modeled ratio, MAD of the log-ratios, a
systematic-bias flag).

The rows are what :func:`repro.machine.fit.fit_machine` regresses
against; the summary is what ``metrics()["predictions"]`` exports and
``report()`` renders.  Nothing here runs unless a tracer was installed —
the disabled path of the span machinery is the disabled path of the
ledger.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from ..machine.config import MACHINES, MachineConfig

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "PREDICTION_KINDS",
    "prediction_rows",
    "misprediction_summary",
    "predictions",
    "format_predictions",
]

LEDGER_SCHEMA_VERSION = 1

#: span name → ledger row kind.  ``engine.band`` covers the banded
#: (unsharded) path, ``parallel.shard`` the shard-grid cells on every
#: backend, ``kernel.bucket`` the batched tier's size-class chunks and
#: ``app.bfs.level`` the per-iteration push/pull decision.
PREDICTION_KINDS = {
    "engine.band": "band",
    "parallel.shard": "shard-cell",
    "kernel.bucket": "batch-bucket",
    "app.bfs.level": "spmv-direction",
    "engine.delta": "delta-patch",
}

#: coarse per-product cost (cycles/flop beyond the explicit terms) used to
#: model a batch-bucket chunk from its upper-bound flops alone — the chunk
#: span records flops, not a full cost-model breakdown.  Deliberately
#: simple: the misprediction table exists to *show* how wrong this is.
_BUCKET_FLOP_FACTOR = 3.0
_BUCKET_ROW_FACTOR = 4.0

#: median measured/modeled ratio beyond which the model is flagged as
#: systematically biased for a row kind (2x in either direction).
_BIAS_THRESHOLD = 2.0


def _spans(tracer_or_spans) -> list:
    spans = getattr(tracer_or_spans, "spans", tracer_or_spans)
    return list(spans)


def _resolve_machine(spans, machine) -> Optional[MachineConfig]:
    """The machine to convert modeled cycles to seconds with.

    Prefers the explicit argument; otherwise recovers the planning
    machine's name from an ``engine.execute`` span's plan attrs.
    """
    if machine is not None:
        return machine
    for sp in spans:
        if sp.name == "engine.execute":
            plan = sp.attrs.get("plan") or {}
            name = plan.get("machine")
            if name in MACHINES:
                return MACHINES[name]
    return None


def _bucket_cycles(attrs: Dict[str, Any], m: MachineConfig) -> float:
    """Coarse modeled cycles for one batch-bucket chunk."""
    flops = float(attrs.get("flops", 0) or 0)
    rows = float(attrs.get("rows", 0) or 0)
    return (
        flops * (m.flop_cycles + _BUCKET_FLOP_FACTOR * m.hit_cycles)
        + rows * _BUCKET_ROW_FACTOR * m.hit_cycles
    )


def prediction_rows(tracer_or_spans, *, machine=None) -> List[dict]:
    """One prediction row per executed band / shard cell / batch bucket /
    direction decision found in the trace.

    Each row carries the model's prediction next to the measurement::

        {"kind", "key", "algo", "modeled_cycles", "modeled_bytes",
         "modeled_seconds", "measured_seconds", "counters", "pid", "attrs"}

    ``modeled_seconds`` is ``None`` when no machine is known (pass
    ``machine=`` or trace through the engine so the plan's machine name is
    recoverable); rows with no prediction at all (forced bands planned
    without a cost sweep) keep ``modeled_cycles == 0.0`` and are excluded
    from ratio statistics but still counted.
    """
    spans = _spans(tracer_or_spans)
    m = _resolve_machine(spans, machine)
    rows: List[dict] = []
    for sp in spans:
        kind = PREDICTION_KINDS.get(sp.name)
        if kind is None:
            continue
        attrs = sp.attrs
        if kind == "band":
            key = f"band:{attrs.get('band')}"
            cycles = float(attrs.get("est_cycles", 0.0) or 0.0)
            bytes_ = float(attrs.get("est_bytes", 0.0) or 0.0)
        elif kind == "shard-cell":
            cell = attrs.get("cell")
            key = "cell:" + (",".join(str(c) for c in cell) if cell else "?")
            cycles = float(attrs.get("est_cycles", 0.0) or 0.0)
            bytes_ = float(attrs.get("est_bytes", 0.0) or 0.0)
        elif kind == "delta-patch":
            key = f"delta:{attrs.get('rows_recomputed')}"
            cycles = float(attrs.get("est_cycles", 0.0) or 0.0)
            bytes_ = float(attrs.get("est_bytes", 0.0) or 0.0)
        elif kind == "batch-bucket":
            key = f"bucket:{attrs.get('bucket')}"
            cycles = _bucket_cycles(attrs, m) if m is not None else 0.0
            bytes_ = float(attrs.get("flops", 0) or 0) * 16.0
        else:  # spmv-direction
            key = f"level:{attrs.get('level')}"
            chosen = attrs.get("direction")
            cycles = float(
                attrs.get(
                    "est_pull_cycles" if chosen == "pull" else "est_push_cycles",
                    0.0,
                )
                or 0.0
            )
            bytes_ = 0.0
        row = {
            "kind": kind,
            "key": key,
            "algo": attrs.get("algo"),
            "modeled_cycles": cycles,
            "modeled_bytes": bytes_,
            "modeled_seconds": m.seconds(cycles) if m is not None else None,
            "measured_seconds": sp.seconds,
            "counters": dict(sp.counters) if sp.counters else None,
            "pid": sp.pid,
            "attrs": {
                k: v
                for k, v in attrs.items()
                if k
                in (
                    "band", "rows", "reason", "batch", "backend", "bucket",
                    "cell", "direction", "level", "frontier_density",
                    "decision_source", "rows_recomputed", "rows_patched",
                    "dirty_fraction",
                )
            },
        }
        rows.append(row)
    return rows


def misprediction_summary(rows: List[dict]) -> Dict[str, dict]:
    """Per-kind misprediction statistics over prediction rows.

    For every kind with at least one modeled+measured pair: the median
    measured/modeled ratio, the MAD of the log10 ratios, aggregate modeled
    and measured seconds, and a ``bias`` flag — ``"optimistic"`` when the
    model systematically undershoots (median ratio > 2), ``"pessimistic"``
    when it overshoots (median ratio < 0.5), else ``"centered"``.
    """
    by_kind: Dict[str, List[dict]] = {}
    for row in rows:
        by_kind.setdefault(row["kind"], []).append(row)
    out: Dict[str, dict] = {}
    for kind, group in sorted(by_kind.items()):
        ratios = []
        modeled_total = 0.0
        measured_total = 0.0
        for row in group:
            measured_total += row["measured_seconds"]
            ms = row["modeled_seconds"]
            if ms is not None:
                modeled_total += ms
                if ms > 0.0 and row["measured_seconds"] > 0.0:
                    ratios.append(row["measured_seconds"] / ms)
        entry: Dict[str, Any] = {
            "rows": len(group),
            "with_model": len(ratios),
            "measured_seconds": measured_total,
            "modeled_seconds": modeled_total,
        }
        if ratios:
            logs = sorted(math.log10(r) for r in ratios)
            med_log = _median(logs)
            mad = _median([abs(x - med_log) for x in logs])
            median_ratio = 10.0 ** med_log
            if median_ratio > _BIAS_THRESHOLD:
                bias = "optimistic"
            elif median_ratio < 1.0 / _BIAS_THRESHOLD:
                bias = "pessimistic"
            else:
                bias = "centered"
            entry.update(
                ratio_median=median_ratio,
                log10_ratio_mad=mad,
                bias=bias,
            )
        out[kind] = entry
    return out


def _median(values: List[float]) -> float:
    vals = sorted(values)
    n = len(vals)
    mid = n // 2
    if n % 2:
        return vals[mid]
    return 0.5 * (vals[mid - 1] + vals[mid])


def predictions(tracer_or_spans, *, machine=None) -> dict:
    """The full ledger payload: rows + summary (what ``metrics()`` exports
    under ``"predictions"`` and history records persist in summary form)."""
    rows = prediction_rows(tracer_or_spans, machine=machine)
    return {
        "schema_version": LEDGER_SCHEMA_VERSION,
        "rows": rows,
        "summary": misprediction_summary(rows),
    }


def format_predictions(payload: dict) -> str:
    """Render a :func:`predictions` payload as the per-band-type
    misprediction table ``report()`` embeds."""
    summary = payload.get("summary", {})
    if not summary:
        return "  (no prediction rows recorded)"
    lines = [
        f"  {'kind':<14s} {'rows':>5s} {'modeled':>11s} {'measured':>11s} "
        f"{'med ratio':>9s} {'mad(log10)':>10s}  bias"
    ]
    for kind, entry in summary.items():
        modeled = entry.get("modeled_seconds", 0.0)
        measured = entry.get("measured_seconds", 0.0)
        if entry.get("with_model"):
            ratio = f"{entry['ratio_median']:9.2f}"
            mad = f"{entry['log10_ratio_mad']:10.3f}"
            bias = entry["bias"]
        else:
            ratio, mad, bias = f"{'-':>9s}", f"{'-':>10s}", "n/a"
        lines.append(
            f"  {kind:<14s} {entry['rows']:>5d} {modeled * 1e3:9.3f} ms "
            f"{measured * 1e3:9.3f} ms {ratio} {mad}  {bias}"
        )
    return "\n".join(lines)
