"""Accumulator micro-telemetry: fixed-size probe histograms.

The tracer (:mod:`repro.observe.tracer`) sees *where the time goes*; this
module sees *why the accumulators behave the way they do*.  The paper's
regime analysis (Sections 4-5, Figure 7) rests on distributions the scalar
``OpCounter`` totals cannot express: how long the hash accumulator's probe
chains actually get (Section 5.3's load-factor argument), how many mask
elements the heap's INSERT inspects before pushing (Algorithm 5's
``NInspect`` knob), how many MSA/MCA cells a row really touches compared to
``nnz(m)`` (the reset-cost amortisation), and how many mask positions a row
converts into output (mask hit rate).  A :class:`ProbeRegistry` collects
those distributions as fixed-size histograms so a modeled-vs-measured
comparison can say *why* a regime flipped, not just that it did.

Design contract (same as the tracer's, and regression-tested the same way):

1. **Probes off must be (nearly) free.**  Every instrumented call site
   performs one module-attribute check (``_INSTALLED is None``) and
   allocates nothing on the disabled path; the fast kernels additionally
   batch their recordings per *block*, not per element.  The bound is <3%
   wall-clock on the R-MAT triangle-count case (``tests/test_probes.py``).
2. **Histograms are exact in aggregate.**  Each histogram tracks, besides
   its power-of-two bucket counts, the exact ``count`` / ``total`` / ``max``
   of the recorded values — so ``hist("hash.probe_chain").total`` equals
   ``OpCounter.hash_probes`` bit-for-bit (every probe belongs to exactly one
   key's chain), across the serial, thread and process backends.
3. **Histograms cross threads and processes.**  Recording is lock-protected
   per histogram (threads share the installed registry); pool workers
   install a task-local registry and ship its :meth:`~ProbeRegistry.export`
   back with their COO payload, which the coordinator
   :meth:`~ProbeRegistry.ingest`\\ s — mirroring the tracer's span batches.

Bucket layout: bucket ``i`` holds values whose ``bit_length`` is ``i``
(0; 1; 2-3; 4-7; ... ), i.e. bucket boundaries at powers of two, with the
last bucket open-ended.  :data:`NBUCKETS` = 16 covers values up to
``2**14`` exactly and lumps the tail — probe chains, inspection counts and
per-row hit counts all live comfortably below that.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "NBUCKETS",
    "BUCKET_LABELS",
    "Histogram",
    "ProbeRegistry",
    "current",
    "set_probes",
    "probing",
    "bucket_index",
]

#: number of power-of-two buckets per histogram (fixed size: merging and
#: shipping histograms across processes never needs schema negotiation)
NBUCKETS = 16

#: upper bucket boundaries: value v lands in bucket ``bit_length(v)``
#: (clipped), so boundaries sit at 1, 2, 4, 8, ...
_BOUNDS = np.asarray([1 << i for i in range(NBUCKETS - 1)], dtype=np.int64)


def _bucket_label(i: int) -> str:
    if i == 0:
        return "0"
    lo, hi = 1 << (i - 1), (1 << i) - 1
    if i == NBUCKETS - 1:
        return f">={lo}"
    return str(lo) if lo == hi else f"{lo}-{hi}"


BUCKET_LABELS: Tuple[str, ...] = tuple(_bucket_label(i) for i in range(NBUCKETS))


def bucket_index(value: int) -> int:
    """Bucket of a single non-negative value (``bit_length``, clipped)."""
    return min(int(value).bit_length(), NBUCKETS - 1)


class Histogram:
    """One fixed-size histogram plus exact count / total / max.

    The bucket counts give the *shape* of the distribution; ``count``,
    ``total`` and ``vmax`` are exact (no bucketing loss), which is what lets
    cross-checks against ``OpCounter`` totals be bit-for-bit.
    """

    __slots__ = ("counts", "count", "total", "vmax", "_lock")

    def __init__(self) -> None:
        self.counts = [0] * NBUCKETS
        self.count = 0
        self.total = 0
        self.vmax = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def record(self, value: int, repeats: int = 1) -> None:
        """Record ``repeats`` observations of ``value`` (non-negative int)."""
        v = int(value)
        n = int(repeats)
        if n <= 0:
            return
        with self._lock:
            self.counts[min(v.bit_length(), NBUCKETS - 1)] += n
            self.count += n
            self.total += v * n
            if v > self.vmax:
                self.vmax = v

    def record_array(self, values: np.ndarray) -> None:
        """Record a batch of non-negative integer observations (vectorized:
        one ``searchsorted`` + ``bincount`` per call, one lock acquisition)."""
        values = np.asarray(values)
        if values.size == 0:
            return
        bins = np.searchsorted(_BOUNDS, values, side="right")
        per_bucket = np.bincount(bins, minlength=NBUCKETS)
        n = int(values.size)
        tot = int(values.sum())
        mx = int(values.max())
        with self._lock:
            for i in np.flatnonzero(per_bucket):
                self.counts[i] += int(per_bucket[i])
            self.count += n
            self.total += tot
            if mx > self.vmax:
                self.vmax = mx

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "buckets": list(self.counts),
                "count": self.count,
                "total": self.total,
                "max": self.vmax,
            }

    def merge_dict(self, payload: dict) -> None:
        """Fold an exported histogram (possibly from another process, and
        possibly from an older schema with fewer buckets) into this one."""
        buckets = list(payload.get("buckets", ()))[:NBUCKETS]
        with self._lock:
            for i, c in enumerate(buckets):
                self.counts[i] += int(c)
            self.count += int(payload.get("count", 0))
            self.total += int(payload.get("total", 0))
            self.vmax = max(self.vmax, int(payload.get("max", 0)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Histogram(count={self.count}, total={self.total}, "
            f"mean={self.mean:.2f}, max={self.vmax})"
        )


class ProbeRegistry:
    """Named histograms for one run (the probe analogue of :class:`Tracer`)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hists: Dict[str, Histogram] = {}

    def hist(self, name: str) -> Histogram:
        """The histogram named ``name``, created on first use."""
        h = self._hists.get(name)
        if h is None:
            with self._lock:
                h = self._hists.setdefault(name, Histogram())
        return h

    def names(self):
        with self._lock:
            return sorted(self._hists)

    # ------------------------------------------------------------------
    def export(self) -> dict:
        """Plain-dict form — JSON-able, picklable, :meth:`ingest`-able."""
        with self._lock:
            items = list(self._hists.items())
        return {name: h.as_dict() for name, h in items}

    def ingest(self, payload: dict) -> None:
        """Merge an exported registry (typically shipped back by a pool
        worker next to its COO payload) into this one."""
        for name, hist_payload in payload.items():
            self.hist(name).merge_dict(hist_payload)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Tuple[int, int, int]]:
        """Cheap ``{name: (count, total, max)}`` snapshot for :meth:`diff`."""
        with self._lock:
            items = list(self._hists.items())
        return {name: (h.count, h.total, h.vmax) for name, h in items}

    def diff(self, before: Dict[str, Tuple[int, int, int]]) -> dict:
        """Per-histogram ``{"count": dc, "total": dt, "max": m}`` deltas since
        a :meth:`snapshot` — what the tracer attaches to kernel spans."""
        out = {}
        for name, (count, total, vmax) in self.snapshot().items():
            b = before.get(name, (0, 0, 0))
            dc, dt = count - b[0], total - b[1]
            if dc or dt:
                out[name] = {"count": dc, "total": dt, "max": vmax}
        return out


# ----------------------------------------------------------------------
# the installed registry (module global: one attribute read on hot paths)
# ----------------------------------------------------------------------
_INSTALLED: Optional[ProbeRegistry] = None


def current() -> Optional[ProbeRegistry]:
    """The installed probe registry, or ``None`` when probes are disabled."""
    return _INSTALLED


def set_probes(registry: Optional[ProbeRegistry]) -> Optional[ProbeRegistry]:
    """Install (or with ``None``, uninstall) the process probe registry;
    returns the previously installed one so callers can restore it."""
    global _INSTALLED
    prev = _INSTALLED
    _INSTALLED = registry
    return prev


@contextmanager
def probing(registry: Optional[ProbeRegistry] = None):
    """``with probing() as pr:`` — enable probe collection for the block."""
    pr = registry if registry is not None else ProbeRegistry()
    prev = set_probes(pr)
    try:
        yield pr
    finally:
        set_probes(prev)
