"""Continuous runtime telemetry: resource sampling, worker health, drift.

The tracer (:mod:`repro.observe.tracer`) sees *inside a traced call* —
spans, probes and the prediction ledger all start and stop with one
``masked_spgemm`` invocation.  The scaling behaviour the paper attributes
most parallel-efficiency loss to (memory pressure and load imbalance,
Buluç & Gilbert; per-thread memory footprint, Nagasaka et al.) lives
*between* calls: how the coordinator's RSS grows over a k-truss loop,
how many shared-memory bytes the session caches pin, whether one pool
worker is doing all the work.  This module is the always-on view:

* :class:`RuntimeSampler` — a coordinator-side daemon thread sampling at
  a configurable interval (default 250 ms) into fixed-size
  :class:`RingSeries` buffers: coordinator RSS/CPU (``/proc/self`` with a
  portable fallback), live shm segment count and bytes
  (:func:`repro.parallel.shm.active_segment_bytes`), session segment-cache
  occupancy, kernel-arena footprint, pool size, in-flight/completed task
  counts and spans/calls-per-second throughput.
* **Worker heartbeats** — each :class:`~repro.parallel.pool.PartitionTask`
  / :class:`~repro.parallel.pool.ShardTask` result optionally carries a
  compact heartbeat (pid, RSS, CPU seconds, tasks completed, derived-form
  cache occupancy) that the coordinator ingests exactly like span/probe
  batches (:meth:`RuntimeSampler.ingest_heartbeats`) — per-worker health
  and load-balance series with zero extra IPC.  A staleness detector
  flags workers whose heartbeats stop arriving.
* **Live inspector** — ``python -m repro.observe top`` renders the ring
  buffers as a refreshing terminal dashboard (:func:`format_top`);
  ``--json`` streams newline-delimited snapshots.
* **Drift detection** — :func:`drift` compares a run's sampled
  peak-RSS/shm/throughput summary (and prediction-ledger ratio summaries)
  against per-``(scheme, case, backend)`` baselines accumulated in
  ``BENCH_history.json``, using the same MAD-sigma banding as
  :mod:`repro.bench.regress` — memory and latency anomalies that
  bitwise-equivalence tests cannot see.

Design contract, same as the tracer's: **sampling off must be (nearly)
free**.  Every instrumented call site performs one module-attribute check
(``_INSTALLED is None``) and allocates nothing on the disabled path;
heartbeats are only requested from workers while a sampler is installed.
Sampling never changes results — the sampler only *reads* process and
cache state, so a sampled run is bit-for-bit identical to an unsampled
one (``tests/test_runtime.py`` enforces both properties).
"""

from __future__ import annotations

import math
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

from . import tracer as _tracer

__all__ = [
    "RUNTIME_SCHEMA_VERSION",
    "DEFAULT_INTERVAL_S",
    "DEFAULT_CAPACITY",
    "DEFAULT_STALE_AFTER_S",
    "DRIFT_METRICS",
    "RingSeries",
    "RuntimeSampler",
    "current",
    "set_sampler",
    "sampling",
    "process_rss_bytes",
    "process_cpu_seconds",
    "worker_heartbeat",
    "drift",
    "drift_against_history",
    "format_top",
]

RUNTIME_SCHEMA_VERSION = 1

#: default sampling interval — coarse enough to stay invisible next to
#: kernel work, fine enough to catch a k-truss round's RSS ramp
DEFAULT_INTERVAL_S = 0.25

#: ring-buffer capacity per series (at the default interval: ~2 minutes)
DEFAULT_CAPACITY = 512

#: a worker whose last heartbeat is older than this while tasks have been
#: dispatched since is flagged stale
DEFAULT_STALE_AFTER_S = 5.0

#: the sampled-summary metrics :func:`drift` bands (higher-is-worse for
#: the byte metrics, lower-is-worse for throughput)
DRIFT_METRICS = ("peak_rss_bytes", "peak_shm_bytes", "mean_spans_per_s")


# ----------------------------------------------------------------------
# portable process statistics
# ----------------------------------------------------------------------
def _page_size() -> int:
    try:
        return os.sysconf("SC_PAGE_SIZE")
    except (ValueError, OSError, AttributeError):  # pragma: no cover
        return 4096


_PAGE_SIZE = _page_size()


def process_rss_bytes() -> int:
    """Current resident-set size of this process, in bytes.

    Reads ``/proc/self/statm`` (resident pages × page size) on Linux; the
    portable fallback is ``resource.getrusage`` — note that ``ru_maxrss``
    is a *peak*, not a current value, so on non-/proc platforms the RSS
    series is monotone (still the right signal for peak-memory drift).
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):  # pragma: no cover - no /proc
        try:
            import resource

            return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024
        except Exception:
            return 0


def process_cpu_seconds() -> float:
    """User+system CPU seconds of this process (portable, monotonic)."""
    return time.process_time()


def worker_heartbeat(*, tasks_completed: int, cached_forms: int) -> dict:
    """One compact worker heartbeat — what rides back with a task result.

    A few dozen bytes next to a COO payload; the coordinator ingests it
    via :meth:`RuntimeSampler.ingest_heartbeats`.
    """
    return {
        "pid": os.getpid(),
        "rss_bytes": process_rss_bytes(),
        "cpu_seconds": process_cpu_seconds(),
        "tasks_completed": int(tasks_completed),
        "cached_forms": int(cached_forms),
        "t": time.perf_counter(),
    }


# ----------------------------------------------------------------------
# ring-buffer time series
# ----------------------------------------------------------------------
class RingSeries:
    """Fixed-size ring buffer of ``(t, value)`` samples.

    Appending past capacity overwrites the oldest sample — a sampler that
    runs for hours keeps a bounded window, never an unbounded log.
    """

    __slots__ = ("capacity", "_t", "_v", "_n", "_head", "vmax", "vsum", "count")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._t: List[float] = []
        self._v: List[float] = []
        self._n = 0
        self._head = 0
        #: exact peak / sum / count over *all* samples ever appended —
        #: peaks survive the window scrolling past them
        self.vmax = 0.0
        self.vsum = 0.0
        self.count = 0

    def append(self, t: float, value: float) -> None:
        v = float(value)
        if self._n < self.capacity:
            self._t.append(float(t))
            self._v.append(v)
            self._n += 1
        else:
            self._t[self._head] = float(t)
            self._v[self._head] = v
            self._head = (self._head + 1) % self.capacity
        if v > self.vmax:
            self.vmax = v
        self.vsum += v
        self.count += 1

    def __len__(self) -> int:
        return self._n

    def times(self) -> List[float]:
        """Sample times, oldest first."""
        return self._t[self._head:] + self._t[: self._head]

    def values(self) -> List[float]:
        """Sample values, oldest first."""
        return self._v[self._head:] + self._v[: self._head]

    @property
    def last(self) -> float:
        if self._n == 0:
            return 0.0
        return self._v[(self._head + self._n - 1) % self.capacity]

    @property
    def mean(self) -> float:
        """Mean over all samples ever appended (not just the window)."""
        return self.vsum / self.count if self.count else 0.0

    def export(self) -> dict:
        return {"t": self.times(), "v": self.values(),
                "max": self.vmax, "mean": self.mean, "count": self.count}


# ----------------------------------------------------------------------
# the sampler
# ----------------------------------------------------------------------
#: coordinator-side series names, in display order
SERIES_NAMES = (
    "rss_bytes",
    "cpu_percent",
    "shm_segments",
    "shm_bytes",
    "segcache_entries",
    "segcache_bytes",
    "arena_bytes",
    "pool_size",
    "tasks_inflight",
    "tasks_completed",
    "spans_per_s",
    "calls_per_s",
)


class _Worker:
    """Per-worker health state assembled from ingested heartbeats."""

    __slots__ = ("pid", "rss", "cpu_seconds", "tasks_completed",
                 "cached_forms", "heartbeats", "last_seen")

    def __init__(self, pid: int, capacity: int) -> None:
        self.pid = pid
        self.rss = RingSeries(capacity)
        self.cpu_seconds = 0.0
        self.tasks_completed = 0
        self.cached_forms = 0
        self.heartbeats = 0
        self.last_seen = 0.0

    def as_dict(self, now: float) -> dict:
        return {
            "pid": self.pid,
            "rss_bytes": self.rss.last,
            "peak_rss_bytes": self.rss.vmax,
            "cpu_seconds": self.cpu_seconds,
            "tasks_completed": self.tasks_completed,
            "cached_forms": self.cached_forms,
            "heartbeats": self.heartbeats,
            "age_s": max(0.0, now - self.last_seen),
        }


class RuntimeSampler:
    """Continuous coordinator-side telemetry into ring-buffer series.

    Start/stop the background thread with :meth:`start`/:meth:`stop`, or
    use the :func:`sampling` context manager, which also installs the
    sampler as the process-global one (so the engine, the pool and the
    exporters find it with one attribute check).  All public reads are
    safe while sampling runs (one lock guards the series).
    """

    def __init__(
        self,
        *,
        interval_s: float = DEFAULT_INTERVAL_S,
        capacity: int = DEFAULT_CAPACITY,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.interval_s = float(interval_s)
        self.capacity = int(capacity)
        self.stale_after_s = float(stale_after_s)
        self.series: Dict[str, RingSeries] = {
            name: RingSeries(self.capacity) for name in SERIES_NAMES
        }
        self._workers: Dict[int, _Worker] = {}
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self.started_at = time.perf_counter()
        self.samples = 0
        self.heartbeats_ingested = 0
        #: completed engine calls (bumped by the executor's one-check hook)
        self.calls_completed = 0
        # rate bookkeeping between ticks
        self._last_t: Optional[float] = None
        self._last_cpu = 0.0
        self._last_spans = 0
        self._last_calls = 0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "RuntimeSampler":
        """Start the sampling thread (idempotent); samples once eagerly so
        even a short-lived run has at least one sample."""
        if self._thread is not None:
            return self
        self._stop_event.clear()
        self.started_at = time.perf_counter()
        self.sample_once()
        self._thread = threading.Thread(
            target=self._loop, name="repro-runtime-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final sample (idempotent)."""
        th = self._thread
        if th is not None:
            self._stop_event.set()
            th.join(timeout=max(2.0, 4 * self.interval_s))
            self._thread = None
        self.sample_once()

    def _loop(self) -> None:  # pragma: no cover - timing-dependent
        while not self._stop_event.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception:
                # a failed sample must never kill the workload's process
                pass

    # -- sampling ------------------------------------------------------
    def note_call(self) -> None:
        """One completed engine call (the executor's disabled-path-cheap
        hook); feeds the ``calls_per_s`` throughput series."""
        self.calls_completed += 1

    def sample_once(self, now: Optional[float] = None) -> dict:
        """Take one sample of every series; returns the tick's values."""
        # lazy imports: keep repro.observe import-light and cycle-free
        from ..core.kernels.arena import all_arena_stats
        from ..parallel import shm as _shm
        from ..parallel.pool import pool_stats
        from ..parallel.segment_cache import live_cache_stats

        t = time.perf_counter() if now is None else float(now)
        rss = process_rss_bytes()
        cpu = process_cpu_seconds()
        tr = _tracer.current()
        spans = tr.span_count() if tr is not None else self._last_spans
        calls = self.calls_completed
        if self._last_t is not None and t > self._last_t:
            dt = t - self._last_t
            cpu_percent = max(0.0, (cpu - self._last_cpu) / dt * 100.0)
            spans_per_s = max(0.0, (spans - self._last_spans) / dt)
            calls_per_s = max(0.0, (calls - self._last_calls) / dt)
        else:
            cpu_percent = spans_per_s = calls_per_s = 0.0
        self._last_t, self._last_cpu = t, cpu
        self._last_spans, self._last_calls = spans, calls

        seg_names = _shm.active_segments()
        cache = live_cache_stats()
        arena = all_arena_stats()
        pool = pool_stats()
        tick = {
            "rss_bytes": float(rss),
            "cpu_percent": cpu_percent,
            "shm_segments": float(len(seg_names)),
            "shm_bytes": float(_shm.active_segment_bytes()),
            "segcache_entries": float(cache["cached_entries"]),
            "segcache_bytes": float(cache["cached_bytes"]),
            "arena_bytes": float(arena["nbytes"]),
            "pool_size": float(pool["size"]),
            "tasks_inflight": float(pool["tasks_inflight"]),
            "tasks_completed": float(pool["tasks_completed"]),
            "spans_per_s": spans_per_s,
            "calls_per_s": calls_per_s,
        }
        with self._lock:
            for name, value in tick.items():
                self.series[name].append(t, value)
            self.samples += 1
        return tick

    # -- worker health -------------------------------------------------
    def ingest_heartbeats(self, beats: Sequence[Optional[dict]]) -> None:
        """Merge worker heartbeats shipped back with task results.

        Mirrors :meth:`~repro.observe.Tracer.ingest` /
        :meth:`~repro.observe.probes.ProbeRegistry.ingest`: the pool's
        callers hand the per-task heartbeat batch straight in.  ``None``
        entries (tasks run with heartbeats off) are skipped.
        """
        now = time.perf_counter()
        with self._lock:
            for hb in beats:
                if not hb:
                    continue
                pid = int(hb["pid"])
                w = self._workers.get(pid)
                if w is None:
                    w = self._workers[pid] = _Worker(pid, self.capacity)
                w.rss.append(now, float(hb.get("rss_bytes", 0)))
                w.cpu_seconds = float(hb.get("cpu_seconds", 0.0))
                w.tasks_completed = int(hb.get("tasks_completed", 0))
                w.cached_forms = int(hb.get("cached_forms", 0))
                w.heartbeats += 1
                w.last_seen = now
                self.heartbeats_ingested += 1

    def fleet(self, now: Optional[float] = None) -> List[dict]:
        """Per-worker health rows (sorted by pid), from ingested heartbeats."""
        t = time.perf_counter() if now is None else float(now)
        with self._lock:
            return [self._workers[pid].as_dict(t) for pid in sorted(self._workers)]

    def worker_pids(self) -> List[int]:
        with self._lock:
            return sorted(self._workers)

    def stale_workers(self, now: Optional[float] = None) -> List[int]:
        """Pids whose last heartbeat is older than ``stale_after_s``.

        A worker only emits heartbeats while tasks flow, so staleness is
        meaningful during dispatch (a pid that stops reporting while its
        siblings keep reporting) and at its plainest when a worker died —
        its heartbeats stop while the pool still lists it.
        """
        t = time.perf_counter() if now is None else float(now)
        with self._lock:
            return sorted(
                pid for pid, w in self._workers.items()
                if (t - w.last_seen) > self.stale_after_s
            )

    # -- export --------------------------------------------------------
    def snapshot(self) -> dict:
        """One flat dict of the latest sample + fleet — what ``top --json``
        streams (newline-delimited) and the dashboard renders."""
        now = time.perf_counter()
        with self._lock:
            latest = {name: s.last for name, s in self.series.items()}
        return {
            "schema_version": RUNTIME_SCHEMA_VERSION,
            "t": now,
            "uptime_s": now - self.started_at,
            "samples": self.samples,
            "interval_s": self.interval_s,
            **latest,
            "calls_completed": self.calls_completed,
            "workers": self.fleet(now),
            "stale_pids": self.stale_workers(now),
        }

    def export(self) -> dict:
        """Full ring-buffer export — the ``"runtime"`` section of
        :func:`repro.observe.metrics`."""
        now = time.perf_counter()
        with self._lock:
            series = {name: s.export() for name, s in self.series.items()}
            workers = {
                str(pid): {
                    **self._workers[pid].as_dict(now),
                    "rss_series": self._workers[pid].rss.export(),
                }
                for pid in sorted(self._workers)
            }
        return {
            "schema_version": RUNTIME_SCHEMA_VERSION,
            "interval_s": self.interval_s,
            "capacity": self.capacity,
            "samples": self.samples,
            "series": series,
            "workers": workers,
            "stale_pids": self.stale_workers(now),
            "summary": self.summary(),
        }

    def summary(self) -> dict:
        """Compact scalars for history records and :func:`drift` — exact
        peaks/means over the whole run, not just the ring window."""
        with self._lock:
            s = self.series
            worker_peak = max(
                (w.rss.vmax for w in self._workers.values()), default=0.0
            )
            return {
                "samples": self.samples,
                "interval_s": self.interval_s,
                "peak_rss_bytes": s["rss_bytes"].vmax,
                "peak_shm_bytes": s["shm_bytes"].vmax,
                "peak_segcache_bytes": s["segcache_bytes"].vmax,
                "peak_worker_rss_bytes": worker_peak,
                "peak_tasks_inflight": s["tasks_inflight"].vmax,
                "mean_cpu_percent": s["cpu_percent"].mean,
                "mean_spans_per_s": s["spans_per_s"].mean,
                "mean_calls_per_s": s["calls_per_s"].mean,
                "calls_completed": self.calls_completed,
                "workers_seen": len(self._workers),
                "heartbeats": self.heartbeats_ingested,
            }


# ----------------------------------------------------------------------
# the installed sampler (module global: one attribute read on hot paths)
# ----------------------------------------------------------------------
_INSTALLED: Optional[RuntimeSampler] = None


def current() -> Optional[RuntimeSampler]:
    """The installed sampler, or ``None`` when runtime telemetry is off."""
    return _INSTALLED


def set_sampler(sampler: Optional[RuntimeSampler]) -> Optional[RuntimeSampler]:
    """Install (or with ``None``, uninstall) the process sampler; returns
    the previously installed one so callers can restore it."""
    global _INSTALLED
    prev = _INSTALLED
    _INSTALLED = sampler
    return prev


@contextmanager
def sampling(sampler: Optional[RuntimeSampler] = None, **kwargs):
    """``with sampling() as rt:`` — continuous telemetry for the block.

    Installs (and starts) a :class:`RuntimeSampler` for the duration;
    keyword arguments construct the sampler when none is passed.  The
    previous sampler (usually none) is restored on exit, even on error,
    and the thread is always stopped.
    """
    rt = sampler if sampler is not None else RuntimeSampler(**kwargs)
    prev = set_sampler(rt)
    rt.start()
    try:
        yield rt
    finally:
        set_sampler(prev)
        rt.stop()


# ----------------------------------------------------------------------
# drift detection against benchmark-history baselines
# ----------------------------------------------------------------------
#: MAD -> sigma for normally distributed noise (same constant as
#: :mod:`repro.bench.regress` — the two gates must band identically)
_MAD_SIGMA = 1.4826


def _median(values: List[float]) -> float:
    vals = sorted(values)
    n = len(vals)
    mid = n // 2
    if n % 2:
        return vals[mid]
    return 0.5 * (vals[mid - 1] + vals[mid])


def _band(median: float, mad: float, *, k_mad: float, min_rel: float,
          max_rel: float) -> float:
    """The regression gate's band formula, applied to a sampled metric:
    ``clamp(k_mad * 1.4826 * MAD, min_rel * median, max_rel * median)``."""
    scale = abs(median)
    return min(max(k_mad * _MAD_SIGMA * mad, min_rel * scale),
               max(max_rel, min_rel) * scale)


def _metric_row(head: Optional[float], baseline: List[float], *, k_mad: float,
                min_rel: float, max_rel: float) -> dict:
    if head is None or not baseline:
        return {"head": head, "status": "no-baseline",
                "baseline_n": len(baseline)}
    med = _median(baseline)
    mad = _median([abs(v - med) for v in baseline])
    band = _band(med, mad, k_mad=k_mad, min_rel=min_rel, max_rel=max_rel)
    delta = head - med
    if delta > band:
        status = "high"
    elif delta < -band:
        status = "low"
    else:
        status = "ok"
    return {
        "head": head,
        "base_median": med,
        "base_mad": mad,
        "band": band,
        "delta": delta,
        "status": status,
        "baseline_n": len(baseline),
    }


def drift(
    head_summary: dict,
    baseline_summaries: Sequence[dict],
    *,
    head_ledger: Optional[dict] = None,
    baseline_ledgers: Optional[Sequence[dict]] = None,
    k_mad: Optional[float] = None,
    min_rel: Optional[float] = None,
    max_rel: Optional[float] = None,
) -> dict:
    """Drift verdict for one run's sampled summary against baselines.

    ``head_summary`` is :meth:`RuntimeSampler.summary`;
    ``baseline_summaries`` the accumulated summaries of the matching
    ``(scheme, case, backend)`` key across prior history runs (see
    :func:`repro.bench.history.runtime_summaries`).  Each metric in
    :data:`DRIFT_METRICS` is banded with the regression gate's MAD-sigma
    formula; ``peak_*`` metrics flag when *high* (memory anomaly),
    throughput flags when *low* (latency anomaly).

    ``head_ledger`` / ``baseline_ledgers`` optionally add the prediction
    ledger's per-kind ``ratio_median`` summaries
    (:func:`repro.observe.ledger.misprediction_summary`); those compare in
    log10 space, so a model that drifts from 1.1x to 4x off flags the same
    way in either direction.

    Verdict: ``"drift"`` when any metric flags in its bad direction,
    ``"no-baseline"`` when nothing could be compared, else ``"ok"``.
    """
    # the regression gate's defaults, shared lazily (no import cycle —
    # bench imports observe, so observe must not import bench eagerly)
    from ..bench import regress as _regress

    k_mad = _regress.DEFAULT_K_MAD if k_mad is None else float(k_mad)
    min_rel = _regress.DEFAULT_MIN_REL if min_rel is None else float(min_rel)
    max_rel = _regress.DEFAULT_MAX_REL if max_rel is None else float(max_rel)

    metrics: Dict[str, dict] = {}
    flagged: List[str] = []
    compared = 0
    for name in DRIFT_METRICS:
        head = head_summary.get(name)
        base = [
            float(s[name]) for s in baseline_summaries
            if s is not None and s.get(name) is not None
        ]
        row = _metric_row(
            None if head is None else float(head), base,
            k_mad=k_mad, min_rel=min_rel, max_rel=max_rel,
        )
        bad = "low" if name == "mean_spans_per_s" else "high"
        row["bad_direction"] = bad
        metrics[name] = row
        if row["status"] != "no-baseline":
            compared += 1
            if row["status"] == bad:
                flagged.append(name)

    if head_ledger and baseline_ledgers:
        for kind in sorted(head_ledger):
            head_entry = head_ledger.get(kind) or {}
            ratio = head_entry.get("ratio_median")
            base = [
                float((lg.get(kind) or {}).get("ratio_median"))
                for lg in baseline_ledgers
                if lg and (lg.get(kind) or {}).get("ratio_median")
            ]
            if ratio is None or not base or ratio <= 0:
                continue
            row = _metric_row(
                math.log10(float(ratio)),
                [math.log10(v) for v in base if v > 0],
                k_mad=k_mad, min_rel=min_rel, max_rel=max_rel,
            )
            # a log10 ratio drifting either way means the model's error
            # moved; both directions flag
            row["bad_direction"] = "any"
            name = f"ledger:{kind}:log10_ratio"
            metrics[name] = row
            if row["status"] != "no-baseline":
                compared += 1
                if row["status"] in ("high", "low"):
                    flagged.append(name)

    if compared == 0:
        verdict = "no-baseline"
    elif flagged:
        verdict = "drift"
    else:
        verdict = "ok"
    return {
        "schema_version": RUNTIME_SCHEMA_VERSION,
        "verdict": verdict,
        "k_mad": k_mad,
        "min_rel": min_rel,
        "max_rel": max_rel,
        "flagged": flagged,
        "metrics": metrics,
    }


def drift_against_history(
    head_summary: dict,
    history,
    *,
    scheme: str,
    case: str,
    backend: str = "serial",
    threads: int = 1,
    head_ledger: Optional[dict] = None,
    **band_kwargs,
) -> dict:
    """:func:`drift` against the baselines stored in a history payload.

    ``history`` is a loaded ``BENCH_history.json`` payload (or a path to
    one); baselines are every record matching the ``(scheme, case,
    backend, threads)`` key across **all** runs that carried a
    ``"runtime"`` summary (collected with ``python -m repro.bench.history
    --sample-runtime``).
    """
    from ..bench.history import load_history, runtime_summaries

    if isinstance(history, (str, os.PathLike)):
        history = load_history(history)
    key = f"{scheme}|{case}|{backend}|{threads}"
    summaries, ledgers = runtime_summaries(history, key)
    return drift(
        head_summary, summaries,
        head_ledger=head_ledger, baseline_ledgers=ledgers,
        **band_kwargs,
    )


# ----------------------------------------------------------------------
# terminal rendering (the `top` inspector)
# ----------------------------------------------------------------------
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _spark(values: Sequence[float], width: int = 48) -> str:
    """Sparkline of the last ``width`` values (empty string when none)."""
    vals = list(values)[-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return _SPARK_CHARS[0] * len(vals)
    steps = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[int(round((v - lo) / span * steps))] for v in vals
    )


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024.0 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    return f"{n:.1f} GB"  # pragma: no cover - unreachable


def format_top(sampler: RuntimeSampler, *, width: int = 48) -> str:
    """Render the sampler's ring buffers as one dashboard frame.

    Fleet table + sparkline series + cache/arena gauges; what
    ``python -m repro.observe top`` refreshes and tests snapshot.
    """
    s = sampler.series
    now = time.perf_counter()
    lines: List[str] = []
    lines.append(
        f"repro runtime top — interval {sampler.interval_s * 1e3:.0f} ms, "
        f"samples {sampler.samples}, uptime {now - sampler.started_at:.1f} s"
    )
    lines.append(
        f"coordinator  rss {_fmt_bytes(s['rss_bytes'].last):>10s}  "
        f"cpu {s['cpu_percent'].last:5.1f}%  "
        f"calls/s {s['calls_per_s'].last:6.2f}  "
        f"spans/s {s['spans_per_s'].last:8.1f}"
    )
    for name, label in (
        ("rss_bytes", "rss"),
        ("shm_bytes", "shm"),
        ("tasks_inflight", "queue"),
        ("spans_per_s", "spans/s"),
    ):
        lines.append(f"  {label:<8s} {_spark(s[name].values(), width)}")
    lines.append(
        f"  shm {int(s['shm_segments'].last)} segments "
        f"{_fmt_bytes(s['shm_bytes'].last)}  |  "
        f"segcache {int(s['segcache_entries'].last)} entries "
        f"{_fmt_bytes(s['segcache_bytes'].last)}  |  "
        f"arena {_fmt_bytes(s['arena_bytes'].last)}"
    )
    lines.append(
        f"  pool {int(s['pool_size'].last)} workers  "
        f"inflight {int(s['tasks_inflight'].last)}  "
        f"tasks done {int(s['tasks_completed'].last)}"
    )
    fleet = sampler.fleet(now)
    stale = set(sampler.stale_workers(now))
    lines.append(f"workers ({len(fleet)}, {len(stale)} stale):")
    if fleet:
        lines.append(
            f"  {'pid':>8s} {'rss':>10s} {'peak rss':>10s} {'cpu s':>8s} "
            f"{'tasks':>6s} {'forms':>6s} {'age':>7s}"
        )
        for w in fleet:
            mark = " STALE" if w["pid"] in stale else ""
            lines.append(
                f"  {w['pid']:>8d} {_fmt_bytes(w['rss_bytes']):>10s} "
                f"{_fmt_bytes(w['peak_rss_bytes']):>10s} "
                f"{w['cpu_seconds']:>8.2f} {w['tasks_completed']:>6d} "
                f"{w['cached_forms']:>6d} {w['age_s']:>6.1f}s{mark}"
            )
    else:
        lines.append("  (no worker heartbeats yet)")
    return "\n".join(lines)
