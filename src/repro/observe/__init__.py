"""Structured tracing & metrics spanning planner → executor → backends → kernels.

Quickstart::

    from repro.observe import tracing
    from repro.apps import triangle_count_detail

    with tracing() as tr:
        res = triangle_count_detail(g, algo="auto", backend="process")
    tr.to_chrome()                  # chrome://tracing / Perfetto JSON dict
    tr.to_metrics()                 # flat per-phase / per-counter summary
    print(tr.report())              # plan decisions next to measured spans

With no tracer installed every instrumented call site costs one attribute
check — see :mod:`repro.observe.tracer` for the contract and
``docs/observability.md`` for the span model and exporters.
"""

from .exporters import (
    chrome_trace,
    estimated_bytes_moved,
    metrics,
    write_chrome_trace,
    write_metrics,
)
from .report import format_span_tree, report
from .tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    current,
    set_tracer,
    span,
    timed_span,
    traced_kernel,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "current",
    "set_tracer",
    "tracing",
    "span",
    "timed_span",
    "traced_kernel",
    "NULL_SPAN",
    "chrome_trace",
    "metrics",
    "estimated_bytes_moved",
    "write_chrome_trace",
    "write_metrics",
    "report",
    "format_span_tree",
]
