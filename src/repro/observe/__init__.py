"""Structured tracing & metrics spanning planner → executor → backends → kernels.

Quickstart::

    from repro.observe import tracing
    from repro.apps import triangle_count_detail

    with tracing() as tr:
        res = triangle_count_detail(g, algo="auto", backend="process")
    tr.to_chrome()                  # chrome://tracing / Perfetto JSON dict
    tr.to_metrics()                 # flat per-phase / per-counter summary
    print(tr.report())              # plan decisions next to measured spans

Accumulator micro-telemetry (probe-chain lengths, heap inspection counts,
touched-cell ratios) is collected separately by :mod:`repro.observe.probes`::

    from repro.observe import probing

    with probing() as pr:
        res = triangle_count_detail(g, algo="hash")
    pr.export()                     # histograms: buckets + count/total/max

With no tracer installed every instrumented call site costs one attribute
check — see :mod:`repro.observe.tracer` for the contract and
``docs/observability.md`` for the span model, probe histograms and
exporters.

*Continuous* telemetry — what happens between calls — lives in
:mod:`repro.observe.runtime`::

    from repro.observe.runtime import sampling

    with sampling() as rt:            # 250 ms ring-buffer sampling
        run_many_iterations()
    rt.summary()                      # peaks + throughput for drift checks
    print(rt.fleet())                 # per-worker heartbeat health

``python -m repro.observe top`` renders the same series live; the
sampler-off path costs one module-attribute check, like the tracer's.
"""

from .exporters import (
    METRICS_SCHEMA_VERSION,
    chrome_trace,
    estimated_bytes_moved,
    metrics,
    write_chrome_trace,
    write_metrics,
)
from .ledger import (
    LEDGER_SCHEMA_VERSION,
    PREDICTION_KINDS,
    format_predictions,
    misprediction_summary,
    prediction_rows,
    predictions,
)
from .probes import (
    BUCKET_LABELS,
    NBUCKETS,
    Histogram,
    ProbeRegistry,
    bucket_index,
    probing,
    set_probes,
)
from .report import format_probes, format_span_tree, report
from .runtime import (
    RUNTIME_SCHEMA_VERSION,
    RingSeries,
    RuntimeSampler,
    drift,
    drift_against_history,
    format_top,
    sampling,
    set_sampler,
)
from .tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    current,
    set_tracer,
    span,
    timed_span,
    traced_kernel,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "current",
    "set_tracer",
    "tracing",
    "span",
    "timed_span",
    "traced_kernel",
    "NULL_SPAN",
    "RUNTIME_SCHEMA_VERSION",
    "RingSeries",
    "RuntimeSampler",
    "sampling",
    "set_sampler",
    "drift",
    "drift_against_history",
    "format_top",
    "METRICS_SCHEMA_VERSION",
    "chrome_trace",
    "metrics",
    "estimated_bytes_moved",
    "write_chrome_trace",
    "write_metrics",
    "report",
    "format_span_tree",
    "format_probes",
    "LEDGER_SCHEMA_VERSION",
    "PREDICTION_KINDS",
    "prediction_rows",
    "misprediction_summary",
    "predictions",
    "format_predictions",
    "Histogram",
    "ProbeRegistry",
    "probing",
    "set_probes",
    "bucket_index",
    "NBUCKETS",
    "BUCKET_LABELS",
]
