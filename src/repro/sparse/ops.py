"""Element-wise and structural operations on CSR matrices.

These are the substrate operations the paper's applications need around the
masked SpGEMM core: element-wise multiply (``.*``, used to apply masks and in
triangle counting), element-wise add, complement-aware masking, reductions,
and structural set operations on patterns.

All binary ops require matching shapes and operate on *sorted* CSR inputs
(callers get an automatic canonicalisation via ``CSR.sort_indices``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .csr import CSR, INDEX_DTYPE, VALUE_DTYPE

__all__ = [
    "ewise_mult",
    "ewise_add",
    "mask_pattern",
    "apply_mask",
    "reduce_sum",
    "row_reduce",
    "pattern_union",
    "pattern_intersection",
    "pattern_difference",
    "nnz_overlap",
]


def _coo(mat: CSR):
    mat = mat.sort_indices()
    rows, cols, vals = mat.to_coo()
    keys = rows * mat.ncols + cols
    return keys, rows, cols, vals


def ewise_mult(a: CSR, b: CSR, op: Callable = np.multiply) -> CSR:
    """Element-wise multiply (set *intersection* of patterns).

    ``op`` may be any binary ufunc-like callable applied to the matched
    values; the default is multiplication, matching GraphBLAS ``eWiseMult``
    on the arithmetic semiring.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    ka, ra, ca, va = _coo(a)
    kb, _, _, vb = _coo(b)
    ia = np.searchsorted(kb, ka)
    ia_clip = np.minimum(ia, kb.shape[0] - 1) if kb.shape[0] else ia
    match = np.zeros(ka.shape[0], dtype=bool)
    if kb.shape[0]:
        match = kb[ia_clip] == ka
        match &= ia < kb.shape[0]
    rows, cols = ra[match], ca[match]
    vals = op(va[match], vb[ia[match]])
    return CSR.from_coo(a.shape, rows, cols, vals)


def ewise_add(a: CSR, b: CSR, op: Callable = np.add) -> CSR:
    """Element-wise add (set *union* of patterns).  Where both matrices have
    an entry, ``op`` combines them; elsewhere the single value is kept."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    ra, ca, va = a.sort_indices().to_coo()
    rb, cb, vb = b.sort_indices().to_coo()
    if op is np.add:
        return CSR.from_coo(
            a.shape,
            np.concatenate([ra, rb]),
            np.concatenate([ca, cb]),
            np.concatenate([va, vb]),
        )
    # generic op: merge by key
    ka = ra * a.ncols + ca
    kb = rb * a.ncols + cb
    keys = np.union1d(ka, kb)
    out = np.zeros(keys.shape[0], dtype=VALUE_DTYPE)
    ia = np.searchsorted(keys, ka)
    ib = np.searchsorted(keys, kb)
    in_a = np.zeros(keys.shape[0], dtype=bool)
    in_b = np.zeros(keys.shape[0], dtype=bool)
    avals = np.zeros(keys.shape[0], dtype=VALUE_DTYPE)
    bvals = np.zeros(keys.shape[0], dtype=VALUE_DTYPE)
    in_a[ia] = True
    in_b[ib] = True
    avals[ia] = va
    bvals[ib] = vb
    both = in_a & in_b
    out[both] = op(avals[both], bvals[both])
    only_a = in_a & ~in_b
    only_b = in_b & ~in_a
    out[only_a] = avals[only_a]
    out[only_b] = bvals[only_b]
    return CSR.from_coo(a.shape, keys // a.ncols, keys % a.ncols, out)


def mask_pattern(mat: CSR, mask: CSR, *, complement: bool = False) -> CSR:
    """Keep entries of ``mat`` whose position is (not, if complemented) in
    the pattern of ``mask``.  Values of the mask are ignored — only its
    structure matters, as in the paper (Section 2)."""
    if mat.shape != mask.shape:
        raise ValueError(f"shape mismatch: {mat.shape} vs {mask.shape}")
    km, rm, cm, vm = _coo(mat)
    kk, _, _, _ = _coo(mask)
    if kk.shape[0]:
        pos = np.searchsorted(kk, km)
        pos_c = np.minimum(pos, kk.shape[0] - 1)
        inside = (kk[pos_c] == km) & (pos < kk.shape[0])
    else:
        inside = np.zeros(km.shape[0], dtype=bool)
    keep = ~inside if complement else inside
    return CSR.from_coo(mat.shape, rm[keep], cm[keep], vm[keep])


# Alias with the GraphBLAS-flavoured name used by the apps.
apply_mask = mask_pattern


def reduce_sum(mat: CSR) -> float:
    """Sum of all stored values (GraphBLAS ``reduce`` to scalar with +)."""
    return float(mat.data.sum())


def row_reduce(mat: CSR, op: Callable = np.add) -> np.ndarray:
    """Reduce each row to a scalar with ``op`` (dense length-nrows output).
    Rows with no entries reduce to 0."""
    out = np.zeros(mat.nrows, dtype=VALUE_DTYPE)
    if mat.nnz == 0:
        return out
    rows = np.repeat(np.arange(mat.nrows, dtype=INDEX_DTYPE), mat.row_nnz())
    getattr(op, "at", np.add.at)(out, rows, mat.data)
    return out


def pattern_union(a: CSR, b: CSR) -> CSR:
    """Structural union with all values 1."""
    return ewise_add(a.pattern(), b.pattern(), op=np.maximum)


def pattern_intersection(a: CSR, b: CSR) -> CSR:
    """Structural intersection with all values 1."""
    return ewise_mult(a.pattern(), b.pattern(), op=np.minimum)


def pattern_difference(a: CSR, b: CSR) -> CSR:
    """Entries of ``a`` not present in ``b`` (values kept from ``a``)."""
    return mask_pattern(a, b, complement=True)


def nnz_overlap(a: CSR, b: CSR) -> int:
    """Number of positions stored in both matrices.  Used by benches to
    report mask/output overlap (Figure 1's motivation)."""
    return pattern_intersection(a, b).nnz
