"""Compressed Sparse Row (CSR) matrix container.

This is the storage format used throughout the reproduction, mirroring the
paper's choice (Section 2.1): three arrays — row pointers ``indptr``, column
indices ``indices`` and values ``data``.  The container is deliberately thin:
kernels operate on the raw NumPy arrays, and the class mostly provides
construction, validation, conversion and structural helpers.

Invariants (checked by :meth:`CSR.check`):

* ``indptr`` has length ``nrows + 1``, is non-decreasing, starts at 0 and
  ends at ``nnz``.
* ``indices`` and ``data`` have length ``nnz``.
* all column indices are in ``[0, ncols)``.
* when ``sorted_indices`` is claimed, column indices are strictly increasing
  within each row (which also implies no duplicates).
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

__all__ = ["CSR"]

INDEX_DTYPE = np.int64
VALUE_DTYPE = np.float64


class CSR:
    """A CSR sparse matrix over NumPy arrays.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)``.
    indptr, indices, data:
        The standard CSR arrays.  They are converted to the canonical dtypes
        (int64 indices, float64 values by default) but **not** copied when
        already canonical.
    sorted_indices:
        Declare that each row's column indices are strictly increasing.  Most
        kernels in :mod:`repro.core` require sorted, duplicate-free rows; use
        :meth:`sort_indices` to establish the invariant.
    check:
        Validate the invariants at construction time.
    """

    # _csc_memo holds (fingerprint_key, CSC) — an ExecutionSession parks the
    # derived transpose here so a constant operand is transposed once per
    # content even across sessions; see repro.engine.session.
    __slots__ = ("shape", "indptr", "indices", "data", "sorted_indices",
                 "_csc_memo")

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        sorted_indices: bool = False,
        check: bool = True,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.ascontiguousarray(indptr, dtype=INDEX_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
        if data.dtype.kind in "fc":
            self.data = np.ascontiguousarray(data)
        else:
            self.data = np.ascontiguousarray(data, dtype=VALUE_DTYPE)
        self.sorted_indices = bool(sorted_indices)
        self._csc_memo = None
        if check:
            self.check()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: Tuple[int, int], dtype=VALUE_DTYPE) -> "CSR":
        """An all-zero matrix of the given shape."""
        return cls(
            shape,
            np.zeros(shape[0] + 1, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=dtype),
            sorted_indices=True,
            check=False,
        )

    @classmethod
    def from_coo(
        cls,
        shape: Tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray | None = None,
        *,
        sum_duplicates: bool = True,
    ) -> "CSR":
        """Build a CSR matrix from coordinate triples.

        Duplicate ``(row, col)`` entries are summed (``sum_duplicates=True``,
        the default) or rejected.  The result has sorted row segments.
        """
        rows = np.asarray(rows, dtype=INDEX_DTYPE)
        cols = np.asarray(cols, dtype=INDEX_DTYPE)
        if vals is None:
            vals = np.ones(rows.shape[0], dtype=VALUE_DTYPE)
        else:
            vals = np.asarray(vals)
            if vals.dtype.kind not in "fc":
                vals = vals.astype(VALUE_DTYPE)
        if not (rows.shape == cols.shape == vals.shape):
            raise ValueError("rows, cols, vals must have identical shapes")
        nrows, ncols = int(shape[0]), int(shape[1])
        if rows.size:
            if rows.min() < 0 or rows.max() >= nrows:
                raise ValueError("row index out of range")
            if cols.min() < 0 or cols.max() >= ncols:
                raise ValueError("column index out of range")
        # Sort lexicographically by (row, col).
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if rows.size:
            dup = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
            if dup.any():
                if not sum_duplicates:
                    raise ValueError("duplicate coordinates present")
                # segment-reduce duplicate runs
                keep = np.concatenate(([True], ~dup))
                seg = np.cumsum(keep) - 1
                out_vals = np.zeros(int(seg[-1]) + 1, dtype=vals.dtype)
                np.add.at(out_vals, seg, vals)
                rows, cols, vals = rows[keep], cols[keep], out_vals
        indptr = np.zeros(nrows + 1, dtype=INDEX_DTYPE)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls((nrows, ncols), indptr, cols, vals, sorted_indices=True, check=False)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSR":
        """Build from a 2-D dense array, dropping explicit zeros."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("dense array must be 2-D")
        rows, cols = np.nonzero(dense)
        return cls.from_coo(dense.shape, rows, cols, dense[rows, cols])

    @classmethod
    def from_segment_arrays(
        cls,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        sorted_indices: bool = False,
    ) -> "CSR":
        """Rewrap the three CSR arrays without copying or re-validating.

        The zero-copy counterpart of :meth:`segment_arrays` used by the
        shared-memory executor (:mod:`repro.parallel.shm`): the arrays are
        typically views into attached shared segments whose invariants were
        established by the publishing process, so ``check`` is skipped.  The
        arrays must already be contiguous and of the canonical dtypes or the
        constructor will fall back to copying.
        """
        return cls(
            shape, indptr, indices, data, sorted_indices=sorted_indices, check=False
        )

    def segment_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``(indptr, indices, data)`` arrays in publication order.

        Together with ``shape`` and ``sorted_indices`` this is everything a
        peer process needs to rebuild the matrix via
        :meth:`from_segment_arrays` without a round trip through COO.
        """
        return self.indptr, self.indices, self.data

    @classmethod
    def from_scipy(cls, mat) -> "CSR":
        """Build from a ``scipy.sparse`` matrix (used by tests/oracles)."""
        m = mat.tocsr()
        m.sum_duplicates()
        m.sort_indices()
        return cls(
            m.shape,
            m.indptr.astype(INDEX_DTYPE),
            m.indices.astype(INDEX_DTYPE),
            m.data.astype(VALUE_DTYPE),
            sorted_indices=True,
        )

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    def row_nnz(self) -> np.ndarray:
        """Array of per-row nonzero counts."""
        return np.diff(self.indptr)

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Views of the column indices and values of row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(i, cols, vals)`` for every row (including empty rows)."""
        for i in range(self.nrows):
            cols, vals = self.row(i)
            yield i, cols, vals

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def check(self) -> "CSR":
        """Validate structural invariants; raise ``ValueError`` on breakage."""
        nrows, ncols = self.shape
        if self.indptr.shape[0] != nrows + 1:
            raise ValueError("indptr has wrong length")
        if self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape[0] != nnz or self.data.shape[0] != nnz:
            raise ValueError("indices/data length mismatch with indptr")
        if nnz and (self.indices.min() < 0 or self.indices.max() >= ncols):
            raise ValueError("column index out of range")
        if self.sorted_indices and nnz:
            d = np.diff(self.indices)
            starts = self.indptr[1:-1]
            bad = d <= 0
            bad[starts[(starts > 0) & (starts < nnz)] - 1] = False
            if bad.any():
                raise ValueError("indices not strictly increasing within rows")
        return self

    # ------------------------------------------------------------------
    # conversions / structural ops
    # ------------------------------------------------------------------
    def copy(self) -> "CSR":
        return CSR(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
            sorted_indices=self.sorted_indices,
            check=False,
        )

    def astype(self, dtype) -> "CSR":
        return CSR(
            self.shape,
            self.indptr,
            self.indices,
            self.data.astype(dtype),
            sorted_indices=self.sorted_indices,
            check=False,
        )

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, vals)`` coordinate arrays."""
        rows = np.repeat(
            np.arange(self.nrows, dtype=INDEX_DTYPE), np.diff(self.indptr)
        )
        return rows, self.indices.copy(), self.data.copy()

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.data.dtype)
        rows, cols, vals = self.to_coo()
        np.add.at(out, (rows, cols), vals)
        return out

    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (tests/oracles only)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()),
            shape=self.shape,
        )

    def sort_indices(self) -> "CSR":
        """Return an equivalent CSR with sorted, duplicate-summed rows."""
        if self.sorted_indices:
            return self
        rows, cols, vals = self.to_coo()
        return CSR.from_coo(self.shape, rows, cols, vals)

    def transpose(self) -> "CSR":
        """Transpose.  The result has sorted rows (CSR of the transpose is
        the CSC of the original, so this also serves as the CSC builder)."""
        rows, cols, vals = self.to_coo()
        return CSR.from_coo((self.ncols, self.nrows), cols, rows, vals)

    def pattern(self) -> "CSR":
        """Same structure with all stored values set to 1.0."""
        return CSR(
            self.shape,
            self.indptr,
            self.indices,
            np.ones(self.nnz, dtype=VALUE_DTYPE),
            sorted_indices=self.sorted_indices,
            check=False,
        )

    def drop_zeros(self, tol: float = 0.0) -> "CSR":
        """Remove stored entries with ``|value| <= tol``."""
        keep = np.abs(self.data) > tol
        if keep.all():
            return self
        rows, cols, vals = self.to_coo()
        return CSR.from_coo(self.shape, rows[keep], cols[keep], vals[keep])

    def select_rows(self, mask_or_index: np.ndarray) -> "CSR":
        """Keep only rows selected by a boolean mask or index array; other
        rows become empty (the shape is unchanged)."""
        sel = np.zeros(self.nrows, dtype=bool)
        sel[mask_or_index] = True
        rows, cols, vals = self.to_coo()
        keep = sel[rows]
        return CSR.from_coo(self.shape, rows[keep], cols[keep], vals[keep])

    def replace_rows(self, rows: np.ndarray, source: "CSR") -> "CSR":
        """Splice ``source``'s rows ``rows`` into this matrix.

        The delta-patch primitive of :mod:`repro.engine.delta`: the result
        keeps this matrix's rows everywhere except ``rows``, which are
        taken verbatim (indices *and* values) from the equal-shaped
        ``source``.  One vectorised ``O(nnz)`` scatter — no COO round
        trip, no re-sort — so patching a cached result costs the payload
        copy, not a rebuild.  Both matrices must carry the
        ``sorted_indices`` invariant (every engine product does); the
        result carries it too.  ``rows`` may be unsorted or contain
        duplicates; an empty ``rows`` returns ``self`` unchanged.
        """
        if source.shape != self.shape:
            raise ValueError(
                f"replace_rows requires an equal-shaped source: "
                f"{self.shape} vs {source.shape}"
            )
        if not (self.sorted_indices and source.sorted_indices):
            raise ValueError(
                "replace_rows requires sorted_indices on both matrices; "
                "call sort_indices() first"
            )
        rows = np.unique(np.asarray(rows, dtype=INDEX_DTYPE))
        if rows.size == 0:
            return self
        if int(rows[0]) < 0 or int(rows[-1]) >= self.nrows:
            raise ValueError("row index out of range")
        sel = np.zeros(self.nrows, dtype=bool)
        sel[rows] = True
        counts = np.where(sel, np.diff(source.indptr), np.diff(self.indptr))
        indptr = np.zeros(self.nrows + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        nnz = int(indptr[-1])
        dtype = np.result_type(self.data.dtype, source.data.dtype)
        indices = np.empty(nnz, dtype=INDEX_DTYPE)
        data = np.empty(nnz, dtype=dtype)
        for mat, pick in ((self, ~sel), (source, sel)):
            take = np.flatnonzero(pick)
            lens = np.diff(mat.indptr)[take]
            total = int(lens.sum())
            if not total:
                continue
            rep = np.repeat(np.arange(take.size, dtype=INDEX_DTYPE), lens)
            off = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(
                np.cumsum(lens) - lens, lens
            )
            src = mat.indptr[take][rep] + off
            dst = indptr[take][rep] + off
            indices[dst] = mat.indices[src]
            data[dst] = mat.data[src]
        return CSR(
            self.shape, indptr, indices, data, sorted_indices=True, check=False
        )

    def permute(self, perm: np.ndarray) -> "CSR":
        """Symmetric permutation ``P A P^T`` for a square matrix: row and
        column ``i`` of the result is row/column ``perm[i]`` of ``self``."""
        if self.nrows != self.ncols:
            raise ValueError("permute requires a square matrix")
        perm = np.asarray(perm, dtype=INDEX_DTYPE)
        if perm.shape[0] != self.nrows or np.unique(perm).shape[0] != self.nrows:
            raise ValueError("perm must be a permutation of range(n)")
        inv = np.empty_like(perm)
        inv[perm] = np.arange(self.nrows, dtype=INDEX_DTYPE)
        rows, cols, vals = self.to_coo()
        return CSR.from_coo(self.shape, inv[rows], inv[cols], vals)

    def tril(self, k: int = -1) -> "CSR":
        """Lower-triangular part (entries with ``col - row <= k``)."""
        rows, cols, vals = self.to_coo()
        keep = cols - rows <= k
        return CSR.from_coo(self.shape, rows[keep], cols[keep], vals[keep])

    def triu(self, k: int = 1) -> "CSR":
        """Upper-triangular part (entries with ``col - row >= k``)."""
        rows, cols, vals = self.to_coo()
        keep = cols - rows >= k
        return CSR.from_coo(self.shape, rows[keep], cols[keep], vals[keep])

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------
    def equals(self, other: "CSR", *, rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Structural and numerical equality (after canonicalisation)."""
        if self.shape != other.shape:
            return False
        a, b = self.sort_indices(), other.sort_indices()
        if a.nnz != b.nnz:
            return False
        return (
            np.array_equal(a.indptr, b.indptr)
            and np.array_equal(a.indices, b.indices)
            and np.allclose(a.data, b.data, rtol=rtol, atol=atol)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSR(shape={self.shape}, nnz={self.nnz}, "
            f"sorted={self.sorted_indices}, dtype={self.data.dtype})"
        )
