"""Row-granular structural diff of CSR operands.

The delta-aware engine (:mod:`repro.engine.delta`) needs to answer "which
rows of this operand changed since the previous call?" in time proportional
to the *change*, not the matrix.  Two tiers cooperate:

* :func:`block_digests` — a chunked digest vector: one blake2b digest per
  block of :data:`DELTA_BLOCK_ROWS` rows (per-row counts + the block's
  index slice, plus its value slice when ``values=True``).  Comparing two
  digest vectors (:func:`dirty_blocks`) localises every change to a block
  in ``O(nblocks)`` without touching clean payload bytes.
* :func:`changed_rows` — the exact per-row refinement, vectorised: rows
  whose counts differ are dirty outright; equal-count candidate rows are
  compared element-wise by mapping each new element back to its old
  position through the row pointers.  Restricted to the dirty blocks'
  candidate rows, this costs ``O(dirty-block nnz)``.

Values are compared **bitwise** (byte equality), not numerically: the
delta engine's contract is bit-for-bit identity with a full recompute, so
``-0.0`` vs ``0.0`` and NaN payload changes must count as changes.  A row
that merely reordered equal entries also counts as dirty — conservative,
never wrong.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from .csr import CSR, INDEX_DTYPE

__all__ = [
    "DELTA_BLOCK_ROWS",
    "block_digests",
    "dirty_blocks",
    "changed_rows",
]

#: default row-block granularity of the chunked digest vector — small
#: enough that one flipped edge dirties a sliver of the digest work,
#: large enough that the vector stays tiny (nrows/256 digests)
DELTA_BLOCK_ROWS = 256


def _buf(arr: np.ndarray) -> memoryview:
    return memoryview(np.ascontiguousarray(arr))


def block_digests(
    mat: CSR, *, block_rows: int = DELTA_BLOCK_ROWS, values: bool = True
) -> np.ndarray:
    """Per-row-block digest vector of a CSR operand.

    Returns an ``("S16",)`` array of ``ceil(nrows / block_rows)`` blake2b
    digests; block ``i`` covers rows ``[i*block_rows, (i+1)*block_rows)``
    and digests the block's per-row counts, its index slice and (with
    ``values=True``) its value slice.  Equal blocks ⇒ equal digests;
    unequal digests ⇒ the block contains at least one changed row.
    """
    if block_rows <= 0:
        raise ValueError("block_rows must be positive")
    nrows = mat.nrows
    nblocks = -(-nrows // block_rows) if nrows else 0
    out = np.empty(nblocks, dtype="S16")
    counts = np.diff(mat.indptr)
    for bi in range(nblocks):
        lo = bi * block_rows
        hi = min(nrows, lo + block_rows)
        plo, phi = int(mat.indptr[lo]), int(mat.indptr[hi])
        h = hashlib.blake2b(digest_size=16)
        h.update(_buf(counts[lo:hi]))
        h.update(_buf(mat.indices[plo:phi]))
        if values:
            h.update(mat.data.dtype.str.encode())
            h.update(_buf(mat.data[plo:phi]))
        out[bi] = h.digest()
    return out


def dirty_blocks(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Indices of blocks whose digests differ between two digest vectors
    (as produced by :func:`block_digests` with the same granularity)."""
    if old.shape != new.shape:
        raise ValueError(
            "digest vectors differ in length; the operands were digested "
            "with different shapes or block granularities"
        )
    return np.flatnonzero(old != new)


def changed_rows(
    old: CSR,
    new: CSR,
    *,
    rows: Optional[np.ndarray] = None,
    values: bool = True,
) -> np.ndarray:
    """Exact sorted array of rows on which ``old`` and ``new`` differ.

    ``rows`` restricts the comparison to candidate rows (the dirty blocks'
    rows); ``None`` compares every row.  With ``values=False`` only the
    structure (per-row counts and column indices) is compared — the mask
    case, whose stored values never influence the product.  Value bytes
    are compared bitwise (see module docs).
    """
    if old.shape != new.shape:
        raise ValueError(
            f"cannot diff operands of different shapes: {old.shape} vs {new.shape}"
        )
    if rows is None:
        cand = np.arange(new.nrows, dtype=INDEX_DTYPE)
    else:
        cand = np.unique(np.asarray(rows, dtype=INDEX_DTYPE))
        if cand.size and (int(cand[0]) < 0 or int(cand[-1]) >= new.nrows):
            raise ValueError("candidate row index out of range")
    if cand.size == 0:
        return cand
    old_counts = np.diff(old.indptr)
    new_counts = np.diff(new.indptr)
    count_diff = old_counts[cand] != new_counts[cand]
    dirty = [cand[count_diff]]
    eq = cand[~count_diff]
    lens = new_counts[eq]
    total = int(lens.sum())
    if total:
        rep = np.repeat(np.arange(eq.size, dtype=INDEX_DTYPE), lens)
        off = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(
            np.cumsum(lens) - lens, lens
        )
        new_pos = new.indptr[eq][rep] + off
        old_pos = old.indptr[eq][rep] + off
        neq = new.indices[new_pos] != old.indices[old_pos]
        if values:
            nd, od = new.data[new_pos], old.data[old_pos]
            if nd.dtype != od.dtype:
                neq[:] = True
            else:
                byte_neq = nd.view(np.uint8).reshape(nd.size, -1) != od.view(
                    np.uint8
                ).reshape(od.size, -1)
                neq |= byte_neq.any(axis=1)
        if neq.any():
            hit = np.bincount(rep[neq], minlength=eq.size) > 0
            dirty.append(eq[hit])
    out = np.concatenate(dirty) if len(dirty) > 1 else dirty[0]
    out.sort()
    return out
