"""Minimal MatrixMarket-style IO for CSR matrices.

The paper draws its real-world inputs from the SuiteSparse Matrix
Collection, which distributes ``.mtx`` (MatrixMarket) files.  The collection
is unavailable offline (see DESIGN.md substitution table), but we keep a
small, dependency-free reader/writer so that users with local ``.mtx`` files
can run every benchmark on real matrices.

Supports the ``matrix coordinate`` format with ``real`` / ``integer`` /
``pattern`` fields and ``general`` / ``symmetric`` symmetry.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

import numpy as np

from .csr import CSR

__all__ = ["read_mtx", "write_mtx", "save_npz", "load_npz"]


def read_mtx(path_or_file: Union[str, Path, io.TextIOBase]) -> CSR:
    """Read a MatrixMarket coordinate file into a :class:`CSR` matrix.

    Symmetric inputs are expanded (mirror entries added, diagonal kept
    once).  Pattern inputs get value 1.0 for every entry.
    """
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "r") as fh:
            return read_mtx(fh)
    fh = path_or_file
    header = fh.readline()
    if not header.startswith("%%MatrixMarket"):
        raise ValueError("missing MatrixMarket header")
    parts = header.strip().split()
    if len(parts) < 5 or parts[1] != "matrix" or parts[2] != "coordinate":
        raise ValueError(f"unsupported MatrixMarket header: {header!r}")
    field, symmetry = parts[3], parts[4]
    if field not in ("real", "integer", "pattern"):
        raise ValueError(f"unsupported field type: {field}")
    if symmetry not in ("general", "symmetric"):
        raise ValueError(f"unsupported symmetry: {symmetry}")

    line = fh.readline()
    while line.startswith("%"):
        line = fh.readline()
    nrows, ncols, nnz = (int(tok) for tok in line.split())

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.ones(nnz, dtype=np.float64)
    for k in range(nnz):
        toks = fh.readline().split()
        rows[k] = int(toks[0]) - 1
        cols[k] = int(toks[1]) - 1
        if field != "pattern":
            vals[k] = float(toks[2])

    if symmetry == "symmetric":
        off = rows != cols  # mirror only off-diagonal entries
        rows, cols, vals = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
            np.concatenate([vals, vals[off]]),
        )

    return CSR.from_coo((nrows, ncols), rows, cols, vals)


def write_mtx(path_or_file: Union[str, Path, io.TextIOBase], mat: CSR) -> None:
    """Write a CSR matrix as a ``general real`` MatrixMarket file."""
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "w") as fh:
            write_mtx(fh, mat)
        return
    fh = path_or_file
    rows, cols, vals = mat.sort_indices().to_coo()
    fh.write("%%MatrixMarket matrix coordinate real general\n")
    fh.write(f"{mat.nrows} {mat.ncols} {mat.nnz}\n")
    for r, c, v in zip(rows, cols, vals):
        fh.write(f"{int(r) + 1} {int(c) + 1} {float(v):.17g}\n")


def save_npz(path_or_file, mat: CSR) -> None:
    """Save a CSR matrix to a NumPy ``.npz`` archive (fast binary IO for
    suite graphs and intermediate results)."""
    np.savez_compressed(
        path_or_file,
        format=np.array("csr"),
        shape=np.asarray(mat.shape, dtype=np.int64),
        indptr=mat.indptr,
        indices=mat.indices,
        data=mat.data,
        sorted_indices=np.array(mat.sorted_indices),
    )


def load_npz(path_or_file) -> CSR:
    """Load a CSR matrix written by :func:`save_npz`."""
    with np.load(path_or_file, allow_pickle=False) as z:
        if str(z["format"]) != "csr":
            raise ValueError(f"unsupported npz format {z['format']!r}")
        return CSR(
            tuple(int(x) for x in z["shape"]),
            z["indptr"],
            z["indices"],
            z["data"],
            sorted_indices=bool(z["sorted_indices"]),
        )
