"""Doubly-compressed sparse storage (DCSR / DCSC) — the hypersparse case.

Buluç & Gilbert [10] (the paper's heap-algorithm source) introduced DCSR
for *hypersparse* matrices (``nnz < nrows``), where CSR's dense ``indptr``
wastes O(nrows) space on empty rows: DCSR stores row pointers only for the
rows that have nonzeros, plus the list of those row ids.

SS:GB uses DCSR/DCSC for its hypersparse case (paper Section 3).  This
reproduction's kernels are CSR-centric (like the paper's, "to isolate the
algorithmic tradeoffs"), so the doubly-compressed formats are the
storage/transfer tier: k-truss iterations and BC frontiers become
hypersparse quickly, and — since the sharded execution path (see
``docs/sharding.md``) splits operands into row blocks of A and column
panels of B/M whose cells are mostly empty rows/columns — the shard grid
stores and ships every cell doubly-compressed.

Arrays (DCSR; :class:`DCSC` is the same structure over the transpose):

* ``rows`` — ids of the ``nzr`` nonempty rows, strictly increasing;
* ``indptr`` — length ``nzr + 1`` offsets into ``indices``/``data``;
* ``indices`` / ``data`` — as CSR.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .csr import CSR, INDEX_DTYPE, VALUE_DTYPE

__all__ = ["DCSR", "DCSC"]


class DCSR:
    """Doubly-compressed sparse row matrix."""

    __slots__ = ("shape", "rows", "indptr", "indices", "data")

    def __init__(self, shape, rows, indptr, indices, data, *, check=True):
        self.shape = (int(shape[0]), int(shape[1]))
        self.rows = np.ascontiguousarray(rows, dtype=INDEX_DTYPE)
        self.indptr = np.ascontiguousarray(indptr, dtype=INDEX_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
        self.data = np.ascontiguousarray(data, dtype=VALUE_DTYPE)
        if check:
            self.check()

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, mat: CSR) -> "DCSR":
        """Compress a CSR matrix (empty rows drop out of the row list).

        Already-sorted inputs take the fast path: ``sort_indices`` returns
        the matrix itself, and the ``indices``/``data`` arrays are shared
        (neither format ever mutates them).  Unsorted inputs canonicalise
        through ``sort_indices``, which materialises fresh arrays — so no
        copy is needed in either case.
        """
        mat = mat.sort_indices()
        nnz_per_row = mat.row_nnz()
        nz_rows = np.flatnonzero(nnz_per_row).astype(INDEX_DTYPE)
        indptr = np.concatenate(
            ([0], np.cumsum(nnz_per_row[nz_rows]))
        ).astype(INDEX_DTYPE)
        return cls(
            mat.shape, nz_rows, indptr, mat.indices, mat.data, check=False
        )

    @classmethod
    def from_sorted_coo(cls, shape, rows, cols, vals) -> "DCSR":
        """Build from ``(row, col)``-lexicographically-sorted COO triples.

        The shard builder's constructor: binning a sorted CSR's entries
        into grid cells preserves lexicographic order within each cell, so
        each cell's DCSR assembles in O(cell nnz) without touching the
        cell's (mostly empty) row space.  The row-boundary scan doubles as
        the ``indptr``.
        """
        rows = np.ascontiguousarray(rows, dtype=INDEX_DTYPE)
        if rows.size == 0:
            empty = np.empty(0, dtype=INDEX_DTYPE)
            return cls(shape, empty, np.zeros(1, dtype=INDEX_DTYPE),
                       empty, np.empty(0, dtype=VALUE_DTYPE), check=False)
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(rows)) + 1, [rows.size])
        ).astype(INDEX_DTYPE)
        return cls(shape, rows[starts[:-1]], starts, cols, vals, check=False)

    def to_csr(self) -> CSR:
        """Expand back to plain CSR."""
        nrows = self.shape[0]
        counts = np.zeros(nrows, dtype=INDEX_DTYPE)
        counts[self.rows] = np.diff(self.indptr)
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(INDEX_DTYPE)
        return CSR(self.shape, indptr, self.indices.copy(), self.data.copy(),
                   sorted_indices=True)

    def row_block(self, lo: int, hi: int) -> "DCSR":
        """Compact DCSR of rows ``[lo, hi)`` — shape ``(hi - lo, ncols)``.

        The sharded executor's A-side slicer: two binary searches over the
        nonempty-row list plus array views, so slicing a block costs
        O(log nzr + block nzr) regardless of the block's height — the
        doubly-compressed analogue of
        :func:`repro.parallel.executor.row_block`.  Row ids are rebased to
        the block-local frame; ``indices``/``data`` stay views.
        """
        if not (0 <= lo <= hi <= self.shape[0]):
            raise ValueError(f"row block [{lo}, {hi}) out of range")
        p0 = int(np.searchsorted(self.rows, lo, side="left"))
        p1 = int(np.searchsorted(self.rows, hi, side="left"))
        s0, s1 = int(self.indptr[p0]), int(self.indptr[p1])
        return DCSR(
            (hi - lo, self.shape[1]),
            self.rows[p0:p1] - lo,
            self.indptr[p0:p1 + 1] - s0,
            self.indices[s0:s1],
            self.data[s0:s1],
            check=False,
        )

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    @property
    def nzr(self) -> int:
        """Number of nonempty rows (the compression win vs CSR)."""
        return int(self.rows.shape[0])

    def storage_words(self) -> int:
        """Index+value words stored (the hypersparse saving: compare with
        a CSR's ``nrows + 1 + 2 * nnz``)."""
        return self.nzr + (self.nzr + 1) + 2 * self.nnz

    def is_hypersparse(self) -> bool:
        return self.nnz < self.shape[0]

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row by *original* id (binary search over the row list)."""
        pos = np.searchsorted(self.rows, i)
        if pos < self.nzr and self.rows[pos] == i:
            lo, hi = self.indptr[pos], self.indptr[pos + 1]
            return self.indices[lo:hi], self.data[lo:hi]
        empty = np.empty(0, dtype=INDEX_DTYPE)
        return empty, np.empty(0, dtype=VALUE_DTYPE)

    def iter_nonempty_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row_id, cols, vals)`` for nonempty rows only — the
        iteration pattern that makes hypersparse SpGEMM O(nzr), not
        O(nrows)."""
        for p in range(self.nzr):
            lo, hi = self.indptr[p], self.indptr[p + 1]
            yield int(self.rows[p]), self.indices[lo:hi], self.data[lo:hi]

    # ------------------------------------------------------------------
    def check(self) -> "DCSR":
        """Validate structural invariants; raise ``ValueError`` on breakage."""
        if self.rows.shape[0] + 1 != self.indptr.shape[0]:
            raise ValueError("indptr length must be nzr + 1")
        if self.rows.shape[0]:
            if np.any(np.diff(self.rows) <= 0):
                raise ValueError("row ids must be strictly increasing")
            if self.rows[0] < 0 or self.rows[-1] >= self.shape[0]:
                raise ValueError("row id out of range")
            if np.any(np.diff(self.indptr) <= 0):
                raise ValueError("DCSR rows must be nonempty")
        if self.indptr[0] != 0 or self.indptr[-1] != self.nnz:
            raise ValueError("indptr must span [0, nnz]")
        if self.nnz and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ValueError("column index out of range")
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DCSR(shape={self.shape}, nnz={self.nnz}, nzr={self.nzr}, "
            f"hypersparse={self.is_hypersparse()})"
        )


class DCSC:
    """Doubly-compressed sparse column matrix: the DCSR of the transpose.

    Mirrors :class:`repro.sparse.csc.CSC`'s thin-veneer design — a column
    view over the row format — but over :class:`DCSR`, so a column *panel*
    slices out of the compressed column list in O(log nzc + panel nnz)
    (:meth:`column_panel`).  This is the B/M-side shard format: a column
    panel of B touches only the panel's nonempty columns, never the O(ncols)
    pointer space a CSC panel would carry.
    """

    __slots__ = ("shape", "_t")

    def __init__(self, shape, dcsr_of_transpose: DCSR) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        if dcsr_of_transpose.shape != (self.shape[1], self.shape[0]):
            raise ValueError("transpose DCSR has incompatible shape")
        self._t = dcsr_of_transpose

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, mat: CSR) -> "DCSC":
        """Compress a CSR matrix column-wise (empty columns drop out)."""
        return cls(mat.shape, DCSR.from_csr(mat.transpose()))

    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        return self._t.nnz

    @property
    def cols(self) -> np.ndarray:
        """Ids of the nonempty columns, strictly increasing."""
        return self._t.rows

    @property
    def nzc(self) -> int:
        """Number of nonempty columns."""
        return self._t.nzr

    def storage_words(self) -> int:
        return self._t.storage_words()

    def is_hypersparse(self) -> bool:
        return self.nnz < self.shape[1]

    def col(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row indices and values of column ``j`` (binary search)."""
        return self._t.row(j)

    # ------------------------------------------------------------------
    def column_panel(self, lo: int, hi: int) -> "DCSC":
        """Compact DCSC of columns ``[lo, hi)`` — shape ``(nrows, hi - lo)``.

        The sharded executor's B/M-side slicer: delegates to
        :meth:`DCSR.row_block` on the transpose, so a panel costs
        O(log nzc + panel nnz).  Column ids are rebased to the panel-local
        frame.
        """
        return DCSC((self.shape[0], hi - lo), self._t.row_block(lo, hi))

    def to_csr(self) -> CSR:
        """Expand back to a plain (row-major) CSR."""
        return self._t.to_csr().transpose()

    def to_transposed_dcsr(self) -> DCSR:
        """The backing DCSR of the transpose (no copy).

        The publication form for shared-memory transfer: a DCSC shard ships
        as its transpose's DCSR arrays and is rewrapped on the far side —
        the same convention as :meth:`repro.sparse.csc.CSC.to_transposed_csr`.
        """
        return self._t

    def check(self) -> "DCSC":
        self._t.check()
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DCSC(shape={self.shape}, nnz={self.nnz}, nzc={self.nzc}, "
            f"hypersparse={self.is_hypersparse()})"
        )
