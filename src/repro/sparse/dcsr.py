"""Doubly-Compressed Sparse Row (DCSR) — hypersparse storage.

Buluç & Gilbert [10] (the paper's heap-algorithm source) introduced DCSR
for *hypersparse* matrices (``nnz < nrows``), where CSR's dense ``indptr``
wastes O(nrows) space on empty rows: DCSR stores row pointers only for the
rows that have nonzeros, plus the list of those row ids.

SS:GB uses DCSR/DCSC for its hypersparse case (paper Section 3).  This
reproduction's kernels are CSR-centric (like the paper's, "to isolate the
algorithmic tradeoffs"), so DCSR is provided as a storage/conversion
format: k-truss iterations and BC frontiers become hypersparse quickly,
and storing them doubly-compressed is the memory-honest representation.

Arrays:

* ``rows`` — ids of the ``nzr`` nonempty rows, strictly increasing;
* ``indptr`` — length ``nzr + 1`` offsets into ``indices``/``data``;
* ``indices`` / ``data`` — as CSR.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .csr import CSR, INDEX_DTYPE, VALUE_DTYPE

__all__ = ["DCSR"]


class DCSR:
    """Doubly-compressed sparse row matrix."""

    __slots__ = ("shape", "rows", "indptr", "indices", "data")

    def __init__(self, shape, rows, indptr, indices, data, *, check=True):
        self.shape = (int(shape[0]), int(shape[1]))
        self.rows = np.ascontiguousarray(rows, dtype=INDEX_DTYPE)
        self.indptr = np.ascontiguousarray(indptr, dtype=INDEX_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
        self.data = np.ascontiguousarray(data, dtype=VALUE_DTYPE)
        if check:
            self.check()

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, mat: CSR) -> "DCSR":
        """Compress a CSR matrix (empty rows drop out of the row list)."""
        mat = mat.sort_indices()
        nnz_per_row = mat.row_nnz()
        nz_rows = np.flatnonzero(nnz_per_row).astype(INDEX_DTYPE)
        indptr = np.concatenate(
            ([0], np.cumsum(nnz_per_row[nz_rows]))
        ).astype(INDEX_DTYPE)
        return cls(
            mat.shape, nz_rows, indptr, mat.indices.copy(), mat.data.copy()
        )

    def to_csr(self) -> CSR:
        """Expand back to plain CSR."""
        nrows = self.shape[0]
        counts = np.zeros(nrows, dtype=INDEX_DTYPE)
        counts[self.rows] = np.diff(self.indptr)
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(INDEX_DTYPE)
        return CSR(self.shape, indptr, self.indices.copy(), self.data.copy(),
                   sorted_indices=True)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    @property
    def nzr(self) -> int:
        """Number of nonempty rows (the compression win vs CSR)."""
        return int(self.rows.shape[0])

    def storage_words(self) -> int:
        """Index+value words stored (the hypersparse saving: compare with
        a CSR's ``nrows + 1 + 2 * nnz``)."""
        return self.nzr + (self.nzr + 1) + 2 * self.nnz

    def is_hypersparse(self) -> bool:
        return self.nnz < self.shape[0]

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row by *original* id (binary search over the row list)."""
        pos = np.searchsorted(self.rows, i)
        if pos < self.nzr and self.rows[pos] == i:
            lo, hi = self.indptr[pos], self.indptr[pos + 1]
            return self.indices[lo:hi], self.data[lo:hi]
        empty = np.empty(0, dtype=INDEX_DTYPE)
        return empty, np.empty(0, dtype=VALUE_DTYPE)

    def iter_nonempty_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row_id, cols, vals)`` for nonempty rows only — the
        iteration pattern that makes hypersparse SpGEMM O(nzr), not
        O(nrows)."""
        for p in range(self.nzr):
            lo, hi = self.indptr[p], self.indptr[p + 1]
            yield int(self.rows[p]), self.indices[lo:hi], self.data[lo:hi]

    # ------------------------------------------------------------------
    def check(self) -> "DCSR":
        """Validate structural invariants; raise ``ValueError`` on breakage."""
        if self.rows.shape[0] + 1 != self.indptr.shape[0]:
            raise ValueError("indptr length must be nzr + 1")
        if self.rows.shape[0]:
            if np.any(np.diff(self.rows) <= 0):
                raise ValueError("row ids must be strictly increasing")
            if self.rows[0] < 0 or self.rows[-1] >= self.shape[0]:
                raise ValueError("row id out of range")
            if np.any(np.diff(self.indptr) <= 0):
                raise ValueError("DCSR rows must be nonempty")
        if self.indptr[0] != 0 or self.indptr[-1] != self.nnz:
            raise ValueError("indptr must span [0, nnz]")
        if self.nnz and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ValueError("column index out of range")
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DCSR(shape={self.shape}, nnz={self.nnz}, nzr={self.nzr}, "
            f"hypersparse={self.is_hypersparse()})"
        )
