"""Sparse-matrix substrate: CSR/CSC containers, element-wise ops, IO.

The paper works exclusively in CSR (CSC only for the pull-based inner
product); this subpackage provides those formats over raw NumPy arrays plus
the structural helpers the applications need (masking, triangular extraction,
degree-sorted relabeling lives in :mod:`repro.graphs.relabel`).
"""

from .csr import CSR
from .csc import CSC
from .dcsr import DCSC, DCSR
from .diff import DELTA_BLOCK_ROWS, block_digests, changed_rows, dirty_blocks
from .ops import (
    apply_mask,
    ewise_add,
    ewise_mult,
    mask_pattern,
    nnz_overlap,
    pattern_difference,
    pattern_intersection,
    pattern_union,
    reduce_sum,
    row_reduce,
)
from .io import load_npz, read_mtx, save_npz, write_mtx

__all__ = [
    "CSR",
    "CSC",
    "DCSR",
    "DCSC",
    "DELTA_BLOCK_ROWS",
    "block_digests",
    "changed_rows",
    "dirty_blocks",
    "apply_mask",
    "ewise_add",
    "ewise_mult",
    "mask_pattern",
    "nnz_overlap",
    "pattern_difference",
    "pattern_intersection",
    "pattern_union",
    "reduce_sum",
    "row_reduce",
    "read_mtx",
    "write_mtx",
    "save_npz",
    "load_npz",
]
