"""Compressed Sparse Column (CSC) matrix container.

The paper uses CSC in exactly one place: the pull-based inner-product
algorithm (Section 4.1) stores ``B`` column-major so that the sparse dot
product ``A[i,:] . B[:,j]`` walks a contiguous column.  CSC of ``B`` is the
CSR of ``B^T``, so this class is a thin column-access veneer over
:class:`repro.sparse.csr.CSR`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .csr import CSR

__all__ = ["CSC"]


class CSC:
    """CSC view of a sparse matrix: ``indptr`` over columns, ``indices`` are
    row ids.  Internally stored as the CSR of the transpose."""

    __slots__ = ("shape", "_t")

    def __init__(self, shape: Tuple[int, int], csr_of_transpose: CSR) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        if csr_of_transpose.shape != (self.shape[1], self.shape[0]):
            raise ValueError("transpose CSR has incompatible shape")
        self._t = csr_of_transpose

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, mat: CSR) -> "CSC":
        """Convert a CSR matrix to CSC (columns end up sorted by row id)."""
        return cls(mat.shape, mat.transpose())

    @classmethod
    def from_coo(cls, shape, rows, cols, vals=None) -> "CSC":
        t = CSR.from_coo((shape[1], shape[0]), np.asarray(cols), np.asarray(rows), vals)
        return cls(shape, t)

    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        return self._t.nnz

    @property
    def indptr(self) -> np.ndarray:
        """Column pointers."""
        return self._t.indptr

    @property
    def indices(self) -> np.ndarray:
        """Row indices, sorted within each column."""
        return self._t.indices

    @property
    def data(self) -> np.ndarray:
        return self._t.data

    def col(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Views of the row indices and values of column ``j``."""
        return self._t.row(j)

    def col_nnz(self) -> np.ndarray:
        return self._t.row_nnz()

    def to_csr(self) -> CSR:
        return self._t.transpose()

    def to_transposed_csr(self) -> CSR:
        """The backing CSR of the transpose (no copy).

        This is the publication form for shared-memory transfer: a CSC is
        shipped as its transpose's CSR arrays and rewrapped on the far side.
        """
        return self._t

    def to_dense(self) -> np.ndarray:
        return self._t.to_dense().T

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSC(shape={self.shape}, nnz={self.nnz})"
