"""Semiring algebra used by every masked SpGEMM kernel."""

from .semiring import (
    MAX_TIMES,
    MIN_FIRST,
    MIN_PLUS,
    OR_AND,
    PLUS_AND,
    PLUS_FIRST,
    PLUS_PAIR,
    PLUS_SECOND,
    PLUS_TIMES,
    STANDARD_SEMIRINGS,
    Semiring,
)

__all__ = [
    "Semiring",
    "PLUS_TIMES",
    "PLUS_PAIR",
    "PLUS_AND",
    "MIN_PLUS",
    "MAX_TIMES",
    "OR_AND",
    "MIN_FIRST",
    "PLUS_FIRST",
    "PLUS_SECOND",
    "STANDARD_SEMIRINGS",
]
