"""GraphBLAS-style semirings.

The paper (Section 2) notes that graph algorithms run Masked SpGEMM over
various semirings; the algorithm descriptions use the arithmetic semiring for
simplicity, and we do the same, but every kernel in :mod:`repro.core`
accepts any :class:`Semiring`.  The applications use:

* Triangle Counting — ``PLUS_PAIR`` (each matched pair contributes 1).
* k-truss — ``PLUS_PAIR`` on the pruned adjacency structure.
* Betweenness Centrality — ``PLUS_TIMES`` (path-count accumulation).
* BFS — ``MIN_FIRST`` / ``ANY_PAIR``-style traversal.

A semiring bundles a commutative, associative *add* monoid (with identity)
and a *multiply* operator.  The kernels use the scalar callables for the
reference implementations and the NumPy ufunc counterparts in the
vectorized fast paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "Semiring",
    "PLUS_TIMES",
    "PLUS_PAIR",
    "PLUS_AND",
    "MIN_PLUS",
    "MAX_TIMES",
    "OR_AND",
    "MIN_FIRST",
    "PLUS_FIRST",
    "PLUS_SECOND",
    "STANDARD_SEMIRINGS",
]


@dataclass(frozen=True)
class Semiring:
    """A semiring ``(add, add_identity, mult)``.

    Attributes
    ----------
    name:
        Display name, e.g. ``"plus_times"``.
    add:
        Scalar binary addition ``(x, y) -> x (+) y``.
    mult:
        Scalar binary multiplication ``(a, b) -> a (x) b``.
    add_identity:
        The identity of the add monoid (the "zero").
    add_ufunc / mult_ufunc:
        Vectorized counterparts.  ``add_ufunc`` must support ``.at`` and
        ``.reduceat`` for the fast kernels; ``mult_ufunc`` is applied
        elementwise to aligned arrays.
    """

    name: str
    add: Callable[[float, float], float]
    mult: Callable[[float, float], float]
    add_identity: float = 0.0
    add_ufunc: np.ufunc = field(default=np.add)
    mult_ufunc: Callable = field(default=np.multiply)

    def multiply(self, a, b):
        """Scalar semiring multiply."""
        return self.mult(a, b)

    def plus(self, x, y):
        """Scalar semiring add."""
        return self.add(x, y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


def _pair(a, b):
    """GraphBLAS PAIR operator: 1 whenever both operands exist."""
    return 1.0


def _pair_ufunc(a, b):
    return np.ones(np.broadcast(a, b).shape, dtype=np.float64)


def _first(a, b):
    return a


def _first_ufunc(a, b):
    return np.broadcast_arrays(a, b)[0].astype(np.float64, copy=True)


def _second(a, b):
    return b


def _second_ufunc(a, b):
    return np.broadcast_arrays(a, b)[1].astype(np.float64, copy=True)


def _and(a, b):
    return float(bool(a) and bool(b))


def _and_ufunc(a, b):
    return np.logical_and(a, b).astype(np.float64)


PLUS_TIMES = Semiring("plus_times", lambda x, y: x + y, lambda a, b: a * b)

PLUS_PAIR = Semiring(
    "plus_pair", lambda x, y: x + y, _pair, add_ufunc=np.add, mult_ufunc=_pair_ufunc
)

PLUS_AND = Semiring(
    "plus_and", lambda x, y: x + y, _and, add_ufunc=np.add, mult_ufunc=_and_ufunc
)

MIN_PLUS = Semiring(
    "min_plus",
    min,
    lambda a, b: a + b,
    add_identity=np.inf,
    add_ufunc=np.minimum,
    mult_ufunc=np.add,
)

MAX_TIMES = Semiring(
    "max_times",
    max,
    lambda a, b: a * b,
    add_identity=-np.inf,
    add_ufunc=np.maximum,
    mult_ufunc=np.multiply,
)

OR_AND = Semiring(
    "or_and",
    lambda x, y: float(bool(x) or bool(y)),
    _and,
    add_ufunc=np.logical_or,
    mult_ufunc=_and_ufunc,
)

MIN_FIRST = Semiring(
    "min_first",
    min,
    _first,
    add_identity=np.inf,
    add_ufunc=np.minimum,
    mult_ufunc=_first_ufunc,
)

PLUS_FIRST = Semiring(
    "plus_first", lambda x, y: x + y, _first, add_ufunc=np.add, mult_ufunc=_first_ufunc
)

PLUS_SECOND = Semiring(
    "plus_second",
    lambda x, y: x + y,
    _second,
    add_ufunc=np.add,
    mult_ufunc=_second_ufunc,
)

STANDARD_SEMIRINGS = {
    s.name: s
    for s in (
        PLUS_TIMES,
        PLUS_PAIR,
        PLUS_AND,
        MIN_PLUS,
        MAX_TIMES,
        OR_AND,
        MIN_FIRST,
        PLUS_FIRST,
        PLUS_SECOND,
    )
}
