"""Statistical regression gate over benchmark history runs.

``python -m repro.bench.regress`` compares a *head* run (a fresh
collection, or a ``BENCH_<sha>.json`` artifact) against a *baseline* (the
newest run of ``BENCH_history.json``, or another single-run artifact) and
renders a machine-readable verdict plus a human table.

The gate is deliberately robust rather than clever.  Per matched key::

    delta = head_median - base_median
    noise = 1.4826 * max(base_mad, head_mad)
    band  = clamp(k_mad * noise,
                  lo = min_rel * base_median,
                  hi = max_rel * base_median)
    regressed  iff  delta >  band
    improved   iff  delta < -band

``1.4826 * MAD`` is the consistent sigma estimator for normal noise, so
``k_mad`` reads as "how many sigmas of measured run-to-run noise".  The
``min_rel`` floor keeps near-zero-MAD records (tiny cases whose repeats
quantise identically) from turning scheduler jitter into verdicts, and the
``max_rel`` ceiling caps how much a noisy tiny case can excuse — however
wild the repeats looked, a 2x median shift is never written off as noise.
The defaults (``k_mad=5``, ``min_rel=0.25``, ``max_rel=0.5``) make the two
acceptance anchors hold deterministically: an injected 2x slowdown
(``delta = 1.0 * base``) always clears the <=0.5*base band, while
re-running an identical tree (``delta = 0``) never does.

Counters travel with every comparison: when a key regresses in time but
its operation counters are unchanged, the report says so — that signature
means the *machine* (or the noise model) moved, not the algorithm.

Exit codes: 0 clean, 1 regression verdict, 2 usage/malformed input.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List, Optional

from .history import SCHEMA_VERSION, latest_run, record_key
from .reporting import render_table

__all__ = [
    "DEFAULT_K_MAD",
    "DEFAULT_MIN_REL",
    "DEFAULT_MAX_REL",
    "compare_records",
    "compare_runs",
    "render_report",
    "main",
]

DEFAULT_K_MAD = 5.0
DEFAULT_MIN_REL = 0.25
DEFAULT_MAX_REL = 0.5

#: MAD -> sigma for normally distributed noise
_MAD_SIGMA = 1.4826


def _runtime_drift(base: dict, head: dict, *, k_mad: float, min_rel: float,
                   max_rel: float) -> Optional[dict]:
    """Compact runtime-drift verdict for one record pair, or ``None``.

    Only records collected with ``--sample-runtime`` carry a ``"runtime"``
    summary; when both sides do, the sampled peaks/throughput (plus the
    prediction-ledger ratios, when traced) go through
    :func:`repro.observe.runtime.drift` with this gate's band parameters.
    Advisory: memory/latency anomalies ride on the row, they do not flip
    the timing gate's verdict.
    """
    base_rt = base.get("runtime")
    head_rt = head.get("runtime")
    if not base_rt or not head_rt:
        return None
    from ..observe.runtime import drift

    base_ledger = base.get("predictions") or {}
    verdict = drift(
        head_rt, [base_rt],
        head_ledger=head.get("predictions") or None,
        baseline_ledgers=[base_ledger] if base_ledger else None,
        k_mad=k_mad, min_rel=min_rel, max_rel=max_rel,
    )
    return {"verdict": verdict["verdict"], "flagged": verdict["flagged"]}


def compare_records(
    base: dict, head: dict, *, k_mad: float = DEFAULT_K_MAD,
    min_rel: float = DEFAULT_MIN_REL, max_rel: float = DEFAULT_MAX_REL,
) -> dict:
    """One key's comparison row (see module docs for the band formula)."""
    base_median = float(base["median_s"])
    head_median = float(head["median_s"])
    noise = _MAD_SIGMA * max(float(base.get("mad_s", 0.0)),
                             float(head.get("mad_s", 0.0)))
    band = min(max(k_mad * noise, min_rel * base_median),
               max(max_rel, min_rel) * base_median)
    delta = head_median - base_median
    if delta > band:
        status = "regressed"
    elif delta < -band:
        status = "improved"
    else:
        status = "ok"
    return {
        "key": record_key(base),
        "base_median_s": base_median,
        "head_median_s": head_median,
        "delta_s": delta,
        "band_s": band,
        "ratio": head_median / base_median if base_median > 0 else float("inf"),
        "status": status,
        "counters_changed": base.get("counters") != head.get("counters"),
        # session-enabled records carry cache telemetry; a shift there with
        # unchanged counters means the caching regressed, not the kernels
        "cache_changed": base.get("session") != head.get("session"),
        # sampled-runtime records additionally carry a drift verdict over
        # peak RSS/shm and throughput (None when either side is unsampled)
        "runtime_drift": _runtime_drift(base, head, k_mad=k_mad,
                                        min_rel=min_rel, max_rel=max_rel),
    }


def compare_runs(
    base_run: dict, head_run: dict, *, k_mad: float = DEFAULT_K_MAD,
    min_rel: float = DEFAULT_MIN_REL, max_rel: float = DEFAULT_MAX_REL,
) -> dict:
    """Full verdict payload for two runs (pure — no I/O, unit-testable)."""
    base_by_key: Dict[str, dict] = {
        record_key(r): r for r in base_run.get("records", [])
    }
    head_by_key: Dict[str, dict] = {
        record_key(r): r for r in head_run.get("records", [])
    }
    comparisons: List[dict] = []
    for key in sorted(base_by_key.keys() & head_by_key.keys()):
        comparisons.append(
            compare_records(base_by_key[key], head_by_key[key],
                            k_mad=k_mad, min_rel=min_rel, max_rel=max_rel)
        )
    missing = sorted(base_by_key.keys() - head_by_key.keys())
    added = sorted(head_by_key.keys() - base_by_key.keys())
    regressions = [c["key"] for c in comparisons if c["status"] == "regressed"]
    improvements = [c["key"] for c in comparisons if c["status"] == "improved"]
    runtime_drifts = [
        c["key"] for c in comparisons
        if (c.get("runtime_drift") or {}).get("verdict") == "drift"
    ]
    base_env = base_run.get("env", {})
    head_env = head_run.get("env", {})
    env_mismatch = sorted(
        k for k in (set(base_env) | set(head_env)) - {"git_sha"}
        if base_env.get(k) != head_env.get(k)
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "verdict": "regression" if regressions else "ok",
        "k_mad": k_mad,
        "min_rel": min_rel,
        "max_rel": max_rel,
        "base_sha": base_env.get("git_sha", "unknown"),
        "head_sha": head_env.get("git_sha", "unknown"),
        "env_mismatch": env_mismatch,
        "regressions": regressions,
        "improvements": improvements,
        # advisory: keys whose sampled memory/throughput drifted out of the
        # MAD band even if their timing stayed inside it
        "runtime_drifts": runtime_drifts,
        "missing_in_head": missing,
        "new_in_head": added,
        "comparisons": comparisons,
    }


def _change_note(c: dict) -> str:
    """Cause attribution suffix for a non-ok row: counters changed means
    the algorithm did different work; cache counters changed (with stable
    work counters) points at the session caches instead.  Runtime drift is
    orthogonal to timing status, so its note rides on any row."""
    drift = c.get("runtime_drift") or {}
    drift_note = (
        " (runtime drift: " + ", ".join(drift["flagged"]) + ")"
        if drift.get("verdict") == "drift" else ""
    )
    if c["status"] == "ok":
        return drift_note
    if c["counters_changed"]:
        return " (counters changed)" + drift_note
    if c.get("cache_changed"):
        return " (cache counters changed)" + drift_note
    return drift_note


def render_report(verdict: dict) -> str:
    """The human half of the verdict: one table row per compared key."""
    rows = []
    for c in verdict["comparisons"]:
        rows.append([
            {"ok": " ", "improved": "+", "regressed": "!"}[c["status"]],
            c["key"],
            f"{c['base_median_s'] * 1e3:.3f}",
            f"{c['head_median_s'] * 1e3:.3f}",
            f"{c['ratio']:.2f}x",
            f"{c['band_s'] * 1e3:.3f}",
            c["status"] + _change_note(c),
        ])
    lines = [render_table(
        ["", "key", "base ms", "head ms", "ratio", "band ms", "status"],
        rows,
        title=(f"regress: {verdict['base_sha'][:12]} -> "
               f"{verdict['head_sha'][:12]} "
               f"(k_mad={verdict['k_mad']:g}, min_rel={verdict['min_rel']:g})"),
    )]
    if verdict["env_mismatch"]:
        lines.append(
            "warning: environment differs between runs: "
            + ", ".join(verdict["env_mismatch"])
        )
    for label, keys in (("missing in head", verdict["missing_in_head"]),
                        ("new in head", verdict["new_in_head"])):
        if keys:
            lines.append(f"note: {label}: " + ", ".join(keys))
    if verdict.get("runtime_drifts"):
        lines.append("note: runtime drift (advisory): "
                     + ", ".join(verdict["runtime_drifts"]))
    lines.append(f"verdict: {verdict['verdict'].upper()}"
                 + (f" ({len(verdict['regressions'])} key(s))"
                    if verdict["regressions"] else ""))
    return "\n".join(lines)


def _load_run(path) -> dict:
    with open(path) as fh:
        payload = json.load(fh)
    return latest_run(payload)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regress",
        description="Gate head benchmark timings against a history baseline.",
    )
    parser.add_argument("--baseline", required=True,
                        help="BENCH_history.json (its newest run) or a "
                             "single BENCH_<sha>.json artifact")
    parser.add_argument("--head",
                        help="head run artifact; omitted = collect fresh")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats for a fresh head collection")
    parser.add_argument("--k-mad", type=float, default=DEFAULT_K_MAD,
                        help="noise-band width in MAD-sigmas")
    parser.add_argument("--min-rel", type=float, default=DEFAULT_MIN_REL,
                        help="relative band floor")
    parser.add_argument("--max-rel", type=float, default=DEFAULT_MAX_REL,
                        help="relative band ceiling (noise can never excuse "
                             "more than this fraction of the baseline)")
    parser.add_argument("--json", dest="json_out",
                        help="also write the verdict payload here")
    args = parser.parse_args(argv)

    try:
        base_run = _load_run(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: cannot load baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2
    if args.head is not None:
        try:
            head_run = _load_run(args.head)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot load head {args.head}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        from .history import collect_run

        if args.repeats < 1:
            parser.error("--repeats must be >= 1")
        head_run = collect_run(repeats=args.repeats)

    verdict = compare_runs(base_run, head_run, k_mad=args.k_mad,
                           min_rel=args.min_rel, max_rel=args.max_rel)
    # record which machine calibration (if any) was active: a fitted config
    # changes plan decisions, so a verdict is only comparable to verdicts
    # gated under the same calibration provenance
    from ..machine import load_fitted_payload

    fitted = load_fitted_payload()
    verdict["fitted_machine"] = (
        fitted["provenance"] if fitted is not None else None
    )
    print(render_report(verdict))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(verdict, fh, indent=1)
            fh.write("\n")
        print(f"wrote {os.path.abspath(args.json_out)}")
    return 1 if verdict["verdict"] == "regression" else 0


if __name__ == "__main__":
    sys.exit(main())
