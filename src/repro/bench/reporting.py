"""ASCII rendering of benchmark results.

The benches print the same *content* as the paper's figures — profile
curves, GFLOPS-vs-scale series, best-scheme grids — as plain-text tables
and sparkline-style rows, so every experiment is reproducible from a
terminal with no plotting stack.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from .perfprofile import PerformanceProfile

__all__ = [
    "render_table",
    "render_profile",
    "render_series",
    "render_grid",
    "save_json",
    "save_figure_json",
    "load_json",
]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], *, title: str = ""
) -> str:
    """Fixed-width table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in r] for r in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for r in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(x) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1e4 or abs(x) < 1e-3:
            return f"{x:.3e}"
        return f"{x:.4g}"
    return str(x)


def render_profile(profile: PerformanceProfile, *, title: str = "", taus=None) -> str:
    """Profile curves as a table: one row per scheme, columns = rho(tau)."""
    taus = list(taus) if taus is not None else [1.0, 1.25, 1.5, 2.0, 4.0, 8.0]
    grid = np.asarray(taus, dtype=float)
    # re-evaluate rho on the requested taus
    rows = []
    for s in profile.ranking():
        i = profile.schemes.index(s)
        r = profile.ratios[i]
        finite = np.isfinite(r)
        rho = [
            float(np.count_nonzero(r[finite] <= t) / max(1, len(profile.cases)))
            for t in grid
        ]
        rows.append([s] + [f"{v:.2f}" for v in rho])
    headers = ["scheme"] + [f"tau={t:g}" for t in grid]
    return render_table(headers, rows, title=title)


def render_series(
    x_label: str,
    xs: Sequence,
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    fmt: str = "{:.3g}",
) -> str:
    """Line-chart content as a table: one row per scheme, columns = x."""
    headers = [x_label] + [str(x) for x in xs]
    rows = []
    for name in series:
        rows.append([name] + [fmt.format(v) if np.isfinite(v) else "-" for v in series[name]])
    return render_table(headers, rows, title=title)


def render_grid(
    row_label: str,
    col_label: str,
    row_vals: Sequence,
    col_vals: Sequence,
    winners: Dict[tuple, str],
    *,
    title: str = "",
) -> str:
    """Figure-7-style best-scheme grid: rows = input degree, cols = mask
    degree, cells = winning scheme name."""
    headers = [f"{row_label}\\{col_label}"] + [str(c) for c in col_vals]
    rows = []
    for rv in row_vals:
        rows.append([str(rv)] + [winners.get((rv, cv), "?") for cv in col_vals])
    return render_table(headers, rows, title=title)


def save_json(path, payload: dict) -> None:
    """Persist an experiment's raw numbers as JSON (``times`` dicts,
    series, grids).  Tuple keys are flattened to "a,b" strings; NumPy
    scalars/arrays are converted."""
    import json

    def conv(obj):
        if isinstance(obj, dict):
            return {
                (",".join(map(str, k)) if isinstance(k, tuple) else str(k)):
                    conv(v)
                for k, v in obj.items()
            }
        if isinstance(obj, (list, tuple)):
            return [conv(v) for v in obj]
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, (np.floating, np.integer)):
            return obj.item()
        if isinstance(obj, float) and obj != obj:  # NaN
            return None
        return obj

    with open(path, "w") as fh:
        json.dump(conv(payload), fh, indent=1, allow_nan=False, default=str)


def save_figure_json(path, data, *, title: str = "", rendered: str = "") -> None:
    """The one JSON emitter every figure benchmark shares.

    Wraps an experiment's structured numbers in a uniform envelope —
    ``{"title", "rendered", "data"}`` — so downstream tooling (the history
    store's consumers, ad-hoc notebooks) can read any
    ``benchmarks/results/*.json`` without knowing which figure produced
    it.  ``rendered`` carries the ASCII table the `.txt` twin shows; the
    machine-readable truth lives under ``data`` (converted exactly as
    :func:`save_json` converts: tuple keys flattened, NumPy unwrapped).
    """
    save_json(path, {"title": title, "rendered": rendered, "data": data})


def load_json(path) -> dict:
    """Load an experiment payload written by :func:`save_json`."""
    import json

    with open(path) as fh:
        return json.load(fh)
