"""Per-figure experiment definitions.

One function per evaluation figure of the paper (see DESIGN.md's
per-experiment index).  Each returns a plain-data result object that the
``benchmarks/`` harness prints (via :mod:`repro.bench.reporting`) and
asserts the paper's qualitative shape on.  Parameters default to
laptop-scale versions of the paper's settings; every knob is exposed so a
beefier machine can push toward the paper's sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..machine import (
    HASWELL,
    MachineConfig,
    RowCostModel,
    simulate_makespan,
    speedup_curve,
    total_flops,
)
from ..semiring import PLUS_PAIR
from ..sparse import CSR
from ..graphs import erdos_renyi, load_all, rmat, suite_names
from ..apps import betweenness_centrality, ktruss, triangle_count_detail
from .perfprofile import PerformanceProfile, performance_profile
from .runner import (
    Call,
    OUR_SCHEMES,
    OUR_SCHEMES_1P,
    SSGB_SCHEMES,
    Scheme,
    modeled_seconds,
    run_cases,
)

__all__ = [
    "fig07_density_grid",
    "fig08_tc_profiles",
    "fig09_tc_vs_ssgb",
    "fig10_tc_rmat_scaling",
    "fig11_tc_strong_scaling",
    "fig12_ktruss_profiles",
    "fig13_ktruss_vs_ssgb",
    "fig14_ktruss_rmat_scaling",
    "fig15_bc_rmat_scaling",
    "fig16_bc_profiles",
    "BC_SUITE_EXCLUDE",
    "DensityGridResult",
    "ScalingResult",
    "tc_cases",
    "ktruss_cases",
    "bc_cases",
]


# ----------------------------------------------------------------------
# case builders: app -> list of masked SpGEMM calls per graph
# ----------------------------------------------------------------------
def tc_cases(graphs: Dict[str, CSR]) -> Dict[str, List[Call]]:
    """Triangle counting: one masked SpGEMM (L .* (L@L)) per graph."""
    cases = {}
    for name, g in graphs.items():
        log: List[Call] = []
        triangle_count_detail(g, algo="msa", call_log=log)
        cases[name] = log
    return cases


def ktruss_cases(graphs: Dict[str, CSR], k: int = 5) -> Dict[str, List[Call]]:
    """k-truss: the full pruning iteration's call sequence per graph."""
    cases = {}
    for name, g in graphs.items():
        log: List[Call] = []
        ktruss(g, k, algo="msa", call_log=log)
        cases[name] = log
    return cases


def bc_cases(
    graphs: Dict[str, CSR], batch_size: int = 64, seed: int = 1
) -> Dict[str, List[Call]]:
    """Betweenness centrality: forward (complemented) + backward calls."""
    cases = {}
    for name, g in graphs.items():
        log: List[Call] = []
        betweenness_centrality(g, batch_size=batch_size, algo="msa", seed=seed,
                               call_log=log)
        cases[name] = log
    return cases


# ----------------------------------------------------------------------
# Figure 7: best scheme vs (mask density, input density)
# ----------------------------------------------------------------------
@dataclass
class DensityGridResult:
    """Winner per (input degree, mask degree) cell plus the full times."""

    input_degrees: List[int]
    mask_degrees: List[int]
    winners: Dict[Tuple[int, int], str]  #: (input_deg, mask_deg) -> scheme
    times: Dict[Tuple[int, int], Dict[str, float]]
    n: int
    machine: str

    def winner_set(self) -> set:
        return set(self.winners.values())


def fig07_density_grid(
    *,
    n: int = 4096,
    degrees: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    machine: MachineConfig = HASWELL,
    schemes: Optional[Sequence[Scheme]] = None,
    seed: int = 0,
) -> DensityGridResult:
    """Paper Figure 7: Erdős–Rényi inputs, sweep mask degree (x) and input
    degree (y), record the best-performing scheme per cell (cost model)."""
    schemes = list(schemes) if schemes is not None else list(OUR_SCHEMES_1P)
    winners: Dict[Tuple[int, int], str] = {}
    times: Dict[Tuple[int, int], Dict[str, float]] = {}
    for d_in in degrees:
        a = erdos_renyi(n, n, d_in, seed=seed + d_in)
        b = erdos_renyi(n, n, d_in, seed=seed + d_in + 1000)
        for d_m in degrees:
            m = erdos_renyi(n, n, d_m, seed=seed + d_m + 2000)
            model = RowCostModel(a, b, m, machine)
            cell: Dict[str, float] = {}
            for s in schemes:
                est = model.estimate(s.algo, phases=s.phases)
                span = simulate_makespan(est.row_cycles, machine.cores)
                cell[s.name] = machine.seconds(span + est.pre_cycles)
            times[(d_in, d_m)] = cell
            winners[(d_in, d_m)] = min(cell, key=cell.get)
    return DensityGridResult(
        input_degrees=list(degrees),
        mask_degrees=list(degrees),
        winners=winners,
        times=times,
        n=n,
        machine=machine.name,
    )


# ----------------------------------------------------------------------
# Figures 8/9, 12/13, 16: performance profiles over the suite
# ----------------------------------------------------------------------
def _suite_graphs(names: Optional[Sequence[str]], scale_factor: float) -> Dict[str, CSR]:
    return load_all(scale_factor, names=list(names) if names else None)


def fig08_tc_profiles(
    *,
    suite: Optional[Sequence[str]] = None,
    scale_factor: float = 1.0,
    mode: str = "model",
    machine: MachineConfig = HASWELL,
    schemes: Optional[Sequence[Scheme]] = None,
    repeats: int = 1,
    trace_dir: Optional[str] = None,
    use_session: bool = False,
) -> PerformanceProfile:
    """Figure 8: TC performance profiles of our 12 schemes."""
    graphs = _suite_graphs(suite, scale_factor)
    cases = tc_cases(graphs)
    schemes = list(schemes) if schemes is not None else list(OUR_SCHEMES)
    if mode == "measured":
        schemes = [s for s in schemes if s.fast]
    times = run_cases(cases, schemes, mode=mode, machine=machine,
                      semiring=PLUS_PAIR, repeats=repeats, trace_dir=trace_dir,
                      use_session=use_session)
    return performance_profile(times)


def fig09_tc_vs_ssgb(
    *,
    suite: Optional[Sequence[str]] = None,
    scale_factor: float = 1.0,
    mode: str = "model",
    machine: MachineConfig = HASWELL,
    repeats: int = 1,
    trace_dir: Optional[str] = None,
    use_session: bool = False,
) -> PerformanceProfile:
    """Figure 9: our best TC schemes vs SS:DOT / SS:SAXPY."""
    graphs = _suite_graphs(suite, scale_factor)
    cases = tc_cases(graphs)
    ours = [s for s in OUR_SCHEMES_1P if s.name in ("MSA-1P", "MCA-1P", "Inner-1P", "Hash-1P")]
    times = run_cases(cases, ours + SSGB_SCHEMES, mode=mode, machine=machine,
                      semiring=PLUS_PAIR, repeats=repeats, trace_dir=trace_dir,
                      use_session=use_session)
    return performance_profile(times)


def fig12_ktruss_profiles(
    *,
    suite: Optional[Sequence[str]] = None,
    scale_factor: float = 1.0,
    k: int = 5,
    mode: str = "model",
    machine: MachineConfig = HASWELL,
    schemes: Optional[Sequence[Scheme]] = None,
    repeats: int = 1,
    trace_dir: Optional[str] = None,
    use_session: bool = False,
) -> PerformanceProfile:
    """Figure 12: k-truss performance profiles of our schemes."""
    graphs = _suite_graphs(suite, scale_factor)
    cases = ktruss_cases(graphs, k)
    schemes = list(schemes) if schemes is not None else list(OUR_SCHEMES)
    if mode == "measured":
        schemes = [s for s in schemes if s.fast]
    times = run_cases(cases, schemes, mode=mode, machine=machine,
                      semiring=PLUS_PAIR, repeats=repeats, trace_dir=trace_dir,
                      use_session=use_session)
    return performance_profile(times)


def fig13_ktruss_vs_ssgb(
    *,
    suite: Optional[Sequence[str]] = None,
    scale_factor: float = 1.0,
    k: int = 5,
    mode: str = "model",
    machine: MachineConfig = HASWELL,
    repeats: int = 1,
    trace_dir: Optional[str] = None,
    use_session: bool = False,
) -> PerformanceProfile:
    """Figure 13: our best k-truss schemes vs SS:GB."""
    graphs = _suite_graphs(suite, scale_factor)
    cases = ktruss_cases(graphs, k)
    ours = [s for s in OUR_SCHEMES_1P if s.name in ("MSA-1P", "Inner-1P", "Hash-1P", "MCA-1P")]
    times = run_cases(cases, ours + SSGB_SCHEMES, mode=mode, machine=machine,
                      semiring=PLUS_PAIR, repeats=repeats, trace_dir=trace_dir,
                      use_session=use_session)
    return performance_profile(times)


#: Long-diameter suite graphs excluded from BC by default: level-synchronous
#: BFS needs thousands of iterations on them — the analogue of the paper
#: excluding cage15, delaunay_n24 and wb-edu "for their long running time".
BC_SUITE_EXCLUDE = frozenset({
    "road-s", "road-l", "grid2d-s", "grid2d-l", "grid2d-diag",
    "grid3d-s", "grid3d-l",
})


def fig16_bc_profiles(
    *,
    suite: Optional[Sequence[str]] = None,
    scale_factor: float = 1.0,
    batch_size: int = 64,
    mode: str = "model",
    machine: MachineConfig = HASWELL,
    repeats: int = 1,
    trace_dir: Optional[str] = None,
    use_session: bool = False,
) -> PerformanceProfile:
    """Figure 16: BC profiles — schemes that support complement (the paper
    drops MCA, and excludes Heap/Inner/SS:DOT as prohibitively slow; we keep
    SS:SAXPY and our MSA/Hash 1P/2P)."""
    if suite is None:
        suite = [g for g in suite_names() if g not in BC_SUITE_EXCLUDE]
    graphs = _suite_graphs(suite, scale_factor)
    cases = bc_cases(graphs, batch_size=batch_size)
    keep = [s for s in OUR_SCHEMES if s.algo in ("msa", "hash")]
    keep += [s for s in SSGB_SCHEMES if s.name == "SS:SAXPY"]
    times = run_cases(cases, keep, mode=mode, machine=machine,
                      repeats=repeats, trace_dir=trace_dir,
                      use_session=use_session)
    return performance_profile(times)


# ----------------------------------------------------------------------
# Figures 10/14/15: R-MAT scale sweeps; Figure 11: strong scaling
# ----------------------------------------------------------------------
@dataclass
class ScalingResult:
    """One curve per scheme over an x-axis (scale or threads)."""

    x_label: str
    xs: List[int]
    series: Dict[str, List[float]] = field(default_factory=dict)
    unit: str = ""
    machine: str = ""


def _rmat_graphs(scales: Sequence[int], seed: int = 3) -> Dict[str, CSR]:
    return {f"rmat-{s}": rmat(s, seed=seed + s) for s in scales}


def fig10_tc_rmat_scaling(
    *,
    scales: Sequence[int] = (6, 7, 8, 9, 10, 11, 12),
    machine: MachineConfig = HASWELL,
    mode: str = "model",
    schemes: Optional[Sequence[Scheme]] = None,
) -> ScalingResult:
    """Figure 10: TC GFLOPS vs R-MAT scale (paper: scales 8-20)."""
    schemes = list(schemes) if schemes is not None else (
        [s for s in OUR_SCHEMES_1P if s.name in ("MSA-1P", "Hash-1P", "MCA-1P", "Inner-1P")]
        + SSGB_SCHEMES
    )
    res = ScalingResult("scale", list(scales), unit="GFLOPS", machine=machine.name)
    graphs = _rmat_graphs(scales)
    cases = tc_cases(graphs)
    for s in schemes:
        curve = []
        for sc in scales:
            calls = cases[f"rmat-{sc}"]
            fl = sum(2 * total_flops(a, b) for a, b, _, _ in calls)
            if mode == "model":
                secs = modeled_seconds(s, calls, machine=machine)
            else:
                from .runner import measured_seconds

                secs = measured_seconds(s, calls, semiring=PLUS_PAIR)
            curve.append(fl / secs / 1e9 if secs > 0 else float("nan"))
        res.series[s.name] = curve
    return res


def fig11_tc_strong_scaling(
    *,
    scale: int = 13,
    machine: MachineConfig = HASWELL,
    thread_counts: Optional[Sequence[int]] = None,
    schemes: Optional[Sequence[Scheme]] = None,
    schedule: str = "dynamic",
    chunk: int = 4,
) -> ScalingResult:
    """Figure 11: TC strong scaling on one R-MAT graph (paper: scale 20,
    1..32 threads on Haswell / 1..68 on KNL)."""
    if thread_counts is None:
        thread_counts = [1, 2, 4, 8, 16, machine.cores]
    schemes = list(schemes) if schemes is not None else (
        [s for s in OUR_SCHEMES_1P if s.name in ("MSA-1P", "Hash-1P", "MCA-1P", "Inner-1P")]
        + SSGB_SCHEMES
    )
    g = rmat(scale, seed=3 + scale)
    calls = tc_cases({"g": g})["g"]
    a, b, m, _ = calls[0]
    res = ScalingResult("threads", [int(t) for t in thread_counts],
                        unit="speedup", machine=machine.name)
    for s in schemes:
        model = RowCostModel(a, b, m, machine)
        est = model.estimate(s.algo, phases=s.phases)
        curve = speedup_curve(est.row_cycles, thread_counts, schedule=schedule,
                              chunk=chunk, serial_cycles=est.pre_cycles)
        res.series[s.name] = [curve[int(t)] for t in thread_counts]
    return res


def fig14_ktruss_rmat_scaling(
    *,
    scales: Sequence[int] = (6, 7, 8, 9, 10, 11),
    k: int = 5,
    machine: MachineConfig = HASWELL,
    mode: str = "model",
    schemes: Optional[Sequence[Scheme]] = None,
) -> ScalingResult:
    """Figure 14: k-truss GFLOPS vs R-MAT scale."""
    schemes = list(schemes) if schemes is not None else (
        [s for s in OUR_SCHEMES_1P if s.name in ("MSA-1P", "Hash-1P", "Inner-1P", "MCA-1P")]
        + SSGB_SCHEMES
    )
    res = ScalingResult("scale", list(scales), unit="GFLOPS", machine=machine.name)
    graphs = _rmat_graphs(scales)
    cases = ktruss_cases(graphs, k)
    for s in schemes:
        curve = []
        for sc in scales:
            calls = cases[f"rmat-{sc}"]
            fl = sum(2 * total_flops(a, b) for a, b, _, _ in calls)
            if mode == "model":
                secs = modeled_seconds(s, calls, machine=machine)
            else:
                from .runner import measured_seconds

                secs = measured_seconds(s, calls, semiring=PLUS_PAIR)
            curve.append(fl / secs / 1e9 if secs > 0 else float("nan"))
        res.series[s.name] = curve
    return res


def fig15_bc_rmat_scaling(
    *,
    scales: Sequence[int] = (6, 7, 8, 9, 10),
    batch_size: int = 64,
    machine: MachineConfig = HASWELL,
    mode: str = "model",
    schemes: Optional[Sequence[Scheme]] = None,
) -> ScalingResult:
    """Figure 15: BC MTEPS vs R-MAT scale (paper: batch 512, scales 8-20)."""
    if schemes is None:
        schemes = [s for s in OUR_SCHEMES_1P if s.algo in ("msa", "hash")]
        schemes += [s for s in SSGB_SCHEMES]
    res = ScalingResult("scale", list(scales), unit="MTEPS", machine=machine.name)
    graphs = _rmat_graphs(scales)
    cases = bc_cases(graphs, batch_size=batch_size)
    for s in schemes:
        curve = []
        for sc in scales:
            calls = cases[f"rmat-{sc}"]
            g = graphs[f"rmat-{sc}"]
            needs_complement = any(c[3] for c in calls)
            if needs_complement and not s.supports_complement:
                curve.append(float("nan"))
                continue
            if mode == "model":
                secs = modeled_seconds(s, calls, machine=machine)
            else:
                from .runner import measured_seconds

                secs = measured_seconds(s, calls)
            teps = batch_size * g.nnz / secs if secs > 0 else float("nan")
            curve.append(teps / 1e6)
        res.series[s.name] = curve
    return res
