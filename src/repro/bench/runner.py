"""Experiment runner: scheme definitions and timing (measured + modeled).

The paper evaluates 14 schemes (Section 8): {Inner, MSA, Hash, MCA, Heap,
HeapDot} x {1P, 2P} plus SS:DOT and SS:SAXPY.  This module defines them
once and provides the two ways of timing a masked SpGEMM call sequence:

* **measured** — wall-clock of the real kernels in this process.  Honest
  but CPython-flavoured: interpreter overhead compresses cache effects and
  the heap schemes (reference implementations) are orders of magnitude
  slower than the vectorized kernels, so measured comparisons are
  restricted to the vectorized subset by default.
* **modeled** — the Section-4-based cost model + makespan scheduler
  (:mod:`repro.machine`), evaluated per call and summed.  This is what
  reproduces the paper's *shapes* (see DESIGN.md substitutions).

An experiment is a set of *cases*, each a list of masked-SpGEMM calls
``(A, B, M, complement)`` (apps record theirs via ``call_log``); the runner
produces ``times[scheme][case]`` dictionaries ready for
:func:`repro.bench.perfprofile.performance_profile`.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..machine import HASWELL, MachineConfig, RowCostModel, simulate_makespan
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import CSR
from ..core import masked_spgemm
from ..baselines import ssgb_dot, ssgb_saxpy

__all__ = [
    "Scheme",
    "OUR_SCHEMES",
    "OUR_SCHEMES_1P",
    "SSGB_SCHEMES",
    "ALL_SCHEMES",
    "FAST_SCHEMES",
    "scheme_by_name",
    "measured_seconds",
    "measured_sample_seconds",
    "modeled_seconds",
    "run_cases",
    "Call",
]

#: one masked-SpGEMM invocation: (A, B, mask, complement)
Call = Tuple[CSR, CSR, CSR, bool]


@dataclass(frozen=True)
class Scheme:
    """One evaluated scheme (paper Section 8 naming)."""

    name: str  #: e.g. "MSA-1P"
    algo: str  #: kernel key ("msa", ..., "ssgb_dot")
    phases: int  #: 1 or 2 (SS:GB schemes: 1)
    supports_complement: bool
    fast: bool  #: has a vectorized implementation (measured-mode eligible)


def _mk(algo: str, label: str, phases: int, compl: bool, fast: bool) -> Scheme:
    return Scheme(f"{label}-{phases}P", algo, phases, compl, fast)


OUR_SCHEMES: List[Scheme] = [
    _mk("inner", "Inner", 1, False, True),
    _mk("inner", "Inner", 2, False, True),
    _mk("msa", "MSA", 1, True, True),
    _mk("msa", "MSA", 2, True, True),
    _mk("hash", "Hash", 1, True, True),
    _mk("hash", "Hash", 2, True, True),
    _mk("mca", "MCA", 1, False, True),
    _mk("mca", "MCA", 2, False, True),
    _mk("heap", "Heap", 1, True, False),
    _mk("heap", "Heap", 2, True, False),
    _mk("heapdot", "HeapDot", 1, True, False),
    _mk("heapdot", "HeapDot", 2, True, False),
]

OUR_SCHEMES_1P: List[Scheme] = [s for s in OUR_SCHEMES if s.phases == 1]

SSGB_SCHEMES: List[Scheme] = [
    Scheme("SS:DOT", "ssgb_dot", 1, True, True),
    Scheme("SS:SAXPY", "ssgb_saxpy", 1, True, True),
]

ALL_SCHEMES: List[Scheme] = OUR_SCHEMES + SSGB_SCHEMES

FAST_SCHEMES: List[Scheme] = [s for s in ALL_SCHEMES if s.fast]

_BY_NAME = {s.name: s for s in ALL_SCHEMES}


def scheme_by_name(name: str) -> Scheme:
    return _BY_NAME[name]


def _run_call(scheme: Scheme, call: Call, semiring: Semiring, counter=None,
              session=None) -> CSR:
    a, b, m, compl = call
    if scheme.algo == "ssgb_dot":
        return ssgb_dot(a, b, m, complement=compl, semiring=semiring,
                        counter=counter)
    if scheme.algo == "ssgb_saxpy":
        return ssgb_saxpy(a, b, m, complement=compl, semiring=semiring,
                          counter=counter)
    return masked_spgemm(
        a, b, m, algo=scheme.algo, phases=scheme.phases,
        complement=compl, semiring=semiring, impl="auto", counter=counter,
        session=session,
    )


def measured_seconds(
    scheme: Scheme,
    calls: Sequence[Call],
    *,
    semiring: Semiring = PLUS_TIMES,
    repeats: int = 1,
    session=None,
) -> float:
    """Wall-clock seconds to execute the call sequence (min over repeats)."""
    return min(measured_sample_seconds(scheme, calls, semiring=semiring,
                                       repeats=repeats, session=session))


def measured_sample_seconds(
    scheme: Scheme,
    calls: Sequence[Call],
    *,
    semiring: Semiring = PLUS_TIMES,
    repeats: int = 1,
    counter=None,
    session=None,
) -> List[float]:
    """Per-repeat wall-clock samples for the call sequence.

    The raw material for robust statistics: the benchmark history store
    (:mod:`repro.bench.history`) keeps median + MAD over these instead of
    the min, so its regression gate has a noise estimate to work with.
    ``counter`` (an :class:`~repro.machine.OpCounter`) is threaded into
    every call — the history store's traced pass uses it to attach the
    deterministic work certificate to each timing record.  ``session``
    (an :class:`~repro.engine.ExecutionSession`) is likewise threaded into
    every masked-SpGEMM call; the SS:GB baselines ignore it.
    """
    samples: List[float] = []
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        for call in calls:
            _run_call(scheme, call, semiring, counter, session)
        samples.append(time.perf_counter() - t0)
    return samples


def modeled_seconds(
    scheme: Scheme,
    calls: Sequence[Call],
    *,
    machine: MachineConfig = HASWELL,
    threads: Optional[int] = None,
    schedule: str = "dynamic",
    chunk: Optional[int] = None,
) -> float:
    """Modeled seconds for the call sequence on the given machine.

    ``threads`` defaults to the machine's core count (the paper uses all
    cores except in the scaling experiment).  ``chunk=None`` picks an
    adaptive dynamic-schedule chunk (~16 chunks per worker, the OpenMP
    rule of thumb)."""
    p = machine.cores if threads is None else threads
    total = 0.0
    for a, b, m, compl in calls:
        est = RowCostModel(a, b, m, machine, complement=compl).estimate(
            scheme.algo, phases=scheme.phases
        )
        c = chunk if chunk is not None else max(1, a.nrows // (16 * p))
        span = simulate_makespan(est.row_cycles, min(p, machine.cores),
                                 schedule=schedule, chunk=c)
        total += machine.seconds(span + est.pre_cycles)
    return total


def _artifact_slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-")


def _validate_trace_dir(trace_dir: str) -> str:
    """Create and return a usable trace-artifact directory.

    The directory itself may not exist yet, but its *parent* must, and the
    path must not name a file — silently materialising a whole missing tree
    (the old ``makedirs`` behaviour) turns a typo'd ``--trace-dir`` into a
    run whose artifacts land somewhere nobody looks."""
    path = os.path.abspath(trace_dir)
    if os.path.isfile(path):
        raise ValueError(f"trace_dir {trace_dir!r} is an existing file")
    parent = os.path.dirname(path)
    if not os.path.isdir(parent):
        raise ValueError(
            f"trace_dir {trace_dir!r}: parent directory {parent!r} does not exist"
        )
    os.makedirs(path, exist_ok=True)
    return path


def run_cases(
    cases: Mapping[str, Sequence[Call]],
    schemes: Sequence[Scheme],
    *,
    mode: str = "model",
    machine: MachineConfig = HASWELL,
    threads: Optional[int] = None,
    semiring: Semiring = PLUS_TIMES,
    repeats: int = 1,
    complement_required: bool = False,
    chunk: Optional[int] = None,
    trace_dir: Optional[str] = None,
    use_session: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Times for every (scheme, case): ``times[scheme.name][case_name]``.

    ``mode``: ``"model"`` or ``"measured"``.  Schemes that cannot run a
    case (complement unsupported) get ``inf`` — the Dolan–Moré convention.
    In measured mode, non-fast schemes (heap) are skipped the same way
    unless every call in the experiment is small.

    ``trace_dir`` (measured mode only): run each (scheme, case) under the
    tracer and drop a ``<scheme>__<case>.trace.json`` (Chrome trace-event)
    plus ``.metrics.json`` pair there — the per-run artifact that sits next
    to the experiment's JSON results (``repro.bench.reporting.save_json``).
    Ignored in model mode, where no kernels actually execute.

    ``use_session`` (measured mode only): run each (scheme, case) inside a
    fresh :class:`~repro.engine.ExecutionSession`, so repeated passes over
    the same call list hit the cross-call caches — the iterative-app usage
    pattern.  The session's cache telemetry lands in the ``.metrics.json``
    artifact when ``trace_dir`` is set.  ``python -m repro.bench
    --no-session`` turns this off to time true cold starts.
    """
    if mode not in ("model", "measured"):
        raise ValueError("mode must be 'model' or 'measured'")
    if trace_dir is not None and mode == "measured":
        trace_dir = _validate_trace_dir(trace_dir)
    out: Dict[str, Dict[str, float]] = {}
    for scheme in schemes:
        row: Dict[str, float] = {}
        for case_name, calls in cases.items():
            needs_complement = any(c[3] for c in calls)
            if needs_complement and not scheme.supports_complement:
                row[case_name] = float("inf")
                continue
            if complement_required and not scheme.supports_complement:
                row[case_name] = float("inf")
                continue
            if mode == "model":
                row[case_name] = modeled_seconds(
                    scheme, calls, machine=machine, threads=threads, chunk=chunk
                )
                continue
            session = None
            if use_session and scheme.algo not in ("ssgb_dot", "ssgb_saxpy"):
                from ..engine import ExecutionSession

                session = ExecutionSession()
            try:
                if trace_dir is not None:
                    from ..observe import (
                        tracing,
                        write_chrome_trace,
                        write_metrics,
                    )

                    with tracing() as tracer:
                        row[case_name] = measured_seconds(
                            scheme, calls, semiring=semiring, repeats=repeats,
                            session=session,
                        )
                    base = os.path.join(
                        trace_dir,
                        f"{_artifact_slug(scheme.name)}__"
                        f"{_artifact_slug(case_name)}",
                    )
                    write_chrome_trace(base + ".trace.json", tracer)
                    write_metrics(base + ".metrics.json", tracer,
                                  machine=machine, session=session)
                else:
                    row[case_name] = measured_seconds(
                        scheme, calls, semiring=semiring, repeats=repeats,
                        session=session,
                    )
            finally:
                if session is not None:
                    session.close()
        out[scheme.name] = row
    return out
