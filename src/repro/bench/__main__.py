"""Command-line figure regenerator.

Usage::

    python -m repro.bench --figure 8                  # one figure
    python -m repro.bench --all                       # every figure
    python -m repro.bench --figure 10 --machine knl --mode measured
    python -m repro.bench --figure 7 --scale-factor 2.0
    python -m repro.bench --figure 8 --mode measured --repeats 5 \
        --trace-dir results/traces                    # per-run artifacts
    python -m repro.bench --baseline BENCH_history.json  # regression gate

Prints the same rows/series/grids the paper's figures plot, as ASCII
tables (see ``benchmarks/`` for the asserting pytest harness).
``--repeats`` sets the timed repeats of measured-mode experiments;
``--trace-dir`` drops per-(scheme, case) Chrome-trace + metrics artifacts
there (the directory's parent must exist — a typo'd path is an error, not
a silently created tree).  ``--baseline`` skips the figures entirely and
runs the benchmark-history regression gate (:mod:`repro.bench.regress`)
against the given history file, propagating its exit code.

Measured-mode profile figures run each (scheme, case) inside an
:class:`~repro.engine.ExecutionSession` by default, so repeated passes hit
the cross-call caches; ``--no-session`` disables that for A/B-ing true
cold-start cost (see ``docs/sessions.md``).
"""

from __future__ import annotations

import argparse
import sys
import time

from ..machine import MACHINES
from . import experiments as exp
from .reporting import render_grid, render_profile, render_series

FIGURES = {
    7: "best scheme vs (mask density, input density) grid",
    8: "Triangle Counting profiles, our schemes",
    9: "Triangle Counting: ours vs SS:GB",
    10: "Triangle Counting GFLOPS vs R-MAT scale",
    11: "Triangle Counting strong scaling",
    12: "k-truss profiles, our schemes",
    13: "k-truss: ours vs SS:GB",
    14: "k-truss GFLOPS vs R-MAT scale",
    15: "Betweenness Centrality MTEPS vs R-MAT scale",
    16: "Betweenness Centrality profiles",
}


def run_figure(num: int, args) -> str:
    machine = MACHINES[args.machine]
    mode = args.mode
    sf = args.scale_factor
    if num == 7:
        res = exp.fig07_density_grid(machine=machine)
        return render_grid(
            "input_deg", "mask_deg", res.input_degrees, res.mask_degrees,
            res.winners, title=f"Figure 7 ({machine.name}, n={res.n})",
        )
    repeats = args.repeats
    trace_dir = args.trace_dir
    use_session = mode == "measured" and not args.no_session
    if num == 8:
        prof = exp.fig08_tc_profiles(mode=mode, machine=machine, scale_factor=sf,
                                     repeats=repeats, trace_dir=trace_dir,
                                     use_session=use_session)
        return render_profile(prof, title=f"Figure 8 — TC profiles ({mode})")
    if num == 9:
        prof = exp.fig09_tc_vs_ssgb(mode=mode, machine=machine, scale_factor=sf,
                                    repeats=repeats, trace_dir=trace_dir,
                                    use_session=use_session)
        return render_profile(prof, title=f"Figure 9 — TC vs SS:GB ({mode})")
    if num == 10:
        res = exp.fig10_tc_rmat_scaling(machine=machine, mode=mode)
        return render_series("scale", res.xs, res.series,
                             title=f"Figure 10 — TC GFLOPS ({machine.name})")
    if num == 11:
        res = exp.fig11_tc_strong_scaling(machine=machine)
        return render_series("threads", res.xs, res.series, fmt="{:.2f}",
                             title=f"Figure 11 — TC speedup ({machine.name})")
    if num == 12:
        prof = exp.fig12_ktruss_profiles(mode=mode, machine=machine,
                                         scale_factor=sf, repeats=repeats,
                                         trace_dir=trace_dir,
                                         use_session=use_session)
        return render_profile(prof, title=f"Figure 12 — k-truss profiles ({mode})")
    if num == 13:
        prof = exp.fig13_ktruss_vs_ssgb(mode=mode, machine=machine,
                                        scale_factor=sf, repeats=repeats,
                                        trace_dir=trace_dir,
                                        use_session=use_session)
        return render_profile(prof, title=f"Figure 13 — k-truss vs SS:GB ({mode})")
    if num == 14:
        res = exp.fig14_ktruss_rmat_scaling(machine=machine, mode=mode)
        return render_series("scale", res.xs, res.series,
                             title=f"Figure 14 — k-truss GFLOPS ({machine.name})")
    if num == 15:
        res = exp.fig15_bc_rmat_scaling(machine=machine, mode=mode,
                                        batch_size=args.bc_batch)
        return render_series("scale", res.xs, res.series,
                             title=f"Figure 15 — BC MTEPS ({machine.name})")
    if num == 16:
        prof = exp.fig16_bc_profiles(mode=mode, machine=machine,
                                     scale_factor=sf, batch_size=args.bc_batch,
                                     repeats=repeats, trace_dir=trace_dir,
                                     use_session=use_session)
        return render_profile(prof, title=f"Figure 16 — BC profiles ({mode})")
    raise ValueError(f"unknown figure {num}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
        epilog="Figures: " + "; ".join(f"{k}: {v}" for k, v in FIGURES.items()),
    )
    parser.add_argument("--figure", "-f", type=int, choices=sorted(FIGURES),
                        help="figure number to regenerate")
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument("--mode", choices=("model", "measured"), default="model",
                        help="modeled machine time (default) or wall-clock")
    parser.add_argument("--machine", choices=sorted(MACHINES), default="haswell")
    parser.add_argument("--scale-factor", type=float, default=1.0,
                        help="suite graph size multiplier")
    parser.add_argument("--bc-batch", type=int, default=32,
                        help="betweenness-centrality batch size")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timed repeats for measured-mode experiments")
    parser.add_argument("--trace-dir",
                        help="measured mode: write per-(scheme, case) trace "
                             "and metrics JSON artifacts here")
    parser.add_argument("--no-session", action="store_true",
                        help="measured mode: disable the per-(scheme, case) "
                             "ExecutionSession — time true cold starts "
                             "instead of warmed cross-call caches")
    parser.add_argument("--baseline",
                        help="run the history regression gate against this "
                             "BENCH_history.json instead of any figure")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    if args.baseline is not None:
        from .regress import main as regress_main

        return regress_main(["--baseline", args.baseline,
                             "--repeats", str(args.repeats)])

    if not args.all and args.figure is None:
        parser.error("pass --figure N, --all, or --baseline")
    figures = sorted(FIGURES) if args.all else [args.figure]
    for num in figures:
        t0 = time.time()
        try:
            print(run_figure(num, args))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"[figure {num}: {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
