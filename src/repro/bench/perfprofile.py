"""Dolan–Moré performance profiles [20].

The paper's Figures 8, 9, 12, 13 and 16 are performance profiles: for each
scheme ``s`` and each test case ``c`` with runtime ``t(s, c)``, the profile
is the fraction of cases in which the scheme is within a factor ``tau`` of
the best scheme on that case::

    rho_s(tau) = |{ c : t(s,c) <= tau * min_s' t(s',c) }| / |cases|

"A point (x, y) indicates that the scheme ... is within x factor of the
best obtained result in y fraction of the test cases.  The closer a
scheme's line is to the y axis, the better" (paper Section 8.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

__all__ = ["PerformanceProfile", "performance_profile"]


@dataclass
class PerformanceProfile:
    """Computed profile curves for a set of schemes over shared cases."""

    schemes: List[str]
    cases: List[str]
    ratios: np.ndarray  #: shape (n_schemes, n_cases): t(s,c)/best(c)
    taus: np.ndarray  #: evaluation grid

    def rho(self, scheme: str) -> np.ndarray:
        """The profile curve rho_s(tau) on the tau grid."""
        i = self.schemes.index(scheme)
        r = self.ratios[i]
        valid = np.isfinite(r)
        return np.array(
            [np.count_nonzero(r[valid] <= t) / max(1, len(self.cases)) for t in self.taus]
        )

    def fraction_best(self, scheme: str, tol: float = 1.0 + 1e-9) -> float:
        """rho_s(1): the fraction of cases where the scheme is (tied-)best —
        the paper's "outperforms all other algorithms for X% of cases"."""
        i = self.schemes.index(scheme)
        r = self.ratios[i]
        return float(np.count_nonzero(r[np.isfinite(r)] <= tol) / max(1, len(self.cases)))

    def area(self, scheme: str) -> float:
        """Area under the profile curve — a scalar ranking criterion
        (higher = better overall)."""
        return float(
            np.trapezoid(self.rho(scheme), self.taus)
            / (self.taus[-1] - self.taus[0])
        )

    def ranking(self) -> List[str]:
        """Schemes ordered best-first by profile area."""
        return sorted(self.schemes, key=lambda s: -self.area(s))


def performance_profile(
    times: Mapping[str, Mapping[str, float]],
    *,
    taus: Optional[Sequence[float]] = None,
    tau_max: float = 8.0,
) -> PerformanceProfile:
    """Build a profile from ``times[scheme][case] = runtime``.

    Every scheme must report every case (use ``float('inf')`` for a scheme
    that failed a case — standard Dolan–Moré treatment).
    """
    schemes = sorted(times.keys())
    cases = sorted({c for s in schemes for c in times[s].keys()})
    t = np.full((len(schemes), len(cases)), np.inf)
    for i, s in enumerate(schemes):
        for j, c in enumerate(cases):
            if c in times[s]:
                t[i, j] = times[s][c]
    best = np.min(t, axis=0)
    if np.any(~np.isfinite(best)):
        raise ValueError("some case has no finite runtime for any scheme")
    if np.any(best <= 0):
        raise ValueError("runtimes must be positive")
    ratios = t / best
    if taus is None:
        taus = np.geomspace(1.0, tau_max, 64)
    return PerformanceProfile(
        schemes=schemes, cases=cases, ratios=ratios, taus=np.asarray(taus, dtype=float)
    )
