"""Benchmark history store: append-only, schema-versioned timing records.

Every performance claim the repo makes ("the hash kernel got faster",
"nothing regressed") needs a *before* to compare against.  This module is
that before: a pinned, CI-sized case set (the R-MAT triangle-count call
sequence plus a Figure-7-style Erdős–Rényi mini-grid) timed with ``k``
repeats per (scheme, case, backend, threads) key, reduced to **median +
MAD** — robust statistics a noisy shared runner cannot fake out the way it
fakes out a single min — and written to two places:

* ``BENCH_history.json`` — the append-only log at the repo root.  Each
  :func:`collect_run` appends one *run* (environment fingerprint +
  records); runs are ordered by append, and carry the git SHA, so the log
  needs no wall-clock timestamps.
* ``BENCH_<sha>.json`` — the single run as a standalone artifact, the file
  a CI job uploads and ``python -m repro.bench.regress`` consumes as
  ``--head``.

Besides wall seconds every record carries the run's *work certificate*:
the leaf-span operation-counter totals and modeled bytes-moved from the
metrics exporter, and the accumulator probe histograms
(:mod:`repro.observe.probes`).  Counters are deterministic — when a timing
regression arrives together with unchanged counters, the cause is the
machine, not the algorithm; when the counters moved too, the diff is
algorithmic.  That distinction is exactly what a time-only store cannot
make.

CLI::

    python -m repro.bench.history --repeats 5          # append + BENCH_<sha>.json
    python -m repro.bench.history --history /dev/null  # artifact only

See :mod:`repro.bench.regress` for the comparison gate and
``docs/observability.md`` for a walkthrough of reading its report.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..graphs import erdos_renyi, rmat
from ..machine import HASWELL, OpCounter
from ..observe import metrics as _metrics
from ..observe import probing, tracing
from ..semiring import PLUS_PAIR
from .experiments import tc_cases
from .runner import Call, Scheme, measured_sample_seconds, scheme_by_name

__all__ = [
    "SCHEMA_VERSION",
    "HISTORY_BASENAME",
    "PINNED_SCHEME_NAMES",
    "env_fingerprint",
    "pinned_cases",
    "pinned_schemes",
    "record_key",
    "collect_record",
    "session_app_records",
    "collect_run",
    "load_history",
    "append_run",
    "write_run",
    "latest_run",
    "run_artifact_name",
    "runtime_summaries",
]

#: bump when a record's shape changes; readers refuse newer majors
SCHEMA_VERSION = 1

HISTORY_BASENAME = "BENCH_history.json"

#: the pinned measured subset: fast 1-phase schemes covering all three
#: accumulator families the probes instrument
PINNED_SCHEME_NAMES = ("MSA-1P", "Hash-1P", "MCA-1P")


# ----------------------------------------------------------------------
# environment fingerprint
# ----------------------------------------------------------------------
def _git_sha(cwd: Optional[str] = None) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except Exception:
        return "unknown"


def env_fingerprint(cwd: Optional[str] = None) -> dict:
    """Where a run happened: enough to refuse apples-to-oranges comparisons
    (the regression gate warns when fingerprints differ) without trying to
    capture the machine exhaustively."""
    return {
        "git_sha": _git_sha(cwd),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 1,
        "platform": sys.platform,
        "machine": platform.machine(),
    }


# ----------------------------------------------------------------------
# the pinned case set
# ----------------------------------------------------------------------
def pinned_cases(
    *,
    rmat_scale: int = 8,
    grid_n: int = 512,
    grid_degrees: Sequence[int] = (2, 8),
    seed: int = 3,
) -> Dict[str, List[Call]]:
    """The CI-sized case set every history run times.

    ``tc-rmat-<scale>`` is the triangle-count call log on an R-MAT graph
    (the paper's scaling workload, Section 8.2); the ``er-*`` cells are a
    mini Figure-7 grid — Erdős–Rényi input/mask degree combinations that
    put each accumulator in a different regime.  Deterministic seeds: two
    runs of the same tree time literally the same call sequences.
    """
    graphs = {f"tc-rmat-{rmat_scale}": rmat(rmat_scale, seed=seed + rmat_scale)}
    cases: Dict[str, List[Call]] = tc_cases(graphs)
    for d_in in grid_degrees:
        a = erdos_renyi(grid_n, grid_n, d_in, seed=seed + d_in)
        b = erdos_renyi(grid_n, grid_n, d_in, seed=seed + d_in + 1000)
        for d_m in grid_degrees:
            m = erdos_renyi(grid_n, grid_n, d_m, seed=seed + d_m + 2000)
            cases[f"er{grid_n}-in{d_in}-m{d_m}"] = [(a, b, m, False)]
    return cases


def pinned_schemes() -> List[Scheme]:
    return [scheme_by_name(n) for n in PINNED_SCHEME_NAMES]


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------
def record_key(record: dict) -> str:
    """The identity a record is matched on across runs."""
    return "|".join(
        str(record[k]) for k in ("scheme", "case", "backend", "threads")
    )


#: sampling interval for ``sample_runtime`` collections — CI cases finish
#: in tens of milliseconds, so the baseline needs a finer tick than the
#: interactive default to land samples inside the timed region
RUNTIME_SAMPLE_INTERVAL_S = 0.02


def collect_record(
    scheme: Scheme,
    case_name: str,
    calls: Sequence[Call],
    *,
    repeats: int = 3,
    semiring=PLUS_PAIR,
    backend: str = "serial",
    threads: int = 1,
    sample_runtime: bool = False,
) -> dict:
    """Time one (scheme, case) key and attach its work certificate.

    The timed repeats run untraced (observability off is the configuration
    being measured); one *extra* pass runs under the tracer and probes to
    collect counter totals, modeled bytes-moved and the accumulator
    histograms.  Counters are deterministic, so one pass is exact.

    ``sample_runtime`` additionally runs the timed repeats under a
    :class:`~repro.observe.runtime.RuntimeSampler` and stores its compact
    summary (peak RSS/shm, mean throughput) under ``"runtime"`` — the
    per-key baseline :func:`repro.observe.runtime.drift` bands against.
    """
    rt_summary = None
    if sample_runtime:
        from ..observe.runtime import sampling

        with sampling(interval_s=RUNTIME_SAMPLE_INTERVAL_S) as rt:
            samples = measured_sample_seconds(
                scheme, calls, semiring=semiring, repeats=repeats
            )
        rt_summary = rt.summary()
    else:
        samples = measured_sample_seconds(
            scheme, calls, semiring=semiring, repeats=repeats
        )
    arr = np.asarray(samples, dtype=float)
    median = float(np.median(arr))
    mad = float(np.median(np.abs(arr - np.median(arr))))
    with tracing() as tracer, probing() as probes:
        measured_sample_seconds(scheme, calls, semiring=semiring, repeats=1,
                                counter=OpCounter())
        mx = _metrics(tracer, machine=HASWELL, probes=probes)
    record = {
        "scheme": scheme.name,
        "case": case_name,
        "backend": backend,
        "threads": threads,
        "repeats": len(samples),
        "median_s": median,
        "mad_s": mad,
        "samples_s": [float(s) for s in samples],
        "counters": mx["counter_totals"],
        "bytes_moved_estimate": mx["bytes_moved_estimate"],
        "probes": mx["probes"],
        # per-kind misprediction summary from the traced pass (summary only
        # — the full rows would bloat the history; fit regresses counters)
        "predictions": mx["predictions"]["summary"],
    }
    if rt_summary is not None:
        record["runtime"] = rt_summary
    return record


def session_app_records(
    *,
    repeats: int = 3,
    rmat_scale: int = 8,
    seed: int = 3,
    bc_batch: int = 32,
    k: int = 5,
    sample_runtime: bool = False,
) -> List[dict]:
    """Timing records for the session-enabled iterative apps.

    Unlike the pinned scheme records (deliberately sessionless — they are
    the cold-start baseline), these run k-truss and betweenness centrality
    end-to-end with ONE :class:`~repro.engine.ExecutionSession` shared
    across all repeats, the intended usage pattern.  Each record carries
    the session's cache telemetry under ``"session"`` so the regression
    gate (:mod:`repro.bench.regress`) can tell "the cache stopped hitting"
    apart from "the kernels got slower".

    ``tc-sharded`` is the shard-grid twin of the TC workload
    (``docs/sharding.md``): the same triangle-count masked SpGEMM run on a
    2x2 shard grid over the process backend, sessioned so the repeats
    certify per-shard segment reuse in the cache telemetry.

    ``ktruss-delta`` is the incremental twin of ``ktruss-session``
    (``docs/incremental.md``): the same pruning loop with ``delta="auto"``,
    so late iterations recompute only dirty rows.  Its
    ``rows_recomputed`` / ``rows_patched`` / ``delta_fallbacks`` counters
    are the scheme's work certificate (``ktruss-session`` pins
    ``delta=None`` so it stays the full-recompute sessioned baseline).
    Note the first repeat's counters differ from later ones (the session
    starts cold); the recorded counter is the *last* repeat's, which is
    deterministic for ``repeats >= 2``.

    ``tc-batched`` is the bucketed-tier twin (``docs/kernels.md``): the
    TC masked SpGEMM forced onto ``batch="bucket"`` with ``phases=2``,
    sessioned so repeats after the first fuse the numeric pass against
    the memoised symbolic bound (``fused_numeric_hits`` in the session
    telemetry certifies it).
    """
    from ..apps import betweenness_centrality, ktruss
    from ..core import masked_spgemm
    from ..engine import ExecutionSession

    g = rmat(rmat_scale, seed=seed + rmat_scale)
    low = g.pattern().tril(-1)
    apps = (
        ("ktruss-session", "auto",
         lambda s, c: ktruss(g, k, algo="auto", counter=c, session=s,
                             delta=None)),
        ("ktruss-delta", "auto",
         lambda s, c: ktruss(g, k, algo="auto", counter=c, session=s,
                             delta="auto")),
        ("bc-session", "auto",
         lambda s, c: betweenness_centrality(
             g, batch_size=bc_batch, algo="auto", seed=1, counter=c,
             session=s)),
        ("tc-sharded", "process",
         lambda s, c: masked_spgemm(
             low, low, low, algo="msa", shards=(2, 2), backend="process",
             semiring=PLUS_PAIR, counter=c, session=s)),
        ("tc-batched", "serial",
         lambda s, c: masked_spgemm(
             low, low, low, algo="hash", batch="bucket", phases=2,
             semiring=PLUS_PAIR, counter=c, session=s)),
    )
    from contextlib import nullcontext

    if sample_runtime:
        from ..observe.runtime import sampling as _sampling
    records: List[dict] = []
    for name, backend, run_app in apps:
        samples: List[float] = []
        # one sampler per app record — summaries must describe this key's
        # repeats, not the whole collection's cumulative peaks
        rt_cm = (_sampling(interval_s=RUNTIME_SAMPLE_INTERVAL_S)
                 if sample_runtime else nullcontext())
        with rt_cm as rt, ExecutionSession() as session:
            for _ in range(max(1, repeats)):
                # fresh counter per repeat: work counters are identical on
                # every pass (the session guarantees it), so keeping the
                # last makes the certificate independent of ``repeats``
                counter = OpCounter()
                t0 = time.perf_counter()
                run_app(session, counter)
                samples.append(time.perf_counter() - t0)
            stats = session.stats()
        arr = np.asarray(samples, dtype=float)
        records.append({
            "scheme": name,
            "case": f"rmat-{rmat_scale}",
            "backend": backend,
            "threads": 0,
            "repeats": len(samples),
            "median_s": float(np.median(arr)),
            "mad_s": float(np.median(np.abs(arr - np.median(arr)))),
            "samples_s": [float(s) for s in samples],
            "counters": {
                f: getattr(counter, f)
                for f in counter.__dataclass_fields__
                # session counters vary with cache warmth, not work; they
                # live under "session" where the gate reads them as cache
                # telemetry instead of a work-certificate change
                if f not in ("plan_cache_hits", "segments_reused",
                             "bytes_republished")
            },
            "session": stats,
        })
        if rt is not None:
            records[-1]["runtime"] = rt.summary()
    return records


def collect_run(
    *,
    repeats: int = 3,
    cases: Optional[Dict[str, List[Call]]] = None,
    schemes: Optional[Sequence[Scheme]] = None,
    cwd: Optional[str] = None,
    include_session_apps: bool = True,
    session_rmat_scale: int = 8,
    sample_runtime: bool = False,
) -> dict:
    """One history run: environment fingerprint + a record per key.

    ``include_session_apps`` appends the :func:`session_app_records`
    (sessioned k-truss / BC, at R-MAT scale ``session_rmat_scale``) to
    the pinned sessionless scheme records.  ``sample_runtime`` attaches a
    sampled runtime summary to every record (see :func:`collect_record`)
    so the run can serve as a drift baseline.
    """
    cases = cases if cases is not None else pinned_cases()
    schemes = list(schemes) if schemes is not None else pinned_schemes()
    records = [
        collect_record(s, name, calls, repeats=repeats,
                       sample_runtime=sample_runtime)
        for s in schemes
        for name, calls in cases.items()
    ]
    if include_session_apps:
        records.extend(session_app_records(repeats=repeats,
                                           rmat_scale=session_rmat_scale,
                                           sample_runtime=sample_runtime))
    return {
        "schema_version": SCHEMA_VERSION,
        "env": env_fingerprint(cwd),
        "records": records,
    }


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
def _check_schema(payload: dict, path) -> None:
    ver = payload.get("schema_version")
    if not isinstance(ver, int) or ver > SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {ver!r} not readable by this tree "
            f"(supports <= {SCHEMA_VERSION})"
        )


def load_history(path) -> dict:
    """Load an append-only history file (``{"schema_version", "runs"}``)."""
    with open(path) as fh:
        payload = json.load(fh)
    _check_schema(payload, path)
    if not isinstance(payload.get("runs"), list):
        raise ValueError(f"{path}: not a history file (no 'runs' list)")
    return payload


def append_run(path, run: dict) -> dict:
    """Append ``run`` to the history at ``path`` (created if missing);
    returns the updated history payload.  Append-only by construction —
    existing runs are never rewritten, so the file is a log, not a cache."""
    if os.path.exists(path):
        history = load_history(path)
    else:
        history = {"schema_version": SCHEMA_VERSION, "runs": []}
    history["runs"].append(run)
    tmp = f"{path}.tmp"
    with open(tmp, "w") as fh:
        json.dump(history, fh, indent=1)
        fh.write("\n")
    os.replace(tmp, path)
    return history


def write_run(path, run: dict) -> None:
    """Write a single run as a standalone artifact (``BENCH_<sha>.json``)."""
    with open(path, "w") as fh:
        json.dump(run, fh, indent=1)
        fh.write("\n")


def latest_run(payload: dict) -> dict:
    """The newest run of a history payload, or the payload itself when it
    already *is* a single-run artifact (has ``records``, no ``runs``)."""
    _check_schema(payload, "<payload>")
    if "records" in payload and "runs" not in payload:
        return payload
    runs = payload.get("runs") or []
    if not runs:
        raise ValueError("history holds no runs")
    return runs[-1]


def run_artifact_name(run: dict) -> str:
    sha = (run.get("env") or {}).get("git_sha", "unknown")
    return f"BENCH_{sha[:12] if sha != 'unknown' else sha}.json"


def runtime_summaries(payload: dict, key: str):
    """All stored runtime baselines for one record key.

    Walks **every** run of a history payload (or a single-run artifact)
    and returns ``(summaries, ledgers)``: the ``"runtime"`` summaries of
    each record whose :func:`record_key` equals ``key``, paired with that
    record's prediction-ledger summaries (``{}`` when untraced).  These
    are the baseline populations :func:`repro.observe.runtime.drift`
    MAD-bands a fresh run's sampled summary against — records collected
    without ``sample_runtime`` contribute nothing, so old history files
    work unchanged.
    """
    _check_schema(payload, "<payload>")
    if "records" in payload and "runs" not in payload:
        runs = [payload]
    else:
        runs = payload.get("runs") or []
    summaries: List[dict] = []
    ledgers: List[dict] = []
    for run in runs:
        for rec in run.get("records", []):
            if record_key(rec) == key and rec.get("runtime"):
                summaries.append(rec["runtime"])
                ledgers.append(rec.get("predictions") or {})
    return summaries, ledgers


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.history",
        description="Collect a benchmark history run over the pinned case set.",
    )
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per (scheme, case) key")
    parser.add_argument("--history", default=HISTORY_BASENAME,
                        help="append-only history file to extend "
                             "(default: %(default)s; '-' skips the append)")
    parser.add_argument("--run-dir", default=".",
                        help="directory for the standalone BENCH_<sha>.json")
    parser.add_argument("--rmat-scale", type=int, default=8,
                        help="R-MAT scale of the pinned TC case and the "
                             "sessioned app records")
    parser.add_argument("--sample-runtime", action="store_true",
                        help="run each key under the runtime sampler and "
                             "store its peak-RSS/shm/throughput summary "
                             "(the drift detector's baseline)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    run = collect_run(repeats=args.repeats,
                      cases=pinned_cases(rmat_scale=args.rmat_scale),
                      session_rmat_scale=args.rmat_scale,
                      sample_runtime=args.sample_runtime)
    artifact = os.path.join(args.run_dir, run_artifact_name(run))
    write_run(artifact, run)
    print(f"wrote {artifact} ({len(run['records'])} records)")
    if args.history != "-":
        history = append_run(args.history, run)
        print(f"appended run #{len(history['runs'])} to {args.history}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
