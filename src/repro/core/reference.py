"""Reference (pseudocode-faithful) masked SpGEVM/SpGEMM implementations.

Each function here transcribes one algorithm of the paper as directly as
Python allows, operating row-by-row via the accumulator interface of
Section 5.1 and instrumented with an :class:`repro.machine.OpCounter`.
They are the *specification*: slow, obviously-correct, and the source of
the operation profiles the machine model consumes.  The vectorized fast
paths live in :mod:`repro.core.kernels` and are tested for exact agreement
with these references.

Naming follows the paper: ``u`` is the current row of A, ``m`` the current
row of the mask, ``v`` the output row being produced.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Tuple

import numpy as np

from ..machine import OpCounter
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import CSR, CSC
from .accumulators import (
    MCA,
    MSA,
    HashAccumulator,
    HashComplement,
    MSAComplement,
    MaskIterator,
    MaskedAccumulator,
    RowIterator,
    heap_insert,
    heap_pop,
)

__all__ = [
    "spgevm_esc",
    "spgevm_accumulator",
    "spgevm_accumulator_complement",
    "spgevm_mca",
    "spgevm_heap",
    "spgevm_heap_complement",
    "spgevm_inner",
    "masked_spgemm_reference",
    "gustavson_spgemm",
    "REFERENCE_ALGOS",
]


# ----------------------------------------------------------------------
# Masked SpGEVM: v = m .* (u @ B)  — one output row
# ----------------------------------------------------------------------
def spgevm_accumulator(
    m_cols: np.ndarray,
    u_cols: np.ndarray,
    u_vals: np.ndarray,
    b: CSR,
    accum: MaskedAccumulator,
    semiring: Semiring,
) -> Tuple[List[int], List[float]]:
    """Algorithm 2 (MSA) — also drives the Hash accumulator, which shares
    the interface.  Three steps: mark allowed keys from the mask, insert all
    products (lazily), gather through the mask in mask order."""
    for j in m_cols:
        accum.set_allowed(int(j))
    mult = semiring.mult
    for k, uk in zip(u_cols, u_vals):
        b_cols, b_vals = b.row(int(k))
        uk_f = float(uk)
        for j, bkj in zip(b_cols, b_vals):
            accum.insert(int(j), lambda uk_f=uk_f, bkj=float(bkj): mult(uk_f, bkj))
    out_cols: List[int] = []
    out_vals: List[float] = []
    for j in m_cols:
        value = accum.remove(int(j))
        if value is not None:
            out_cols.append(int(j))
            out_vals.append(value)
    return out_cols, out_vals


def spgevm_accumulator_complement(
    m_cols: np.ndarray,
    u_cols: np.ndarray,
    u_vals: np.ndarray,
    b: CSR,
    accum: MaskedAccumulator,
    semiring: Semiring,
) -> Tuple[List[int], List[float]]:
    """Complemented-mask variant (Section 5.2, last paragraph): the default
    state is ALLOWED, mask entries are marked NOTALLOWED, and the gather
    walks the accumulator's inserted-key list (sorted for a sorted output)
    instead of the mask."""
    for j in m_cols:
        accum.set_not_allowed(int(j))
    mult = semiring.mult
    for k, uk in zip(u_cols, u_vals):
        b_cols, b_vals = b.row(int(k))
        uk_f = float(uk)
        for j, bkj in zip(b_cols, b_vals):
            accum.insert(int(j), lambda uk_f=uk_f, bkj=float(bkj): mult(uk_f, bkj))
    out_cols = sorted(accum.inserted_keys())
    out_vals: List[float] = []
    kept: List[int] = []
    for j in out_cols:
        value = accum.remove(int(j))
        if value is not None:
            kept.append(int(j))
            out_vals.append(value)
    return kept, out_vals


def spgevm_mca(
    m_cols: np.ndarray,
    u_cols: np.ndarray,
    u_vals: np.ndarray,
    b: CSR,
    accum: MCA,
    semiring: Semiring,
    counter: OpCounter,
) -> Tuple[List[int], List[float]]:
    """Algorithm 3 (MCA): for each nonzero u_k, two-pointer-merge the sorted
    B row against the sorted mask row; matches are inserted at the mask
    *rank* (idx), which is the compressed key."""
    mult = semiring.mult
    for k, uk in zip(u_cols, u_vals):
        b_cols, b_vals = b.row(int(k))
        uk_f = float(uk)
        r = 0
        rlen = len(b_cols)
        for idx in range(len(m_cols)):
            j = int(m_cols[idx])
            counter.mask_scans += 1
            while r < rlen and int(b_cols[r]) < j:
                r += 1
            if r >= rlen:
                break
            if int(b_cols[r]) == j:
                accum.insert(idx, mult(uk_f, float(b_vals[r])))
    out_cols: List[int] = []
    out_vals: List[float] = []
    for idx in range(len(m_cols)):
        value = accum.remove(idx)
        if value is not None:
            out_cols.append(int(m_cols[idx]))
            out_vals.append(value)
    return out_cols, out_vals


def spgevm_heap(
    m_cols: np.ndarray,
    u_cols: np.ndarray,
    u_vals: np.ndarray,
    b: CSR,
    semiring: Semiring,
    counter: OpCounter,
    n_inspect: float = 1,
) -> Tuple[List[int], List[float]]:
    """Algorithm 4 (Heap): merge the scaled B rows through a min-heap of row
    iterators and 2-way-merge the merged stream against the sorted mask.
    ``n_inspect`` is the Algorithm-5 parameter (1 = Heap, inf = HeapDot)."""
    mask_iter = MaskIterator(np.asarray(m_cols, dtype=np.int64))
    pq: List[RowIterator] = []
    for k, uk in zip(u_cols, u_vals):
        b_cols, b_vals = b.row(int(k))
        it = RowIterator(b_cols, b_vals, int(k), float(uk))
        heap_insert(pq, it, mask_iter, n_inspect, counter)
    out_cols: List[int] = []
    out_vals: List[float] = []
    prev_key: Optional[int] = None
    mult, add = semiring.mult, semiring.add
    while pq:
        min_iter = heap_pop(pq, counter)
        # advance the shared mask cursor to the stream position
        while mask_iter.valid() and mask_iter.col < min_iter.col:
            counter.mask_scans += 1
            mask_iter.advance()
        if not mask_iter.valid():
            break
        if mask_iter.col == min_iter.col:
            j = min_iter.col
            counter.flops += 1
            prod = mult(min_iter.scale, min_iter.val)
            if prev_key == j:
                out_vals[-1] = add(out_vals[-1], prod)
            else:
                prev_key = j
                out_cols.append(j)
                out_vals.append(prod)
        heap_insert(pq, min_iter.advance(), mask_iter, n_inspect, counter)
    return out_cols, out_vals


def spgevm_heap_complement(
    m_cols: np.ndarray,
    u_cols: np.ndarray,
    u_vals: np.ndarray,
    b: CSR,
    semiring: Semiring,
    counter: OpCounter,
) -> Tuple[List[int], List[float]]:
    """Heap scheme for complemented masks (Section 5.5, last paragraph):
    emit products whose column is in the merged stream but NOT in the mask.
    NInspect is always 0 in this mode."""
    mcols = np.asarray(m_cols, dtype=np.int64)
    mpos = 0
    mlen = len(mcols)
    pq: List[RowIterator] = []
    for k, uk in zip(u_cols, u_vals):
        b_cols, b_vals = b.row(int(k))
        it = RowIterator(b_cols, b_vals, int(k), float(uk))
        if it.valid():
            heapq.heappush(pq, it)
            counter.heap_pushes += 1
    out_cols: List[int] = []
    out_vals: List[float] = []
    prev_key: Optional[int] = None
    mult, add = semiring.mult, semiring.add
    while pq:
        min_iter = heap_pop(pq, counter)
        j = min_iter.col
        while mpos < mlen and int(mcols[mpos]) < j:
            counter.mask_scans += 1
            mpos += 1
        masked_out = mpos < mlen and int(mcols[mpos]) == j
        if not masked_out:
            counter.flops += 1
            prod = mult(min_iter.scale, min_iter.val)
            if prev_key == j:
                out_vals[-1] = add(out_vals[-1], prod)
            else:
                prev_key = j
                out_cols.append(j)
                out_vals.append(prod)
        it = min_iter.advance()
        if it.valid():
            heapq.heappush(pq, it)
            counter.heap_pushes += 1
    return out_cols, out_vals


def spgevm_inner(
    m_cols: np.ndarray,
    u_cols: np.ndarray,
    u_vals: np.ndarray,
    b_csc: CSC,
    semiring: Semiring,
    counter: OpCounter,
) -> Tuple[List[int], List[float]]:
    """Pull-based algorithm (Section 4.1): one sorted-merge dot product
    ``u . B[:,j]`` per mask nonzero j."""
    out_cols: List[int] = []
    out_vals: List[float] = []
    mult, add = semiring.mult, semiring.add
    for j in m_cols:
        col_rows, col_vals = b_csc.col(int(j))
        counter.mask_scans += 1
        # sorted two-pointer intersection of u and B[:, j]
        p, q = 0, 0
        acc = None
        ulen, clen = len(u_cols), len(col_rows)
        while p < ulen and q < clen:
            uk = int(u_cols[p])
            rk = int(col_rows[q])
            if uk == rk:
                counter.flops += 1
                prod = mult(float(u_vals[p]), float(col_vals[q]))
                acc = prod if acc is None else add(acc, prod)
                p += 1
                q += 1
            elif uk < rk:
                p += 1
            else:
                q += 1
        if acc is not None:
            counter.useful_flops += 1
            out_cols.append(int(j))
            out_vals.append(acc)
    return out_cols, out_vals


def spgevm_esc(
    m_cols: np.ndarray,
    u_cols: np.ndarray,
    u_vals: np.ndarray,
    b: CSR,
    semiring: Semiring,
    counter: OpCounter,
    *,
    complement: bool = False,
) -> Tuple[List[int], List[float]]:
    """Masked Expand-Sort-Compress (extension; see kernels.esc_kernel):
    expand all products of the row, filter through the mask, sort by
    column, compress runs with the semiring add."""
    allowed = set(int(j) for j in m_cols)
    mult, add = semiring.mult, semiring.add
    pairs: List[Tuple[int, float]] = []
    for k, uk in zip(u_cols, u_vals):
        b_cols, b_vals = b.row(int(k))
        uk_f = float(uk)
        for j, bkj in zip(b_cols, b_vals):
            counter.accum_inserts += 1
            inside = int(j) in allowed
            if inside != complement:
                counter.flops += 1
                pairs.append((int(j), mult(uk_f, float(bkj))))
    pairs.sort(key=lambda p: p[0])
    out_cols: List[int] = []
    out_vals: List[float] = []
    for j, v in pairs:
        if out_cols and out_cols[-1] == j:
            out_vals[-1] = add(out_vals[-1], v)
        else:
            out_cols.append(j)
            out_vals.append(v)
    return out_cols, out_vals


# ----------------------------------------------------------------------
# Full-matrix drivers
# ----------------------------------------------------------------------
REFERENCE_ALGOS = ("inner", "msa", "hash", "mca", "heap", "heapdot", "esc")


def masked_spgemm_reference(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    algo: str = "msa",
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
    b_csc: Optional[CSC] = None,
) -> CSR:
    """Row-by-row masked SpGEMM ``C = M .* (A @ B)`` using the named
    reference algorithm.  See :func:`repro.core.masked_spgemm` for the
    user-facing dispatcher (which can also select the fast kernels and the
    1P/2P output formation).
    """
    algo = algo.lower()
    if algo not in REFERENCE_ALGOS:
        raise ValueError(f"unknown algorithm {algo!r}; expected one of {REFERENCE_ALGOS}")
    if a.ncols != b.nrows:
        raise ValueError("inner dimensions of A and B do not agree")
    if mask.shape != (a.nrows, b.ncols):
        raise ValueError("mask shape must match output shape")
    if complement and algo in ("mca", "inner"):
        raise ValueError(f"{algo} does not support complemented masks")
    a = a.sort_indices()
    b = b.sort_indices()
    mask = mask.sort_indices()
    counter = counter if counter is not None else OpCounter()
    add, ident = semiring.add, semiring.add_identity

    out_rows: List[int] = []
    out_cols: List[int] = []
    out_vals: List[float] = []

    if algo == "inner":
        csc = b_csc if b_csc is not None else CSC.from_csr(b)
        for i in range(a.nrows):
            m_cols, _ = mask.row(i)
            if len(m_cols) == 0:
                continue
            u_cols, u_vals = a.row(i)
            cols, vals = spgevm_inner(m_cols, u_cols, u_vals, csc, semiring, counter)
            out_rows.extend([i] * len(cols))
            out_cols.extend(cols)
            out_vals.extend(vals)
    elif algo in ("msa", "hash"):
        accum: Optional[MaskedAccumulator] = None
        if algo == "msa":
            accum = (
                MSAComplement(b.ncols, add, ident, counter)
                if complement
                else MSA(b.ncols, add, ident, counter)
            )
        for i in range(a.nrows):
            m_cols, _ = mask.row(i)
            u_cols, u_vals = a.row(i)
            if not complement and (len(m_cols) == 0 or len(u_cols) == 0):
                continue
            if complement and len(u_cols) == 0:
                continue
            if algo == "hash":
                if complement:
                    # bound: the row's unmasked product size
                    bound = int(sum(len(b.row(int(k))[0]) for k in u_cols))
                    accum = HashComplement(max(1, bound), add, ident, counter)
                else:
                    accum = HashAccumulator(max(1, len(m_cols)), add, ident, counter)
            if complement:
                cols, vals = spgevm_accumulator_complement(
                    m_cols, u_cols, u_vals, b, accum, semiring
                )
            else:
                cols, vals = spgevm_accumulator(
                    m_cols, u_cols, u_vals, b, accum, semiring
                )
            accum.reset()
            out_rows.extend([i] * len(cols))
            out_cols.extend(cols)
            out_vals.extend(vals)
    elif algo == "mca":
        for i in range(a.nrows):
            m_cols, _ = mask.row(i)
            u_cols, u_vals = a.row(i)
            if len(m_cols) == 0 or len(u_cols) == 0:
                continue
            accum = MCA(len(m_cols), add, ident, counter)
            cols, vals = spgevm_mca(m_cols, u_cols, u_vals, b, accum, semiring, counter)
            out_rows.extend([i] * len(cols))
            out_cols.extend(cols)
            out_vals.extend(vals)
    elif algo == "esc":
        for i in range(a.nrows):
            m_cols, _ = mask.row(i)
            u_cols, u_vals = a.row(i)
            if len(u_cols) == 0:
                continue
            if not complement and len(m_cols) == 0:
                continue
            cols, vals = spgevm_esc(
                m_cols, u_cols, u_vals, b, semiring, counter,
                complement=complement,
            )
            out_rows.extend([i] * len(cols))
            out_cols.extend(cols)
            out_vals.extend(vals)
    else:  # heap / heapdot
        n_inspect = math.inf if algo == "heapdot" else 1
        for i in range(a.nrows):
            m_cols, _ = mask.row(i)
            u_cols, u_vals = a.row(i)
            if len(u_cols) == 0:
                continue
            if complement:
                cols, vals = spgevm_heap_complement(
                    m_cols, u_cols, u_vals, b, semiring, counter
                )
            else:
                if len(m_cols) == 0:
                    continue
                cols, vals = spgevm_heap(
                    m_cols, u_cols, u_vals, b, semiring, counter, n_inspect
                )
            out_rows.extend([i] * len(cols))
            out_cols.extend(cols)
            out_vals.extend(vals)

    counter.output_nnz += len(out_cols)
    c = CSR.from_coo(
        (a.nrows, b.ncols),
        np.asarray(out_rows, dtype=np.int64),
        np.asarray(out_cols, dtype=np.int64),
        np.asarray(out_vals, dtype=np.float64),
    )
    # semiring zeros may legitimately appear (e.g. sums cancelling); keep
    # them, as GraphBLAS does — structure is meaningful.
    return c


def gustavson_spgemm(
    a: CSR,
    b: CSR,
    *,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
) -> CSR:
    """Plain (unmasked) row-parallel Gustavson SpGEMM — Algorithm 1.  Used
    as the multiply-then-mask baseline of Figure 1 and by the apps when no
    mask applies."""
    if a.ncols != b.nrows:
        raise ValueError("inner dimensions of A and B do not agree")
    counter = counter if counter is not None else OpCounter()
    add, mult = semiring.add, semiring.mult
    out_rows: List[int] = []
    out_cols: List[int] = []
    out_vals: List[float] = []
    spa: dict = {}
    for i in range(a.nrows):
        u_cols, u_vals = a.row(i)
        if len(u_cols) == 0:
            continue
        spa.clear()
        for k, uk in zip(u_cols, u_vals):
            b_cols, b_vals = b.row(int(k))
            uk_f = float(uk)
            for j, bkj in zip(b_cols, b_vals):
                counter.flops += 1
                prod = mult(uk_f, float(bkj))
                jj = int(j)
                if jj in spa:
                    spa[jj] = add(spa[jj], prod)
                else:
                    spa[jj] = prod
        for jj in sorted(spa):
            out_rows.append(i)
            out_cols.append(jj)
            out_vals.append(spa[jj])
    counter.output_nnz += len(out_cols)
    return CSR.from_coo(
        (a.nrows, b.ncols),
        np.asarray(out_rows, dtype=np.int64),
        np.asarray(out_cols, dtype=np.int64),
        np.asarray(out_vals, dtype=np.float64),
    )
