"""Hybrid masked SpGEMM — the paper's stated future work (Section 9):

    "we will investigate hybrid algorithms that can use different
     accumulators in the same Masked SpGEMM depending on the density of the
     mask and parts of matrices being processed."

This module implements that idea as a *row-banded* dispatcher: every output
row is classified by the per-row density regime identified in Figure 7 /
Section 4.3, and each class of rows is executed with the algorithm that
regime favours:

* ``nnz(m_i) << flops_i``  (mask much sparser than the work) -> **inner**,
* ``flops_i << nnz(m_i)``  (inputs much sparser than the mask) -> **mca**
  (compact accumulator; heap is reference-only and never faster here),
* otherwise -> **msa** when the dense accumulator fits the private cache
  for the given machine, else **hash**.

The classification thresholds are exposed so the ablation bench can sweep
them.  Rows of each class are extracted with ``select_rows`` (other rows
emptied), run through the corresponding fast kernel, and the partial
results are summed — patterns are disjoint by construction, so ``ewise_add``
is a pure merge.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..machine import HASWELL, MachineConfig, OpCounter, flops_per_row
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import CSR, ewise_add
from .masked_spgemm import masked_spgemm

__all__ = ["masked_spgemm_hybrid", "classify_rows"]


def classify_rows(
    a: CSR,
    b: CSR,
    mask: CSR,
    machine: MachineConfig = HASWELL,
    *,
    pull_ratio: float = 8.0,
    push_ratio: float = 8.0,
) -> Dict[str, np.ndarray]:
    """Partition row indices into algorithm classes.

    ``pull_ratio``: choose inner when ``flops_i > pull_ratio * nnz(m_i)``.
    ``push_ratio``: choose mca when ``nnz(m_i) > push_ratio * flops_i``.
    """
    fl = flops_per_row(a, b).astype(np.float64)
    mn = mask.row_nnz().astype(np.float64)
    rows = np.arange(a.nrows)
    inner_rows = fl > pull_ratio * np.maximum(mn, 1.0)
    mca_rows = (~inner_rows) & (mn > push_ratio * np.maximum(fl, 1.0))
    rest = ~(inner_rows | mca_rows)
    msa_fits = 2 * b.ncols * 8 <= machine.private_cache_bytes
    out: Dict[str, np.ndarray] = {}
    out["inner"] = rows[inner_rows]
    out["mca"] = rows[mca_rows]
    out["msa" if msa_fits else "hash"] = rows[rest]
    return {k: v for k, v in out.items() if v.size}


def masked_spgemm_hybrid(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    machine: MachineConfig = HASWELL,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
    pull_ratio: float = 8.0,
    push_ratio: float = 8.0,
) -> CSR:
    """Masked SpGEMM with a per-row algorithm choice (see module docs)."""
    classes = classify_rows(
        a, b, mask, machine, pull_ratio=pull_ratio, push_ratio=push_ratio
    )
    result: Optional[CSR] = None
    for algo, rows in classes.items():
        part = masked_spgemm(
            a.select_rows(rows),
            b,
            mask.select_rows(rows),
            algo=algo,
            semiring=semiring,
            counter=counter,
        )
        result = part if result is None else ewise_add(result, part, op=semiring.add_ufunc)
    if result is None:
        result = CSR.empty((a.nrows, b.ncols))
    return result
