"""Hybrid masked SpGEMM — the paper's stated future work (Section 9):

    "we will investigate hybrid algorithms that can use different
     accumulators in the same Masked SpGEMM depending on the density of the
     mask and parts of matrices being processed."

This idea is now implemented by the execution engine (:mod:`repro.engine`),
whose planner assigns every output row band the algorithm its regime
favours.  This module keeps two things:

* :func:`classify_rows` — the *ratio-heuristic* row classifier (the
  original hybrid policy, per Figure 7 / Section 4.3): it is one of the
  planner's banding policies (``banding="ratio"``) and stays exposed so the
  ablation bench can sweep its thresholds:

  * ``nnz(m_i) << flops_i``  (mask much sparser than the work) -> **inner**,
  * ``flops_i << nnz(m_i)``  (inputs much sparser than the mask) -> **mca**
    (compact accumulator; heap is reference-only and never faster here),
  * otherwise -> **msa** when the dense accumulator fits the private cache
    for the given machine, else **hash**.

  With ``complement=True`` the inner/mca regimes are unavailable (neither
  supports complemented masks, paper Sec. 8.4) and every row falls through
  to the msa/hash regime.

* :func:`masked_spgemm_hybrid` — the historical front door, now a thin
  wrapper that builds a ratio-banded :class:`~repro.engine.ExecutionPlan`
  and hands it to the engine executor.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..machine import HASWELL, MachineConfig, OpCounter, flops_per_row
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import CSR

__all__ = ["masked_spgemm_hybrid", "classify_rows"]


def classify_rows(
    a: CSR,
    b: CSR,
    mask: CSR,
    machine: MachineConfig = HASWELL,
    *,
    pull_ratio: float = 8.0,
    push_ratio: float = 8.0,
    complement: bool = False,
) -> Dict[str, np.ndarray]:
    """Partition row indices into algorithm classes.

    ``pull_ratio``: choose inner when ``flops_i > pull_ratio * nnz(m_i)``.
    ``push_ratio``: choose mca when ``nnz(m_i) > push_ratio * flops_i``.
    ``complement``: complemented masks can never route to inner/mca (they
    do not support complement), so all rows land in the msa/hash regime.
    """
    fl = flops_per_row(a, b).astype(np.float64)
    mn = mask.row_nnz().astype(np.float64)
    rows = np.arange(a.nrows)
    if complement:
        inner_rows = np.zeros(a.nrows, dtype=bool)
        mca_rows = np.zeros(a.nrows, dtype=bool)
    else:
        inner_rows = fl > pull_ratio * np.maximum(mn, 1.0)
        mca_rows = (~inner_rows) & (mn > push_ratio * np.maximum(fl, 1.0))
    rest = ~(inner_rows | mca_rows)
    msa_fits = 2 * b.ncols * 8 <= machine.private_cache_bytes
    out: Dict[str, np.ndarray] = {}
    out["inner"] = rows[inner_rows]
    out["mca"] = rows[mca_rows]
    out["msa" if msa_fits else "hash"] = rows[rest]
    return {k: v for k, v in out.items() if v.size}


def masked_spgemm_hybrid(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    machine: MachineConfig = HASWELL,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
    pull_ratio: float = 8.0,
    push_ratio: float = 8.0,
    impl: str = "auto",
) -> CSR:
    """Masked SpGEMM with a per-row algorithm choice (see module docs).

    Equivalent to planning with ``banding="ratio"`` and executing; use
    ``masked_spgemm(..., algo="auto")`` for the cost-model-driven choice.
    """
    from ..engine import Planner, execute

    pl = Planner(
        machine,
        banding="ratio",
        pull_ratio=pull_ratio,
        push_ratio=push_ratio,
    ).plan(a, b, mask, complement=complement, phases=1, threads=1)
    return execute(pl, a, b, mask, semiring=semiring, impl=impl, counter=counter)
