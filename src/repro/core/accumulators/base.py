"""The masked accumulator interface (paper Section 5.1).

An accumulator merges the scaled rows of ``B`` into one output row while
discarding (ideally: never computing) values the mask forbids.  Unlike the
plain Sparse Accumulator of Gilbert et al., a *masked* accumulator
distinguishes three states per key::

    NOTALLOWED --setAllowed()--> ALLOWED --insert()--> SET

The interface has exactly the three procedures of the paper:

* ``set_allowed(key)`` — mark a key as permitted by the mask.
* ``insert(key, value)`` — add a product to the key's accumulated value;
  ``value`` may be a zero-argument callable ("lambda" in the paper) which is
  only evaluated if the value will not be discarded, so masked-out products
  cost no multiplication.
* ``remove(key)`` — return the accumulated value (or ``None`` if the key was
  never SET) and clear the key back to its default state.

Complemented-mask accumulators flip the default state to ALLOWED and expose
``set_not_allowed`` instead (paper Section 5.2, last paragraph).

Every implementation is instrumented with an :class:`repro.machine.OpCounter`
so the reference kernels can report the operation profile the cost model and
the benches consume.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Union

from ...machine import OpCounter

__all__ = ["NOTALLOWED", "ALLOWED", "SET", "MaskedAccumulator", "resolve_value"]

NOTALLOWED = 0
ALLOWED = 1
SET = 2

ValueLike = Union[float, Callable[[], float]]


def resolve_value(value: ValueLike) -> float:
    """Evaluate a lazily-supplied value (paper: the INSERT lambda)."""
    return value() if callable(value) else value


class MaskedAccumulator(abc.ABC):
    """Abstract masked accumulator.

    Concrete accumulators are *reused across rows*: ``reset`` restores the
    default state cheaply (MSA keeps a list of dirtied cells so reuse is
    O(cells touched), not O(n)).
    """

    #: whether this accumulator implements the complemented-mask protocol
    supports_complement: bool = False

    def __init__(self, add, add_identity: float = 0.0, counter: Optional[OpCounter] = None):
        self.add = add
        self.add_identity = add_identity
        self.counter = counter if counter is not None else OpCounter()

    @abc.abstractmethod
    def set_allowed(self, key: int) -> None:
        """Mark ``key`` as permitted by the mask (NOTALLOWED -> ALLOWED)."""

    @abc.abstractmethod
    def insert(self, key: int, value: ValueLike) -> None:
        """Accumulate ``value`` at ``key`` if the key is ALLOWED or SET."""

    @abc.abstractmethod
    def remove(self, key: int) -> Optional[float]:
        """Pop the accumulated value at ``key``; ``None`` if never SET."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Restore the default state for reuse on the next row."""

    def set_not_allowed(self, key: int) -> None:
        """Complement-mode marking; only valid on complement accumulators."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support complemented masks"
        )
