"""Heap-based k-way merge machinery — paper Section 5.5, Algorithms 4-5.

The heap scheme is not an accumulator in the SETALLOWED/INSERT/REMOVE sense:
it merges the sorted rows ``{B[k,:] : u_k != 0}`` through a min-heap of row
iterators ordered by current column index, intersecting the merged stream
with the (sorted) mask on the fly.  This module provides the two pieces the
SpGEVM kernel needs:

* :class:`RowIterator` — a cursor over one row's (col, val) pairs.
* :func:`heap_insert` — Algorithm 5: before pushing an iterator, inspect up
  to ``n_inspect`` mask elements and fast-forward the iterator past columns
  the mask can never accept.  ``n_inspect=0`` disables inspection (used for
  complemented masks), ``1`` gives the paper's "Heap" variant and ``inf``
  the "HeapDot" variant.

Heap ordering uses ``(col, row)`` keys so merges are deterministic.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

import numpy as np

from ...machine import OpCounter
from ...observe import probes as _probes

__all__ = ["RowIterator", "MaskIterator", "heap_insert", "heap_pop"]


class RowIterator:
    """Cursor over the nonzeros of one sorted row of B (or of the mask)."""

    __slots__ = ("cols", "vals", "pos", "row_id", "scale")

    def __init__(self, cols: np.ndarray, vals: Optional[np.ndarray], row_id: int, scale: float = 1.0):
        self.cols = cols
        self.vals = vals
        self.pos = 0
        self.row_id = row_id
        self.scale = scale

    def valid(self) -> bool:
        return self.pos < len(self.cols)

    @property
    def col(self) -> int:
        return int(self.cols[self.pos])

    @property
    def val(self) -> float:
        return float(self.vals[self.pos])

    def advance(self) -> "RowIterator":
        self.pos += 1
        return self

    def __lt__(self, other: "RowIterator") -> bool:
        return (self.col, self.row_id) < (other.col, other.row_id)


class MaskIterator(RowIterator):
    """Iterator over the mask row; values are ignored (pattern only)."""

    def __init__(self, cols: np.ndarray):
        super().__init__(cols, None, row_id=-1)


def heap_insert(
    pq: List[RowIterator],
    row_iter: RowIterator,
    mask_iter: MaskIterator,
    n_inspect: float,
    counter: OpCounter,
) -> None:
    """Algorithm 5: push ``row_iter``, inspecting up to ``n_inspect`` mask
    positions first to skip provably-masked-out elements.

    The inspection co-advances ``row_iter`` and a *local view* of the mask
    (the shared ``mask_iter`` position is a lower bound that only the main
    loop advances, exactly as in the paper where ``mIter`` is passed by
    value to INSERT).
    """
    if not row_iter.valid():
        return
    pr = _probes._INSTALLED
    if n_inspect == 0:
        heapq.heappush(pq, row_iter)
        counter.heap_pushes += 1
        if pr is not None:
            pr.hist("heap.inspect_advances").record(0)
        return
    to_inspect = n_inspect
    mpos = mask_iter.pos
    mcols = mask_iter.cols
    mlen = len(mcols)
    scans = 0  # NInspect advances this (re-)insertion performed
    try:
        while row_iter.valid() and mpos < mlen:
            scans += 1
            counter.mask_scans += 1
            rc = row_iter.col
            mc = int(mcols[mpos])
            if rc == mc:
                heapq.heappush(pq, row_iter)
                counter.heap_pushes += 1
                return
            if rc < mc:
                row_iter.advance()
            else:
                mpos += 1
                to_inspect -= 1
                if to_inspect == 0:
                    heapq.heappush(pq, row_iter)
                    counter.heap_pushes += 1
                    return
        # The inspection loop only exits here when the row iterator ran dry
        # or the (local view of the) mask did; either way no element of this
        # row at or beyond the current position can ever match, so the
        # iterator is dropped — Algorithm 5 likewise only pushes inside the
        # loop.
        return
    finally:
        if pr is not None:
            pr.hist("heap.inspect_advances").record(scans)


def heap_pop(pq: List[RowIterator], counter: OpCounter) -> RowIterator:
    counter.heap_pops += 1
    return heapq.heappop(pq)
