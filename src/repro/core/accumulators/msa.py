"""Masked Sparse Accumulator (MSA) — paper Section 5.2, Figures 3-4.

Two dense arrays of length ``ncols``: ``values`` holds accumulated results
and ``states`` holds the NOTALLOWED/ALLOWED/SET automaton state per column.
State transitions (Figure 3)::

    NOTALLOWED --setAllowed--> ALLOWED --insert--> SET --insert--> SET (accumulate)

Inserting into a NOTALLOWED key is a no-op *and the value lambda is never
evaluated*, which is how the mask saves multiplications.

``remove`` resets a key to the default state, so gathering the output row
through the mask (``remove`` per mask nonzero, in mask order — which also
makes the output sorted whenever the mask is, the stability property the
paper highlights) leaves the accumulator clean for the next row: per-row
reuse costs O(entries touched), not O(ncols).

The complemented variant (:class:`MSAComplement`) flips the default state to
ALLOWED, exposes ``set_not_allowed``, and keeps an explicit list of inserted
keys so the gather need not scan the whole dense array (paper, last
paragraph of Section 5.2 — the same trick Gustavson used).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ...observe import probes as _probes
from .base import ALLOWED, NOTALLOWED, SET, MaskedAccumulator, ValueLike, resolve_value

__all__ = ["MSA", "MSAComplement"]


class MSA(MaskedAccumulator):
    """Dense masked sparse accumulator with O(1) state/value access."""

    def __init__(self, ncols: int, add, add_identity: float = 0.0, counter=None):
        super().__init__(add, add_identity, counter)
        self.ncols = int(ncols)
        self.values = np.full(self.ncols, add_identity, dtype=np.float64)
        self.states = np.full(self.ncols, NOTALLOWED, dtype=np.int8)
        self._touched: List[int] = []  # keys moved out of NOTALLOWED
        self.counter.accum_init += self.ncols

    def set_allowed(self, key: int) -> None:
        self.counter.accum_allowed += 1
        if self.states[key] == NOTALLOWED:
            self.states[key] = ALLOWED
            self._touched.append(key)

    def insert(self, key: int, value: ValueLike) -> None:
        self.counter.accum_inserts += 1
        st = self.states[key]
        if st == NOTALLOWED:
            return  # discarded; lambda never evaluated
        self.counter.flops += 1
        if st == ALLOWED:
            self.states[key] = SET
            self.values[key] = resolve_value(value)
        else:  # SET: accumulate
            self.values[key] = self.add(self.values[key], resolve_value(value))

    def remove(self, key: int) -> Optional[float]:
        self.counter.accum_removes += 1
        if self.states[key] != SET:
            # clearing ALLOWED back to default keeps reuse cheap
            self.states[key] = NOTALLOWED
            return None
        self.states[key] = NOTALLOWED
        v = float(self.values[key])
        self.values[key] = self.add_identity
        return v

    def reset(self) -> None:
        pr = _probes._INSTALLED
        if pr is not None:
            # touched cells vs the dense footprint: the reset-list trick's
            # whole value proposition, measured
            pr.hist("msa.reset_cells").record(len(self._touched))
            pr.hist("msa.touched_per_ncols_pct").record(
                100 * len(self._touched) // max(1, self.ncols)
            )
        for key in self._touched:
            if self.states[key] != NOTALLOWED:
                self.states[key] = NOTALLOWED
                self.values[key] = self.add_identity
                self.counter.spa_resets += 1
        self._touched.clear()


class MSAComplement(MaskedAccumulator):
    """MSA for complemented masks: default state is ALLOWED; mask entries are
    marked NOTALLOWED; an inserted-key list supports sparse gathering."""

    supports_complement = True

    def __init__(self, ncols: int, add, add_identity: float = 0.0, counter=None):
        super().__init__(add, add_identity, counter)
        self.ncols = int(ncols)
        self.values = np.full(self.ncols, add_identity, dtype=np.float64)
        self.states = np.full(self.ncols, ALLOWED, dtype=np.int8)
        self._not_allowed: List[int] = []
        self._inserted: List[int] = []
        self.counter.accum_init += self.ncols

    def set_allowed(self, key: int) -> None:  # pragma: no cover - not used
        raise NotImplementedError("complemented MSA marks keys NOT allowed")

    def set_not_allowed(self, key: int) -> None:
        self.counter.accum_allowed += 1
        if self.states[key] == ALLOWED:
            self.states[key] = NOTALLOWED
            self._not_allowed.append(key)

    def insert(self, key: int, value: ValueLike) -> None:
        self.counter.accum_inserts += 1
        st = self.states[key]
        if st == NOTALLOWED:
            return
        self.counter.flops += 1
        if st == ALLOWED:
            self.states[key] = SET
            self.values[key] = resolve_value(value)
            self._inserted.append(key)
        else:
            self.values[key] = self.add(self.values[key], resolve_value(value))

    def remove(self, key: int) -> Optional[float]:
        self.counter.accum_removes += 1
        if self.states[key] != SET:
            return None
        self.states[key] = ALLOWED
        v = float(self.values[key])
        self.values[key] = self.add_identity
        return v

    def inserted_keys(self) -> List[int]:
        """Keys inserted for the current row, in insertion order.  The
        caller sorts them when a sorted output row is required."""
        return self._inserted

    def reset(self) -> None:
        for key in self._inserted:
            if self.states[key] == SET:
                self.states[key] = ALLOWED
                self.values[key] = self.add_identity
                self.counter.spa_resets += 1
        for key in self._not_allowed:
            self.states[key] = ALLOWED
        self._inserted.clear()
        self._not_allowed.clear()
