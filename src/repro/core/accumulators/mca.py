"""Mask Compressed Accumulator (MCA) — paper Section 5.4, Figures 5-6.

The novel accumulator of the paper.  Observation: an output row can never
hold more entries than the mask row has nonzeros, so the accumulator arrays
can be sized ``nnz(m)`` instead of ``ncols``.  Keys are *not* column indices
but the **rank** of the mask nonzero — "the number of nonzero elements in m
with column index smaller than j" — which the row-wise merge of Algorithm 3
produces for free when both the mask and the B rows are sorted.

Because every representable key is, by construction, present in the mask,
only two states are needed: ALLOWED (default) and SET (Figure 5); there is
no NOTALLOWED state and hence no ``set_allowed`` work at all.

MCA cannot express a complemented mask (the compressed index space only
covers mask positions), which is why the paper omits it from the
Betweenness Centrality benchmark (Section 8.4).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...observe import probes as _probes
from .base import ALLOWED, SET, MaskedAccumulator, ValueLike, resolve_value

__all__ = ["MCA"]


class MCA(MaskedAccumulator):
    """Compressed accumulator indexed by mask-nonzero rank."""

    supports_complement = False

    def __init__(self, max_keys: int, add, add_identity: float = 0.0, counter=None):
        super().__init__(add, add_identity, counter)
        self.capacity = int(max_keys)
        self.values = np.full(self.capacity, add_identity, dtype=np.float64)
        self.states = np.full(self.capacity, ALLOWED, dtype=np.int8)
        self.counter.accum_init += self.capacity

    def set_allowed(self, key: int) -> None:
        # Every compressed key is allowed by construction; the call is
        # accepted (the generic SpGEVM driver may issue it) but free.
        if not (0 <= key < self.capacity):
            raise IndexError("MCA key out of range")

    def insert(self, key: int, value: ValueLike) -> None:
        self.counter.accum_inserts += 1
        self.counter.flops += 1
        if self.states[key] == ALLOWED:
            self.states[key] = SET
            self.values[key] = resolve_value(value)
        else:
            self.values[key] = self.add(self.values[key], resolve_value(value))

    def remove(self, key: int) -> Optional[float]:
        self.counter.accum_removes += 1
        if self.states[key] != SET:
            return None
        self.states[key] = ALLOWED
        v = float(self.values[key])
        self.values[key] = self.add_identity
        return v

    def reset(self) -> None:
        # remove() already restores ALLOWED; a defensive full clear is cheap
        # because capacity == nnz(m) for the row.
        pr = _probes._INSTALLED
        if pr is not None:
            pr.hist("mca.reset_cells").record(self.capacity)
        self.states.fill(ALLOWED)
        self.values.fill(self.add_identity)
        self.counter.spa_resets += self.capacity
