"""Hash accumulator — paper Section 5.3.

Same automaton as the MSA but stored in an open-addressing hash table with
linear probing, so the working set is proportional to ``nnz(m)`` instead of
``ncols`` and fits in L1/L2.  Per the paper:

* value and state live together in one table entry (one cache line touch per
  operation),
* no resizing — the table is sized once from ``nnz(m)`` (the row's mask
  nonzero count), since no more than that many keys can ever be allowed,
* load factor 0.25 to keep probe chains short.

The complemented variant cannot size the table from the mask (any column
outside the mask may be inserted), so it sizes from an upper bound on the
row's unmasked output and marks mask keys NOTALLOWED.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ...observe import probes as _probes
from .base import ALLOWED, NOTALLOWED, SET, MaskedAccumulator, ValueLike, resolve_value

__all__ = ["HashAccumulator", "HashComplement", "LOAD_FACTOR"]

LOAD_FACTOR = 0.25
EMPTY = -1

# Knuth multiplicative hashing constant (same family as the C++ original).
_HASH_SCAL = 0x9E3779B1


def table_capacity(max_keys: int, load_factor: float = LOAD_FACTOR) -> int:
    """Power-of-two capacity holding ``max_keys`` at the given load factor."""
    need = max(1, int(np.ceil(max(1, max_keys) / load_factor)))
    return 1 << (need - 1).bit_length()


class _OpenAddressTable:
    """Open addressing, linear probing, no deletion (rows reset wholesale)."""

    __slots__ = ("cap", "mask", "keys", "vals", "states", "used", "counter",
                 "default_state", "chain_hist")

    def __init__(self, cap: int, add_identity: float, counter, default_state: int = NOTALLOWED):
        self.cap = cap
        self.mask = cap - 1
        self.keys = np.full(cap, EMPTY, dtype=np.int64)
        self.vals = np.full(cap, add_identity, dtype=np.float64)
        self.states = np.full(cap, default_state, dtype=np.int8)
        self.used: List[int] = []
        self.counter = counter
        self.default_state = default_state
        # probe registry bound once per table; None keeps slot() allocation-free
        pr = _probes._INSTALLED
        self.chain_hist = pr.hist("hash.probe_chain") if pr is not None else None

    def slot(self, key: int, *, create: bool) -> int:
        """Probe for ``key``; returns the slot index, or -1 if absent and
        ``create`` is False.  Counts probes (and the chain-length histogram
        when probes are enabled: the chain this operation walked)."""
        i = (key * _HASH_SCAL) & self.mask
        chain = 0
        try:
            while True:
                chain += 1
                self.counter.hash_probes += 1
                k = self.keys[i]
                if k == key:
                    return i
                if k == EMPTY:
                    if not create:
                        return -1
                    if len(self.used) >= self.cap:
                        raise RuntimeError("hash accumulator over capacity")
                    self.keys[i] = key
                    self.used.append(i)
                    return i
                i = (i + 1) & self.mask
        finally:
            if self.chain_hist is not None:
                self.chain_hist.record(chain)


class HashAccumulator(MaskedAccumulator):
    """Masked hash accumulator sized by the row's mask nonzero count."""

    def __init__(self, max_keys: int, add, add_identity: float = 0.0, counter=None):
        super().__init__(add, add_identity, counter)
        cap = table_capacity(max_keys)
        self._t = _OpenAddressTable(cap, add_identity, self.counter)
        self.counter.accum_init += cap

    @property
    def capacity(self) -> int:
        return self._t.cap

    def set_allowed(self, key: int) -> None:
        self.counter.accum_allowed += 1
        t = self._t
        i = t.slot(key, create=True)
        if t.states[i] == NOTALLOWED:
            t.states[i] = ALLOWED

    def insert(self, key: int, value: ValueLike) -> None:
        self.counter.accum_inserts += 1
        t = self._t
        i = t.slot(key, create=False)
        if i < 0 or t.states[i] == NOTALLOWED:
            return  # masked out; lambda never evaluated
        self.counter.flops += 1
        if t.states[i] == ALLOWED:
            t.states[i] = SET
            t.vals[i] = resolve_value(value)
        else:
            t.vals[i] = self.add(t.vals[i], resolve_value(value))

    def remove(self, key: int) -> Optional[float]:
        self.counter.accum_removes += 1
        t = self._t
        i = t.slot(key, create=False)
        if i < 0:
            return None
        if t.states[i] != SET:
            # REMOVE restores the default state even for never-inserted
            # keys (same contract as the MSA)
            t.states[i] = NOTALLOWED
            return None
        t.states[i] = NOTALLOWED  # key slot stays resident; freed on reset
        v = float(t.vals[i])
        t.vals[i] = self.add_identity
        return v

    def reset(self) -> None:
        t = self._t
        pr = _probes._INSTALLED
        if pr is not None:
            pr.hist("hash.load_factor_pct").record(100 * len(t.used) // t.cap)
        for i in t.used:
            t.keys[i] = EMPTY
            t.states[i] = NOTALLOWED
            t.vals[i] = self.add_identity
            self.counter.spa_resets += 1
        t.used.clear()


class HashComplement(MaskedAccumulator):
    """Hash accumulator for complemented masks.

    Mask keys are registered as NOTALLOWED; unknown keys default to ALLOWED
    (they are created on first insert).  An inserted-slot list supports
    gathering without scanning the table.
    """

    supports_complement = True

    def __init__(self, max_keys: int, add, add_identity: float = 0.0, counter=None):
        super().__init__(add, add_identity, counter)
        cap = table_capacity(max_keys)
        self._t = _OpenAddressTable(cap, add_identity, self.counter, default_state=ALLOWED)
        self._inserted: List[int] = []
        self.counter.accum_init += cap

    @property
    def capacity(self) -> int:
        return self._t.cap

    def set_allowed(self, key: int) -> None:  # pragma: no cover - not used
        raise NotImplementedError("complemented hash marks keys NOT allowed")

    def set_not_allowed(self, key: int) -> None:
        self.counter.accum_allowed += 1
        t = self._t
        i = t.slot(key, create=True)
        # only ALLOWED -> NOTALLOWED; a SET key keeps its accumulated value
        # (same automaton as the MSA: NOTALLOWED never follows SET)
        if t.states[i] == ALLOWED:
            t.states[i] = NOTALLOWED

    def insert(self, key: int, value: ValueLike) -> None:
        self.counter.accum_inserts += 1
        t = self._t
        i = t.slot(key, create=True)
        st = t.states[i]
        if st == NOTALLOWED:
            return
        self.counter.flops += 1
        if st == ALLOWED:  # first value for this key
            t.states[i] = SET
            t.vals[i] = resolve_value(value)
            self._inserted.append(key)
        else:  # SET: accumulate
            t.vals[i] = self.add(t.vals[i], resolve_value(value))

    def remove(self, key: int) -> Optional[float]:
        self.counter.accum_removes += 1
        t = self._t
        i = t.slot(key, create=False)
        if i < 0 or t.states[i] != SET:
            return None
        t.states[i] = ALLOWED
        v = float(t.vals[i])
        t.vals[i] = self.add_identity
        return v

    def inserted_keys(self) -> List[int]:
        return self._inserted

    def reset(self) -> None:
        t = self._t
        for i in t.used:
            t.keys[i] = EMPTY
            t.states[i] = t.default_state
            t.vals[i] = self.add_identity
            self.counter.spa_resets += 1
        t.used.clear()
        self._inserted.clear()
