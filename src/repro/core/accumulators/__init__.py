"""The four masked accumulators of the paper (Section 5) plus their
complemented-mask variants."""

from .base import ALLOWED, NOTALLOWED, SET, MaskedAccumulator, resolve_value
from .hash import HashAccumulator, HashComplement, LOAD_FACTOR, table_capacity
from .heap import MaskIterator, RowIterator, heap_insert, heap_pop
from .mca import MCA
from .msa import MSA, MSAComplement

__all__ = [
    "ALLOWED",
    "NOTALLOWED",
    "SET",
    "MaskedAccumulator",
    "resolve_value",
    "HashAccumulator",
    "HashComplement",
    "LOAD_FACTOR",
    "table_capacity",
    "MaskIterator",
    "RowIterator",
    "heap_insert",
    "heap_pop",
    "MCA",
    "MSA",
    "MSAComplement",
]
