"""The paper's primary contribution: masked SpGEMM algorithms.

Public entry points:

* :func:`masked_spgemm` — the dispatcher over all algorithms/variants;
  ``algo="auto"`` routes through the cost-model execution engine
  (:mod:`repro.engine`), which plans per-row-band algorithms, 1P/2P
  phases, row partitioning and optional column panels.
* :func:`masked_spgemm_hybrid` — the future-work per-row hybrid (now a
  ratio-banded plan executed by the engine).
* :func:`masked_spgemm_chunked` — the memory-bounded panelled front
  (now a forced-panel plan executed by the engine).
* :func:`gustavson_spgemm` / :func:`spgemm_saxpy_fast` — plain SpGEMM.
* :func:`masked_spgemm_multiply_then_mask` — the Figure-1 baseline.
* :mod:`repro.core.accumulators` — MSA / Hash / MCA / Heap.
"""

from . import accumulators, kernels
from .chunked import column_panels, masked_spgemm_chunked, restrict_columns
from .hybrid import classify_rows, masked_spgemm_hybrid
from .kernels.saxpy_kernel import masked_spgemm_multiply_then_mask, spgemm_saxpy_fast
from .masked_spgemm import (
    ALGO_LABELS,
    ALGOS,
    ALL_ALGOS,
    EXTENSION_ALGOS,
    masked_spgemm,
    supports_complement,
)
from .reference import gustavson_spgemm, masked_spgemm_reference
from .spmv import masked_spmv, masked_spmv_pull, masked_spmv_push
from .symbolic import one_phase_bound, symbolic_masked

__all__ = [
    "accumulators",
    "kernels",
    "column_panels",
    "masked_spgemm_chunked",
    "restrict_columns",
    "classify_rows",
    "masked_spgemm_hybrid",
    "masked_spgemm_multiply_then_mask",
    "spgemm_saxpy_fast",
    "ALGO_LABELS",
    "ALGOS",
    "ALL_ALGOS",
    "EXTENSION_ALGOS",
    "masked_spgemm",
    "supports_complement",
    "gustavson_spgemm",
    "masked_spgemm_reference",
    "masked_spmv",
    "masked_spmv_pull",
    "masked_spmv_push",
    "one_phase_bound",
    "symbolic_masked",
]
