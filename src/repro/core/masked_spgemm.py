"""User-facing masked SpGEMM dispatcher.

``masked_spgemm(A, B, M, algo=..., ...)`` computes ``C = M .* (A @ B)`` (or
``C = !M .* (A @ B)`` with ``complement=True``) on an arbitrary semiring
using any of the paper's algorithms:

========  ======================================  ==========  ==========
algo      description                             complement  fast path
========  ======================================  ==========  ==========
auto      cost-model planner picks per row band   yes         yes
inner     pull-based dot products (Sec. 4.1)      no          yes
msa       Masked Sparse Accumulator (Sec. 5.2)    yes         yes
hash      hash accumulator (Sec. 5.3)             yes         yes
mca       Mask Compressed Accumulator (Sec. 5.4)  no          yes
heap      heap merge, NInspect=1 (Sec. 5.5)       yes         reference
heapdot   heap merge, NInspect=inf (Sec. 5.5)     yes         reference
esc       expand-sort-compress (extension)        yes         yes
========  ======================================  ==========  ==========

``algo="auto"`` routes through :mod:`repro.engine`: a
:class:`~repro.engine.Planner` builds an inspectable
:class:`~repro.engine.ExecutionPlan` from the matrices' statistics, the
machine's cost model and the 1P/2P work estimates, and the engine executes
it (use ``repro.engine.plan(...)`` directly to *see* the decision before
running it).

``phases`` selects the 1P/2P output-formation strategy of Section 6: 2P
runs a symbolic sweep first (its cost lands in ``counter.symbolic_flops``)
and the numeric phase writes into an exact allocation; 1P sizes scratch by
the mask bound.  Both produce identical matrices — the difference is work,
which the counters and the cost model expose.

``impl`` picks the implementation tier: ``"fast"`` (vectorized NumPy,
default), ``"reference"`` (pseudocode-faithful scalar code), or ``"auto"``
(fast where available, reference otherwise — heap schemes are
reference-only by design; they are the paper's slowest and serve as the
algorithmic lower bound for merging without an accumulator array).
"""

from __future__ import annotations

from typing import Optional

from ..machine import MachineConfig, OpCounter
from ..observe import tracer as _obs
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import CSC, CSR
from .kernels.batch import BATCH_TIERS, BATCHABLE_ALGOS, resolve_tier
from .kernels.esc_kernel import masked_spgemm_esc_fast
from .kernels.hash_kernel import masked_spgemm_hash_fast
from .kernels.inner_kernel import masked_spgemm_inner_fast
from .kernels.mca_kernel import masked_spgemm_mca_fast
from .kernels.msa_kernel import masked_spgemm_msa_fast
from .reference import masked_spgemm_reference
from .symbolic import one_phase_bound, symbolic_masked

__all__ = [
    "masked_spgemm",
    "ALGOS",
    "EXTENSION_ALGOS",
    "ALL_ALGOS",
    "supports_complement",
    "ALGO_LABELS",
]

#: the paper's six algorithms (the scheme lists / figures use these)
ALGOS = ("inner", "msa", "hash", "mca", "heap", "heapdot")

#: extension algorithms implemented beyond the paper (DESIGN.md §7)
EXTENSION_ALGOS = ("esc",)

ALL_ALGOS = ALGOS + EXTENSION_ALGOS

#: scheme labels as the paper prints them (Section 8) + extensions
ALGO_LABELS = {
    "inner": "Inner",
    "msa": "MSA",
    "hash": "Hash",
    "mca": "MCA",
    "heap": "Heap",
    "heapdot": "HeapDot",
    "esc": "ESC",
}

_FAST = {
    "msa": masked_spgemm_msa_fast,
    "hash": masked_spgemm_hash_fast,
    "mca": masked_spgemm_mca_fast,
    "inner": masked_spgemm_inner_fast,
    "esc": masked_spgemm_esc_fast,
}

_NO_COMPLEMENT = frozenset({"inner", "mca"})


def supports_complement(algo: str) -> bool:
    """Whether the algorithm supports a complemented mask (the paper drops
    MCA and Inner from the Betweenness Centrality benchmark for this)."""
    return algo.lower() not in _NO_COMPLEMENT


def masked_spgemm(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    algo: str = "msa",
    phases: Optional[int] = None,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    impl: str = "auto",
    counter: Optional[OpCounter] = None,
    b_csc: Optional[CSC] = None,
    orientation: str = "row",
    machine: Optional[MachineConfig] = None,
    backend: Optional[str] = None,
    shards=None,
    batch: str = "auto",
    session=None,
    delta=None,
) -> CSR:
    """Compute ``C = M .* (A @ B)`` (``!M`` with ``complement=True``).

    Parameters
    ----------
    a, b:
        CSR operands; inner dimensions must agree.
    mask:
        CSR mask; only its pattern is used (values ignored).
    algo:
        One of :data:`ALGOS`, or ``"auto"`` to let the cost-model planner
        (:mod:`repro.engine`) choose per row band.
    phases:
        1 (one-phase) or 2 (two-phase with a symbolic sweep).  Defaults to
        1, except with ``algo="auto"`` where the planner decides.
    semiring:
        Any :class:`repro.semiring.Semiring`; fast kernels additionally
        require the semiring's ``add_ufunc`` to support ``.at``/``.reduceat``.
    impl:
        ``"fast"``, ``"reference"`` or ``"auto"``.
    counter:
        Optional :class:`OpCounter` accumulating the operation profile.
    b_csc:
        Pre-built CSC of ``B`` for the inner algorithm (amortises the
        transpose across calls, as a real user would).
    orientation:
        ``"row"`` (the paper's row-by-row decomposition, default) or
        ``"column"`` — compute column-by-column by running the row
        algorithm on the transposed problem ``(B^T A^T)^T`` (the
        Buluç–Gilbert orientation the heap algorithm came from).  Only the
        traversal order changes; results are identical.
    machine:
        :class:`MachineConfig` the ``"auto"`` planner targets (default
        Haswell), or a string: a preset name (``"haswell"``, ``"knl"``)
        or ``"fitted"`` for the history-calibrated config persisted by
        ``python -m repro.machine fit`` (``docs/calibration.md``).  For
        explicit algorithms only the batch crossover is consulted.
    backend:
        Execution backend for ``algo="auto"``: ``None`` lets the planner's
        cost model choose (``serial`` | ``thread`` | ``process``), a string
        forces it.  Explicit algorithms run in-process; use
        :func:`repro.parallel.parallel_masked_spgemm` to parallelise them.
    shards:
        Shard-grid knob (see ``docs/sharding.md``): ``None`` (default)
        runs unsharded; ``"auto"`` lets the planner shard when the operand
        working set exceeds the machine's ``shard_memory_budget_bytes``;
        ``(row_blocks, col_panels)`` forces an evenly-spaced grid; an
        explicit :class:`~repro.engine.ShardGrid` is used verbatim.  Any
        non-``None`` value routes execution through the engine (with the
        given ``algo`` forced, or the planner's choice for ``"auto"``);
        results are bit-for-bit identical to the unsharded path.
    batch:
        Batching tier of the MSA/Hash/ESC fast kernels (see
        ``docs/kernels.md``): ``"auto"`` (default) picks the bucketed tier
        when the call's upper-bound flops reach the machine's
        ``batch_crossover_flops``, ``"bucket"`` / ``"perrow"`` force a
        tier.  With ``algo="auto"`` the planner decides per row band (a
        forced tier applies to every band).  Both tiers are bit-for-bit
        identical in values and counters; on the bucketed tier a 2P call
        additionally fuses the symbolic bound into output formation.
        Ignored by algorithms without a bucketed tier.
    session:
        Optional :class:`repro.engine.ExecutionSession` holding cross-call
        caches for iterative workloads: plan cache, CSC transpose memo,
        symbolic-bound memo and (for the process backend) the shm segment
        registry.  Results are bit-for-bit identical with or without one.
        ``False`` (the app-level "disable caching" sentinel) is accepted
        and means the same as ``None`` here: no cross-call caching.
    delta:
        Incremental execution against the session's cached state (see
        ``docs/incremental.md``): ``None`` (default) recomputes fully;
        ``"auto"`` diffs consecutive operands and recomputes only the
        dirty output rows, falling back to a full run when the dirty
        fraction exceeds :data:`repro.engine.delta.DELTA_MAX_FRACTION`;
        a float in ``(0, 1]`` overrides that threshold; ``"force"``
        always patches (test hook).  Any non-``None`` value routes
        through the engine; a caching ``session`` is required —
        ``"auto"`` silently degrades to a full run without one,
        ``"force"`` raises.  Results are bit-for-bit identical to a
        full recompute on every backend, sharded or not.
    """
    if machine is not None and not isinstance(machine, MachineConfig):
        # accept preset names and "fitted" wherever a config is accepted
        from ..machine import resolve_machine

        machine = resolve_machine(machine)
    if orientation not in ("row", "column"):
        raise ValueError("orientation must be 'row' or 'column'")
    if orientation == "column":
        shards_t = shards
        if isinstance(shards, tuple):
            shards_t = (shards[1], shards[0])
        elif shards is not None and not isinstance(shards, str):
            # an explicit ShardGrid is in output coordinates: transpose it
            shards_t = type(shards)(shards.col_bounds, shards.row_bounds)
        ct = masked_spgemm(
            b.transpose(),
            a.transpose(),
            mask.transpose(),
            algo=algo,
            phases=phases,
            complement=complement,
            semiring=semiring,
            impl=impl,
            counter=counter,
            orientation="row",
            machine=machine,
            backend=backend,
            shards=shards_t,
            batch=batch,
            session=session,
            delta=delta,
        )
        return ct.transpose()
    key = algo.lower()
    if batch not in BATCH_TIERS:
        raise ValueError(f"batch must be one of {BATCH_TIERS}, got {batch!r}")
    if key != "auto" and key not in ALL_ALGOS:
        raise ValueError(
            f"unknown algorithm {algo!r}; expected one of "
            f"{('auto',) + ALL_ALGOS}"
        )
    if a.ncols != b.nrows:
        raise ValueError(
            f"inner dimensions of A and B do not agree: {a.shape} @ {b.shape}"
        )
    if mask.shape != (a.nrows, b.ncols):
        raise ValueError(
            f"mask shape {mask.shape} must match the output shape "
            f"({a.nrows}, {b.ncols})"
        )
    if phases is not None and phases not in (1, 2):
        raise ValueError("phases must be 1 or 2")
    if impl not in ("fast", "reference", "auto"):
        raise ValueError("impl must be 'fast', 'reference' or 'auto'")
    if key == "auto" or shards is not None or (delta is not None and delta is not False):
        # route through the execution engine: the planner picks per-row-band
        # algorithms, phases, partition and thread count from the cost model
        # (a forced algo with shards= keeps the algo and shards the dispatch;
        # delta= additionally threads the call through the incremental path)
        from ..engine import plan_and_execute

        return plan_and_execute(
            a,
            b,
            mask,
            machine=machine,
            complement=complement,
            phases=phases,
            semiring=semiring,
            impl=impl,
            counter=counter,
            backend=backend,
            b_csc=b_csc,
            session=session,
            delta=delta,
            algo=None if key == "auto" else key,
            shards=shards,
            batch=None if batch == "auto" else batch,
        )
    phases = 1 if phases is None else phases
    session = session or None
    if session is not None and not session.caching:
        session = None
    if complement and not supports_complement(key):
        raise ValueError(f"{ALGO_LABELS[key]} does not support complemented masks")

    use_fast = impl == "fast" or (impl == "auto" and key in _FAST)
    batch_tier = batch
    if use_fast and key in BATCHABLE_ALGOS:
        from ..machine import resolve_machine as _resolve_machine

        batch_tier = resolve_tier(
            a, b, batch,
            crossover=_resolve_machine(machine).batch_crossover_flops,
        )
    # 2P + bucketed tier fuses the symbolic bound into output formation:
    # the kernel allocates the final CSR slab from row_nnz and writes
    # finished rows in place (no COO re-sort, no separate counting sweep
    # beyond the one whose bound the session may already memoise)
    fused = batch_tier == "bucket" and use_fast and key in BATCHABLE_ALGOS
    hits_before = session.bound_cache_hits if session is not None else 0

    if phases == 2:
        # symbolic sweep: exact output pattern size, charged to the counter.
        # (The numeric phase of this reproduction assembles rows
        # functionally, so the symbolic result is used as a cross-check and
        # as the 2P cost; a C implementation would use it to allocate.)
        tr = _obs.current()
        sym_cm = (
            tr.span("spgemm.symbolic", {"phase": "symbolic", "algo": key},
                    counter=counter)
            if tr is not None else _obs.NULL_SPAN
        )
        with sym_cm:
            if session is not None:
                row_nnz = session.symbolic_bounds(
                    a, b, mask, complement=complement, counter=counter
                )
            else:
                row_nnz = symbolic_masked(
                    a, b, mask, complement=complement, counter=counter
                )
        expected_nnz = int(row_nnz.sum())
    else:
        # 1P: the mask-derived scratch bound is what a C implementation
        # would allocate; computing it here keeps the 1P path honest about
        # that (cheap) sizing pass even though rows are assembled
        # functionally in Python.
        if session is not None:
            session.one_phase_bound(a, b, mask, complement=complement)
        else:
            one_phase_bound(a, b, mask, complement=complement)
        expected_nnz = None
        row_nnz = None

    if impl == "fast" and key not in _FAST:
        raise ValueError(
            f"{ALGO_LABELS[key]} has no vectorized fast path; use impl='auto' "
            "or impl='reference'"
        )
    if key == "inner" and b_csc is None and session is not None:
        b_csc = session.csc_of(b)
    if use_fast:
        kwargs = dict(complement=complement, semiring=semiring, counter=counter)
        if key == "inner":
            kwargs["b_csc"] = b_csc
        if key in BATCHABLE_ALGOS:
            kwargs["batch"] = batch_tier
            if fused and row_nnz is not None:
                kwargs["row_nnz"] = row_nnz
        c = _FAST[key](a, b, mask, **kwargs)
        if (
            fused
            and row_nnz is not None
            and session is not None
            and session.bound_cache_hits > hits_before
        ):
            # the numeric pass consumed a memoised symbolic bound: the whole
            # counting sweep was skipped AND output formation was fused
            session.fused_numeric_hits += 1
    else:
        tr = _obs.current()
        ref_cm = (
            tr.span("kernel.reference", {"algo": key, "phase": "numeric"},
                    counter=counter)
            if tr is not None else _obs.NULL_SPAN
        )
        with ref_cm:
            c = masked_spgemm_reference(
                a,
                b,
                mask,
                algo=key,
                complement=complement,
                semiring=semiring,
                counter=counter,
                b_csc=b_csc,
            )

    if phases == 2 and c.nnz != expected_nnz:
        raise AssertionError(
            f"symbolic/numeric mismatch: symbolic predicted {expected_nnz} "
            f"nonzeros, numeric produced {c.nnz}"
        )
    return c
