"""Vectorized MCA kernel.

The fast counterpart of Algorithm 3.  The compressed key of a mask nonzero
is its *rank* — its index within the block's (row-major, column-sorted) mask
entries — so the whole block's compressed index space is just
``arange(nnz(mask_block))``, and the merge of each product against the mask
row is one batched ``searchsorted`` of product flat-keys into the sorted
mask flat-keys (binary search replaces the reference's two-pointer walk;
both realize the "compute the rank of column j inside the mask row" step of
Section 5.4).

Products whose key is absent from the mask are dropped *before* the
multiply-accumulate; survivors accumulate into compact ``values``/``set``
arrays of length ``nnz(mask_block)`` — the whole point of MCA: the working
set is proportional to the mask, never to ``ncols``.

MCA does not support complemented masks (the compressed space has no slots
for out-of-mask columns); the dispatcher enforces this.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...machine import OpCounter
from ...observe import probes as _probes
from ...observe.tracer import traced_kernel
from ...semiring import PLUS_TIMES, Semiring
from ...sparse import CSR
from .expand import DEFAULT_FLOP_BUDGET, expand_products, iter_row_blocks, row_keys

__all__ = ["masked_spgemm_mca_fast"]


@traced_kernel("mca")
def masked_spgemm_mca_fast(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
    flop_budget: int = DEFAULT_FLOP_BUDGET,
) -> CSR:
    """Vectorized MCA masked SpGEMM (see module docs)."""
    if complement:
        raise ValueError("MCA does not support complemented masks (paper, Sec. 8.4)")
    a = a.sort_indices()
    b = b.sort_indices()
    mask = mask.sort_indices()
    n = b.ncols
    ident = semiring.add_identity
    add_at = semiring.add_ufunc.at

    out_rows = []
    out_cols = []
    out_vals = []

    pr = _probes._INSTALLED  # one read; recordings below are per block
    for lo, hi in iter_row_blocks(a, b, flop_budget):
        mlo, mhi = int(mask.indptr[lo]), int(mask.indptr[hi])
        nm = mhi - mlo
        if nm == 0:
            continue
        m_rows = np.repeat(
            np.arange(lo, hi, dtype=np.int64), np.diff(mask.indptr[lo : hi + 1])
        )
        m_cols = mask.indices[mlo:mhi]
        m_keys = row_keys(m_rows, m_cols, n)  # sorted by construction

        prod_rows, prod_cols, prod_vals = expand_products(a, b, lo, hi, semiring)
        p_keys = row_keys(prod_rows, prod_cols, n)
        if counter is not None:
            counter.accum_inserts += int(p_keys.shape[0])
            counter.mask_scans += int(p_keys.shape[0])

        # rank of each product key inside the mask (the compressed index)
        rank = np.searchsorted(m_keys, p_keys)
        rank_c = np.minimum(rank, nm - 1)
        match = m_keys[rank_c] == p_keys

        values = np.full(nm, ident, dtype=np.float64)
        is_set = np.zeros(nm, dtype=bool)
        kept = rank_c[match]
        add_at(values, kept, prod_vals[match])
        is_set[kept] = True
        if counter is not None:
            counter.flops += int(match.sum())
            counter.accum_removes += nm
        if pr is not None:
            # compressed-space utilisation: SET ranks vs nnz(mask block) —
            # MCA's working set is exactly nm, so this is its hit rate
            pr.hist("mca.touched_per_mask_pct").record(
                int(100 * int(is_set.sum()) // max(1, nm))
            )
            if hi > lo:
                hits = np.bincount(m_rows[is_set] - lo, minlength=hi - lo)
                pr.hist("mask.row_hits").record_array(hits)
                pr.hist("mask.row_misses").record_array(
                    np.bincount(m_rows - lo, minlength=hi - lo) - hits
                )

        out_rows.append(m_rows[is_set])
        out_cols.append(m_cols[is_set])
        out_vals.append(values[is_set])

    if out_rows:
        rows = np.concatenate(out_rows)
        cols = np.concatenate(out_cols)
        vals = np.concatenate(out_vals)
    else:
        rows = cols = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=np.float64)
    if counter is not None:
        counter.output_nnz += int(rows.shape[0])
    return CSR.from_coo((a.nrows, n), rows, cols, vals)
