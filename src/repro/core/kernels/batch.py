"""Row-bucketed batch execution helpers for the fast kernels.

The per-row tier of the MSA/Hash/ESC fast kernels walks contiguous row
blocks; inside a block everything is vectorized, but the block loop itself
and the eager value expansion still cost interpreter time proportional to
``nrows`` and ``flops(AB)``.  This module supplies the *bucketed* tier
(Nagasaka et al.'s row-size-class batching, adapted to masked products):

* rows are grouped by the power-of-two bucket of their upper-bound flops
  (``bucket = bit_length(flops_row)``, bucket 0 = zero-product rows), and
  each bucket is cut into chunks sized so a chunk's total expansion stays
  inside the flop budget — same-size rows batch together, so one chunk is
  one whole-array NumPy pass with no per-row dispatch;
* product expansion is *keys-only* (:func:`expand_keys`): the multiply is
  deferred until after the mask filter, so masked-out products are never
  multiplied (the kernels' lazy-INSERT semantics, now also lazily valued);
* when the two-phase symbolic sweep (or the session's symbolic-bound memo)
  has already proven exact per-row output sizes, :class:`FusedSlab` lets a
  kernel write finished CSR rows directly into a pre-allocated slab —
  fusing the numeric pass with output formation and skipping the
  COO-concatenate/sort sweep entirely.

Equivalence contract (enforced by ``tests/test_batch.py``): values are
bit-for-bit identical to the per-row tier because every output row is
produced by exactly one chunk, a row's products keep their expansion order
within the chunk, and scatter-accumulation (``ufunc.at`` or the compiled
tier) applies them sequentially.  ``OpCounter`` totals are identical
because every charged quantity (mask entries, expanded products, kept
flops, removals, resets) is a per-row sum, invariant to how rows are
grouped — the hash kernel additionally keeps the per-row tier's exact
flop-budget blocks so its probe accounting stays bit-for-bit too.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ...observe import tracer as _obs
from ...sparse import CSR

__all__ = [
    "BATCH_TIERS",
    "BATCHABLE_ALGOS",
    "DEFAULT_BATCH_CROSSOVER_FLOPS",
    "per_row_flops",
    "resolve_tier",
    "plan_flop_blocks",
    "bucket_ids",
    "bucket_census",
    "bucket_batches",
    "rows_entries",
    "expand_keys",
    "FusedSlab",
]

#: accepted values of the ``batch`` knob
BATCH_TIERS = ("auto", "bucket", "perrow")

#: fast kernels with a bucketed tier (inner/mca keep their own structure)
BATCHABLE_ALGOS = frozenset({"msa", "hash", "esc"})

#: ``batch="auto"`` picks the bucketed tier at/above this many upper-bound
#: flops for the whole call (see MachineConfig.batch_crossover_flops)
DEFAULT_BATCH_CROSSOVER_FLOPS = 1 << 18


def per_row_flops(a: CSR, b: CSR) -> np.ndarray:
    """Upper-bound scalar products per output row (``flops(A[i,:] @ B)``)."""
    per_row = np.zeros(a.nrows, dtype=np.int64)
    if a.nnz:
        np.add.at(
            per_row,
            np.repeat(np.arange(a.nrows), a.row_nnz()),
            b.row_nnz()[a.indices],
        )
    return per_row


def resolve_tier(
    a: CSR,
    b: CSR,
    batch: str,
    *,
    crossover: int = DEFAULT_BATCH_CROSSOVER_FLOPS,
    per_row: Optional[np.ndarray] = None,
) -> str:
    """Resolve the ``batch`` knob to a concrete tier.

    ``"auto"`` buckets exactly when the call's total upper-bound flops
    reach ``crossover`` — below it the fixed bucketing overhead (argsort,
    chunk bookkeeping) is not worth amortising and the per-row tier wins.
    """
    if batch not in BATCH_TIERS:
        raise ValueError(f"batch must be one of {BATCH_TIERS}, got {batch!r}")
    if batch != "auto":
        return batch
    if per_row is None:
        per_row = per_row_flops(a, b)
    return "bucket" if int(per_row.sum()) >= int(crossover) else "perrow"


def plan_flop_blocks(
    per_row: np.ndarray, flop_budget: int
) -> Iterator[Tuple[int, int]]:
    """Contiguous ``(lo, hi)`` blocks whose flops fit the budget.

    Vectorized equivalent of the historical greedy row walk: each block is
    the maximal prefix whose cumulative flops stay within the budget, with
    at least one row per block (a single over-budget row gets its own).
    """
    nrows = int(per_row.shape[0])
    if nrows == 0:
        return
    cs = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(per_row, out=cs[1:])
    lo = 0
    while lo < nrows:
        base = int(cs[lo])
        # the greedy walk only cuts once the running block holds at least
        # one product, so leading zero-flop rows ride along with the first
        # productive row (f) even when that row alone busts the budget
        f = int(np.searchsorted(cs, base, side="right")) - 1
        h = int(np.searchsorted(cs, base + flop_budget, side="right")) - 1
        hi = min(nrows, max(f + 1, h))
        yield lo, hi
        lo = hi


def bucket_ids(per_row: np.ndarray) -> np.ndarray:
    """Power-of-two size class per row: ``bit_length`` of the row's flops
    (0 for zero-product rows; exact for counts below 2**53)."""
    return np.frexp(per_row.astype(np.float64))[1].astype(np.int64)


def bucket_census(per_row: np.ndarray) -> Dict[int, int]:
    """``{bucket_id: nrows}`` over the non-empty buckets (ascending)."""
    ids = bucket_ids(per_row)
    if ids.size == 0:
        return {}
    counts = np.bincount(ids)
    return {int(b): int(counts[b]) for b in np.flatnonzero(counts)}


def bucket_batches(
    per_row: np.ndarray,
    flop_budget: int,
    *,
    width_cap: Optional[int] = None,
    include_empty: bool = True,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(bucket_id, rows)`` chunks of same-size-class rows.

    Rows are ascending within each bucket and each row appears in exactly
    one chunk (the decomposition invariant the counter equality rests on).
    Chunks are sized so total expansion stays within ``flop_budget`` (rows
    of bucket ``b`` expand to < ``2**b`` products each) and, when
    ``width_cap`` is given, so dense per-row scratch of ``width_cap`` rows
    suffices.  ``include_empty=False`` drops bucket 0 (zero-product rows)
    for kernels where such rows charge nothing and emit nothing.
    """
    ids = bucket_ids(per_row)
    if ids.size == 0:
        return
    tr = _obs.current()
    order = np.argsort(ids, kind="stable")  # row order preserved per bucket
    sorted_ids = ids[order]
    boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
    starts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [sorted_ids.size]))
    for s, e in zip(starts, stops):
        b = int(sorted_ids[s])
        if b == 0 and not include_empty:
            continue
        rows = order[s:e]
        chunk = max(1, int(flop_budget) >> min(b, 62)) if b else rows.size
        if width_cap is not None:
            chunk = min(chunk, int(width_cap))
        chunk = max(1, chunk)
        for lo in range(0, rows.size, chunk):
            chunk_rows = rows[lo : lo + chunk]
            if tr is None:
                yield b, chunk_rows
            else:
                # the span stays open across the yield, so its duration is
                # exactly the kernel's processing time for this chunk (the
                # generator is suspended inside the with-block)
                with tr.span(
                    "kernel.bucket",
                    {"bucket": b, "rows": int(chunk_rows.size),
                     "flops": int(per_row[chunk_rows].sum())},
                ):
                    yield b, chunk_rows


def rows_entries(
    indptr: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Gather the CSR entry positions of a scattered row set.

    Returns ``(pos, local)``: ``pos`` indexes ``indices``/``data`` for every
    entry of the given rows (rows in the order given, entries in CSR order
    within a row), ``local`` is the position of each entry's row *within*
    ``rows``.
    """
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy()
    block_ofs = np.repeat(np.cumsum(counts) - counts, counts)
    pos = np.arange(total, dtype=np.int64) - block_ofs + np.repeat(starts, counts)
    local = np.repeat(np.arange(rows.size, dtype=np.int64), counts)
    return pos, local


def expand_keys(
    a: CSR, b: CSR, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Keys-only product expansion of a scattered row set.

    Returns ``(p_local, p_src, p_bpos)`` of length ``flops(rows)``:
    ``p_local`` is the row's position within ``rows``, ``p_src`` the
    product's A-entry position (into ``a.data``) and ``p_bpos`` its B-entry
    position (into ``b.indices``/``b.data``).  Column is ``b.indices[p_bpos]``;
    the value ``mult(a.data[p_src], b.data[p_bpos])`` is *not* computed —
    kernels multiply only the products that survive the mask filter, which
    is elementwise and therefore bitwise identical to filtering after an
    eager multiply.  Products keep the per-row tier's order: grouped by row
    (in ``rows`` order), then A-entry order, then B-row order.
    """
    a_pos, a_local = rows_entries(a.indptr, rows)
    a_cols = a.indices[a_pos]
    starts = b.indptr[a_cols]
    counts = b.indptr[a_cols + 1] - starts
    total = int(counts.sum())
    if total == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), e.copy()
    block_ofs = np.repeat(np.cumsum(counts) - counts, counts)
    p_bpos = np.arange(total, dtype=np.int64) - block_ofs + np.repeat(starts, counts)
    p_local = np.repeat(a_local, counts)
    p_src = np.repeat(a_pos, counts)
    return p_local, p_src, p_bpos


class FusedSlab:
    """Direct-to-CSR output assembly from an exact symbolic bound.

    Two-phase execution already knows every row's output size before the
    numeric pass runs; the per-row tier still assembles COO triples and
    re-sorts them through ``CSR.from_coo``.  A slab allocates the final
    ``indptr``/``indices``/``data`` up front and lets each batch write its
    finished rows in place — the symbolic/numeric fusion of the batched
    tier.

    :meth:`write` calls must be row-grouped (all entries of a row adjacent,
    columns ascending) and each output row must be written by exactly one
    call — exactly what the bucketed kernels produce, since every row lives
    in one chunk and emissions within a chunk are row-major sorted.
    """

    __slots__ = ("shape", "indptr", "indices", "data", "_written")

    def __init__(self, shape: Tuple[int, int], row_nnz: np.ndarray) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(row_nnz, out=indptr[1:])
        self.indptr = indptr
        nnz = int(indptr[-1])
        self.indices = np.empty(nnz, dtype=np.int64)
        self.data = np.empty(nnz, dtype=np.float64)
        self._written = 0

    def write(self, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray) -> None:
        """Place one batch's finished entries (row-grouped, cols sorted)."""
        k = int(rows.shape[0])
        if k == 0:
            return
        idx = np.arange(k, dtype=np.int64)
        head = np.where(
            np.concatenate(([True], rows[1:] != rows[:-1])), idx, 0
        )
        np.maximum.accumulate(head, out=head)
        dest = self.indptr[rows] + (idx - head)
        if bool(np.any(dest >= self.indptr[rows + 1])):
            raise AssertionError(
                "symbolic/numeric mismatch: numeric pass emitted more "
                "entries for a row than the symbolic bound allocated"
            )
        self.indices[dest] = cols
        self.data[dest] = vals
        self._written += k

    def finish(self) -> CSR:
        """The finished matrix; raises if any allocated cell went unwritten."""
        if self._written != self.indices.shape[0]:
            raise AssertionError(
                f"symbolic/numeric mismatch: symbolic predicted "
                f"{self.indices.shape[0]} nonzeros, numeric produced "
                f"{self._written}"
            )
        return CSR(
            self.shape, self.indptr, self.indices, self.data,
            sorted_indices=True, check=False,
        )
