"""Masked ESC (Expand-Sort-Compress) kernel — an extension algorithm.

ESC is the GPU-style SpGEMM family of Liu & Vinter (the paper's ref [28])
and Bell/Dalton's cusp: *expand* all scalar products, *sort* them by output
coordinate, *compress* equal keys with the semiring add.  It needs no
random-access accumulator at all — its "accumulator" is the sort — which
makes it attractive where scatter is expensive (GPUs, SIMD) and expensive
where flops(AB) is large (the sort touches every product, masked or not).

This reproduction adds a **masked** ESC variant (not part of the paper's
14 schemes; clearly an extension, see DESIGN.md §7): the mask is applied
*between expand and sort*, by a batched membership test of product keys
against the sorted mask keys, so the sort only sees surviving products.
The masked filter converts ESC's cost from
``O(flops·log(flops))`` to ``O(flops + useful·log(useful))`` — the same
work-saving the accumulator schemes get, obtained with sorting machinery.

Complement support is natural (flip the membership test).

The bucketed tier (``batch="bucket"``) swaps the contiguous flop-budget
blocks for power-of-two size-class chunks (zero-product rows are skipped —
they expand to nothing and the per-row tier charges nothing for them) and
defers the multiply until after the mask filter.  Per output cell the
surviving products keep their expansion order and the stable sort groups
them identically, so the segmented reduction — and therefore every value —
is bit-for-bit the per-row tier's.  With an exact symbolic bound
(``row_nnz``) compressed rows are written straight into a
:class:`~repro.core.kernels.batch.FusedSlab`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...machine import OpCounter
from ...observe import probes as _probes
from ...observe.tracer import traced_kernel
from ...semiring import PLUS_TIMES, Semiring
from ...sparse import CSR
from .arena import get_arena
from .batch import FusedSlab, bucket_batches, expand_keys, per_row_flops, \
    resolve_tier
from .expand import DEFAULT_FLOP_BUDGET, expand_products, iter_row_blocks, row_keys

__all__ = ["masked_spgemm_esc_fast"]


@traced_kernel("esc")
def masked_spgemm_esc_fast(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
    flop_budget: int = DEFAULT_FLOP_BUDGET,
    batch: str = "auto",
    row_nnz: Optional[np.ndarray] = None,
) -> CSR:
    """Vectorized masked Expand-Sort-Compress (see module docs).

    ``batch`` selects the batching tier (``"auto"`` | ``"bucket"`` |
    ``"perrow"``); ``row_nnz`` optionally carries the exact two-phase
    symbolic bound, enabling fused direct-to-CSR output on the bucketed
    tier (ignored on the per-row tier).
    """
    a = a.sort_indices()
    b = b.sort_indices()
    mask = mask.sort_indices()
    n = b.ncols
    per_row = per_row_flops(a, b)
    tier = resolve_tier(a, b, batch, per_row=per_row)
    m_rows_all = np.repeat(np.arange(mask.nrows, dtype=np.int64), mask.row_nnz())
    m_keys = row_keys(m_rows_all, mask.indices, n)

    out_rows = []
    out_cols = []
    out_vals = []
    slab = (
        FusedSlab((a.nrows, n), row_nnz)
        if tier == "bucket" and row_nnz is not None
        else None
    )
    # boundary scratch is fully overwritten before being read, so it is
    # leased uninitialised (fill=None) and never needs resetting
    arena = get_arena()
    with arena.lease("esc.boundary", np.bool_, None) as boundary_lease:
        if tier == "bucket":
            _esc_bucketed(
                a, b, m_keys, per_row, n, complement, semiring, counter,
                flop_budget, boundary_lease, slab, out_rows, out_cols, out_vals,
            )
        else:
            _esc_blocks(
                a, b, m_keys, n, complement, semiring, counter, flop_budget,
                boundary_lease, out_rows, out_cols, out_vals,
            )

    if slab is not None:
        c = slab.finish()
        if counter is not None:
            counter.output_nnz += c.nnz
        return c
    if out_rows:
        rows = np.concatenate(out_rows)
        cols = np.concatenate(out_cols)
        vals = np.concatenate(out_vals)
    else:
        rows = cols = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=np.float64)
    if counter is not None:
        counter.output_nnz += int(rows.shape[0])
    return CSR.from_coo((a.nrows, n), rows, cols, vals)


def _compress(p_keys, vals, order, semiring, boundary_lease):
    """Sort products by key and reduce equal keys; returns (heads, red)."""
    p_keys = p_keys[order]
    vals = vals[order]
    boundary = boundary_lease.require(p_keys.shape[0])
    boundary[0] = True
    np.not_equal(p_keys[1:], p_keys[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    red = semiring.add_ufunc.reduceat(vals, starts)
    return p_keys[starts], np.asarray(red, dtype=np.float64)


def _esc_blocks(
    a, b, m_keys, n, complement, semiring, counter, flop_budget,
    boundary_lease, out_rows, out_cols, out_vals,
):
    """The per-row tier's contiguous block loop (eager expansion)."""
    for lo, hi in iter_row_blocks(a, b, flop_budget):
        prod_rows, prod_cols, prod_vals = expand_products(a, b, lo, hi, semiring)
        if prod_rows.shape[0] == 0:
            continue
        p_keys = row_keys(prod_rows, prod_cols, n)
        if counter is not None:
            counter.accum_inserts += int(p_keys.shape[0])
        # --- mask filter (between expand and sort) ---
        if m_keys.shape[0]:
            pos = np.searchsorted(m_keys, p_keys)
            pos_c = np.minimum(pos, m_keys.shape[0] - 1)
            inside = m_keys[pos_c] == p_keys
        else:
            inside = np.zeros(p_keys.shape[0], dtype=bool)
        keep = ~inside if complement else inside
        p_keys = p_keys[keep]
        vals = prod_vals[keep]
        if counter is not None:
            counter.flops += int(p_keys.shape[0])
        if p_keys.shape[0] == 0:
            continue
        # --- sort + compress (segmented semiring reduction) ---
        order = np.argsort(p_keys, kind="stable")
        heads, red = _compress(p_keys, vals, order, semiring, boundary_lease)
        out_rows.append(heads // n)
        out_cols.append(heads % n)
        out_vals.append(red)


def _esc_bucketed(
    a, b, m_keys, per_row, n, complement, semiring, counter, flop_budget,
    boundary_lease, slab, out_rows, out_cols, out_vals,
):
    """The bucketed tier: size-class chunks, lazy multiply after the filter."""
    pr = _probes._INSTALLED
    mult = semiring.mult_ufunc
    nn = np.int64(n)
    for bkt, rows in bucket_batches(
        per_row, flop_budget, include_empty=False
    ):
        p_local, p_src, p_bpos = expand_keys(a, b, rows)
        if p_local.shape[0] == 0:
            continue
        p_keys = rows[p_local] * nn + b.indices[p_bpos]
        if counter is not None:
            counter.accum_inserts += int(p_keys.shape[0])
        if pr is not None:
            pr.hist("batch.bucket_occupancy").record(int(rows.size))
        # --- mask filter (between expand and multiply) ---
        if m_keys.shape[0]:
            pos = np.searchsorted(m_keys, p_keys)
            pos_c = np.minimum(pos, m_keys.shape[0] - 1)
            inside = m_keys[pos_c] == p_keys
        else:
            inside = np.zeros(p_keys.shape[0], dtype=bool)
        keep = ~inside if complement else inside
        p_keys = p_keys[keep]
        if counter is not None:
            counter.flops += int(p_keys.shape[0])
        if p_keys.shape[0] == 0:
            continue
        vals = np.asarray(
            mult(a.data[p_src[keep]], b.data[p_bpos[keep]]), dtype=np.float64
        )
        # --- sort + compress ---
        order = np.argsort(p_keys, kind="stable")
        heads, red = _compress(p_keys, vals, order, semiring, boundary_lease)
        g_rows = heads // n
        g_cols = heads % n
        if slab is not None:
            slab.write(g_rows, g_cols, red)
        else:
            out_rows.append(g_rows)
            out_cols.append(g_cols)
            out_vals.append(red)
