"""Masked ESC (Expand-Sort-Compress) kernel — an extension algorithm.

ESC is the GPU-style SpGEMM family of Liu & Vinter (the paper's ref [28])
and Bell/Dalton's cusp: *expand* all scalar products, *sort* them by output
coordinate, *compress* equal keys with the semiring add.  It needs no
random-access accumulator at all — its "accumulator" is the sort — which
makes it attractive where scatter is expensive (GPUs, SIMD) and expensive
where flops(AB) is large (the sort touches every product, masked or not).

This reproduction adds a **masked** ESC variant (not part of the paper's
14 schemes; clearly an extension, see DESIGN.md §7): the mask is applied
*between expand and sort*, by a batched membership test of product keys
against the sorted mask keys, so the sort only sees surviving products.
The masked filter converts ESC's cost from
``O(flops·log(flops))`` to ``O(flops + useful·log(useful))`` — the same
work-saving the accumulator schemes get, obtained with sorting machinery.

Complement support is natural (flip the membership test).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...machine import OpCounter
from ...observe.tracer import traced_kernel
from ...semiring import PLUS_TIMES, Semiring
from ...sparse import CSR
from .arena import get_arena
from .expand import DEFAULT_FLOP_BUDGET, expand_products, iter_row_blocks, row_keys

__all__ = ["masked_spgemm_esc_fast"]


@traced_kernel("esc")
def masked_spgemm_esc_fast(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
    flop_budget: int = DEFAULT_FLOP_BUDGET,
) -> CSR:
    """Vectorized masked Expand-Sort-Compress (see module docs)."""
    a = a.sort_indices()
    b = b.sort_indices()
    mask = mask.sort_indices()
    n = b.ncols
    m_rows_all = np.repeat(np.arange(mask.nrows, dtype=np.int64), mask.row_nnz())
    m_keys = row_keys(m_rows_all, mask.indices, n)

    out_rows = []
    out_cols = []
    out_vals = []
    # boundary scratch is fully overwritten before being read, so it is
    # leased uninitialised (fill=None) and never needs resetting
    arena = get_arena()
    with arena.lease("esc.boundary", np.bool_, None) as boundary_lease:
        for lo, hi in iter_row_blocks(a, b, flop_budget):
            prod_rows, prod_cols, prod_vals = expand_products(a, b, lo, hi, semiring)
            if prod_rows.shape[0] == 0:
                continue
            p_keys = row_keys(prod_rows, prod_cols, n)
            if counter is not None:
                counter.accum_inserts += int(p_keys.shape[0])
            # --- mask filter (between expand and sort) ---
            if m_keys.shape[0]:
                pos = np.searchsorted(m_keys, p_keys)
                pos_c = np.minimum(pos, m_keys.shape[0] - 1)
                inside = m_keys[pos_c] == p_keys
            else:
                inside = np.zeros(p_keys.shape[0], dtype=bool)
            keep = ~inside if complement else inside
            p_keys = p_keys[keep]
            vals = prod_vals[keep]
            if counter is not None:
                counter.flops += int(p_keys.shape[0])
            if p_keys.shape[0] == 0:
                continue
            # --- sort ---
            order = np.argsort(p_keys, kind="stable")
            p_keys = p_keys[order]
            vals = vals[order]
            # --- compress (segmented semiring reduction) ---
            boundary = boundary_lease.require(p_keys.shape[0])
            boundary[0] = True
            np.not_equal(p_keys[1:], p_keys[:-1], out=boundary[1:])
            starts = np.flatnonzero(boundary)
            red = semiring.add_ufunc.reduceat(vals, starts)
            heads = p_keys[starts]
            out_rows.append(heads // n)
            out_cols.append(heads % n)
            out_vals.append(np.asarray(red, dtype=np.float64))

    if out_rows:
        rows = np.concatenate(out_rows)
        cols = np.concatenate(out_cols)
        vals = np.concatenate(out_vals)
    else:
        rows = cols = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=np.float64)
    if counter is not None:
        counter.output_nnz += int(rows.shape[0])
    return CSR.from_coo((a.nrows, n), rows, cols, vals)
