"""Optional compiled tier for the batched kernels (numba, auto-detected).

The batched execution tier (:mod:`repro.core.kernels.batch`) spends most of
its remaining time in ``ufunc.at`` scatter-accumulation — the one NumPy
primitive that is unbuffered (sequential, exact) but not vectorized.  When
numba is importable, this module JIT-compiles the float64 ``np.add`` case
as a plain sequential loop, which is *bit-for-bit identical* to
``np.add.at`` (both apply the additions one by one, in index order) while
running at native speed.

Contract:

* :func:`add_at` is the single dispatch seam.  It falls back to
  ``add_ufunc.at`` whenever the semiring add is not plain ``np.add``, the
  dtypes are not float64, or numba is unavailable/disabled — so results
  never depend on whether the compiled tier is present.
* Detection happens once at import.  The ``REPRO_COMPILED`` environment
  variable overrides it: ``0``/``off``/``false`` disables the tier even
  with numba installed; ``1``/``on``/``require`` raises at import if numba
  is missing (CI uses this to prove the compiled leg really ran compiled).
* Nothing order-sensitive is ever compiled speculatively: the hash table's
  ``insert`` stays pure NumPy (its slot layout depends on the exact
  round-by-round race resolution), and non-``add`` semirings stay on
  ``ufunc.at``.

Tests monkeypatch :data:`_COMPILED_ADD_AT` to cover both sides of the seam
without needing numba in the environment.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

__all__ = ["HAVE_NUMBA", "COMPILED_MODE", "add_at", "compiled_enabled", "status"]


def _read_mode() -> str:
    raw = os.environ.get("REPRO_COMPILED", "auto").strip().lower()
    if raw in ("0", "off", "false", "no"):
        return "off"
    if raw in ("1", "on", "true", "yes", "require"):
        return "require"
    return "auto"


#: how the tier was requested: "auto" | "off" | "require"
COMPILED_MODE = _read_mode()

HAVE_NUMBA = False
_COMPILED_ADD_AT = None  # the jitted float64 kernel, or None

if COMPILED_MODE != "off":
    try:
        import numba  # noqa: F401
        from numba import njit

        HAVE_NUMBA = True

        @njit(cache=False)
        def _add_at_f64(target, idx, vals):  # pragma: no cover - jitted
            for i in range(idx.shape[0]):
                target[idx[i]] += vals[i]

        # warm the dispatcher once so the first kernel call is not a compile
        _add_at_f64(
            np.zeros(1, dtype=np.float64),
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.float64),
        )
        _COMPILED_ADD_AT = _add_at_f64
    except ImportError:
        if COMPILED_MODE == "require":
            raise ImportError(
                "REPRO_COMPILED requested the compiled tier but numba is "
                "not importable"
            )
        HAVE_NUMBA = False


def compiled_enabled() -> bool:
    """Whether :func:`add_at` can take the compiled path at all."""
    return _COMPILED_ADD_AT is not None


def add_at(
    target: np.ndarray,
    idx: np.ndarray,
    vals: np.ndarray,
    add_ufunc: Optional[np.ufunc] = None,
) -> None:
    """Scatter-accumulate ``target[idx] (+)= vals`` with the semiring add.

    Dispatches to the jitted float64 loop exactly when that loop is
    provably bit-for-bit equivalent to ``add_ufunc.at`` (plain ``np.add``
    over float64 — both are sequential in index order); every other case
    uses ``add_ufunc.at`` unchanged.
    """
    fn = _COMPILED_ADD_AT
    if (
        fn is not None
        and (add_ufunc is None or add_ufunc is np.add)
        and target.dtype == np.float64
        and vals.dtype == np.float64
        and idx.dtype == np.int64
    ):
        fn(target, idx, vals)
        return
    (np.add if add_ufunc is None else add_ufunc).at(target, idx, vals)


def status() -> dict:
    """Introspection for docs/CI: how the tier resolved at import."""
    return {
        "mode": COMPILED_MODE,
        "have_numba": HAVE_NUMBA,
        "enabled": compiled_enabled(),
    }
