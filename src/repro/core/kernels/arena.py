"""Scratch arena: reusable dense buffers for the vectorized kernels.

The MSA, Hash and ESC fast kernels all need per-call dense scratch — the
MSA's state/value arrays, the hash table's key/value/set arrays, ESC's
segment-boundary buffer.  Allocating (and fault-in zeroing) these on every
invocation is pure overhead in iterative workloads (k-truss rounds, BC
batches, MCL expansions) where the same kernel runs hundreds of times on
similarly-sized problems; the paper's C++ competitors simply keep their
accumulators hot across calls.  This module gives the Python kernels the
same amortisation.

Design:

* One :class:`ScratchArena` per thread (:func:`get_arena` — the thread
  backend runs kernels concurrently, and process-backend workers each get
  their own arena for free), holding one buffer per ``(key)``.
* Buffers carry a **fill invariant**: every cell holds ``fill`` whenever
  the buffer is at rest in the arena.  Kernels already maintain exactly
  this invariant across their block loops (the "dirty-cell reset" trick —
  they restore touched cells after each block), so a leased buffer is
  ready to use with no O(capacity) initialisation.
* Leases are context managers.  A clean exit returns the buffer to the
  arena; an exception *discards* it (the kernel died mid-block and the
  invariant may be violated), so a failed call can never poison a later
  one.
* :meth:`Lease.require` grows geometrically; growth allocates fresh
  filled memory (a leased buffer is clean at block boundaries, so nothing
  needs copying).

``fill=None`` requests uninitialised scratch (``np.empty`` semantics) for
buffers the kernel fully overwrites before reading.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import Dict, Hashable, Iterator, Optional

import numpy as np

__all__ = [
    "ScratchArena",
    "Lease",
    "get_arena",
    "clear_arena",
    "arena_stats",
    "all_arena_stats",
]


class Lease:
    """A checked-out arena buffer; hand back via the lease context."""

    __slots__ = ("dtype", "fill", "array")

    def __init__(self, array: Optional[np.ndarray], dtype, fill) -> None:
        self.dtype = np.dtype(dtype)
        self.fill = fill
        self.array = array

    def require(self, n: int) -> np.ndarray:
        """A view of the first ``n`` cells, growing the buffer if needed.

        Newly allocated memory is pre-set to ``fill`` (or left
        uninitialised for ``fill=None``); cached memory is trusted clean
        per the arena's invariant.  Call only at block boundaries, when
        the current buffer (if any) is clean — growth discards it.
        """
        n = int(n)
        buf = self.array
        if buf is None or buf.shape[0] < n:
            cap = n if buf is None else max(n, int(buf.shape[0] * 1.5))
            if self.fill is None:
                buf = np.empty(cap, dtype=self.dtype)
            else:
                buf = np.full(cap, self.fill, dtype=self.dtype)
            self.array = buf
        return buf[:n]


class ScratchArena:
    """Keyed cache of clean scratch buffers (one arena per thread)."""

    def __init__(self) -> None:
        self._buffers: Dict[Hashable, np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        self.discarded = 0
        _ALL_ARENAS.add(self)

    @contextmanager
    def lease(self, key: Hashable, dtype, fill) -> Iterator[Lease]:
        """Check the buffer for ``key`` out of the arena.

        The body must leave the buffer clean (every cell back to ``fill``)
        — the same contract the kernels already keep between row blocks.
        On an exception the buffer is dropped instead of returned.  A
        nested lease of the same key (which cannot trust cleanliness)
        simply misses the cache and allocates fresh.
        """
        buf = self._buffers.pop(key, None)
        if buf is not None and buf.dtype != np.dtype(dtype):
            buf = None  # same key reused with a new dtype: do not alias
        if buf is not None:
            self.hits += 1
        else:
            self.misses += 1
        lease = Lease(buf, dtype, fill)
        try:
            yield lease
        except BaseException:
            self.discarded += 1
            raise
        else:
            if lease.array is not None:
                self._buffers[key] = lease.array

    def clear(self) -> None:
        """Drop every cached buffer (frees the memory)."""
        self._buffers.clear()

    def nbytes(self) -> int:
        """Total bytes currently cached.

        Snapshots the buffer dict first (atomic under the GIL) so a
        sampler thread reading a busy arena never races its mutation.
        """
        return sum(int(b.nbytes) for b in list(self._buffers.values()))

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "discarded": self.discarded,
            "buffers": len(self._buffers),
            "nbytes": self.nbytes(),
        }


#: every live arena across all threads, weakly held — ``get_arena`` keeps
#: the per-thread isolation (each thread leases only from its own arena),
#: this registry only lets the runtime sampler *read* the fleet-wide
#: footprint from its own thread
_ALL_ARENAS: "weakref.WeakSet[ScratchArena]" = weakref.WeakSet()

_LOCAL = threading.local()


def get_arena() -> ScratchArena:
    """The calling thread's arena (created on first use)."""
    arena = getattr(_LOCAL, "arena", None)
    if arena is None:
        arena = ScratchArena()
        _LOCAL.arena = arena
    return arena


def clear_arena() -> None:
    """Drop the calling thread's cached buffers."""
    get_arena().clear()


def arena_stats() -> dict:
    """Hit/miss/footprint statistics of the calling thread's arena."""
    return get_arena().stats()


def all_arena_stats() -> dict:
    """Statistics summed across every live arena, on any thread.

    ``arena_stats`` is deliberately thread-local (the sampler thread's own
    arena is always empty); the runtime sampler's ``arena_bytes`` gauge
    needs the whole process's scratch footprint, which is this sum.
    Buffer byte counts are reads of plain attributes, safe against
    concurrent leases to within one buffer's staleness.
    """
    totals = {"arenas": 0, "hits": 0, "misses": 0, "discarded": 0,
              "buffers": 0, "nbytes": 0}
    for arena in list(_ALL_ARENAS):
        st = arena.stats()
        totals["arenas"] += 1
        for key in ("hits", "misses", "discarded", "buffers", "nbytes"):
            totals[key] += st[key]
    return totals
