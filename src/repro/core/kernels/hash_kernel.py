"""Vectorized Hash kernel.

The fast counterpart of the Section-5.3 algorithm: a single open-addressing
hash table (linear probing, power-of-two capacity, load factor <= 0.25,
multiplicative hashing) keyed by the flat output position
``row * ncols + col``.  All three interface steps are executed as *batched*
probe rounds:

1. ``set_allowed`` — batch-insert the mask keys (builds the key set; a key
   that collides probes to the next slot, resolved round by round),
2. ``insert`` — batch-lookup every product key; products whose key is absent
   from the table are masked out and skipped *before* any multiply-add, the
   rest accumulate into the table's value slots via ``add_ufunc.at``,
3. ``remove`` — lookup the mask keys again and emit the SET ones in mask
   order (sorted output, like the reference).

Each probe round advances only the still-colliding lanes, so the number of
rounds equals the longest probe chain — the vector analogue of linear
probing.  Probe counts are recorded in the counter like the scalar version.

For complemented masks the membership test flips: mask keys are inserted as
"forbidden" and products found in the table are dropped; surviving products
are then sort-reduced (they have no compact table to live in, matching the
scalar HashComplement whose table is sized by the row-output bound).

The bucketed tier (``batch="bucket"``) keeps the *same* flop-budget row
blocks — the hash table's geometry, and therefore its probe accounting, is
per block, so changing the blocking would change ``hash_probes`` — but
replaces the round-by-round product lookup with a binary search into the
block's sorted mask keys plus *arithmetic* probe reconstruction: under
linear probing, a present key's chain length is its slot's displacement
from the hash home (``((slot - h) & mask) + 1``) and an absent key's chain
runs to the first empty slot at/after its home.  Both are exact, so the
probe counter and chain histogram stay bit-for-bit identical to the
per-key walk.  When neither a counter nor probes are installed there is
nothing to certify and the bucketed tier skips the hash table entirely,
accumulating straight into mask-entry-indexed scratch.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...machine import OpCounter
from ...observe import probes as _probes
from ...observe.tracer import traced_kernel
from ...semiring import PLUS_TIMES, Semiring
from ...sparse import CSR
from .arena import get_arena
from .batch import FusedSlab, expand_keys, resolve_tier
from .compiled import add_at as _c_add_at
from .expand import DEFAULT_FLOP_BUDGET, expand_products, iter_row_blocks, row_keys

__all__ = ["masked_spgemm_hash_fast", "VectorHashTable"]

_HASH_SCAL = np.int64(0x9E3779B1)
_EMPTY = np.int64(-1)


class VectorHashTable:
    """Batched open-addressing hash set/map over int64 keys.

    ``keys_lease`` optionally supplies the backing key array from a scratch
    arena lease (all-``_EMPTY`` per the arena's fill invariant); the caller
    is then responsible for resetting the occupied slots afterwards.  Every
    slot :meth:`insert` writes ends up as some key's returned slot, so
    clearing the returned slots restores the all-empty state exactly.
    """

    def __init__(
        self,
        max_keys: int,
        counter: Optional[OpCounter] = None,
        *,
        keys_lease=None,
        chain_hist=None,
    ):
        need = max(4, int(max_keys) * 4)  # load factor 0.25
        cap = 1 << (need - 1).bit_length()
        self.cap = cap
        self.mask = np.int64(cap - 1)
        if keys_lease is not None:
            self.keys = keys_lease.require(cap)
        else:
            self.keys = np.full(cap, _EMPTY, dtype=np.int64)
        self.counter = counter
        #: probe-chain length histogram (repro.observe.probes).  A key that
        #: resolves in round r consumed exactly r probes, so summing chain
        #: lengths over keys reproduces ``OpCounter.hash_probes`` exactly.
        self.chain_hist = chain_hist

    def _hash(self, keys: np.ndarray) -> np.ndarray:
        return (keys * _HASH_SCAL) & self.mask

    def insert(self, keys: np.ndarray) -> np.ndarray:
        """Insert unique ``keys``; returns the slot of each key.  Batched
        linear probing: every round scatters the pending keys into their
        current slot and keeps the lanes that lost the race or collided."""
        slots = np.empty(keys.shape[0], dtype=np.int64)
        pend = np.arange(keys.shape[0], dtype=np.int64)
        pos = self._hash(keys)
        rounds = 0
        while pend.shape[0]:
            rounds += 1
            if self.counter is not None:
                self.counter.hash_probes += int(pend.shape[0])
            p = pos[pend]
            occupant = self.keys[p]
            free = occupant == _EMPTY
            # try to claim free slots; ties between equal positions resolved
            # by the last writer, then verified by re-reading
            claim = pend[free]
            self.keys[p[free]] = keys[claim]
            won = self.keys[p] == keys[pend]
            slots[pend[won]] = p[won]
            before = pend.shape[0]
            pend = pend[~won]
            if self.chain_hist is not None:
                # lanes resolved this round = pending-set shrinkage: no extra
                # reduction on the hot path, the shapes are already known
                self.chain_hist.record(rounds, before - pend.shape[0])
            pos[pend] = (pos[pend] + 1) & self.mask
        return slots

    def lookup(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(found, slot)`` for each key (slot valid where found)."""
        found = np.zeros(keys.shape[0], dtype=bool)
        slots = np.full(keys.shape[0], -1, dtype=np.int64)
        pend = np.arange(keys.shape[0], dtype=np.int64)
        pos = self._hash(keys)
        rounds = 0
        while pend.shape[0]:
            rounds += 1
            if self.counter is not None:
                self.counter.hash_probes += int(pend.shape[0])
            p = pos[pend]
            occupant = self.keys[p]
            hit = occupant == keys[pend]
            miss = occupant == _EMPTY
            slots[pend[hit]] = p[hit]
            found[pend[hit]] = True
            cont = ~(hit | miss)
            before = pend.shape[0]
            pend = pend[cont]
            if self.chain_hist is not None:
                self.chain_hist.record(rounds, before - pend.shape[0])
            pos[pend] = (pos[pend] + 1) & self.mask
        return found, slots


def _sort_reduce(keys, vals, semiring):
    """Group-by-key reduction with the semiring's add (sorted output)."""
    if keys.shape[0] == 0:
        return keys, vals
    order = np.argsort(keys, kind="stable")
    keys, vals = keys[order], vals[order]
    boundary = np.empty(keys.shape[0], dtype=bool)
    boundary[0] = True
    boundary[1:] = keys[1:] != keys[:-1]
    starts = np.flatnonzero(boundary)
    red = semiring.add_ufunc.reduceat(vals, starts)
    return keys[starts], np.asarray(red, dtype=np.float64)


@traced_kernel("hash")
def masked_spgemm_hash_fast(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
    flop_budget: int = DEFAULT_FLOP_BUDGET,
    batch: str = "auto",
    row_nnz: Optional[np.ndarray] = None,
) -> CSR:
    """Vectorized Hash masked SpGEMM (see module docs).

    ``batch`` selects the batching tier (``"auto"`` | ``"bucket"`` |
    ``"perrow"``); ``row_nnz`` optionally carries the exact two-phase
    symbolic bound, enabling fused direct-to-CSR output on the bucketed
    tier (ignored on the per-row tier).
    """
    a = a.sort_indices()
    b = b.sort_indices()
    mask = mask.sort_indices()
    if resolve_tier(a, b, batch) == "bucket":
        return _hash_batched(
            a, b, mask, complement=complement, semiring=semiring,
            counter=counter, flop_budget=flop_budget, row_nnz=row_nnz,
        )
    n = b.ncols
    ident = semiring.add_identity
    add_at = semiring.add_ufunc.at

    out_rows = []
    out_cols = []
    out_vals = []

    # micro-telemetry: one module-attribute read; everything below records
    # per *block*, so the enabled path stays off the per-element hot loop
    pr = _probes._INSTALLED
    chain_hist = pr.hist("hash.probe_chain") if pr is not None else None

    # table scratch leased from the arena: the key/value/set arrays stay hot
    # across blocks *and* across calls; each block resets exactly the slots
    # it occupied (all writes land in m_slots — see VectorHashTable docs)
    arena = get_arena()
    with arena.lease("hash.keys", np.int64, _EMPTY) as keys_lease, \
            arena.lease(("hash.vals", float(ident)), np.float64, ident) as vals_lease, \
            arena.lease("hash.set", np.bool_, False) as set_lease:
        for lo, hi in iter_row_blocks(a, b, flop_budget):
            mlo, mhi = int(mask.indptr[lo]), int(mask.indptr[hi])
            m_rows = np.repeat(
                np.arange(lo, hi, dtype=np.int64), np.diff(mask.indptr[lo : hi + 1])
            )
            m_cols = mask.indices[mlo:mhi]
            m_keys = row_keys(m_rows, m_cols, n)
            prod_rows, prod_cols, prod_vals = expand_products(a, b, lo, hi, semiring)
            p_keys = row_keys(prod_rows, prod_cols, n)
            if counter is not None:
                counter.accum_allowed += int(m_keys.shape[0])
                counter.accum_inserts += int(p_keys.shape[0])

            if m_keys.shape[0] == 0 and not complement:
                continue
            table = VectorHashTable(
                max(1, m_keys.shape[0]), counter, keys_lease=keys_lease,
                chain_hist=chain_hist,
            )
            m_slots = (
                table.insert(m_keys) if m_keys.shape[0] else np.empty(0, np.int64)
            )
            if pr is not None:
                # realized load factor, in percent (sized for <= 25%)
                pr.hist("hash.load_factor_pct").record(
                    int(100 * m_keys.shape[0] // table.cap)
                )

            if complement:
                found, _ = table.lookup(p_keys) if p_keys.shape[0] else (
                    np.empty(0, bool),
                    None,
                )
                keep = ~found
                keys, vals = _sort_reduce(p_keys[keep], prod_vals[keep], semiring)
                if counter is not None:
                    counter.flops += int(keep.sum())
                    counter.accum_removes += int(keys.shape[0])
                out_rows.append(keys // n)
                out_cols.append(keys % n)
                out_vals.append(vals)
                table.keys[m_slots] = _EMPTY
            else:
                vals_tab = vals_lease.require(table.cap)
                set_tab = set_lease.require(table.cap)
                if p_keys.shape[0]:
                    found, slots = table.lookup(p_keys)
                    kept = slots[found]
                    add_at(vals_tab, kept, prod_vals[found])
                    set_tab[kept] = True
                    if counter is not None:
                        counter.flops += int(found.sum())
                emit = set_tab[m_slots]
                if counter is not None:
                    counter.accum_removes += int(m_slots.shape[0])
                if pr is not None and hi > lo:
                    # mask routing per row: how many mask positions became
                    # output (hits) vs stayed empty (misses)
                    hits = np.bincount(m_rows[emit] - lo, minlength=hi - lo)
                    pr.hist("mask.row_hits").record_array(hits)
                    pr.hist("mask.row_misses").record_array(
                        np.bincount(m_rows - lo, minlength=hi - lo) - hits
                    )
                out_rows.append(m_rows[emit])
                out_cols.append(m_cols[emit])
                out_vals.append(vals_tab[m_slots[emit]])
                # dirty-slot reset: every touched slot is in m_slots
                vals_tab[m_slots] = ident
                set_tab[m_slots] = False
                table.keys[m_slots] = _EMPTY

    if out_rows:
        rows = np.concatenate(out_rows)
        cols = np.concatenate(out_cols)
        vals = np.concatenate(out_vals)
    else:
        rows = cols = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=np.float64)
    if counter is not None:
        counter.output_nnz += int(rows.shape[0])
    return CSR.from_coo((a.nrows, n), rows, cols, vals)


def _lookup_probes(table, m_slots, p_keys, idxc, found):
    """Exact probe-chain length each product lookup *would* have walked.

    Linear probing with no deletions makes chains arithmetic: a present key
    inserted from home ``h`` into ``slot`` walked ``((slot - h) & mask) + 1``
    slots, and every one of those slots is still occupied at lookup time, so
    the lookup walks the same chain.  An absent key walks from its home to
    the first empty slot (inclusive); with the empty slots as a sorted array
    that is a binary search with wraparound.  Must run *before* any slot
    resets.
    """
    h = (p_keys * _HASH_SCAL) & table.mask
    probes = np.empty(p_keys.shape[0], dtype=np.int64)
    if m_slots.shape[0]:
        probes[found] = ((m_slots[idxc[found]] - h[found]) & table.mask) + 1
    absent = ~found
    if absent.any():
        empties = np.flatnonzero(table.keys == _EMPTY)
        ha = h[absent]
        e = np.searchsorted(empties, ha)
        nxt = empties[np.minimum(e, empties.shape[0] - 1)]
        nxt = np.where(e == empties.shape[0], empties[0] + table.cap, nxt)
        probes[absent] = nxt - ha + 1
    return probes


def _hash_batched(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    complement: bool,
    semiring: Semiring,
    counter: Optional[OpCounter],
    flop_budget: int,
    row_nnz: Optional[np.ndarray],
) -> CSR:
    """The bucketed tier (see module docs): identical blocks, searchsorted
    membership, arithmetic probe certification, optional fused output."""
    n = b.ncols
    ident = semiring.add_identity
    mult = semiring.mult_ufunc
    add_ufunc = semiring.add_ufunc
    pr = _probes._INSTALLED
    chain_hist = pr.hist("hash.probe_chain") if pr is not None else None
    # with neither a counter nor probes installed there is nothing the hash
    # table certifies — membership comes from searchsorted either way
    need_cert = counter is not None or pr is not None

    out_rows = []
    out_cols = []
    out_vals = []
    slab = FusedSlab((a.nrows, n), row_nnz) if row_nnz is not None else None

    arena = get_arena()
    with arena.lease("hash.keys", np.int64, _EMPTY) as keys_lease, \
            arena.lease(("hash.vals", float(ident)), np.float64, ident) as vals_lease, \
            arena.lease("hash.set", np.bool_, False) as set_lease:
        for lo, hi in iter_row_blocks(a, b, flop_budget):
            mlo, mhi = int(mask.indptr[lo]), int(mask.indptr[hi])
            m_rows = np.repeat(
                np.arange(lo, hi, dtype=np.int64), np.diff(mask.indptr[lo : hi + 1])
            )
            m_cols = mask.indices[mlo:mhi]
            m_keys = row_keys(m_rows, m_cols, n)
            nm = int(m_keys.shape[0])
            p_local, p_src, p_bpos = expand_keys(
                a, b, np.arange(lo, hi, dtype=np.int64)
            )
            p_keys = (np.int64(lo) + p_local) * np.int64(n) + b.indices[p_bpos]
            np_ = int(p_keys.shape[0])
            if counter is not None:
                counter.accum_allowed += nm
                counter.accum_inserts += np_

            if nm == 0 and not complement:
                continue
            table = None
            m_slots = np.empty(0, dtype=np.int64)
            if need_cert:
                table = VectorHashTable(
                    max(1, nm), counter, keys_lease=keys_lease,
                    chain_hist=chain_hist,
                )
                if nm:
                    m_slots = table.insert(m_keys)
                if pr is not None:
                    pr.hist("hash.load_factor_pct").record(
                        int(100 * nm // table.cap)
                    )

            # membership: m_keys is strictly ascending (CSR order), so a
            # binary search replaces the per-key probe walk
            if nm and np_:
                idx = np.searchsorted(m_keys, p_keys)
                idxc = np.minimum(idx, nm - 1)
                found = m_keys[idxc] == p_keys
            else:
                idxc = np.empty(np_, dtype=np.int64)
                found = np.zeros(np_, dtype=bool)
            if table is not None and np_:
                probes = _lookup_probes(table, m_slots, p_keys, idxc, found)
                if counter is not None:
                    counter.hash_probes += int(probes.sum())
                if chain_hist is not None:
                    chain_hist.record_array(probes)

            if complement:
                keep = ~found
                vals_kept = np.asarray(
                    mult(a.data[p_src[keep]], b.data[p_bpos[keep]]),
                    dtype=np.float64,
                )
                keys, vals = _sort_reduce(p_keys[keep], vals_kept, semiring)
                if counter is not None:
                    counter.flops += int(keep.sum())
                    counter.accum_removes += int(keys.shape[0])
                g_rows, g_cols, g_vals = keys // n, keys % n, vals
                if table is not None:
                    table.keys[m_slots] = _EMPTY
            else:
                vals_m = vals_lease.require(max(1, nm))
                set_m = set_lease.require(max(1, nm))
                kept_idx = idxc[found]
                vals_kept = np.asarray(
                    mult(a.data[p_src[found]], b.data[p_bpos[found]]),
                    dtype=np.float64,
                )
                _c_add_at(vals_m, kept_idx, vals_kept, add_ufunc)
                set_m[kept_idx] = True
                if counter is not None:
                    counter.flops += int(found.sum())
                    counter.accum_removes += nm
                emit = set_m[:nm].copy()
                if pr is not None and hi > lo:
                    hits = np.bincount(m_rows[emit] - lo, minlength=hi - lo)
                    pr.hist("mask.row_hits").record_array(hits)
                    pr.hist("mask.row_misses").record_array(
                        np.bincount(m_rows - lo, minlength=hi - lo) - hits
                    )
                g_rows = m_rows[emit]
                g_cols = m_cols[emit]
                g_vals = vals_m[:nm][emit]
                # dirty-cell reset restores the leases' fill invariant
                vals_m[kept_idx] = ident
                set_m[kept_idx] = False
                if table is not None:
                    table.keys[m_slots] = _EMPTY

            if slab is not None:
                slab.write(g_rows, g_cols, g_vals)
            elif g_rows.shape[0]:
                out_rows.append(g_rows)
                out_cols.append(g_cols)
                out_vals.append(g_vals)

    if slab is not None:
        c = slab.finish()
        if counter is not None:
            counter.output_nnz += c.nnz
        return c
    if out_rows:
        rows = np.concatenate(out_rows)
        cols = np.concatenate(out_cols)
        vals = np.concatenate(out_vals)
    else:
        rows = cols = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=np.float64)
    if counter is not None:
        counter.output_nnz += int(rows.shape[0])
    return CSR.from_coo((a.nrows, n), rows, cols, vals)
