"""Vectorized MSA kernel.

The fast counterpart of Algorithm 2: per row batch it

1. marks allowed positions by scattering the mask into a dense state array
   (``set_allowed``),
2. scatters the allowed products into a dense value array with the
   semiring's ``add_ufunc.at`` (``insert``; masked-out products are filtered
   *before* the multiply-accumulate, preserving the lazy-evaluation
   semantics of the INSERT lambda),
3. gathers the output through the mask in mask order (``remove``), which
   keeps the row sorted exactly as the reference does.

The dense arrays cover ``batch_rows x ncols`` and are reused across batches
— the same "dirty-cell reset" trick the scalar MSA uses, amortised — and,
via the scratch arena (:mod:`repro.core.kernels.arena`), across *calls*:
iterative workloads re-lease the same state/value buffers instead of
reallocating and re-zeroing them every invocation.

Two batching tiers (``batch=`` knob, see :mod:`repro.core.kernels.batch`):

* ``"perrow"`` — the historical contiguous flop-budget row blocks;
* ``"bucket"`` — rows grouped by power-of-two flops/row size class and run
  as whole-array chunks with keys-only (lazily multiplied) expansion, plus
  direct-to-CSR output via :class:`~repro.core.kernels.batch.FusedSlab`
  when a two-phase symbolic bound (``row_nnz``) is supplied.

Both tiers produce bit-for-bit identical matrices and ``OpCounter`` totals
— every charged quantity is a per-row sum, invariant to row grouping.

The complemented variant flips step 1/2's membership test and gathers
through the set of actually-touched positions instead of the mask.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...machine import OpCounter
from ...observe import probes as _probes
from ...observe.tracer import traced_kernel
from ...semiring import PLUS_TIMES, Semiring
from ...sparse import CSR
from .arena import get_arena
from .batch import FusedSlab, bucket_batches, expand_keys, per_row_flops, \
    resolve_tier, rows_entries
from .compiled import add_at as _c_add_at
from .expand import DEFAULT_FLOP_BUDGET, expand_products, iter_row_blocks

__all__ = ["masked_spgemm_msa_fast"]


@traced_kernel("msa")
def masked_spgemm_msa_fast(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
    flop_budget: int = DEFAULT_FLOP_BUDGET,
    dense_budget: int = 1 << 22,
    batch: str = "auto",
    row_nnz: Optional[np.ndarray] = None,
) -> CSR:
    """Vectorized MSA masked SpGEMM (see module docs).

    ``batch`` selects the batching tier (``"auto"`` | ``"bucket"`` |
    ``"perrow"``); ``row_nnz`` optionally carries the exact two-phase
    symbolic bound, enabling fused direct-to-CSR output on the bucketed
    tier (ignored on the per-row tier).
    """
    a = a.sort_indices()
    b = b.sort_indices()
    mask = mask.sort_indices()
    n = b.ncols
    max_width = max(1, dense_budget // max(1, n))
    per_row = per_row_flops(a, b)
    tier = resolve_tier(a, b, batch, per_row=per_row)
    ident = semiring.add_identity
    add_at = semiring.add_ufunc.at

    out_rows = []
    out_cols = []
    out_vals = []
    slab = (
        FusedSlab((a.nrows, n), row_nnz)
        if tier == "bucket" and row_nnz is not None
        else None
    )

    def blocks():
        # flop-budget blocks, further split so width * n dense cells fit the
        # dense budget (the MSA's working set)
        for blo, bhi in iter_row_blocks(a, b, flop_budget):
            for sub in range(blo, bhi, max_width):
                yield sub, min(bhi, sub + max_width)

    # dense per-batch accumulators, addressed by local_row * n + col; leased
    # from the arena so iterative callers reuse them across invocations (the
    # per-batch dirty-cell resets below are exactly the arena's cleanliness
    # contract)
    arena = get_arena()
    with arena.lease("msa.state", np.bool_, False) as state_lease, \
            arena.lease(("msa.values", float(ident)), np.float64, ident) as values_lease, \
            arena.lease("msa.set", np.bool_, False) as set_lease:
        if tier == "bucket":
            _msa_bucketed(
                a, b, mask, per_row, n, complement, semiring, counter,
                flop_budget, max_width, state_lease, values_lease, set_lease,
                slab, out_rows, out_cols, out_vals,
            )
        else:
            _msa_blocks(
                a, b, mask, blocks(), n, complement, semiring, counter,
                add_at, ident, state_lease, values_lease,
                out_rows, out_cols, out_vals,
            )

    if slab is not None:
        c = slab.finish()
        if counter is not None:
            counter.output_nnz += c.nnz
        return c
    if out_rows:
        rows = np.concatenate(out_rows)
        cols = np.concatenate(out_cols)
        vals = np.concatenate(out_vals)
    else:
        rows = cols = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=np.float64)
    if counter is not None:
        counter.output_nnz += int(rows.shape[0])
    return CSR.from_coo((a.nrows, n), rows, cols, vals)


def _msa_bucketed(
    a, b, mask, per_row, n, complement, semiring, counter, flop_budget,
    max_width, state_lease, values_lease, set_lease, slab,
    out_rows, out_cols, out_vals,
):
    """The bucketed tier: one whole-array pass per same-size-class chunk."""
    pr = _probes._INSTALLED
    ident = semiring.add_identity
    mult = semiring.mult_ufunc
    add_ufunc = semiring.add_ufunc
    nn = np.int64(n)
    for bkt, rows in bucket_batches(per_row, flop_budget, width_cap=max_width):
        need = rows.size * n
        state = state_lease.require(need)
        values = values_lease.require(need)
        m_pos, m_local = rows_entries(mask.indptr, rows)
        m_cols = mask.indices[m_pos]
        m_flat = m_local * nn + m_cols
        nm = int(m_flat.shape[0])
        if bkt:
            p_local, p_src, p_bpos = expand_keys(a, b, rows)
            p_flat = p_local * nn + b.indices[p_bpos]
        else:
            p_src = p_bpos = p_flat = np.empty(0, dtype=np.int64)
        if counter is not None:
            counter.accum_allowed += nm
            counter.accum_inserts += int(p_flat.shape[0])
        if pr is not None:
            pr.hist("batch.bucket_occupancy").record(int(rows.size))

        if complement:
            state[m_flat] = True  # True == forbidden in this mode
            keep = ~state[p_flat]
            kept = p_flat[keep]
            vals_kept = np.asarray(
                mult(a.data[p_src[keep]], b.data[p_bpos[keep]]),
                dtype=np.float64,
            )
            _c_add_at(values, kept, vals_kept, add_ufunc)
            if counter is not None:
                counter.flops += int(keep.sum())
            touched = np.unique(kept)
            gathered = values[touched].copy()
            g_rows = rows[touched // nn]
            g_cols = touched % nn
            # reset only the dirtied cells
            values[touched] = ident
            state[m_flat] = False
            if counter is not None:
                counter.accum_removes += int(touched.shape[0])
                counter.spa_resets += int(touched.shape[0] + nm)
            if pr is not None:
                pr.hist("msa.reset_cells").record(int(touched.shape[0] + nm))
        else:
            state[m_flat] = True  # True == ALLOWED
            keep = state[p_flat]
            kept = p_flat[keep]
            vals_kept = np.asarray(
                mult(a.data[p_src[keep]], b.data[p_bpos[keep]]),
                dtype=np.float64,
            )
            _c_add_at(values, kept, vals_kept, add_ufunc)
            if counter is not None:
                counter.flops += int(keep.sum())
            is_set = set_lease.require(need)
            is_set[kept] = True
            emit = is_set[m_flat]
            sel = m_flat[emit]
            gathered = values[sel].copy()
            g_rows = rows[m_local[emit]]
            g_cols = m_cols[emit]
            values[m_flat] = ident
            state[m_flat] = False
            is_set[kept] = False
            if counter is not None:
                counter.accum_removes += nm
                counter.spa_resets += nm
            if pr is not None:
                pr.hist("msa.touched_per_mask_pct").record(
                    int(100 * int(emit.sum()) // max(1, nm))
                )
                pr.hist("msa.reset_cells").record(nm)
                if rows.size:
                    hits = np.bincount(m_local[emit], minlength=rows.size)
                    pr.hist("mask.row_hits").record_array(hits)
                    pr.hist("mask.row_misses").record_array(
                        np.bincount(m_local, minlength=rows.size) - hits
                    )
        if slab is not None:
            slab.write(g_rows, g_cols, gathered)
        elif g_rows.shape[0]:
            out_rows.append(g_rows)
            out_cols.append(g_cols)
            out_vals.append(gathered)


def _msa_blocks(
    a, b, mask, blocks, n, complement, semiring, counter, add_at, ident,
    state_lease, values_lease, out_rows, out_cols, out_vals,
):
    """The per-row tier's block loop over leased dense scratch."""
    pr = _probes._INSTALLED  # one read; recordings below are per block
    for lo, hi in blocks:
        width = hi - lo
        need = width * n
        state = state_lease.require(need)
        values = values_lease.require(need)
        mlo, mhi = int(mask.indptr[lo]), int(mask.indptr[hi])
        m_rows_local = (
            np.repeat(np.arange(lo, hi, dtype=np.int64), np.diff(mask.indptr[lo : hi + 1]))
            - lo
        )
        m_cols = mask.indices[mlo:mhi]
        m_flat = m_rows_local * np.int64(n) + m_cols

        prod_rows, prod_cols, prod_vals = expand_products(a, b, lo, hi, semiring)
        p_flat = (prod_rows - lo) * np.int64(n) + prod_cols
        if counter is not None:
            counter.accum_allowed += int(m_flat.shape[0])
            counter.accum_inserts += int(p_flat.shape[0])

        if complement:
            # mark mask positions NOTALLOWED, keep products outside them
            state[m_flat] = True  # True == forbidden in this mode
            keep = ~state[p_flat]
            kept = p_flat[keep]
            add_at(values, kept, prod_vals[keep])
            if counter is not None:
                counter.flops += int(keep.sum())
            touched = np.unique(kept)
            gathered = values[touched]
            out_rows.append(touched // n + lo)
            out_cols.append(touched % n)
            out_vals.append(gathered)
            # reset only the dirtied cells
            values[touched] = ident
            state[m_flat] = False
            if counter is not None:
                counter.accum_removes += int(touched.shape[0])
                counter.spa_resets += int(touched.shape[0] + m_flat.shape[0])
            if pr is not None:
                pr.hist("msa.reset_cells").record(
                    int(touched.shape[0] + m_flat.shape[0])
                )
        else:
            state[m_flat] = True  # True == ALLOWED
            keep = state[p_flat]
            kept = p_flat[keep]
            add_at(values, kept, prod_vals[keep])
            if counter is not None:
                counter.flops += int(keep.sum())
            # mark SET positions: a parallel boolean scatter
            is_set = np.zeros_like(state)
            is_set[kept] = True
            emit = is_set[m_flat]
            gathered = values[m_flat[emit]]
            out_rows.append(m_rows_local[emit] + lo)
            out_cols.append(m_cols[emit])
            out_vals.append(gathered)
            values[m_flat] = ident
            state[m_flat] = False
            if counter is not None:
                counter.accum_removes += int(m_flat.shape[0])
                counter.spa_resets += int(m_flat.shape[0])
            if pr is not None:
                # touched cells vs nnz(m): what fraction of the mask's dense
                # footprint the row block actually used (the reset-list
                # amortisation the paper's Section 5.2 argues for)
                nm = int(m_flat.shape[0])
                pr.hist("msa.touched_per_mask_pct").record(
                    int(100 * int(emit.sum()) // max(1, nm))
                )
                pr.hist("msa.reset_cells").record(nm)
                if hi > lo:
                    hits = np.bincount(
                        m_rows_local[emit], minlength=hi - lo
                    )
                    pr.hist("mask.row_hits").record_array(hits)
                    pr.hist("mask.row_misses").record_array(
                        np.bincount(m_rows_local, minlength=hi - lo) - hits
                    )
