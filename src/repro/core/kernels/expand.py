"""Shared machinery for the vectorized (fast) kernels.

The push-based fast kernels all start from the same *product expansion*: the
multiset of scalar products ``{A[i,k] * B[k,j]}`` written as flat arrays
``(prod_rows, prod_cols, prod_vals)`` of length ``flops(A B)`` (paper
notation).  Building it is pure NumPy gather/repeat — no Python-level loop
over nonzeros — and corresponds exactly to memory-access patterns 1-3 of
Section 4.2 (read A, fetch B row extents, stanza-read B rows).

Because the expansion materialises ``flops(AB)`` words, kernels process the
output rows in *row blocks* chosen so each block expands to at most
``flop_budget`` products; this mirrors how a real implementation tiles for
cache and keeps peak memory bounded.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ...semiring import Semiring
from ...sparse import CSR

__all__ = ["expand_products", "iter_row_blocks", "row_keys", "DEFAULT_FLOP_BUDGET"]

DEFAULT_FLOP_BUDGET = 1 << 22  # ~4M products per block


def expand_products(
    a: CSR,
    b: CSR,
    row_lo: int,
    row_hi: int,
    semiring: Semiring,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand all products of output rows ``[row_lo, row_hi)``.

    Returns ``(prod_rows, prod_cols, prod_vals)`` where ``prod_rows`` is the
    output row of each product, ``prod_cols`` the output column, and
    ``prod_vals`` the semiring product ``mult(A_ik, B_kj)``.  Products appear
    grouped by output row, then by the order of A's nonzeros — the same
    order the reference push kernels generate them in.
    """
    lo, hi = int(a.indptr[row_lo]), int(a.indptr[row_hi])
    a_cols = a.indices[lo:hi]
    a_vals = a.data[lo:hi]
    a_rows = np.repeat(
        np.arange(row_lo, row_hi, dtype=np.int64),
        np.diff(a.indptr[row_lo : row_hi + 1]),
    )
    starts = b.indptr[a_cols]
    counts = b.indptr[a_cols + 1] - starts
    total = int(counts.sum())
    if total == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), np.empty(0, dtype=np.float64)
    # flat positions into B.indices/B.data for every product
    block_ofs = np.repeat(np.cumsum(counts) - counts, counts)
    pos = np.arange(total, dtype=np.int64) - block_ofs + np.repeat(starts, counts)
    prod_cols = b.indices[pos]
    prod_vals = semiring.mult_ufunc(np.repeat(a_vals, counts), b.data[pos])
    prod_rows = np.repeat(a_rows, counts)
    return prod_rows, prod_cols, np.asarray(prod_vals, dtype=np.float64)


def iter_row_blocks(
    a: CSR, b: CSR, flop_budget: int = DEFAULT_FLOP_BUDGET
) -> Iterator[Tuple[int, int]]:
    """Yield ``(row_lo, row_hi)`` blocks whose expansion stays within the
    flop budget (single rows may exceed it; they get a block of their own).

    Block boundaries come from a vectorized cumulative-sum cut
    (:func:`repro.core.kernels.batch.plan_flop_blocks`) — no per-row Python
    loop — and are identical to the historical greedy walk's.
    """
    from .batch import per_row_flops, plan_flop_blocks

    yield from plan_flop_blocks(per_row_flops(a, b), flop_budget)


def row_keys(rows: np.ndarray, cols: np.ndarray, ncols: int) -> np.ndarray:
    """Combine (row, col) into a single sortable int64 key."""
    return rows * np.int64(ncols) + cols
