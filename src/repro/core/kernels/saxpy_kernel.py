"""Vectorized plain (unmasked) saxpy SpGEMM and multiply-then-mask.

Two users:

* the **multiply-then-mask** baseline of Figure 1 — compute the full
  product, then apply the mask, wasting the work the masked algorithms
  avoid;
* the **SS:SAXPY** baseline model (:mod:`repro.baselines.ssgb`), which
  accumulates full rows (SPA/hash-style) and only filters through the mask
  when a row is emitted.

Accumulation is a sort-reduce over the expanded product list with the
semiring's add — the vector analogue of a SPA sweep in row-major order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...machine import OpCounter
from ...semiring import PLUS_TIMES, Semiring
from ...sparse import CSR, mask_pattern
from .expand import DEFAULT_FLOP_BUDGET, expand_products, iter_row_blocks, row_keys

__all__ = ["spgemm_saxpy_fast", "masked_spgemm_multiply_then_mask"]


def spgemm_saxpy_fast(
    a: CSR,
    b: CSR,
    *,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
    flop_budget: int = DEFAULT_FLOP_BUDGET,
) -> CSR:
    """Plain SpGEMM ``A @ B`` on the given semiring (Gustavson order)."""
    a = a.sort_indices()
    b = b.sort_indices()
    n = b.ncols
    out_rows = []
    out_cols = []
    out_vals = []
    for lo, hi in iter_row_blocks(a, b, flop_budget):
        prod_rows, prod_cols, prod_vals = expand_products(a, b, lo, hi, semiring)
        if prod_rows.shape[0] == 0:
            continue
        if counter is not None:
            counter.flops += int(prod_rows.shape[0])
        keys = row_keys(prod_rows, prod_cols, n)
        order = np.argsort(keys, kind="stable")
        keys, vals = keys[order], prod_vals[order]
        boundary = np.empty(keys.shape[0], dtype=bool)
        boundary[0] = True
        boundary[1:] = keys[1:] != keys[:-1]
        starts = np.flatnonzero(boundary)
        red = semiring.add_ufunc.reduceat(vals, starts)
        out_rows.append(keys[starts] // n)
        out_cols.append(keys[starts] % n)
        out_vals.append(np.asarray(red, dtype=np.float64))
    if out_rows:
        rows = np.concatenate(out_rows)
        cols = np.concatenate(out_cols)
        vals = np.concatenate(out_vals)
    else:
        rows = cols = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=np.float64)
    if counter is not None:
        counter.output_nnz += int(rows.shape[0])
    return CSR.from_coo((a.nrows, n), rows, cols, vals)


def masked_spgemm_multiply_then_mask(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
    flop_budget: int = DEFAULT_FLOP_BUDGET,
) -> CSR:
    """Figure-1 baseline: full product first, mask second."""
    c = spgemm_saxpy_fast(a, b, semiring=semiring, counter=counter, flop_budget=flop_budget)
    return mask_pattern(c, mask, complement=complement)
