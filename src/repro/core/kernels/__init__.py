"""Vectorized NumPy fast paths for the paper's algorithms."""

from .arena import Lease, ScratchArena, arena_stats, clear_arena, get_arena
from .esc_kernel import masked_spgemm_esc_fast
from .expand import DEFAULT_FLOP_BUDGET, expand_products, iter_row_blocks, row_keys
from .hash_kernel import VectorHashTable, masked_spgemm_hash_fast
from .inner_kernel import masked_spgemm_inner_fast
from .mca_kernel import masked_spgemm_mca_fast
from .msa_kernel import masked_spgemm_msa_fast
from .saxpy_kernel import masked_spgemm_multiply_then_mask, spgemm_saxpy_fast

__all__ = [
    "Lease",
    "ScratchArena",
    "arena_stats",
    "clear_arena",
    "get_arena",
    "DEFAULT_FLOP_BUDGET",
    "expand_products",
    "iter_row_blocks",
    "row_keys",
    "masked_spgemm_esc_fast",
    "VectorHashTable",
    "masked_spgemm_hash_fast",
    "masked_spgemm_inner_fast",
    "masked_spgemm_mca_fast",
    "masked_spgemm_msa_fast",
    "masked_spgemm_multiply_then_mask",
    "spgemm_saxpy_fast",
]
