"""Vectorized Inner (pull-based dot-product) kernel.

The fast counterpart of Section 4.1: for every mask nonzero ``(i, j)``
compute the sparse dot product ``A[i,:] . B[:,j]`` with ``B`` in CSC.

Vectorization strategy — one batch over all mask nonzeros of a block:

1. expand the CSC column slice of every mask nonzero: each (i, j) pulls the
   ``(rowid, value)`` pairs of column ``B[:,j]`` (this *is* the pull
   traffic: ``nnz(M) * nnz(B)/n`` expected words, the paper's formula);
2. look each pulled pair ``(i, k)`` up in A via one ``searchsorted`` of flat
   keys into A's (sorted) flat key array — the batched analogue of the
   two-pointer merge in the reference;
3. multiply the matches and segment-reduce them per mask nonzero with the
   semiring add.

Mask entries with no matched product produce no output entry (the paper's
note under Figure 1: the mask can contain entries the product never makes).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...machine import OpCounter
from ...observe.tracer import traced_kernel
from ...semiring import PLUS_TIMES, Semiring
from ...sparse import CSC, CSR
from .expand import row_keys

__all__ = ["masked_spgemm_inner_fast"]

DEFAULT_PULL_BUDGET = 1 << 22


@traced_kernel("inner")
def masked_spgemm_inner_fast(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
    b_csc: Optional[CSC] = None,
    pull_budget: int = DEFAULT_PULL_BUDGET,
) -> CSR:
    """Vectorized pull-based (Inner) masked SpGEMM (see module docs)."""
    if complement:
        raise ValueError("inner-product algorithm does not support complement")
    a = a.sort_indices()
    mask = mask.sort_indices()
    n = b.ncols
    if a.nnz == 0 or b.nnz == 0 or mask.nnz == 0:
        if counter is not None:
            counter.mask_scans += mask.nnz
        return CSR.empty((a.nrows, n))
    csc = b_csc if b_csc is not None else CSC.from_csr(b)

    # flat sorted key view of A for batched membership lookups
    a_rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_nnz())
    a_keys = row_keys(a_rows, a.indices, a.ncols)

    m_rows_all = np.repeat(np.arange(mask.nrows, dtype=np.int64), mask.row_nnz())
    m_cols_all = mask.indices
    col_nnz = csc.col_nnz()

    out_rows = []
    out_cols = []
    out_vals = []

    # block the mask nonzeros so each block pulls at most pull_budget pairs
    nmask = m_cols_all.shape[0]
    pulls = col_nnz[m_cols_all] if nmask else np.empty(0, dtype=np.int64)
    lo = 0
    while lo < nmask:
        acc = 0
        hi = lo
        while hi < nmask and (acc == 0 or acc + pulls[hi] <= pull_budget):
            acc += int(pulls[hi])
            hi += 1
        m_rows = m_rows_all[lo:hi]
        m_cols = m_cols_all[lo:hi]
        if counter is not None:
            counter.mask_scans += hi - lo

        starts = csc.indptr[m_cols]
        counts = csc.indptr[m_cols + 1] - starts
        total = int(counts.sum())
        if total == 0:
            lo = hi
            continue
        block_ofs = np.repeat(np.cumsum(counts) - counts, counts)
        pos = np.arange(total, dtype=np.int64) - block_ofs + np.repeat(starts, counts)
        pulled_k = csc.indices[pos]  # inner index k of B[k, j]
        pulled_v = csc.data[pos]
        slot = np.repeat(np.arange(hi - lo, dtype=np.int64), counts)
        pulled_i = m_rows[slot]

        keys = row_keys(pulled_i, pulled_k, a.ncols)
        idx = np.searchsorted(a_keys, keys)
        idx_c = np.minimum(idx, max(0, a_keys.shape[0] - 1))
        match = (a_keys.shape[0] > 0) & (a_keys[idx_c] == keys)
        if counter is not None:
            counter.flops += int(match.sum())

        prods = semiring.mult_ufunc(a.data[idx_c[match]], pulled_v[match])
        mslots = slot[match]
        vals = np.full(hi - lo, semiring.add_identity, dtype=np.float64)
        hit = np.zeros(hi - lo, dtype=bool)
        semiring.add_ufunc.at(vals, mslots, prods)
        hit[mslots] = True

        out_rows.append(m_rows[hit])
        out_cols.append(m_cols[hit])
        out_vals.append(vals[hit])
        if counter is not None:
            counter.useful_flops += int(hit.sum())
        lo = hi

    if out_rows:
        rows = np.concatenate(out_rows)
        cols = np.concatenate(out_cols)
        vals = np.concatenate(out_vals)
    else:
        rows = cols = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=np.float64)
    if counter is not None:
        counter.output_nnz += int(rows.shape[0])
    return CSR.from_coo((a.nrows, n), rows, cols, vals)
