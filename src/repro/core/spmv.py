"""Masked sparse matrix-vector products (push and pull).

The paper traces masking back to SpMV: "the concept of masking has been
first applied to sparse-matrix-vector multiplication to implement the
direction-optimized graph traversal" (Section 4, citing Beamer et al. and
Yang et al.).  This module provides that primitive —

    y = m .* (x^T A)        (row vector times matrix, GraphBLAS vxm)

in both orientations:

* **push** — driven by the nonzeros of ``x``: scatter each ``x_k * A[k,:]``
  into an accumulator, filtered by the mask (a single-row Masked SpGEMM);
* **pull** — driven by the nonzeros of the mask: for each allowed output
  position ``j``, gather the dot product ``x . A[:, j]`` (needs A's CSC).

These are exactly the frontier-expansion kernels of direction-optimized
BFS; :func:`repro.apps.direction_optimized_bfs` switches between them by
frontier density, reproducing the push-pull optimization the paper's
masking story begins with.

Vectors are dense NumPy arrays with an explicit boolean pattern (a dense
representation keeps the kernels simple; sparse frontiers pass their
indices via the ``pattern`` arguments).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..machine import OpCounter
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import CSC, CSR

__all__ = ["masked_spmv_push", "masked_spmv_pull", "masked_spmv"]


def _as_indices(pattern: np.ndarray) -> np.ndarray:
    pattern = np.asarray(pattern)
    if pattern.dtype == bool:
        return np.flatnonzero(pattern)
    return pattern.astype(np.int64)


def masked_spmv_push(
    a: CSR,
    x_vals: np.ndarray,
    x_pattern: np.ndarray,
    mask_pattern: np.ndarray,
    *,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Push ``y = m .* (x^T A)``: expand the rows selected by ``x``.

    Parameters
    ----------
    a:
        The matrix (CSR; rows are the "from" dimension of ``x^T A``).
    x_vals:
        Dense length-``a.nrows`` value array of the input vector.
    x_pattern / mask_pattern:
        Boolean arrays or index arrays selecting the nonzeros of ``x`` and
        of the mask.

    Returns
    -------
    (y_vals, y_pattern):
        Dense values and a boolean pattern of the output.
    """
    xs = _as_indices(x_pattern)
    n = a.ncols
    allowed = np.zeros(n, dtype=bool)
    midx = _as_indices(mask_pattern)
    allowed[midx] = True
    if complement:
        allowed = ~allowed
    y = np.full(n, semiring.add_identity, dtype=np.float64)
    hit = np.zeros(n, dtype=bool)
    if xs.shape[0]:
        starts = a.indptr[xs]
        counts = a.indptr[xs + 1] - starts
        total = int(counts.sum())
        if total:
            ofs = np.repeat(np.cumsum(counts) - counts, counts)
            pos = np.arange(total, dtype=np.int64) - ofs + np.repeat(starts, counts)
            cols = a.indices[pos]
            vals = semiring.mult_ufunc(
                np.repeat(x_vals[xs], counts), a.data[pos]
            )
            keep = allowed[cols]
            if counter is not None:
                counter.accum_inserts += total
                counter.flops += int(keep.sum())
            semiring.add_ufunc.at(y, cols[keep], np.asarray(vals)[keep])
            hit[cols[keep]] = True
    return y, hit


def masked_spmv_pull(
    a_csc: CSC,
    x_vals: np.ndarray,
    x_pattern: np.ndarray,
    mask_pattern: np.ndarray,
    *,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pull ``y = m .* (x^T A)``: for each masked output position, gather
    from its in-neighbours.  Complement is not supported (like Inner)."""
    n = a_csc.ncols
    in_x = np.zeros(a_csc.nrows, dtype=bool)
    xs = _as_indices(x_pattern)
    in_x[xs] = True
    y = np.full(n, semiring.add_identity, dtype=np.float64)
    hit = np.zeros(n, dtype=bool)
    midx = _as_indices(mask_pattern)
    if midx.shape[0] == 0:
        return y, hit
    starts = a_csc.indptr[midx]
    counts = a_csc.indptr[midx + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return y, hit
    ofs = np.repeat(np.cumsum(counts) - counts, counts)
    pos = np.arange(total, dtype=np.int64) - ofs + np.repeat(starts, counts)
    rows = a_csc.indices[pos]
    slot = np.repeat(midx, counts)
    keep = in_x[rows]
    if counter is not None:
        counter.mask_scans += int(midx.shape[0])
        counter.flops += int(keep.sum())
    vals = semiring.mult_ufunc(x_vals[rows[keep]], a_csc.data[pos[keep]])
    semiring.add_ufunc.at(y, slot[keep], np.asarray(vals))
    hit[slot[keep]] = True
    return y, hit


def masked_spmv(
    a: CSR,
    x_vals: np.ndarray,
    x_pattern: np.ndarray,
    mask_pattern: np.ndarray,
    *,
    direction: str = "auto",
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    a_csc: Optional[CSC] = None,
    counter: Optional[OpCounter] = None,
    push_pull_ratio: float = 4.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Direction-optimized masked SpMV.

    ``direction``: ``"push"``, ``"pull"`` or ``"auto"``.  Auto chooses pull
    when the mask is much sparser than the expansion work would be (the
    Section 4.3 criterion for vectors) and a CSC of ``A`` is available;
    complemented masks always push (pull cannot enumerate the complement).
    """
    if direction not in ("push", "pull", "auto"):
        raise ValueError("direction must be 'push', 'pull' or 'auto'")
    xs = _as_indices(x_pattern)
    midx = _as_indices(mask_pattern)
    if direction == "auto":
        if complement or a_csc is None:
            direction = "push"
        else:
            push_work = int(np.sum(a.row_nnz()[xs])) if xs.shape[0] else 0
            pull_work = int(np.sum(a_csc.col_nnz()[midx])) if midx.shape[0] else 0
            direction = "pull" if pull_work * push_pull_ratio < push_work else "push"
    if direction == "pull":
        if complement:
            raise ValueError("pull direction cannot apply a complemented mask")
        csc = a_csc if a_csc is not None else CSC.from_csr(a)
        return masked_spmv_pull(
            csc, x_vals, x_pattern, mask_pattern, semiring=semiring, counter=counter
        )
    return masked_spmv_push(
        a, x_vals, x_pattern, mask_pattern,
        complement=complement, semiring=semiring, counter=counter,
    )
