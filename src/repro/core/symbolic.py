"""Symbolic phase for two-phase (2P) masked SpGEMM — paper Section 6.

The symbolic phase inspects only indices (no value arithmetic) and returns
the exact number of output nonzeros per row, letting the numeric phase write
into an exactly-sized allocation.  The paper's finding — reproduced by the
cost model and asserted by the benches — is that for *masked* SpGEMM the
mask already bounds the output so well that paying a second sweep (2P) is
usually slower than the one-phase (1P) approach; this module exists so both
variants are real code paths, not just cost-model annotations.

Also provides the 1P scratch-size bound: ``min(nnz(m_i), flops_i)`` per row
for a plain mask (the mask is the paper's "good initial approximation" for
the output size), and ``flops_i`` for a complemented mask.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..machine import OpCounter, flops_per_row
from ..sparse import CSR
from .kernels.expand import DEFAULT_FLOP_BUDGET, expand_products, iter_row_blocks, row_keys

__all__ = ["symbolic_masked", "one_phase_bound"]


def symbolic_masked(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    complement: bool = False,
    counter: Optional[OpCounter] = None,
    flop_budget: int = DEFAULT_FLOP_BUDGET,
) -> np.ndarray:
    """Exact per-row output nonzero counts of ``M .* (A @ B)`` (pattern
    only).  Index traversal mirrors the numeric phase; every inspected
    product is charged to ``counter.symbolic_flops``."""
    a = a.sort_indices()
    b = b.sort_indices()
    mask = mask.sort_indices()
    n = b.ncols
    out = np.zeros(a.nrows, dtype=np.int64)
    m_rows_all = np.repeat(np.arange(mask.nrows, dtype=np.int64), mask.row_nnz())
    m_keys_all = row_keys(m_rows_all, mask.indices, n)
    for lo, hi in iter_row_blocks(a, b, flop_budget):
        prod_rows, prod_cols, _ = expand_products(a, b, lo, hi, _PatternSemiring)
        if prod_rows.shape[0] == 0:
            continue
        if counter is not None:
            counter.symbolic_flops += int(prod_rows.shape[0])
        p_keys = np.unique(row_keys(prod_rows, prod_cols, n))
        if m_keys_all.shape[0] == 0:
            inside = np.zeros(p_keys.shape[0], dtype=bool)
        else:
            idx = np.searchsorted(m_keys_all, p_keys)
            idx_c = np.minimum(idx, m_keys_all.shape[0] - 1)
            inside = m_keys_all[idx_c] == p_keys
        keep = p_keys[~inside] if complement else p_keys[inside]
        np.add.at(out, keep // n, 1)
    return out


class _PatternSemiring:
    """Value-free stand-in semiring for symbolic expansion."""

    @staticmethod
    def mult_ufunc(x, y):
        return np.zeros(np.broadcast(x, y).shape, dtype=np.float64)


def one_phase_bound(
    a: CSR, b: CSR, mask: CSR, *, complement: bool = False
) -> Tuple[np.ndarray, int]:
    """Per-row scratch bound and its total for the 1P approach."""
    fl = flops_per_row(a, b)
    if complement:
        bound = np.minimum(fl, b.ncols)
    else:
        bound = np.minimum(mask.row_nnz(), fl)
    return bound, int(bound.sum())
