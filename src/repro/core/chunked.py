"""Memory-bounded (out-of-core style) masked SpGEMM.

For problems whose product expansion or mask does not fit in memory, the
multiplication can proceed over **column panels**: partition the output
columns into panels, restrict ``B`` and the mask to one panel at a time,
multiply, and concatenate — output columns are disjoint across panels, so
the merge is free.  The mask makes the panelling particularly effective:
a panel whose mask slice is empty is skipped without touching ``B``.

This complements the row blocking inside the fast kernels (which bounds
the *expansion*, not the mask/accumulator footprint).  Peak footprint per
panel is ~``nnz(B_panel) + nnz(M_panel) + panel_output``.

The panel loop itself lives in the execution engine
(:func:`repro.engine.execute` runs any plan with a ``panel_width``); this
module keeps the panel geometry helpers and
:func:`masked_spgemm_chunked`, the historical front door, which now builds
a forced single-band plan with ``panel_width`` set and executes it.  The
planner can also *choose* panelling from a memory budget
(``Planner.plan(..., memory_budget_bytes=...)``).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..machine import OpCounter
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import CSR

__all__ = ["masked_spgemm_chunked", "column_panels", "restrict_columns"]


def restrict_columns(mat: CSR, lo: int, hi: int) -> CSR:
    """Columns ``[lo, hi)`` of ``mat`` as a narrow CSR of width ``hi-lo``."""
    rows, cols, vals = mat.sort_indices().to_coo()
    keep = (cols >= lo) & (cols < hi)
    return CSR.from_coo(
        (mat.nrows, hi - lo), rows[keep], cols[keep] - lo, vals[keep]
    )


def column_panels(ncols: int, panel_width: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(lo, hi)`` panel bounds."""
    if panel_width <= 0:
        raise ValueError("panel_width must be positive")
    for lo in range(0, ncols, panel_width):
        yield lo, min(ncols, lo + panel_width)


def masked_spgemm_chunked(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    panel_width: int = 4096,
    algo: str = "msa",
    phases: int = 1,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
    impl: str = "auto",
) -> CSR:
    """``M .* (A @ B)`` computed one output-column panel at a time.

    Equivalent to :func:`repro.core.masked_spgemm` (tested to be), with
    peak memory bounded by the panel instead of the whole problem.  Panels
    whose mask slice is empty are skipped entirely (plain mask) — with a
    complemented mask no panel can be skipped (the complement is dense
    there), so the panelling only bounds memory.  ``algo="auto"`` lets the
    cost-model planner pick the per-band algorithms; the panel width stays
    as forced here.
    """
    if panel_width <= 0:
        raise ValueError("panel_width must be positive")
    from ..engine import Planner, execute

    pl = Planner().plan(
        a,
        b,
        mask,
        algo=None if algo.lower() == "auto" else algo,
        phases=phases,
        complement=complement,
        threads=1,
        panel_width=panel_width,
    )
    return execute(pl, a, b, mask, semiring=semiring, impl=impl, counter=counter)
