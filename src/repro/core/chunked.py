"""Memory-bounded (out-of-core style) masked SpGEMM.

For problems whose product expansion or mask does not fit in memory, the
multiplication can proceed over **column panels**: partition the output
columns into panels, restrict ``B`` and the mask to one panel at a time,
multiply, and concatenate — output columns are disjoint across panels, so
the merge is free.  The mask makes the panelling particularly effective:
a panel whose mask slice is empty is skipped without touching ``B``.

This complements the row blocking inside the fast kernels (which bounds
the *expansion*, not the mask/accumulator footprint).  Peak footprint per
panel is ~``nnz(B_panel) + nnz(M_panel) + panel_output``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..machine import OpCounter
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import CSR
from .masked_spgemm import masked_spgemm

__all__ = ["masked_spgemm_chunked", "column_panels", "restrict_columns"]


def restrict_columns(mat: CSR, lo: int, hi: int) -> CSR:
    """Columns ``[lo, hi)`` of ``mat`` as a narrow CSR of width ``hi-lo``."""
    rows, cols, vals = mat.sort_indices().to_coo()
    keep = (cols >= lo) & (cols < hi)
    return CSR.from_coo(
        (mat.nrows, hi - lo), rows[keep], cols[keep] - lo, vals[keep]
    )


def column_panels(ncols: int, panel_width: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(lo, hi)`` panel bounds."""
    if panel_width <= 0:
        raise ValueError("panel_width must be positive")
    for lo in range(0, ncols, panel_width):
        yield lo, min(ncols, lo + panel_width)


def masked_spgemm_chunked(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    panel_width: int = 4096,
    algo: str = "msa",
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
) -> CSR:
    """``M .* (A @ B)`` computed one output-column panel at a time.

    Equivalent to :func:`repro.core.masked_spgemm` (tested to be), with
    peak memory bounded by the panel instead of the whole problem.  Panels
    whose mask slice is empty are skipped entirely (plain mask) — with a
    complemented mask no panel can be skipped (the complement is dense
    there), so the panelling only bounds memory.
    """
    if a.ncols != b.nrows:
        raise ValueError("inner dimensions of A and B do not agree")
    if mask.shape != (a.nrows, b.ncols):
        raise ValueError("mask shape must match the output shape")
    out_rows = []
    out_cols = []
    out_vals = []
    for lo, hi in column_panels(b.ncols, panel_width):
        m_panel = restrict_columns(mask, lo, hi)
        if m_panel.nnz == 0 and not complement:
            continue  # the mask proves this panel is empty
        b_panel = restrict_columns(b, lo, hi)
        c_panel = masked_spgemm(
            a, b_panel, m_panel, algo=algo, complement=complement,
            semiring=semiring, counter=counter,
        )
        r, c, v = c_panel.to_coo()
        out_rows.append(r)
        out_cols.append(c + lo)
        out_vals.append(v)
    if not out_rows:
        return CSR.empty((a.nrows, b.ncols))
    return CSR.from_coo(
        (a.nrows, b.ncols),
        np.concatenate(out_rows),
        np.concatenate(out_cols),
        np.concatenate(out_vals),
    )
