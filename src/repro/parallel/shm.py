"""Shared-memory publication of CSR operands for the process backend.

The process backend must hand every worker the same three CSR arrays
(``indptr`` / ``indices`` / ``data``) for A, B and the mask without
serialising them per task — pickling multi-megabyte operands to every
worker would eat the speedup the backend exists to provide.  This module
publishes each array into a named POSIX shared-memory segment
(:mod:`multiprocessing.shared_memory`) exactly once per call; workers
reattach the segments by name and wrap them in NumPy views, so operand
"transfer" is an ``shm_open`` + ``mmap`` per segment, independent of
operand size.

Lifecycle contract (asserted by the backend-equivalence test suite):

* the **parent** owns every segment it publishes — a
  :class:`SegmentGroup` tracks them and ``close()`` (or the context
  manager, or the ``atexit`` sweeper) both closes and unlinks them;
* **workers** only ever attach; attachments are cached per process (the
  persistent pool reuses workers across calls, and one call's partitions
  all reference the same segments) behind a small LRU so long-lived
  workers do not accumulate maps of dead segments;
* after the pool is shut down and every group closed,
  :func:`active_segments` is empty and the segment names no longer
  resolve — nothing leaks into ``/dev/shm``.
"""

from __future__ import annotations

import atexit
import os
import secrets
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import resource_tracker, shared_memory

    HAVE_SHARED_MEMORY = True
except ImportError:  # pragma: no cover
    shared_memory = None
    resource_tracker = None
    HAVE_SHARED_MEMORY = False

from ..sparse import CSC, CSR, DCSR

__all__ = [
    "HAVE_SHARED_MEMORY",
    "SegmentSpec",
    "CSRSegments",
    "DCSRSegments",
    "SegmentGroup",
    "rewrite_array",
    "attach_array",
    "attach_csr",
    "attach_csc",
    "attach_dcsr",
    "active_segments",
    "clear_attachments",
]


@dataclass(frozen=True)
class SegmentSpec:
    """Address of one published array: segment name + dtype + length.

    Plain data — this is what crosses the process boundary (a few dozen
    bytes) instead of the array itself.
    """

    name: str
    dtype: str
    length: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * self.length)


@dataclass(frozen=True)
class CSRSegments:
    """A CSR matrix published as three shared segments (plus metadata)."""

    shape: Tuple[int, int]
    sorted_indices: bool
    indptr: SegmentSpec
    indices: SegmentSpec
    data: SegmentSpec


@dataclass(frozen=True)
class DCSRSegments:
    """A DCSR shard published as four shared segments (plus metadata).

    The sharded executor's transfer form: DCSC panels ship as the DCSR of
    their transpose (rewrapped worker-side), mirroring how CSC crosses the
    boundary as :class:`CSRSegments` of the transpose.  ``token`` is a
    content address: it changes whenever the published bytes change (fresh
    publication, or an in-place values rewrite by the session segment
    cache), so workers can key caches of *derived* forms — the CSR a shard
    expands to before hitting a kernel — on it without risking staleness.
    """

    shape: Tuple[int, int]
    token: str
    rows: SegmentSpec
    indptr: SegmentSpec
    indices: SegmentSpec
    data: SegmentSpec


# ----------------------------------------------------------------------
# parent side: publish
# ----------------------------------------------------------------------

#: segments created (and not yet unlinked) by this process: name -> SharedMemory
_OWNED: Dict[str, "shared_memory.SharedMemory"] = {}


def _new_segment(nbytes: int) -> "shared_memory.SharedMemory":
    # SharedMemory rejects size 0; an empty array still needs an address.
    name = f"repro_{os.getpid():x}_{secrets.token_hex(4)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))
    _OWNED[shm.name] = shm
    return shm


def _unlink(shm: "shared_memory.SharedMemory") -> None:
    _OWNED.pop(shm.name, None)
    try:
        shm.close()
    finally:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def rewrite_array(spec: SegmentSpec, arr: np.ndarray) -> None:
    """Overwrite a published segment's contents in place.

    The values-only republish path of the session segment cache
    (:mod:`repro.parallel.segment_cache`): when an operand's structure is
    unchanged but its values moved, the existing segment is rewritten
    under the same name — workers' cached attachments are ``mmap`` views
    of the same pages, so they observe the new values without re-attaching.
    Only segments owned by this process can be rewritten, and the
    replacement must match the published dtype and length exactly.
    """
    shm = _OWNED.get(spec.name)
    if shm is None:
        raise KeyError(f"segment {spec.name!r} is not owned by this process")
    arr = np.ascontiguousarray(arr)
    if arr.dtype.str != spec.dtype or int(arr.size) != spec.length:
        raise ValueError(
            f"rewrite_array needs identical dtype/length: segment is "
            f"({spec.dtype}, {spec.length}), got ({arr.dtype.str}, {arr.size})"
        )
    if arr.size:
        np.frombuffer(shm.buf, dtype=arr.dtype, count=arr.size)[:] = arr


def active_segments() -> Tuple[str, ...]:
    """Names of segments this process has published and not yet unlinked."""
    return tuple(sorted(_OWNED))


def active_segment_bytes() -> int:
    """Total bytes of the segments this process currently owns.

    The runtime sampler's ``shm_bytes`` gauge — what the fleet's shared
    pages cost the host right now, summed over live published segments.
    """
    return sum(int(seg.size) for seg in _OWNED.values())


@atexit.register
def _sweep_owned() -> None:  # pragma: no cover - interpreter shutdown
    for shm in list(_OWNED.values()):
        try:
            _unlink(shm)
        except Exception:
            pass


class SegmentGroup:
    """Owner of the segments published for one batch of operands.

    Use as a context manager around a process-backend call: publish the
    operands, hand the (tiny, picklable) :class:`CSRSegments` specs to the
    workers, and let ``__exit__`` close + unlink everything.
    """

    def __init__(self) -> None:
        if not HAVE_SHARED_MEMORY:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self._segments: List["shared_memory.SharedMemory"] = []
        self._closed = False

    # -- publishing ----------------------------------------------------
    def publish_array(self, arr: np.ndarray) -> SegmentSpec:
        """Copy a 1-D array into a fresh segment; returns its address."""
        arr = np.ascontiguousarray(arr)
        shm = self._segment(arr.nbytes)
        if arr.size:
            np.frombuffer(shm.buf, dtype=arr.dtype, count=arr.size)[:] = arr
        return SegmentSpec(shm.name, arr.dtype.str, int(arr.size))

    def publish_csr(self, mat: CSR) -> CSRSegments:
        """Publish a CSR operand's three arrays."""
        return CSRSegments(
            shape=mat.shape,
            sorted_indices=mat.sorted_indices,
            indptr=self.publish_array(mat.indptr),
            indices=self.publish_array(mat.indices),
            data=self.publish_array(mat.data),
        )

    def publish_csc(self, mat: CSC) -> CSRSegments:
        """Publish a CSC operand (as the CSR of its transpose)."""
        return self.publish_csr(mat.to_transposed_csr())

    def publish_dcsr(self, mat: DCSR, *, token: Optional[str] = None) -> DCSRSegments:
        """Publish a DCSR shard's four arrays.

        ``token`` defaults to the data segment's (globally unique) name —
        correct for one-shot publication; the session segment cache passes
        a content-derived token instead so reused shards keep a stable
        address across calls and rewritten shards get a fresh one.
        """
        data = self.publish_array(mat.data)
        return DCSRSegments(
            shape=mat.shape,
            token=token if token is not None else data.name,
            rows=self.publish_array(mat.rows),
            indptr=self.publish_array(mat.indptr),
            indices=self.publish_array(mat.indices),
            data=data,
        )

    # -- lifecycle -----------------------------------------------------
    def _segment(self, nbytes: int) -> "shared_memory.SharedMemory":
        if self._closed:
            raise RuntimeError("SegmentGroup is closed")
        shm = _new_segment(nbytes)
        self._segments.append(shm)
        return shm

    def close(self) -> None:
        """Close and unlink every segment this group published."""
        if self._closed:
            return
        self._closed = True
        for shm in self._segments:
            _unlink(shm)
        self._segments.clear()

    def __enter__(self) -> "SegmentGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._segments)


# ----------------------------------------------------------------------
# worker side: attach
# ----------------------------------------------------------------------

#: per-process attachment cache (LRU: name -> SharedMemory).  Workers are
#: reused across calls; partitions of one call share operands, so the first
#: task attaches and the rest hit the cache.  Eviction must be
#: least-recently-used: the sharded runner attaches dozens of small
#: segments per call, and evicting newest-first would close segments whose
#: NumPy views are alive in the task currently running.
_ATTACHED: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
_ATTACH_CACHE_MAX = 64

#: handles evicted while a NumPy view of them was still exported: ``close``
#: raises BufferError then, and letting the handle be garbage-collected
#: would re-raise it from ``SharedMemory.__del__`` as an "Exception
#: ignored" traceback.  Park them here and retry once the views have died.
_RETIRED: List["shared_memory.SharedMemory"] = []


def _retire(shm: "shared_memory.SharedMemory") -> None:
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a view is still alive
        _RETIRED.append(shm)


def _drain_retired() -> None:
    still: List["shared_memory.SharedMemory"] = []
    for shm in _RETIRED:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - view still alive
            still.append(shm)
    _RETIRED[:] = still


def _attach_segment(name: str) -> "shared_memory.SharedMemory":
    shm = _ATTACHED.get(name)
    if shm is not None:
        _ATTACHED.move_to_end(name)
        return shm
    # The resource tracker would treat an attach as ownership and clean the
    # segment up when *this* process exits, though the parent owns it
    # (bpo-38119).  Suppress registration during the attach rather than
    # unregistering afterwards: under the fork start method workers share
    # the parent's tracker daemon, and an unregister message from a worker
    # would cancel the *parent's* registration (its later unlink then spams
    # KeyError tracebacks from the tracker).  Workers run tasks on a single
    # thread, so the temporary monkeypatch cannot race.
    if resource_tracker is not None:
        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register
    else:  # pragma: no cover - tracker internals moved
        shm = shared_memory.SharedMemory(name=name)
    _drain_retired()
    while len(_ATTACHED) >= _ATTACH_CACHE_MAX:
        _, old = _ATTACHED.popitem(last=False)
        _retire(old)
    _ATTACHED[name] = shm
    return shm


def clear_attachments() -> None:
    """Drop this process's attachment cache (used by pool shutdown/tests)."""
    for shm in list(_ATTACHED.values()):
        _retire(shm)
    _ATTACHED.clear()
    _drain_retired()


def attach_array(spec: SegmentSpec) -> np.ndarray:
    """Zero-copy NumPy view of a published array."""
    shm = _attach_segment(spec.name)
    return np.frombuffer(shm.buf, dtype=np.dtype(spec.dtype), count=spec.length)


def attach_csr(spec: CSRSegments) -> CSR:
    """Zero-copy CSR view of published segments (no validation re-run)."""
    return CSR.from_segment_arrays(
        spec.shape,
        attach_array(spec.indptr),
        attach_array(spec.indices),
        attach_array(spec.data),
        sorted_indices=spec.sorted_indices,
    )


def attach_csc(spec: Optional[CSRSegments]) -> Optional[CSC]:
    """Zero-copy CSC view (the spec holds the CSR of the transpose)."""
    if spec is None:
        return None
    t = attach_csr(spec)
    return CSC((t.ncols, t.nrows), t)


def attach_dcsr(spec: DCSRSegments) -> DCSR:
    """Zero-copy DCSR view of a published shard (no validation re-run)."""
    return DCSR(
        spec.shape,
        attach_array(spec.rows),
        attach_array(spec.indptr),
        attach_array(spec.indices),
        attach_array(spec.data),
        check=False,
    )
