"""Cross-call registry of shared-memory operand segments.

The process backend publishes every CSR operand into named POSIX
shared-memory segments (:mod:`repro.parallel.shm`).  Without a session
that publication is per call: iterative apps republish an unchanged
adjacency every round.  A :class:`SegmentCache` — owned by an
:class:`~repro.engine.ExecutionSession` — keeps published segments alive
across calls, keyed by operand *content fingerprint*:

* **full hit** (same structure digest, same values digest) — the cached
  :class:`~repro.parallel.shm.CSRSegments` spec is returned untouched.
  Because keys are content-based, this also dedupes *within* a call: in
  triangle counting and k-truss A, B and M are the same matrix and
  publish once instead of three times.
* **values-only hit** (same structure digest, different values digest) —
  only the ``data`` segment is rewritten in place
  (:func:`~repro.parallel.shm.rewrite_array`); workers' cached ``mmap``
  attachments observe the new bytes under the old segment name.
* **miss** — a fresh :class:`~repro.parallel.shm.SegmentGroup` publishes
  the operand; the least-recently-used unpinned entries are evicted when
  the byte budget overflows (eviction closes + unlinks the entry's group).

Derived operands (the CSC transpose the inner-product kernel wants) are
cached under the *base* operand's fingerprint, so a constant ``B`` keeps
its transpose segments alive too.

Entries touched since :meth:`SegmentCache.begin_call` are pinned — a
pinned segment is never evicted, rewritten in place, or dropped while the
in-flight call references it, so a later operand of the *same* call that
shares a structure digest but carries different values (``mask =
a.pattern()`` in the same product) publishes fresh segments instead of
clobbering the earlier operand's data.  :meth:`SegmentCache.close` releases everything;
after it, :func:`repro.parallel.shm.active_segments` no longer lists any
segment this cache owned.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Set

import numpy as np

from ..sparse import CSC, CSR
from . import shm as _shm

__all__ = ["SegmentCache", "DEFAULT_SEGMENT_CACHE_BYTES"]

#: default byte budget for cached segments (generous for CI-sized graphs,
#: small next to a production host's shared-memory allowance)
DEFAULT_SEGMENT_CACHE_BYTES = 256 << 20


class _Entry:
    __slots__ = ("key", "structure_key", "group", "spec", "nbytes")

    def __init__(self, key, structure_key, group, spec, nbytes) -> None:
        self.key = key
        self.structure_key = structure_key
        self.group = group
        self.spec = spec
        self.nbytes = int(nbytes)


class SegmentCache:
    """Fingerprint-keyed cache of published CSR operand segments."""

    def __init__(self, *, max_bytes: int = DEFAULT_SEGMENT_CACHE_BYTES) -> None:
        if not _shm.HAVE_SHARED_MEMORY:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        #: structure_key -> full key of the entry currently published for it
        self._by_structure: Dict[tuple, tuple] = {}
        self._pinned: Set[tuple] = set()
        self._total_bytes = 0
        # reuse telemetry (read by ExecutionSession.stats / OpCounter charges)
        self.segments_reused = 0
        self.segments_published = 0
        self.values_republished = 0
        self.bytes_published = 0
        self.bytes_republished = 0

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    def stats(self) -> dict:
        return {
            "segments_reused": self.segments_reused,
            "segments_published": self.segments_published,
            "values_republished": self.values_republished,
            "bytes_published": self.bytes_published,
            "bytes_republished": self.bytes_republished,
            "cached_entries": len(self._entries),
            "cached_bytes": self._total_bytes,
        }

    # -- call pinning --------------------------------------------------
    def begin_call(self) -> None:
        """Start a publish batch: entries touched from here on are pinned
        against eviction until :meth:`end_call`."""
        self._pinned.clear()

    def end_call(self) -> None:
        """Release the in-flight call's eviction pins."""
        self._pinned.clear()

    # -- publishing ----------------------------------------------------
    def publish_csr(self, mat: CSR, fp) -> _shm.CSRSegments:
        """Segments for ``mat``, served from cache when the fingerprint
        (an :class:`~repro.engine.session.Fingerprint`) matches."""
        return self._publish(("csr",) + fp.key,
                             ("csr",) + fp.structure_key, mat)

    def publish_csc(self, base_fp, csc: CSC) -> _shm.CSRSegments:
        """Segments for a derived CSC, keyed by the *base* CSR operand's
        fingerprint (the transpose is a pure function of it)."""
        return self._publish(("csc",) + base_fp.key,
                             ("csc",) + base_fp.structure_key,
                             csc.to_transposed_csr())

    def _publish(self, full_key: tuple, struct_key: tuple,
                 mat: CSR) -> _shm.CSRSegments:
        ent = self._entries.get(full_key)
        if ent is not None:
            self._entries.move_to_end(full_key)
            self._pinned.add(full_key)
            self.segments_reused += 1
            return ent.spec

        old_key = self._by_structure.get(struct_key)
        # A pinned entry was already served to the in-flight call: workers
        # will read it, so it can neither be rewritten in place (a second
        # operand sharing the structure — mask = a.pattern() — would clobber
        # the first operand's values) nor dropped.  Publish fresh instead.
        if old_key is not None and old_key not in self._pinned:
            ent = self._entries.get(old_key)
            if (
                ent is not None
                and ent.spec.data.dtype == np.ascontiguousarray(mat.data).dtype.str
                and ent.spec.data.length == int(mat.data.size)
            ):
                # values-only change: rewrite the data segment in place
                _shm.rewrite_array(ent.spec.data, mat.data)
                del self._entries[old_key]
                ent.key = full_key
                self._entries[full_key] = ent
                self._by_structure[struct_key] = full_key
                self._pinned.discard(old_key)
                self._pinned.add(full_key)
                self.values_republished += 1
                self.bytes_republished += int(mat.data.nbytes)
                return ent.spec
            if ent is not None:
                # same structure but incompatible value storage: drop it
                self._drop(old_key)

        group = _shm.SegmentGroup()
        spec = group.publish_csr(mat)
        nbytes = sum(s.nbytes for s in (spec.indptr, spec.indices, spec.data))
        ent = _Entry(full_key, struct_key, group, spec, nbytes)
        self._entries[full_key] = ent
        self._by_structure[struct_key] = full_key
        self._total_bytes += ent.nbytes
        self._pinned.add(full_key)
        self.segments_published += 1
        self.bytes_published += ent.nbytes
        self._evict()
        return spec

    # -- lifecycle -----------------------------------------------------
    def _drop(self, key: tuple) -> None:
        ent = self._entries.pop(key, None)
        if ent is None:
            return
        if self._by_structure.get(ent.structure_key) == key:
            del self._by_structure[ent.structure_key]
        self._pinned.discard(key)
        self._total_bytes -= ent.nbytes
        ent.group.close()

    def _evict(self) -> None:
        """Evict LRU unpinned entries until the byte budget holds."""
        while self._total_bytes > self.max_bytes:
            victim: Optional[tuple] = None
            for key in self._entries:  # OrderedDict: LRU first
                if key not in self._pinned:
                    victim = key
                    break
            if victim is None:
                break  # everything live belongs to the in-flight call
            self._drop(victim)

    def close(self) -> None:
        """Unlink every cached segment (idempotent)."""
        for key in list(self._entries):
            self._drop(key)
        self._pinned.clear()

    def __enter__(self) -> "SegmentCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
