"""Cross-call registry of shared-memory operand segments.

The process backend publishes every CSR operand into named POSIX
shared-memory segments (:mod:`repro.parallel.shm`).  Without a session
that publication is per call: iterative apps republish an unchanged
adjacency every round.  A :class:`SegmentCache` — owned by an
:class:`~repro.engine.ExecutionSession` — keeps published segments alive
across calls, keyed by operand *content fingerprint*:

* **full hit** (same structure digest, same values digest) — the cached
  :class:`~repro.parallel.shm.CSRSegments` spec is returned untouched.
  Because keys are content-based, this also dedupes *within* a call: in
  triangle counting and k-truss A, B and M are the same matrix and
  publish once instead of three times.
* **values-only hit** (same structure digest, different values digest) —
  only the ``data`` segment is rewritten in place
  (:func:`~repro.parallel.shm.rewrite_array`); workers' cached ``mmap``
  attachments observe the new bytes under the old segment name.
* **miss** — a fresh :class:`~repro.parallel.shm.SegmentGroup` publishes
  the operand; the least-recently-used unpinned entries are evicted when
  the byte budget overflows (eviction closes + unlinks the entry's group).

Derived operands (the CSC transpose the inner-product kernel wants) are
cached under the *base* operand's fingerprint, so a constant ``B`` keeps
its transpose segments alive too.  The sharded execution path
(:mod:`repro.parallel.shards`) publishes *per-shard* DCSR segments under
each shard's **own** content digest — not the parent operand's
fingerprint — so reuse survives the parent changing: when an iterative
app prunes a few edges (k-truss), every row block and mask cell whose
bytes are untouched is still served from the cache, and a values-only
change to a shard rewrites just its data segment in place (with a fresh
content token, so workers drop stale derived forms).  Content keys also
dedupe within a call: in triangle counting A and M are the same matrix,
so a mask cell that equals an A row block publishes once.

Entries touched since :meth:`SegmentCache.begin_call` are pinned — a
pinned segment is never evicted, rewritten in place, or dropped while the
in-flight call references it, so a later operand of the *same* call that
shares a structure digest but carries different values (``mask =
a.pattern()`` in the same product) publishes fresh segments instead of
clobbering the earlier operand's data.  :meth:`SegmentCache.close` releases everything;
after it, :func:`repro.parallel.shm.active_segments` no longer lists any
segment this cache owned.
"""

from __future__ import annotations

import dataclasses
import hashlib
import weakref
from collections import OrderedDict
from typing import Dict, Optional, Set

import numpy as np

from ..sparse import CSC, CSR
from ..sparse.dcsr import DCSR
from . import shm as _shm

__all__ = ["SegmentCache", "DEFAULT_SEGMENT_CACHE_BYTES", "live_cache_stats"]

#: every live cache, weakly held — the runtime sampler's occupancy gauges
#: aggregate over whatever sessions currently exist without keeping any
#: of them (or their segments) alive
_LIVE_CACHES: "weakref.WeakSet[SegmentCache]" = weakref.WeakSet()


def live_cache_stats() -> dict:
    """Occupancy aggregated over all live :class:`SegmentCache` instances.

    What the :class:`~repro.observe.runtime.RuntimeSampler` samples — a
    process may hold several sessions (apps open their own), and the
    sampler wants the sum, not one cache's view.
    """
    totals = {"caches": 0, "cached_entries": 0, "cached_bytes": 0,
              "segments_reused": 0, "segments_published": 0}
    for cache in list(_LIVE_CACHES):
        totals["caches"] += 1
        totals["cached_entries"] += len(cache._entries)
        totals["cached_bytes"] += cache._total_bytes
        totals["segments_reused"] += cache.segments_reused
        totals["segments_published"] += cache.segments_published
    return totals

#: default byte budget for cached segments (generous for CI-sized graphs,
#: small next to a production host's shared-memory allowance)
DEFAULT_SEGMENT_CACHE_BYTES = 256 << 20


def _content_token(full_key: tuple) -> str:
    """Stable short content address for a published shard.

    Full keys embed the shard's structure and value digests, so equal
    keys mean equal bytes — hashing the key is as good as re-hashing the
    shard arrays.
    """
    return "t" + hashlib.blake2b(repr(full_key).encode(), digest_size=8).hexdigest()


def _shard_digests(shard: DCSR) -> tuple:
    """(structure, values) content digests of one DCSR shard.

    One linear pass over the shard's arrays — the same discipline
    :func:`~repro.engine.session.fingerprint_csr` applies to whole
    operands, at shard granularity so reuse survives the parent changing.
    """
    hs = hashlib.blake2b(digest_size=16)
    hs.update(f"{shard.shape[0]}x{shard.shape[1]}".encode())
    for arr in (shard.rows, shard.indptr, shard.indices):
        hs.update(memoryview(np.ascontiguousarray(arr)))
    hv = hashlib.blake2b(digest_size=16)
    hv.update(shard.data.dtype.str.encode())
    hv.update(memoryview(np.ascontiguousarray(shard.data)))
    return hs.hexdigest(), hv.hexdigest()


def _spec_nbytes(spec) -> int:
    """Published bytes of a CSRSegments or DCSRSegments spec."""
    parts = [spec.indptr, spec.indices, spec.data]
    rows = getattr(spec, "rows", None)
    if rows is not None:
        parts.append(rows)
    return sum(s.nbytes for s in parts)


class _Entry:
    __slots__ = ("key", "structure_key", "group", "spec", "nbytes")

    def __init__(self, key, structure_key, group, spec, nbytes) -> None:
        self.key = key
        self.structure_key = structure_key
        self.group = group
        self.spec = spec
        self.nbytes = int(nbytes)


class SegmentCache:
    """Fingerprint-keyed cache of published CSR operand segments."""

    def __init__(self, *, max_bytes: int = DEFAULT_SEGMENT_CACHE_BYTES) -> None:
        if not _shm.HAVE_SHARED_MEMORY:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        #: structure_key -> full key of the entry currently published for it
        self._by_structure: Dict[tuple, tuple] = {}
        self._pinned: Set[tuple] = set()
        self._total_bytes = 0
        # reuse telemetry (read by ExecutionSession.stats / OpCounter charges)
        self.segments_reused = 0
        self.segments_published = 0
        self.values_republished = 0
        self.bytes_published = 0
        self.bytes_republished = 0
        _LIVE_CACHES.add(self)

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    def stats(self) -> dict:
        return {
            "segments_reused": self.segments_reused,
            "segments_published": self.segments_published,
            "values_republished": self.values_republished,
            "bytes_published": self.bytes_published,
            "bytes_republished": self.bytes_republished,
            "cached_entries": len(self._entries),
            "cached_bytes": self._total_bytes,
        }

    # -- call pinning --------------------------------------------------
    def begin_call(self) -> None:
        """Start a publish batch: entries touched from here on are pinned
        against eviction until :meth:`end_call`."""
        self._pinned.clear()

    def end_call(self) -> None:
        """Release the in-flight call's eviction pins."""
        self._pinned.clear()

    # -- publishing ----------------------------------------------------
    def publish_csr(self, mat: CSR, fp) -> _shm.CSRSegments:
        """Segments for ``mat``, served from cache when the fingerprint
        (an :class:`~repro.engine.session.Fingerprint`) matches."""
        full_key = ("csr",) + fp.key
        return self._publish(full_key, ("csr",) + fp.structure_key, mat,
                             lambda group: group.publish_csr(mat))

    def publish_csc(self, base_fp, csc: CSC) -> _shm.CSRSegments:
        """Segments for a derived CSC, keyed by the *base* CSR operand's
        fingerprint (the transpose is a pure function of it)."""
        t = csc.to_transposed_csr()
        return self._publish(("csc",) + base_fp.key,
                             ("csc",) + base_fp.structure_key, t,
                             lambda group: group.publish_csr(t))

    def publish_dcsr(self, shard: DCSR) -> _shm.DCSRSegments:
        """Segments for a DCSR shard, keyed by the shard's own content.

        Per-shard content addressing is what lets iterative apps keep
        their reuse when the *parent* operand changes: a k-truss round
        that prunes a handful of edges invalidates only the row blocks
        and mask cells those edges lived in, and every other shard is a
        full-key hit.  The spec's content ``token`` is derived from the
        full key and refreshed on a values-only rewrite, so workers'
        caches of derived forms can never serve stale conversions.
        """
        sdig, vdig = _shard_digests(shard)
        full_key = ("dcsr", shard.shape, sdig, vdig)
        struct_key = ("dcsr", shard.shape, sdig)
        token = _content_token(full_key)
        return self._publish(
            full_key, struct_key, shard,
            lambda group: group.publish_dcsr(shard, token=token),
            retoken=token,
        )

    def _publish(self, full_key: tuple, struct_key: tuple, mat,
                 publish_fn, retoken: Optional[str] = None):
        ent = self._entries.get(full_key)
        if ent is not None:
            self._entries.move_to_end(full_key)
            self._pinned.add(full_key)
            self.segments_reused += 1
            return ent.spec

        old_key = self._by_structure.get(struct_key)
        # A pinned entry was already served to the in-flight call: workers
        # will read it, so it can neither be rewritten in place (a second
        # operand sharing the structure — mask = a.pattern() — would clobber
        # the first operand's values) nor dropped.  Publish fresh instead.
        if old_key is not None and old_key not in self._pinned:
            ent = self._entries.get(old_key)
            if (
                ent is not None
                and ent.spec.data.dtype == np.ascontiguousarray(mat.data).dtype.str
                and ent.spec.data.length == int(mat.data.size)
            ):
                # values-only change: rewrite the data segment in place
                _shm.rewrite_array(ent.spec.data, mat.data)
                if retoken is not None:
                    ent.spec = dataclasses.replace(ent.spec, token=retoken)
                del self._entries[old_key]
                ent.key = full_key
                self._entries[full_key] = ent
                self._by_structure[struct_key] = full_key
                self._pinned.discard(old_key)
                self._pinned.add(full_key)
                self.values_republished += 1
                self.bytes_republished += int(mat.data.nbytes)
                return ent.spec
            if ent is not None:
                # same structure but incompatible value storage: drop it
                self._drop(old_key)

        group = _shm.SegmentGroup()
        spec = publish_fn(group)
        ent = _Entry(full_key, struct_key, group, spec, _spec_nbytes(spec))
        self._entries[full_key] = ent
        self._by_structure[struct_key] = full_key
        self._total_bytes += ent.nbytes
        self._pinned.add(full_key)
        self.segments_published += 1
        self.bytes_published += ent.nbytes
        self._evict()
        return spec

    # -- lifecycle -----------------------------------------------------
    def _drop(self, key: tuple) -> None:
        ent = self._entries.pop(key, None)
        if ent is None:
            return
        if self._by_structure.get(ent.structure_key) == key:
            del self._by_structure[ent.structure_key]
        self._pinned.discard(key)
        self._total_bytes -= ent.nbytes
        ent.group.close()

    def _evict(self) -> None:
        """Evict LRU unpinned entries until the byte budget holds."""
        while self._total_bytes > self.max_bytes:
            victim: Optional[tuple] = None
            for key in self._entries:  # OrderedDict: LRU first
                if key not in self._pinned:
                    victim = key
                    break
            if victim is None:
                break  # everything live belongs to the in-flight call
            self._drop(victim)

    def close(self) -> None:
        """Unlink every cached segment (idempotent)."""
        for key in list(self._entries):
            self._drop(key)
        self._pinned.clear()

    def __enter__(self) -> "SegmentCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
