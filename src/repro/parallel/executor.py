"""Row-parallel masked SpGEMM execution primitives.

This module provides the low-level partitioned runner the execution engine
(:mod:`repro.engine`) uses for any plan with ``threads > 1``: output rows
are partitioned across workers, each worker runs the planned kernel on its
row slice, and the per-partition results — matrices *and* operation
counters — are merged.  Patterns are disjoint by construction, so the
matrix merge is a concatenation, and counter merging makes a parallel run
report exactly the flops a serial run would.

:func:`parallel_masked_spgemm` remains as the historical front door; it now
builds a forced :class:`~repro.engine.ExecutionPlan` and hands it to the
engine, so every execution path is planned and inspectable.  It matches the
paper's coarse-grained row parallelism; within-row parallelism is
deliberately absent, as in the paper.

Caveat documented in DESIGN.md: under CPython's GIL the thread backend
yields limited real speedup (NumPy releases the GIL inside large kernels, so
some overlap does occur for the fast kernels); the backend exists to make
the parallel decomposition real, deterministic and testable, while the
*scaling claims* are reproduced by :mod:`repro.machine.scheduler` from
per-row work profiles.  ``backend="serial"`` runs the same partitioned code
path without threads.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from ..machine import OpCounter
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import CSC, CSR
from ..core.masked_spgemm import masked_spgemm

__all__ = ["parallel_masked_spgemm", "run_partitioned", "row_slice"]


def row_slice(mat: CSR, rows: np.ndarray) -> CSR:
    """CSR holding only the given rows (shape preserved, other rows empty).

    When ``rows`` is a contiguous ascending range this is a cheap O(nrows)
    slice of the index structure (no COO round trip; ``indices``/``data``
    are views into the parent).  Scattered row sets fall back to
    :meth:`CSR.select_rows`.
    """
    rows = np.asarray(rows)
    contiguous = (
        rows.size > 0
        and int(rows[-1]) - int(rows[0]) + 1 == rows.size
        and bool(np.all(np.diff(rows) >= 1))
    )
    if not contiguous:
        return mat.select_rows(rows)
    lo, hi = int(rows[0]), int(rows[-1]) + 1
    start, stop = int(mat.indptr[lo]), int(mat.indptr[hi])
    indptr = np.empty(mat.nrows + 1, dtype=mat.indptr.dtype)
    indptr[: lo + 1] = 0
    indptr[lo : hi + 1] = mat.indptr[lo : hi + 1] - start
    indptr[hi:] = stop - start
    return CSR(
        mat.shape,
        indptr,
        mat.indices[start:stop],
        mat.data[start:stop],
        sorted_indices=mat.sorted_indices,
        check=False,
    )


def _merge(
    parts: List[CSR],
    shape,
    *,
    counters: Optional[Sequence[OpCounter]] = None,
    counter: Optional[OpCounter] = None,
) -> CSR:
    """Concatenate disjoint per-partition results and fold the workers'
    per-partition ``OpCounter``s into the caller's counter, so parallel
    runs report the same operation totals as serial runs."""
    if counter is not None and counters is not None:
        for c in counters:
            counter.merge(c)
    rows = []
    cols = []
    vals = []
    for p in parts:
        r, c, v = p.to_coo()
        rows.append(r)
        cols.append(c)
        vals.append(v)
    if not rows:
        return CSR.empty(shape)
    return CSR.from_coo(
        shape, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def run_partitioned(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    algo: str,
    parts: Sequence[np.ndarray],
    phases: int = 1,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    impl: str = "auto",
    backend: str = "threads",
    counter: Optional[OpCounter] = None,
    b_csc: Optional[CSC] = None,
) -> CSR:
    """Execute one algorithm over an explicit row partition.

    The engine's workhorse for parallel plan bands: every partition runs
    under its own :class:`OpCounter` (workers never share mutable state)
    and :func:`_merge` folds them into ``counter`` at the end.
    """
    if backend not in ("threads", "serial"):
        raise ValueError("backend must be 'threads' or 'serial'")
    if b_csc is None and algo.lower() == "inner":
        b_csc = CSC.from_csr(b)
    counters = [OpCounter() for _ in parts]

    def work(idx: int) -> CSR:
        rows = parts[idx]
        if np.asarray(rows).size == 0:
            return CSR.empty((a.nrows, b.ncols))
        return masked_spgemm(
            row_slice(a, rows),
            b,
            row_slice(mask, rows),
            algo=algo,
            phases=phases,
            complement=complement,
            semiring=semiring,
            impl=impl,
            counter=counters[idx],
            b_csc=b_csc,
        )

    if backend == "serial" or len(parts) == 1:
        results = [work(i) for i in range(len(parts))]
    else:
        with ThreadPoolExecutor(max_workers=len(parts)) as pool:
            results = list(pool.map(work, range(len(parts))))

    return _merge(
        results, (a.nrows, b.ncols), counters=counters, counter=counter
    )


def parallel_masked_spgemm(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    algo: str = "msa",
    threads: int = 4,
    partition: str = "balanced",
    phases: int = 1,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    impl: str = "auto",
    backend: str = "threads",
    counter: Optional[OpCounter] = None,
) -> CSR:
    """Masked SpGEMM with row-parallel execution.

    ``partition``: ``"block"``, ``"cyclic"`` or ``"balanced"`` (flops-
    weighted contiguous blocks).  ``backend``: ``"threads"`` or ``"serial"``.
    ``algo="auto"`` lets the cost-model planner choose the algorithm (the
    thread count and partition stay as forced here).

    This is now a thin front over :mod:`repro.engine`: it builds a plan with
    the given knobs forced and executes it.
    """
    if threads <= 0:
        raise ValueError("threads must be positive")
    if backend not in ("threads", "serial"):
        raise ValueError("backend must be 'threads' or 'serial'")
    if partition not in ("block", "cyclic", "balanced"):
        raise ValueError("partition must be 'block', 'cyclic' or 'balanced'")

    from ..engine import Planner, execute

    pl = Planner().plan(
        a,
        b,
        mask,
        algo=None if algo.lower() == "auto" else algo,
        phases=phases,
        complement=complement,
        threads=min(threads, max(1, a.nrows)),
        partition=partition,
    )
    return execute(
        pl, a, b, mask,
        semiring=semiring, impl=impl, counter=counter, backend=backend,
    )
