"""Row-parallel masked SpGEMM driver.

Executes ``C = M .* (A @ B)`` by partitioning output rows across workers and
merging the per-partition results (patterns are disjoint by construction, so
the merge is a concatenation).  Matches the paper's coarse-grained row
parallelism; within-row parallelism is deliberately absent, as in the paper.

Caveat documented in DESIGN.md: under CPython's GIL the thread backend
yields limited real speedup (NumPy releases the GIL inside large kernels, so
some overlap does occur for the fast kernels); the backend exists to make
the parallel decomposition real, deterministic and testable, while the
*scaling claims* are reproduced by :mod:`repro.machine.scheduler` from
per-row work profiles.  ``backend="serial"`` runs the same partitioned code
path without threads.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

import numpy as np

from ..machine import OpCounter
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import CSC, CSR
from ..core.masked_spgemm import masked_spgemm
from .partition import balanced_partition, block_partition, cyclic_partition

__all__ = ["parallel_masked_spgemm", "row_slice"]


def row_slice(mat: CSR, rows: np.ndarray) -> CSR:
    """CSR holding only the given rows (shape preserved, other rows empty).
    Unlike ``select_rows`` this is a cheap contiguous slice when ``rows``
    is a contiguous range."""
    return mat.select_rows(rows)


def _merge(parts: List[CSR], shape) -> CSR:
    rows = []
    cols = []
    vals = []
    for p in parts:
        r, c, v = p.to_coo()
        rows.append(r)
        cols.append(c)
        vals.append(v)
    if not rows:
        return CSR.empty(shape)
    return CSR.from_coo(
        shape, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def parallel_masked_spgemm(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    algo: str = "msa",
    threads: int = 4,
    partition: str = "balanced",
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    impl: str = "auto",
    backend: str = "threads",
    counter: Optional[OpCounter] = None,
) -> CSR:
    """Masked SpGEMM with row-parallel execution.

    ``partition``: ``"block"``, ``"cyclic"`` or ``"balanced"`` (flops-
    weighted contiguous blocks).  ``backend``: ``"threads"`` or ``"serial"``.
    """
    if threads <= 0:
        raise ValueError("threads must be positive")
    if backend not in ("threads", "serial"):
        raise ValueError("backend must be 'threads' or 'serial'")
    n_parts = min(threads, max(1, a.nrows))
    if partition == "block":
        parts = block_partition(a.nrows, n_parts)
    elif partition == "cyclic":
        parts = cyclic_partition(a.nrows, n_parts)
    elif partition == "balanced":
        from ..machine import flops_per_row

        parts = balanced_partition(flops_per_row(a, b), n_parts)
    else:
        raise ValueError("partition must be 'block', 'cyclic' or 'balanced'")

    b_csc = CSC.from_csr(b) if algo.lower() == "inner" else None
    counters = [OpCounter() for _ in parts]

    def work(idx: int) -> CSR:
        rows = parts[idx]
        if rows.size == 0:
            return CSR.empty((a.nrows, b.ncols))
        return masked_spgemm(
            row_slice(a, rows),
            b,
            row_slice(mask, rows),
            algo=algo,
            complement=complement,
            semiring=semiring,
            impl=impl,
            counter=counters[idx],
            b_csc=b_csc,
        )

    if backend == "serial" or n_parts == 1:
        results = [work(i) for i in range(len(parts))]
    else:
        with ThreadPoolExecutor(max_workers=n_parts) as pool:
            results = list(pool.map(work, range(len(parts))))

    if counter is not None:
        for c in counters:
            counter.merge(c)
    return _merge(results, (a.nrows, b.ncols))
