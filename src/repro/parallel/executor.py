"""Row-parallel masked SpGEMM execution primitives.

This module provides the low-level partitioned runner the execution engine
(:mod:`repro.engine`) uses for any plan with ``threads > 1``: output rows
are partitioned across workers, each worker runs the planned kernel on its
row slice, and the per-partition results — matrices *and* operation
counters — are merged.  Patterns are disjoint by construction, so the
matrix merge is a concatenation, and counter merging makes a parallel run
report exactly the flops a serial run would.

Three backends run the same partitioned decomposition:

* ``"serial"`` — partitions run one after another in the caller's thread
  (deterministic baseline; also what ``threads=1`` degenerates to);
* ``"thread"`` — a ``ThreadPoolExecutor``; under CPython's GIL this yields
  limited real speedup (NumPy releases the GIL inside large kernels, so
  some overlap occurs), but it is cheap to enter and shares operands for
  free;
* ``"process"`` — the shared-memory multiprocess backend: operands are
  published once into named shared segments (:mod:`repro.parallel.shm`),
  workers in a persistent pool (:mod:`repro.parallel.pool`) attach them as
  zero-copy views, and per-partition COO results come back by pickle.
  This is the backend that actually scales on multicore hosts.

All three produce bit-for-bit identical matrices and identical merged
``OpCounter`` totals; ``tests/test_backends.py`` enforces it.

:func:`parallel_masked_spgemm` remains as the historical front door; it
builds a forced :class:`~repro.engine.ExecutionPlan` and hands it to the
engine, so every execution path is planned and inspectable.  It matches the
paper's coarse-grained row parallelism; within-row parallelism is
deliberately absent, as in the paper.
"""

from __future__ import annotations

import logging
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..machine import OpCounter
from ..observe import probes as _probes
from ..observe import runtime as _runtime
from ..observe import tracer as _obs
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import CSC, CSR
from ..core.masked_spgemm import masked_spgemm

__all__ = [
    "parallel_masked_spgemm",
    "run_partitioned",
    "row_slice",
    "row_block",
    "normalize_backend",
    "BACKENDS",
]

#: canonical backend names (aliases: "threads" -> "thread")
BACKENDS = ("serial", "thread", "process")

_log = logging.getLogger("repro.parallel")


def normalize_backend(backend: str) -> str:
    """Map aliases to canonical backend names; raise on unknown ones."""
    key = str(backend).lower()
    if key == "threads":  # historical spelling
        key = "thread"
    if key not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS} (or 'threads'), got {backend!r}"
        )
    return key


def _contiguous_range(rows: np.ndarray) -> Optional[Tuple[int, int]]:
    """``(lo, hi)`` when ``rows`` is a contiguous ascending range, else None."""
    if rows.size == 0:
        return None
    lo, hi = int(rows[0]), int(rows[-1]) + 1
    if hi - lo == rows.size and bool(np.all(np.diff(rows) >= 1)):
        return lo, hi
    return None


def row_slice(mat: CSR, rows: np.ndarray) -> CSR:
    """CSR holding only the given rows (shape preserved, other rows empty).

    When ``rows`` is a contiguous ascending range this is a cheap slice of
    the index structure: the full-range case returns ``mat`` itself (no
    allocation at all), and a proper sub-range builds its ``indptr`` from a
    calloc'd zeros array touching only ``[lo, hi]`` plus the tail —
    ``indices``/``data`` stay views into the parent.  Scattered row sets
    fall back to :meth:`CSR.select_rows`.

    For partitioned execution prefer :func:`row_block`, which drops the
    empty frame entirely instead of carrying an ``nrows+1`` pointer array
    per partition.
    """
    rows = np.asarray(rows)
    rng = _contiguous_range(rows)
    if rng is None:
        return mat.select_rows(rows)
    lo, hi = rng
    if lo == 0 and hi == mat.nrows:
        return mat  # the slice is the whole matrix; reuse it outright
    start, stop = int(mat.indptr[lo]), int(mat.indptr[hi])
    # calloc: the zero prefix costs no explicit fill
    indptr = np.zeros(mat.nrows + 1, dtype=mat.indptr.dtype)
    np.subtract(mat.indptr[lo : hi + 1], start, out=indptr[lo : hi + 1])
    if stop != start:
        indptr[hi + 1 :] = stop - start
    return CSR(
        mat.shape,
        indptr,
        mat.indices[start:stop],
        mat.data[start:stop],
        sorted_indices=mat.sorted_indices,
        check=False,
    )


def row_block(mat: CSR, lo: int, hi: int) -> CSR:
    """Compact CSR of rows ``[lo, hi)`` — shape ``(hi - lo, ncols)``.

    Unlike :func:`row_slice` this does not preserve the row frame, so a
    partition's slice costs ``O(hi - lo)`` instead of ``O(nrows)`` — across
    ``p`` partitions the pointer work totals ``O(nrows)`` rather than
    ``O(nrows * p)``.  ``indices``/``data`` are views into the parent; the
    caller re-offsets output row ids by ``lo`` when merging.
    """
    start, stop = int(mat.indptr[lo]), int(mat.indptr[hi])
    return CSR(
        (hi - lo, mat.ncols),
        mat.indptr[lo : hi + 1] - start,
        mat.indices[start:stop],
        mat.data[start:stop],
        sorted_indices=mat.sorted_indices,
        check=False,
    )


def _merge_triples(
    triples: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    shape,
    *,
    counters: Optional[Sequence[OpCounter]] = None,
    counter: Optional[OpCounter] = None,
) -> CSR:
    """Concatenate disjoint per-partition COO results (already in global row
    coordinates) and fold the workers' per-partition ``OpCounter``s into the
    caller's counter, so parallel runs report the same operation totals as
    serial runs."""
    if counter is not None and counters is not None:
        for c in counters:
            counter.merge(c)
    if not triples:
        return CSR.empty(shape)
    rows, cols, vals = zip(*triples)
    return CSR.from_coo(
        shape, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def run_partitioned(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    algo: str,
    parts: Sequence[np.ndarray],
    phases: int = 1,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    impl: str = "auto",
    backend: str = "thread",
    counter: Optional[OpCounter] = None,
    b_csc: Optional[CSC] = None,
    batch: str = "auto",
    session=None,
) -> CSR:
    """Execute one algorithm over an explicit row partition.

    The engine's workhorse for parallel plan bands: every partition runs
    under its own :class:`OpCounter` (workers never share mutable state)
    and :func:`_merge_triples` folds them into ``counter`` at the end.
    Contiguous partitions are sliced with :func:`row_block` (compact, no
    per-partition ``nrows+1`` pointer array); scattered ones fall back to
    shape-preserving :func:`row_slice`.

    ``session`` (an :class:`~repro.engine.ExecutionSession`) makes the
    process backend serve operand segments from the session's cross-call
    registry instead of publishing/unlinking per call, and amortises the
    inner-product CSC build.
    """
    backend = normalize_backend(backend)
    if session is not None and not session.caching:
        session = None
    if b_csc is None and algo.lower() == "inner":
        b_csc = session.csc_of(b) if session is not None else CSC.from_csr(b)
    shape = (a.nrows, b.ncols)

    if backend == "process" and len(parts) > 1:
        result = _run_partitioned_process(
            a, b, mask,
            algo=algo, parts=parts, phases=phases, complement=complement,
            semiring=semiring, impl=impl, counter=counter, b_csc=b_csc,
            batch=batch, session=session,
        )
        if result is not None:
            return result
        # untransferable semiring or missing platform support: degrade
        # gracefully, but never silently — the backend switch changes the
        # run's performance characteristics
        _log.warning(
            "process backend fell back to thread for semiring %r "
            "(untransferable or platform unsupported)", semiring.name,
        )
        backend = "thread"

    counters = [OpCounter() for _ in parts]

    def work(idx: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        rows = np.asarray(parts[idx])
        tr = _obs.current()
        part_cm = (
            tr.span(
                "parallel.partition",
                {"partition": idx, "backend": backend, "algo": algo,
                 "rows": int(rows.size)},
                counter=counters[idx],
            )
            if tr is not None else _obs.NULL_SPAN
        )
        with part_cm:
            if rows.size == 0:
                e = np.empty(0, dtype=np.int64)
                return e, e, np.empty(0, dtype=np.float64)
            rng = _contiguous_range(rows)
            if rng is not None:
                lo, hi = rng
                a_s, m_s, offset = row_block(a, lo, hi), row_block(mask, lo, hi), lo
            else:
                a_s, m_s, offset = row_slice(a, rows), row_slice(mask, rows), 0
            c = masked_spgemm(
                a_s,
                b,
                m_s,
                algo=algo,
                phases=phases,
                complement=complement,
                semiring=semiring,
                impl=impl,
                counter=counters[idx],
                b_csc=b_csc,
                batch=batch,
            )
            r, cc, v = c.to_coo()
            return (r + offset if offset else r), cc, v

    if backend == "serial" or len(parts) == 1:
        triples = [work(i) for i in range(len(parts))]
    else:
        with ThreadPoolExecutor(max_workers=len(parts)) as pool:
            triples = list(pool.map(work, range(len(parts))))

    return _merge_triples(triples, shape, counters=counters, counter=counter)


def _run_partitioned_process(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    algo: str,
    parts: Sequence[np.ndarray],
    phases: int,
    complement: bool,
    semiring: Semiring,
    impl: str,
    counter: Optional[OpCounter],
    b_csc: Optional[CSC],
    batch: str = "auto",
    session=None,
) -> Optional[CSR]:
    """The shared-memory process backend; ``None`` means "fall back to
    threads" (untransferable semiring or missing platform support).

    With a ``session``, operand segments come from the session's
    :class:`~repro.parallel.segment_cache.SegmentCache`: unchanged
    operands (by content fingerprint) are *reused*, values-only changes
    are rewritten in place, and nothing is unlinked at call end — the
    session owns the lifecycle.  Sessionless calls keep the historical
    publish-use-unlink cycle.
    """
    from . import pool as _pool
    from . import shm as _shm

    if not _pool.process_backend_available():
        return None
    token = _pool.encode_semiring(semiring)
    if token is None:
        return None
    tracer = _obs.current()
    probes = _probes.current()

    cache = session.segment_cache if session is not None else None
    group = None
    if cache is not None:
        cache.begin_call()
        seg_before = (cache.segments_reused, cache.bytes_republished)
    else:
        group = _shm.SegmentGroup()
    try:
        if cache is not None:
            a_spec = cache.publish_csr(a, session.fingerprint(a))
            # content keys dedupe identical operands (TC/k-truss publish once)
            b_spec = cache.publish_csr(b, session.fingerprint(b))
            m_spec = cache.publish_csr(mask, session.fingerprint(mask))
            csc_spec = (
                cache.publish_csc(session.fingerprint(b), b_csc)
                if b_csc is not None and algo.lower() == "inner"
                else None
            )
        else:
            a_spec = group.publish_csr(a)
            b_spec = group.publish_csr(b)
            m_spec = group.publish_csr(mask)
            csc_spec = (
                group.publish_csc(b_csc)
                if b_csc is not None and algo.lower() == "inner"
                else None
            )
        tasks = []
        for rows in parts:
            rows = np.asarray(rows, dtype=np.int64)
            rng = _contiguous_range(rows)
            rows_desc = ("range", rng[0], rng[1]) if rng else ("rows", rows)
            if rows.size == 0:
                rows_desc = ("range", 0, 0)
            tasks.append(
                _pool.PartitionTask(
                    a=a_spec,
                    b=b_spec,
                    mask=m_spec,
                    b_csc=csc_spec,
                    rows=rows_desc,
                    algo=algo,
                    phases=phases,
                    complement=complement,
                    impl=impl,
                    semiring=token,
                    trace=tracer is not None,
                    probe=probes is not None,
                    batch=batch,
                    heartbeat=_runtime.current() is not None,
                )
            )
        triples, counters, span_batches, probe_batches, heartbeats = (
            _pool.run_tasks(len(parts), tasks)
        )
    finally:
        if group is not None:
            group.close()
        else:
            cache.end_call()

    if cache is not None and counter is not None:
        counter.segments_reused += cache.segments_reused - seg_before[0]
        counter.bytes_republished += cache.bytes_republished - seg_before[1]

    if tracer is not None:
        # worker-side spans (partition + nested kernel spans) land on the
        # coordinator timeline with their worker pid/tid labels intact;
        # one ingest per task batch — ids are only unique within a batch
        for batch in span_batches:
            if batch:
                tracer.ingest(batch)
    if probes is not None:
        # histogram merges commute, so worker exports fold straight in
        for payload in probe_batches:
            if payload:
                probes.ingest(payload)
    sampler = _runtime.current()
    if sampler is not None:
        # worker heartbeats fold into the fleet-health series exactly like
        # span/probe batches fold into their registries
        sampler.ingest_heartbeats(heartbeats)
    return _merge_triples(
        triples, (a.nrows, b.ncols), counters=counters, counter=counter
    )


def parallel_masked_spgemm(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    algo: str = "msa",
    threads: int = 4,
    partition: str = "balanced",
    phases: int = 1,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    impl: str = "auto",
    backend: str = "thread",
    counter: Optional[OpCounter] = None,
    batch: Optional[str] = None,
) -> CSR:
    """Masked SpGEMM with row-parallel execution.

    ``partition``: ``"block"``, ``"cyclic"`` or ``"balanced"`` (flops-
    weighted contiguous blocks).  ``backend``: ``"serial"``, ``"thread"``
    (alias ``"threads"``), ``"process"`` (shared-memory worker pool), or
    ``"auto"`` to let the planner's cost heuristic choose.  ``algo="auto"``
    lets the cost-model planner choose the algorithm (the thread count and
    partition stay as forced here).  ``batch`` forces the kernels'
    batching tier (``"bucket"`` / ``"perrow"``, see ``docs/kernels.md``);
    ``None`` lets the machine's flop crossover decide per band.

    ``threads`` must be ``>= 1``; ``threads=1`` always takes the serial
    path directly — no pool of any kind is built.

    This is now a thin front over :mod:`repro.engine`: it builds a plan with
    the given knobs forced and executes it.
    """
    if threads < 1:
        raise ValueError("threads must be positive (>= 1)")
    forced_backend: Optional[str]
    if str(backend).lower() == "auto":
        forced_backend = None  # the planner's cost heuristic decides
    else:
        forced_backend = normalize_backend(backend)
    if partition not in ("block", "cyclic", "balanced"):
        raise ValueError("partition must be 'block', 'cyclic' or 'balanced'")
    if threads == 1:
        forced_backend = "serial"  # never build a pool for one worker

    from ..engine import Planner, execute

    pl = Planner().plan(
        a,
        b,
        mask,
        algo=None if algo.lower() == "auto" else algo,
        phases=phases,
        complement=complement,
        threads=min(threads, max(1, a.nrows)),
        partition=partition,
        backend=forced_backend,
        batch=batch,
    )
    return execute(
        pl, a, b, mask,
        semiring=semiring, impl=impl, counter=counter,
    )
