"""Row-parallel execution: partitioners and the partitioned runner the
execution engine (:mod:`repro.engine`) drives for plans with threads > 1."""

from .executor import parallel_masked_spgemm, row_slice, run_partitioned
from .partition import (
    balanced_partition,
    block_partition,
    chunk_schedule,
    cyclic_partition,
)

__all__ = [
    "parallel_masked_spgemm",
    "row_slice",
    "run_partitioned",
    "balanced_partition",
    "block_partition",
    "chunk_schedule",
    "cyclic_partition",
]
