"""Row-parallel execution: partitioners and the thread-pool driver."""

from .executor import parallel_masked_spgemm, row_slice
from .partition import (
    balanced_partition,
    block_partition,
    chunk_schedule,
    cyclic_partition,
)

__all__ = [
    "parallel_masked_spgemm",
    "row_slice",
    "balanced_partition",
    "block_partition",
    "chunk_schedule",
    "cyclic_partition",
]
