"""Row-parallel execution: partitioners, the partitioned runner the
execution engine (:mod:`repro.engine`) drives for plans with threads > 1,
the sharded runner (:mod:`repro.parallel.shards`) for plans carrying a
shard grid, and the shared-memory process backend (segment publication in
:mod:`repro.parallel.shm`, the persistent worker pool in
:mod:`repro.parallel.pool`)."""

from .executor import (
    BACKENDS,
    normalize_backend,
    parallel_masked_spgemm,
    row_block,
    row_slice,
    run_partitioned,
)
from .partition import (
    balanced_partition,
    block_partition,
    chunk_schedule,
    cyclic_partition,
)
from .pool import (
    pool_size,
    process_backend_available,
    process_pool,
    shutdown_pool,
)
from .segment_cache import SegmentCache
from .shards import mask_cells, run_sharded
from .shm import SegmentGroup, active_segments, attach_csr, attach_dcsr

__all__ = [
    "BACKENDS",
    "normalize_backend",
    "parallel_masked_spgemm",
    "row_block",
    "row_slice",
    "run_partitioned",
    "balanced_partition",
    "block_partition",
    "chunk_schedule",
    "cyclic_partition",
    "pool_size",
    "process_backend_available",
    "process_pool",
    "shutdown_pool",
    "SegmentCache",
    "SegmentGroup",
    "active_segments",
    "attach_csr",
    "attach_dcsr",
    "mask_cells",
    "run_sharded",
]
