"""Persistent process pool for the shared-memory execution backend.

Spawning workers is the dominant fixed cost of process parallelism in
Python (interpreter + NumPy import on ``spawn``; page-table copy on
``fork``).  The applications this library targets are *iterative* —
k-truss rounds, betweenness-centrality batches, Markov-clustering
expansions — so the pool is created once, kept warm, and reused by every
subsequent process-backend call; ``atexit`` (or an explicit
:func:`shutdown_pool` / the :func:`process_pool` context manager) tears it
down.

Task protocol: the parent publishes the CSR operands into shared memory
(:mod:`repro.parallel.shm`) and submits one :class:`PartitionTask` per row
partition.  A task carries only segment *addresses*, the partition's row
range, and scalar knobs — a few hundred bytes — while workers attach the
segments as zero-copy NumPy views.  Each worker runs the planned kernel
under its own :class:`~repro.machine.OpCounter` and returns its partial
output as COO triples plus the counter, which the caller merges exactly
like the thread backend, so results and counters are identical across
``serial`` / ``thread`` / ``process``.

Semirings cross the boundary by *name* for the standard registry
(:data:`repro.semiring.STANDARD_SEMIRINGS`) and by pickle otherwise;
semirings capturing unpicklable state make
:func:`encode_semiring` return ``None`` and the caller falls back to the
thread backend rather than failing.
"""

from __future__ import annotations

import atexit
import pickle
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import multiprocessing as mp

import numpy as np

from ..machine import OpCounter
from ..observe.tracer import NULL_SPAN as _NULL_CM
from ..semiring import STANDARD_SEMIRINGS, Semiring
from . import shm as _shm

__all__ = [
    "PartitionTask",
    "ShardTask",
    "get_pool",
    "shutdown_pool",
    "pool_size",
    "pool_pids",
    "pool_stats",
    "process_pool",
    "process_backend_available",
    "run_tasks",
    "encode_semiring",
    "decode_semiring",
]


def process_backend_available() -> bool:
    """Whether this platform can run the shared-memory process backend."""
    if not _shm.HAVE_SHARED_MEMORY:
        return False
    methods = mp.get_all_start_methods()
    return "fork" in methods or "spawn" in methods


def _context() -> mp.context.BaseContext:
    # fork is dramatically cheaper to bring up and inherits the importable
    # package state; spawn is the portable fallback.
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context("spawn")  # pragma: no cover - non-fork platforms


# ----------------------------------------------------------------------
# the singleton pool
# ----------------------------------------------------------------------
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
#: lifetime task counters (coordinator side) — the runtime sampler's
#: queue-depth series reads submitted - completed
_POOL_TASKS = {"submitted": 0, "completed": 0}


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent pool, grown (never shrunk) to at least ``workers``.

    Growing replaces the pool — a rare event once an application reaches
    its steady-state worker count; reuse is the common case and costs a
    dictionary read.
    """
    global _POOL, _POOL_WORKERS
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if _POOL is None or _POOL_WORKERS < workers:
        if _POOL is not None:
            _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = ProcessPoolExecutor(max_workers=workers, mp_context=_context())
        _POOL_WORKERS = workers
    return _POOL


def shutdown_pool() -> None:
    """Shut the persistent pool down (workers exit; attachments die with
    them).  Safe to call when no pool exists; the next process-backend
    call simply spawns a fresh one."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


def pool_size() -> int:
    """Current worker count of the persistent pool (0 = not running)."""
    return _POOL_WORKERS


def pool_pids() -> Tuple[int, ...]:
    """Pids of the live pool worker processes (empty when no pool runs).

    Workers spawn lazily, so right after :func:`get_pool` this may be
    shorter than :func:`pool_size`; after a dispatch it is the fleet the
    heartbeat series should cover.
    """
    if _POOL is None:
        return ()
    procs = getattr(_POOL, "_processes", None) or {}
    return tuple(sorted(pid for pid, p in list(procs.items()) if p.is_alive()))


def pool_stats() -> dict:
    """Coordinator-side pool gauges for samplers and ``metrics()``.

    ``tasks_inflight`` is submitted-minus-completed at this instant —
    the queue depth the runtime sampler's ring buffer tracks.
    """
    submitted = _POOL_TASKS["submitted"]
    completed = _POOL_TASKS["completed"]
    return {
        "size": _POOL_WORKERS,
        "pids": list(pool_pids()),
        "tasks_submitted": submitted,
        "tasks_completed": completed,
        "tasks_inflight": max(0, submitted - completed),
    }


@contextmanager
def process_pool(workers: int):
    """Context manager guaranteeing pool teardown on exit.

    For one-shot scripts; long-running applications should rely on the
    persistent pool + ``atexit`` instead and keep the spawn cost amortised.
    """
    try:
        yield get_pool(workers)
    finally:
        shutdown_pool()


# ----------------------------------------------------------------------
# semiring transfer
# ----------------------------------------------------------------------
def encode_semiring(semiring: Semiring):
    """Portable token for a semiring, or ``None`` if untransferable."""
    std = STANDARD_SEMIRINGS.get(semiring.name)
    if std is semiring:
        return ("named", semiring.name)
    try:
        return ("pickled", pickle.dumps(semiring))
    except Exception:
        return None


def decode_semiring(token) -> Semiring:
    kind, payload = token
    if kind == "named":
        return STANDARD_SEMIRINGS[payload]
    return pickle.loads(payload)


# ----------------------------------------------------------------------
# tasks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionTask:
    """One row partition of one masked-SpGEMM call (picklable, tiny)."""

    a: _shm.CSRSegments
    b: _shm.CSRSegments
    mask: _shm.CSRSegments
    b_csc: Optional[_shm.CSRSegments]
    #: ("range", lo, hi) for contiguous partitions, ("rows", ndarray) else
    rows: tuple
    algo: str
    phases: int
    complement: bool
    impl: str
    semiring: tuple
    #: record worker-side spans and ship them back with the result
    trace: bool = False
    #: record worker-side probe histograms and ship them back likewise
    probe: bool = False
    #: kernel batching tier ("auto" | "bucket" | "perrow"); the planner's
    #: per-band resolution rides along so workers run the same tier
    batch: str = "auto"
    #: ship a compact worker heartbeat (pid, RSS, CPU, tasks done, form
    #: cache occupancy) back with the result — set while a
    #: :class:`~repro.observe.runtime.RuntimeSampler` is installed
    heartbeat: bool = False


def _run_task(task: PartitionTask):
    """Worker entry point: attach, slice, run, return COO + counter (+spans).

    Runs in a pool worker.  The returned row indices are *global* (the
    contiguous fast path offsets them), so the parent's merge is a plain
    concatenation, identical to the serial and thread backends.

    When ``task.trace`` is set, a worker-local tracer is installed for the
    duration of the task: the partition span and every nested kernel span
    it encloses come back serialized in the payload, and the coordinator
    merges them onto its timeline (:meth:`repro.observe.Tracer.ingest`).
    The tracer is uninstalled in ``finally`` — the pool is persistent, and
    later untraced calls must not pay for (or leak into) this one.
    """
    from ..core.masked_spgemm import masked_spgemm
    from .executor import row_block, row_slice

    tracer = None
    prev = None
    probes = None
    prev_probes = None
    if task.trace:
        from ..observe.tracer import Tracer, set_tracer

        tracer = Tracer()
        prev = set_tracer(tracer)
    if task.probe:
        from ..observe.probes import ProbeRegistry, set_probes

        probes = ProbeRegistry()
        prev_probes = set_probes(probes)
    try:
        a = _shm.attach_csr(task.a)
        b = _shm.attach_csr(task.b)
        mask = _shm.attach_csr(task.mask)
        b_csc = _shm.attach_csc(task.b_csc)
        semiring = decode_semiring(task.semiring)
        counter = OpCounter()

        if task.rows[0] == "range":
            rows_attr = int(task.rows[2]) - int(task.rows[1])
        else:
            rows_attr = int(np.asarray(task.rows[1]).size)
        span_cm = (
            tracer.span(
                "parallel.partition",
                {"backend": "process", "algo": task.algo, "rows": rows_attr},
                counter=counter,
            )
            if tracer is not None else _NULL_CM
        )
        # compute inside the span, build the payload after it closes so the
        # partition span itself is part of the exported records
        with span_cm:
            empty = None
            if task.rows[0] == "range":
                lo, hi = task.rows[1], task.rows[2]
                if hi <= lo:
                    empty = True
                else:
                    a_s, m_s, offset = (
                        row_block(a, lo, hi), row_block(mask, lo, hi), lo,
                    )
            else:
                rows = np.asarray(task.rows[1], dtype=np.int64)
                if rows.size == 0:
                    empty = True
                else:
                    a_s, m_s, offset = row_slice(a, rows), row_slice(mask, rows), 0
            if empty:
                r = cc = np.empty(0, np.int64)
                v = np.empty(0, np.float64)
            else:
                c = masked_spgemm(
                    a_s,
                    b,
                    m_s,
                    algo=task.algo,
                    phases=task.phases,
                    complement=task.complement,
                    semiring=semiring,
                    impl=task.impl,
                    counter=counter,
                    b_csc=b_csc,
                    batch=getattr(task, "batch", "auto"),
                )
                r, cc, v = c.to_coo()
                if offset:
                    r = r + offset
        return _coo_payload(r, cc, v, counter, tracer, probes,
                            _worker_heartbeat(task))
    finally:
        if probes is not None:
            from ..observe.probes import set_probes

            set_probes(prev_probes)
        if tracer is not None:
            from ..observe.tracer import set_tracer

            set_tracer(prev)


@dataclass(frozen=True)
class ShardTask:
    """One shard-grid cell of one masked-SpGEMM call (picklable, tiny).

    Operands are *doubly-compressed* shard segments: the A row block and
    the mask cell as DCSR, the B column panel as the DCSR of its transpose
    (rewrapped worker-side — the same convention CSC uses to cross the
    boundary).  ``bands`` restricts the plan's row bands to the block, in
    block-local coordinates; ``row_offset``/``col_offset`` lift the cell's
    COO output back into the global frame.
    """

    a: _shm.DCSRSegments  #: A row block, shape (block_h, K)
    b_t: _shm.DCSRSegments  #: transpose of the B column panel, shape (panel_w, K)
    mask: _shm.DCSRSegments  #: mask cell, shape (block_h, panel_w)
    cell: Tuple[int, int]  #: (row-block index, column-panel index)
    row_offset: int
    col_offset: int
    #: ((algo, rows_desc), ...) — rows_desc is ("range", lo, hi) or
    #: ("rows", ndarray), both local to the row block
    bands: tuple
    phases: int
    complement: bool
    impl: str
    semiring: tuple
    trace: bool = False
    probe: bool = False
    #: the cell's apportioned share of the plan's modeled cycles/bytes —
    #: stamped into the worker's ``parallel.shard`` span so the prediction
    #: ledger sees the same modeled-vs-measured pairs on every backend
    est_cycles: float = 0.0
    est_bytes: float = 0.0
    #: ship a worker heartbeat back with the result (see PartitionTask)
    heartbeat: bool = False


#: per-worker cache of CSR forms derived from published shards, keyed by
#: (content token, kind).  Conversions copy out of shared memory
#: (``DCSR.to_csr`` materialises fresh arrays), so cached forms outlive the
#: segments; tokens change whenever published bytes change, so a session's
#: values-only rewrite can never be served a stale conversion.
_SHARD_FORMS: "OrderedDict[tuple, object]" = OrderedDict()
_SHARD_FORMS_MAX = 32


def _shard_form(spec: _shm.DCSRSegments, kind: str):
    """The CSR-ish form a kernel wants, cached per worker by content token.

    ``"csr"`` expands the published DCSR; ``"csr_t"`` is its transpose —
    for a B-panel spec (published as the panel's transpose) that makes
    ``"csr"`` the (panel_w, K) transpose usable directly as CSC backing and
    ``"csr_t"`` the (K, panel_w) panel itself.
    """
    key = (spec.token, kind)
    hit = _SHARD_FORMS.get(key)
    if hit is not None:
        _SHARD_FORMS.move_to_end(key)
        return hit
    if kind == "csr":
        out = _shm.attach_dcsr(spec).to_csr()
    elif kind == "csr_t":
        out = _shard_form(spec, "csr").transpose()
    else:  # pragma: no cover - internal misuse
        raise ValueError(f"unknown shard form {kind!r}")
    _SHARD_FORMS[key] = out
    while len(_SHARD_FORMS) > _SHARD_FORMS_MAX:
        _SHARD_FORMS.popitem(last=False)
    return out


def clear_shard_forms() -> None:
    """Drop this process's derived-form cache (tests / pool shutdown)."""
    _SHARD_FORMS.clear()


def _run_shard_task(task: ShardTask):
    """Worker entry point for one shard cell: attach, expand (cached by
    content token), run each band's kernel on the cell, return global COO.

    Mirrors :func:`_run_task`'s tracer/probe discipline — install per task,
    uninstall in ``finally`` — but operates on a (block_h x panel_w) cell:
    every band of the plan that intersects the row block runs against the
    cell's B panel and mask cell, and the COO triples come back already
    lifted by the cell's row/column offsets so the parent's merge is plain
    concatenation across cells.
    """
    from ..core.masked_spgemm import masked_spgemm
    from ..sparse import CSC
    from .executor import row_block, row_slice

    tracer = None
    prev = None
    probes = None
    prev_probes = None
    if task.trace:
        from ..observe.tracer import Tracer, set_tracer

        tracer = Tracer()
        prev = set_tracer(tracer)
    if task.probe:
        from ..observe.probes import ProbeRegistry, set_probes

        probes = ProbeRegistry()
        prev_probes = set_probes(probes)
    try:
        semiring = decode_semiring(task.semiring)
        counter = OpCounter()
        bh, pw = task.mask.shape
        span_cm = (
            tracer.span(
                "parallel.shard",
                {
                    "backend": "process",
                    "cell": list(task.cell),
                    "rows": int(bh),
                    "cols": int(pw),
                    "est_cycles": task.est_cycles,
                    "est_bytes": task.est_bytes,
                },
                counter=counter,
            )
            if tracer is not None else _NULL_CM
        )
        with span_cm:
            a_csr = _shard_form(task.a, "csr")
            b_t = _shard_form(task.b_t, "csr")
            b_csr = _shard_form(task.b_t, "csr_t")
            b_csc = CSC((b_t.ncols, b_t.nrows), b_t)
            mask_csr = _shard_form(task.mask, "csr")
            rs: List[np.ndarray] = []
            cs: List[np.ndarray] = []
            vs: List[np.ndarray] = []
            for algo, rows_desc in task.bands:
                if rows_desc[0] == "range":
                    lo, hi = int(rows_desc[1]), int(rows_desc[2])
                    if hi <= lo:
                        continue
                    a_s = row_block(a_csr, lo, hi)
                    m_s = row_block(mask_csr, lo, hi)
                    offset = lo
                else:
                    rows = np.asarray(rows_desc[1], dtype=np.int64)
                    if rows.size == 0:
                        continue
                    a_s = row_slice(a_csr, rows)
                    m_s = row_slice(mask_csr, rows)
                    offset = 0
                c = masked_spgemm(
                    a_s,
                    b_csr,
                    m_s,
                    algo=algo,
                    phases=task.phases,
                    complement=task.complement,
                    semiring=semiring,
                    impl=task.impl,
                    counter=counter,
                    b_csc=b_csc,
                )
                r, cc, v = c.to_coo()
                rs.append(r + (offset + task.row_offset))
                cs.append(cc + task.col_offset)
                vs.append(v)
            if rs:
                r = np.concatenate(rs)
                cc = np.concatenate(cs)
                v = np.concatenate(vs)
            else:
                r = cc = np.empty(0, np.int64)
                v = np.empty(0, np.float64)
        return _coo_payload(r, cc, v, counter, tracer, probes,
                            _worker_heartbeat(task))
    finally:
        if probes is not None:
            from ..observe.probes import set_probes

            set_probes(prev_probes)
        if tracer is not None:
            from ..observe.tracer import set_tracer

            set_tracer(prev)


#: worker-side lifetime task count — always maintained (one integer add),
#: reported only when a task asks for a heartbeat
_WORKER_TASKS_DONE = 0


def _worker_heartbeat(task) -> Optional[dict]:
    """Build this worker's heartbeat if the task asked for one.

    Runs in the pool worker as part of every task.  The task counter is
    bumped unconditionally so heartbeats stay accurate when a sampler is
    installed mid-run; the (slightly costlier) ``/proc`` reads happen only
    on the sampled path.  ``getattr`` keeps old pickled tasks valid.
    """
    global _WORKER_TASKS_DONE
    _WORKER_TASKS_DONE += 1
    if not getattr(task, "heartbeat", False):
        return None
    from ..observe.runtime import worker_heartbeat

    return worker_heartbeat(
        tasks_completed=_WORKER_TASKS_DONE,
        cached_forms=len(_SHARD_FORMS),
    )


def _coo_payload(rows, cols, vals, counter, tracer=None, probes=None,
                 heartbeat=None):
    spans = tracer.export() if tracer is not None else []
    probe_export = probes.export() if probes is not None else {}
    return rows, cols, vals, counter, spans, probe_export, heartbeat


def run_tasks(
    workers: int, tasks: Sequence, fn=_run_task
) -> Tuple[
    List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    List[OpCounter],
    List[List[dict]],
    List[dict],
    List[Optional[dict]],
]:
    """Run partition (or shard) tasks on the persistent pool, in order.

    Results come back ordered by partition index (futures are awaited in
    order), which keeps the merged output deterministic.  The third return
    value holds the serialized worker spans as one batch *per task* (all
    empty unless the tasks were submitted with ``trace=True``) — batches
    must stay separate because each task ran under a fresh worker tracer
    whose span ids start at 1, and ``Tracer.ingest`` remaps ids batch by
    batch; flattening would cross-link spans from different tasks.  The
    fourth holds each task's probe-histogram export (empty dict unless
    submitted with ``probe=True``); histogram merges commute, so these may
    be ingested in any order.  The fifth holds each task's worker
    heartbeat (``None`` unless submitted with ``heartbeat=True``) for
    :meth:`repro.observe.runtime.RuntimeSampler.ingest_heartbeats`.
    ``fn`` selects the worker entry point — :func:`_run_task` for
    :class:`PartitionTask`, :func:`_run_shard_task` for
    :class:`ShardTask`; both speak the same payload protocol.  A broken
    pool (a worker was OOM-killed or crashed) is discarded so the next call
    starts clean, and the error propagates to the caller.
    """
    pool = get_pool(workers)
    _POOL_TASKS["submitted"] += len(tasks)
    futures = [pool.submit(fn, t) for t in tasks]
    triples: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    counters: List[OpCounter] = []
    span_batches: List[List[dict]] = []
    probe_batches: List[dict] = []
    heartbeats: List[Optional[dict]] = []
    consumed = 0
    try:
        for fut in futures:
            rows, cols, vals, counter, spans, probe_export, hb = fut.result()
            consumed += 1
            _POOL_TASKS["completed"] += 1
            triples.append((rows, cols, vals))
            counters.append(counter)
            span_batches.append(spans)
            probe_batches.append(probe_export)
            heartbeats.append(hb)
    except BrokenProcessPool:
        shutdown_pool()
        raise
    finally:
        # rebalance abandoned futures on error so the sampler's queue-depth
        # gauge returns to zero instead of reporting phantom in-flight work
        _POOL_TASKS["completed"] += len(tasks) - consumed
    return triples, counters, span_batches, probe_batches, heartbeats


# Registered at import time — not lazily in get_pool — so interpreter exit
# can never strand pool workers or their shm attachments, even when a
# crash unwinds past the first get_pool call.  atexit tolerates both the
# no-pool case (shutdown_pool is a no-op) and duplicate registration
# across reloads.
atexit.register(shutdown_pool)
