"""Row partitioners for parallel masked SpGEMM.

The paper parallelizes across output rows with OpenMP (Section 3: "plenty of
coarse-grained parallelism across rows").  These helpers produce row
partitions for the real thread-pool driver and for the makespan simulator:

* :func:`block_partition` — contiguous equal-count blocks.
* :func:`cyclic_partition` — round-robin rows.
* :func:`balanced_partition` — contiguous blocks balanced by a per-row
  weight (e.g. flops per row), the standard prefix-sum splitting used when
  static scheduling must fight skewed row costs.
* :func:`chunk_schedule` — the dynamic chunk sequence.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "block_partition",
    "cyclic_partition",
    "balanced_partition",
    "chunk_schedule",
]


def block_partition(n_rows: int, n_parts: int) -> List[np.ndarray]:
    """Contiguous blocks of ~equal row count."""
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    bounds = np.linspace(0, n_rows, n_parts + 1).astype(np.int64)
    return [np.arange(bounds[i], bounds[i + 1]) for i in range(n_parts)]


def cyclic_partition(n_rows: int, n_parts: int) -> List[np.ndarray]:
    """Round-robin row assignment (OpenMP ``schedule(static, 1)``)."""
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    return [np.arange(i, n_rows, n_parts, dtype=np.int64) for i in range(n_parts)]


def balanced_partition(weights: np.ndarray, n_parts: int) -> List[np.ndarray]:
    """Contiguous blocks with ~equal total weight (prefix-sum splitting)."""
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    w = np.asarray(weights, dtype=np.float64)
    n = w.shape[0]
    prefix = np.concatenate(([0.0], np.cumsum(w)))
    total = prefix[-1]
    if total <= 0:
        return block_partition(n, n_parts)
    targets = np.linspace(0, total, n_parts + 1)
    cuts = np.searchsorted(prefix, targets[1:-1], side="left")
    bounds = np.concatenate(([0], cuts, [n])).astype(np.int64)
    bounds = np.maximum.accumulate(bounds)
    return [np.arange(bounds[i], bounds[i + 1]) for i in range(n_parts)]


def chunk_schedule(n_rows: int, chunk: int) -> List[Tuple[int, int]]:
    """The ordered chunk list a dynamic scheduler hands out."""
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    return [(lo, min(n_rows, lo + chunk)) for lo in range(0, n_rows, chunk)]
