"""Sharded masked-SpGEMM execution over doubly-compressed shard grids.

A plan whose ``shards`` field holds a :class:`~repro.engine.ShardGrid` is
executed cell by cell: the output is tiled into row blocks × column
panels, the operands are sliced to match — A row blocks and mask cells as
:class:`~repro.sparse.DCSR`, B column panels as
:class:`~repro.sparse.DCSC` — and one task per *nonempty* grid cell runs
the plan's row bands against the cell's panel-local operands.  Because the
mask proves a cell of ``C = M .* (A @ B)`` empty whenever its mask cell is
empty, those cells are pruned **before dispatch**: the task count is the
mask's cell census, not the grid size (a complemented mask is potentially
dense everywhere, so every cell runs).

The doubly-compressed forms are what make the tiling cheap.  Slicing a
row block or column panel out of DCSR/DCSC costs ``O(log nz + slice nnz)``
(binary search + views), the mask's cells assemble in one
``O(nnz)`` binning pass (:func:`mask_cells`), and a cell's storage never
pays for the empty rows/columns tiling creates — the hypersparse case
DCSR exists for (Buluç & Gilbert).

All three backends run the same decomposition:

* ``serial`` / ``thread`` — cell operands are expanded to CSR once per
  block/panel (serially, so the thread pool never races a lazy build) and
  cells are dispatched to the caller's thread or a thread pool;
* ``process`` — each needed shard is published into shared memory as
  :class:`~repro.parallel.shm.DCSRSegments` (per-shard content keys let a
  session reuse unchanged shards across calls) and one
  :class:`~repro.parallel.pool.ShardTask` per cell runs on the persistent
  pool, with workers caching derived CSR forms by shard content token.

Outputs are bit-for-bit identical to the unsharded path on every backend:
each output entry ``(i, j)`` is produced by exactly one cell from exactly
the same k-set in the same order, and the COO merge canonicalises through
``CSR.from_coo`` like every other merge in the library.
"""

from __future__ import annotations

import logging
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.masked_spgemm import masked_spgemm
from ..machine import OpCounter
from ..observe import probes as _probes
from ..observe import runtime as _runtime
from ..observe import tracer as _obs
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import CSC, CSR, DCSC, DCSR
from .executor import _merge_triples, normalize_backend, row_block, row_slice

__all__ = ["mask_cells", "run_sharded"]

_log = logging.getLogger("repro.parallel")


def mask_cells(mask: CSR, grid) -> Dict[Tuple[int, int], DCSR]:
    """Bin a mask's entries into grid cells; returns only nonempty cells.

    One vectorised pass: expand row ids, locate each entry's cell with two
    ``searchsorted`` calls against the boundary arrays, stable-sort by cell
    id (which preserves the CSR's (row, col) lexicographic order *within*
    each cell) and cut the result at cell boundaries into per-cell DCSRs
    via :meth:`DCSR.from_sorted_coo` — ``O(nnz log nnz)`` total,
    independent of the grid size.  Cell coordinates are local to the cell.
    """
    cells: Dict[Tuple[int, int], DCSR] = {}
    mask = mask.sort_indices()
    if mask.nnz == 0:
        return cells
    rbounds = np.asarray(grid.row_bounds, dtype=np.int64)
    cbounds = np.asarray(grid.col_bounds, dtype=np.int64)
    rows = np.repeat(np.arange(mask.nrows, dtype=np.int64), mask.row_nnz())
    cols = mask.indices.astype(np.int64, copy=False)
    ri = np.searchsorted(rbounds, rows, side="right") - 1
    ci = np.searchsorted(cbounds, cols, side="right") - 1
    cell = ri * grid.ncp + ci
    order = np.argsort(cell, kind="stable")
    cell_sorted = cell[order]
    starts = np.concatenate(
        ([0], np.flatnonzero(np.diff(cell_sorted)) + 1, [cell_sorted.size])
    )
    for s, e in zip(starts[:-1], starts[1:]):
        idx = order[s:e]
        cid = int(cell_sorted[s])
        i, j = cid // grid.ncp, cid % grid.ncp
        lo_r, lo_c = grid.row_bounds[i], grid.col_bounds[j]
        cells[(i, j)] = DCSR.from_sorted_coo(
            (grid.row_bounds[i + 1] - lo_r, grid.col_bounds[j + 1] - lo_c),
            rows[idx] - lo_r,
            cols[idx] - lo_c,
            mask.data[idx],
        )
    return cells


def _empty_cell(shape) -> DCSR:
    e = np.empty(0, dtype=np.int64)
    return DCSR.from_sorted_coo(shape, e, e, np.empty(0, dtype=np.float64))


def _band_descs(bands, row_bounds, nrows: int) -> List[tuple]:
    """Per-row-block restriction of the plan's bands, in local coordinates.

    Returns one ``((algo, rows_desc), ...)`` tuple per block, where
    ``rows_desc`` is ``("range", lo, hi)`` (block-local) for full or
    contiguous bands and ``("rows", ndarray)`` for scattered ones — the
    same descriptor language :class:`~repro.parallel.pool.PartitionTask`
    speaks.  Band order is preserved, so per-cell counters accumulate in
    plan order on every backend.
    """
    out: List[tuple] = []
    for lo, hi in zip(row_bounds[:-1], row_bounds[1:]):
        descs: List[tuple] = []
        for band in bands:
            if band.is_full(nrows):
                if hi > lo:
                    descs.append((band.algo, ("range", 0, hi - lo)))
                continue
            rows = np.asarray(band.rows)
            if rows.size == 0:
                continue
            if band.is_contiguous():
                s, e = max(int(rows[0]), lo), min(int(rows[-1]) + 1, hi)
                if s < e:
                    descs.append((band.algo, ("range", s - lo, e - lo)))
                continue
            sel = rows[(rows >= lo) & (rows < hi)]
            if sel.size:
                descs.append((band.algo, ("rows", (sel - lo).astype(np.int64))))
        out.append(tuple(descs))
    return out


def run_sharded(
    plan,
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    semiring: Semiring = PLUS_TIMES,
    impl: str = "auto",
    counter: Optional[OpCounter] = None,
    backend: Optional[str] = None,
    session=None,
) -> CSR:
    """Execute a sharded plan (``plan.shards`` is a ``ShardGrid``).

    The engine's sharded dispatch path: builds the mask's cell census,
    prunes provably-empty cells (plain mask), restricts the plan's row
    bands to each block, and runs one task per surviving cell on the
    plan's backend.  ``session`` gives the process backend per-shard
    segment reuse across calls and memoises the operands' DCSR/DCSC
    compressions.
    """
    grid = plan.shards
    backend = normalize_backend(plan.backend if backend is None else backend)
    session = session or None
    if session is not None and not session.caching:
        session = None
    shape = (a.nrows, b.ncols)

    cells = mask_cells(mask, grid)
    if plan.complement:
        # the complement of the mask may be dense anywhere: no pruning
        work = [(i, j) for i in range(grid.nrb) for j in range(grid.ncp)]
    else:
        work = sorted(cells)
    band_descs = _band_descs(plan.bands, grid.row_bounds, a.nrows)
    # a cell whose row block owns no band rows produces nothing: prune it
    # before dispatch (and before segment publication).  A full plan covers
    # every row, so this only fires for partial (delta-patch) plans, where
    # it is what keeps clean shards untouched — neither republished nor run.
    work = [(i, j) for i, j in work if band_descs[i]]
    est_cells = _apportion_estimates(plan, grid, cells, work)

    tr = _obs.current()
    shard_cm = (
        tr.span(
            "engine.shard",
            {
                "grid": [grid.nrb, grid.ncp],
                "cells": grid.ncells,
                "nonempty_cells": len(cells),
                "tasks": len(work),
                "backend": backend,
            },
            counter=counter,
        )
        if tr is not None else _obs.NULL_SPAN
    )
    with shard_cm:
        if not work:
            return CSR.empty(shape)
        if backend == "process" and len(work) > 1:
            result = _run_sharded_process(
                plan, grid, a, b, mask, cells, work, band_descs,
                semiring=semiring, impl=impl, counter=counter, session=session,
                est_cells=est_cells,
            )
            if result is not None:
                return result
            _log.warning(
                "sharded process backend fell back to thread for semiring %r "
                "(untransferable or platform unsupported)", semiring.name,
            )
            backend = "thread"
        return _run_sharded_local(
            plan, grid, a, b, cells, work, band_descs,
            backend=backend, semiring=semiring, impl=impl, counter=counter,
            session=session, est_cells=est_cells,
        )


def _apportion_estimates(plan, grid, cells, work) -> Dict[Tuple[int, int], Tuple[float, float]]:
    """Split the plan's modeled cycles/bytes across the shard work list.

    The planner models whole rows; a cell only sees the row block's slice
    of one column panel, so the band totals are apportioned by each cell's
    share of the mask entries (the driver of masked work).  Under a
    complemented mask every cell runs and empty mask cells are the *dense*
    ones, so the split falls back to the cell's share of the output area.
    The per-cell predictions land on the ``parallel.shard`` spans for the
    prediction ledger; their sum equals the plan totals by construction.
    """
    total_cycles = float(sum(band.est_cycles for band in plan.bands))
    total_bytes = float(sum(band.est_bytes for band in plan.bands))
    out: Dict[Tuple[int, int], Tuple[float, float]] = {}
    if not work or (total_cycles <= 0.0 and total_bytes <= 0.0):
        return {cell: (0.0, 0.0) for cell in work}
    if plan.complement:
        weights = {}
        for i, j in work:
            area = (grid.row_bounds[i + 1] - grid.row_bounds[i]) * (
                grid.col_bounds[j + 1] - grid.col_bounds[j]
            )
            weights[(i, j)] = float(area)
    else:
        weights = {
            (i, j): float(cells[(i, j)].nnz) if (i, j) in cells else 0.0
            for i, j in work
        }
    denom = sum(weights.values())
    if denom <= 0.0:
        share = 1.0 / len(work)
        return {cell: (total_cycles * share, total_bytes * share) for cell in work}
    for cell in work:
        w = weights[cell] / denom
        out[cell] = (total_cycles * w, total_bytes * w)
    return out


def _cell_triples(
    plan, grid, cell, a_csr: CSR, b_csr: CSR, b_csc: CSC, m_csr: CSR,
    descs, *, semiring, impl, counter,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run one cell's bands; COO comes back in global coordinates."""
    i, j = cell
    rs: List[np.ndarray] = []
    cs: List[np.ndarray] = []
    vs: List[np.ndarray] = []
    for algo, rows_desc in descs:
        if rows_desc[0] == "range":
            lo, hi = int(rows_desc[1]), int(rows_desc[2])
            if hi <= lo:
                continue
            a_s, m_s, offset = row_block(a_csr, lo, hi), row_block(m_csr, lo, hi), lo
        else:
            rows = np.asarray(rows_desc[1], dtype=np.int64)
            if rows.size == 0:
                continue
            a_s, m_s, offset = row_slice(a_csr, rows), row_slice(m_csr, rows), 0
        c = masked_spgemm(
            a_s,
            b_csr,
            m_s,
            algo=algo,
            phases=plan.phases,
            complement=plan.complement,
            semiring=semiring,
            impl=impl,
            counter=counter,
            b_csc=b_csc,
        )
        r, cc, v = c.to_coo()
        rs.append(r + (offset + grid.row_bounds[i]))
        cs.append(cc + grid.col_bounds[j])
        vs.append(v)
    if not rs:
        e = np.empty(0, dtype=np.int64)
        return e, e, np.empty(0, dtype=np.float64)
    return np.concatenate(rs), np.concatenate(cs), np.concatenate(vs)


def _run_sharded_local(
    plan, grid, a: CSR, b: CSR, cells, work, band_descs, *,
    backend: str, semiring, impl, counter, session, est_cells=None,
) -> CSR:
    """Serial / thread execution of the shard work list.

    Every block/panel/cell expansion to CSR happens serially *before*
    dispatch, so the thread pool only ever reads immutable operands —
    no lazily-built form is ever shared between racing workers.
    """
    a_d = session.dcsr_of(a) if session is not None else DCSR.from_csr(a)
    b_dc = session.dcsc_of(b) if session is not None else DCSC.from_csr(b)

    a_blocks: Dict[int, CSR] = {}
    for i in sorted({i for i, _ in work}):
        lo, hi = grid.row_bounds[i], grid.row_bounds[i + 1]
        a_blocks[i] = a_d.row_block(lo, hi).to_csr()
    panels: Dict[int, Tuple[CSR, CSC]] = {}
    for j in sorted({j for _, j in work}):
        lo, hi = grid.col_bounds[j], grid.col_bounds[j + 1]
        b_t = b_dc.column_panel(lo, hi).to_transposed_dcsr().to_csr()
        # the (panel_w, K) transpose doubles as the CSC backing for free
        panels[j] = (b_t.transpose(), CSC((b_t.ncols, b_t.nrows), b_t))
    m_csrs: Dict[Tuple[int, int], CSR] = {}
    for i, j in work:
        cell = cells.get((i, j))
        shape = (
            grid.row_bounds[i + 1] - grid.row_bounds[i],
            grid.col_bounds[j + 1] - grid.col_bounds[j],
        )
        m_csrs[(i, j)] = cell.to_csr() if cell is not None else CSR.empty(shape)

    counters = [OpCounter() for _ in work]
    tr = _obs.current()

    def run_cell(idx: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        i, j = work[idx]
        m_csr = m_csrs[(i, j)]
        est_cyc, est_byt = (est_cells or {}).get((i, j), (0.0, 0.0))
        cell_cm = (
            tr.span(
                "parallel.shard",
                {"backend": backend, "cell": [i, j],
                 "rows": m_csr.nrows, "cols": m_csr.ncols,
                 "est_cycles": est_cyc, "est_bytes": est_byt},
                counter=counters[idx],
            )
            if tr is not None else _obs.NULL_SPAN
        )
        with cell_cm:
            b_csr, b_csc = panels[j]
            return _cell_triples(
                plan, grid, (i, j), a_blocks[i], b_csr, b_csc, m_csr,
                band_descs[i],
                semiring=semiring, impl=impl, counter=counters[idx],
            )

    if backend == "serial" or plan.threads <= 1 or len(work) == 1:
        triples = [run_cell(k) for k in range(len(work))]
    else:
        with ThreadPoolExecutor(max_workers=min(plan.threads, len(work))) as tp:
            triples = list(tp.map(run_cell, range(len(work))))
    return _merge_triples(
        triples, (a.nrows, b.ncols), counters=counters, counter=counter
    )


def _run_sharded_process(
    plan, grid, a: CSR, b: CSR, mask: CSR, cells, work, band_descs, *,
    semiring, impl, counter, session, est_cells=None,
) -> Optional[CSR]:
    """Shared-memory process execution; ``None`` means "fall back to
    threads" (untransferable semiring or missing platform support).

    Only the shards the pruned work list references are published.  With a
    session, each shard is served from the session's
    :class:`~repro.parallel.segment_cache.SegmentCache` under the shard's
    *own* content digest — so reuse survives the parent operand changing:
    an iterative app that prunes a few edges republishes only the shards
    those edges lived in, and a values-only change rewrites a shard's
    data segment in place.
    """
    from . import pool as _pool
    from . import shm as _shm

    if not _pool.process_backend_available():
        return None
    token = _pool.encode_semiring(semiring)
    if token is None:
        return None
    tracer = _obs.current()
    probes = _probes.current()

    a_d = session.dcsr_of(a) if session is not None else DCSR.from_csr(a)
    b_dc = session.dcsc_of(b) if session is not None else DCSC.from_csr(b)

    cache = session.segment_cache if session is not None else None
    group = None
    if cache is not None:
        cache.begin_call()
        seg_before = (cache.segments_reused, cache.bytes_republished)
        publish = cache.publish_dcsr
    else:
        group = _shm.SegmentGroup()
        publish = group.publish_dcsr
    try:
        a_specs: Dict[int, _shm.DCSRSegments] = {}
        for i in sorted({i for i, _ in work}):
            lo, hi = grid.row_bounds[i], grid.row_bounds[i + 1]
            a_specs[i] = publish(a_d.row_block(lo, hi))
        b_specs: Dict[int, _shm.DCSRSegments] = {}
        for j in sorted({j for _, j in work}):
            lo, hi = grid.col_bounds[j], grid.col_bounds[j + 1]
            b_specs[j] = publish(b_dc.column_panel(lo, hi).to_transposed_dcsr())
        m_specs: Dict[Tuple[int, int], _shm.DCSRSegments] = {}
        for i, j in work:
            cell = cells.get((i, j))
            if cell is None:  # complement runs mask-empty cells too
                cell = _empty_cell((
                    grid.row_bounds[i + 1] - grid.row_bounds[i],
                    grid.col_bounds[j + 1] - grid.col_bounds[j],
                ))
            m_specs[(i, j)] = publish(cell)
        tasks = [
            _pool.ShardTask(
                a=a_specs[i],
                b_t=b_specs[j],
                mask=m_specs[(i, j)],
                cell=(i, j),
                row_offset=grid.row_bounds[i],
                col_offset=grid.col_bounds[j],
                bands=band_descs[i],
                phases=plan.phases,
                complement=plan.complement,
                impl=impl,
                semiring=token,
                trace=tracer is not None,
                probe=probes is not None,
                est_cycles=(est_cells or {}).get((i, j), (0.0, 0.0))[0],
                est_bytes=(est_cells or {}).get((i, j), (0.0, 0.0))[1],
                heartbeat=_runtime.current() is not None,
            )
            for i, j in work
        ]
        triples, counters, span_batches, probe_batches, heartbeats = (
            _pool.run_tasks(
                max(1, min(plan.threads, len(tasks))), tasks,
                fn=_pool._run_shard_task,
            )
        )
    finally:
        if group is not None:
            group.close()
        else:
            cache.end_call()

    if cache is not None and counter is not None:
        counter.segments_reused += cache.segments_reused - seg_before[0]
        counter.bytes_republished += cache.bytes_republished - seg_before[1]

    if tracer is not None:
        for batch in span_batches:
            if batch:
                tracer.ingest(batch)
    if probes is not None:
        for payload in probe_batches:
            if payload:
                probes.ingest(payload)
    sampler = _runtime.current()
    if sampler is not None:
        sampler.ingest_heartbeats(heartbeats)
    return _merge_triples(
        triples, (a.nrows, b.ncols), counters=counters, counter=counter
    )
