"""GraphBLAS-style operations: mxm / vxm / mxv with masks and descriptors.

``mxm`` is the paper's subject: ``C<M> = A (+.x) B`` dispatches to any of
the masked SpGEMM algorithms via the descriptor's ``algo`` field, exactly
how the paper's benchmark harness swaps algorithms behind the GraphBLAS
interface (Section 7).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import masked_spgemm, masked_spgemm_hybrid, spgemm_saxpy_fast
from ..core.spmv import masked_spmv
from ..machine import OpCounter
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import ewise_add, mask_pattern
from .objects import Descriptor, Matrix, Vector

__all__ = ["mxm", "vxm", "mxv", "DEFAULT_DESC"]

DEFAULT_DESC = Descriptor()


def mxm(
    a: Matrix,
    b: Matrix,
    *,
    mask: Optional[Matrix] = None,
    semiring: Semiring = PLUS_TIMES,
    desc: Descriptor = DEFAULT_DESC,
    out: Optional[Matrix] = None,
    counter: Optional[OpCounter] = None,
) -> Matrix:
    """``C<M> = A (+.x) B`` — (masked) matrix-matrix multiply.

    Without a mask this is a plain SpGEMM.  With a mask, the descriptor's
    ``algo`` selects the masked SpGEMM algorithm (the paper's Inner / MSA /
    Hash / MCA / Heap / HeapDot, or ``"hybrid"``) and ``phases`` the 1P/2P
    strategy.  ``out`` plus ``replace=False`` merges the result into an
    existing matrix (union; new values win), the slice of GraphBLAS
    accumulation the applications use.
    """
    if mask is None:
        c = spgemm_saxpy_fast(a.csr, b.csr, semiring=semiring, counter=counter)
    elif desc.algo == "hybrid":
        c = masked_spgemm_hybrid(
            a.csr, b.csr, mask.csr, complement=desc.mask_complement,
            semiring=semiring, counter=counter,
        )
    else:
        c = masked_spgemm(
            a.csr,
            b.csr,
            mask.csr,
            algo=desc.algo,
            phases=desc.phases,
            complement=desc.mask_complement,
            semiring=semiring,
            counter=counter,
        )
    if out is not None and not desc.replace:
        keep = mask_pattern(out.csr, c, complement=True) if c.nnz else out.csr
        c = ewise_add(keep, c, op=semiring.add_ufunc)
    return Matrix(c)


def vxm(
    v: Vector,
    a: Matrix,
    *,
    mask: Optional[Vector] = None,
    semiring: Semiring = PLUS_TIMES,
    desc: Descriptor = DEFAULT_DESC,
    counter: Optional[OpCounter] = None,
) -> Vector:
    """``w<m> = v (+.x) A`` — (masked) row-vector times matrix.

    Uses the direction-optimized masked SpMV kernels; ``desc.algo`` of
    ``"inner"`` forces pull, anything else pushes, and ``"hybrid"`` lets
    the work heuristic decide.
    """
    x_vals = np.zeros(a.nrows)
    x_vals[v.indices] = v.values
    x_pat = v.pattern_bool()
    if mask is None:
        m_pat = np.ones(a.ncols, dtype=bool)
        complement = False
    else:
        m_pat = mask.pattern_bool()
        complement = desc.mask_complement
    direction = {"inner": "pull", "hybrid": "auto"}.get(desc.algo, "push")
    y, hit = masked_spmv(
        a.csr, x_vals, x_pat, m_pat,
        direction=direction, complement=complement,
        semiring=semiring, counter=counter,
    )
    idx = np.flatnonzero(hit)
    return Vector.from_coo(a.ncols, idx, y[idx])


def mxv(
    a: Matrix,
    v: Vector,
    *,
    mask: Optional[Vector] = None,
    semiring: Semiring = PLUS_TIMES,
    desc: Descriptor = DEFAULT_DESC,
    counter: Optional[OpCounter] = None,
) -> Vector:
    """``w<m> = A (+.x) v`` — matrix times column vector (via A^T vxm)."""
    return vxm(v, Matrix(a.csr.transpose()), mask=mask, semiring=semiring,
               desc=desc, counter=counter)
