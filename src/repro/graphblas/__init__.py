"""GraphBLAS-flavoured interface: Matrix/Vector objects, descriptors and the
mxm / vxm / mxv operations that dispatch to the paper's masked SpGEMM and
masked SpMV kernels (Section 7's "implemented within the GraphBLAS
specifications")."""

from .objects import Descriptor, Matrix, Vector
from .operations import DEFAULT_DESC, mxm, mxv, vxm

__all__ = ["Descriptor", "Matrix", "Vector", "DEFAULT_DESC", "mxm", "mxv", "vxm"]
