"""GraphBLAS-flavoured Matrix / Vector wrappers.

The paper's applications are "implemented within the GraphBLAS
specifications, substituting Masked SpGEMM operations with calls to
different algorithms investigated in this work" (Section 7).  This
subpackage provides that interface: a thin, typed veneer over
:mod:`repro.sparse` and :mod:`repro.core` following the GraphBLAS C API's
shape — ``mxm(C, mask, semiring, A, B, desc)`` — so the applications read
like their LAGraph counterparts and the masked-SpGEMM algorithm is a
pluggable descriptor field.

Only the slice of GraphBLAS the paper's applications need is implemented
(this is not a full GraphBLAS): matrices/vectors with patterns, masks and
complements, mxm / vxm / mxv, eWiseMult / eWiseAdd, apply, select, reduce,
extract and assign-like construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from ..sparse import CSR, ewise_add, ewise_mult, mask_pattern, reduce_sum

__all__ = ["Matrix", "Vector", "Descriptor"]


@dataclass(frozen=True)
class Descriptor:
    """Operation descriptor (the GraphBLAS ``GrB_Descriptor``).

    Attributes
    ----------
    mask_complement:
        Use the complement of the mask (GrB_COMP).
    mask_structure:
        Use only the mask's pattern (this library always does; the flag is
        accepted for API familiarity).
    replace:
        Clear the output before writing (GrB_REPLACE).  Without replace,
        unwritten entries of the output are kept (GraphBLAS accumulation
        with the implicit "second" accumulator).
    algo:
        Which masked SpGEMM algorithm backs ``mxm``: one of
        :data:`repro.core.ALGOS`, ``"auto"`` (cost-model planner,
        :mod:`repro.engine`) or ``"hybrid"`` (ratio-banded plan).
    phases:
        1 or 2 (one-phase / two-phase output formation).
    """

    mask_complement: bool = False
    mask_structure: bool = True
    replace: bool = True
    algo: str = "msa"
    phases: int = 1


class Matrix:
    """A GraphBLAS-style sparse matrix (wraps :class:`repro.sparse.CSR`)."""

    __slots__ = ("csr",)

    def __init__(self, csr: CSR):
        self.csr = csr

    # -- construction ---------------------------------------------------
    @classmethod
    def new(cls, nrows: int, ncols: int) -> "Matrix":
        return cls(CSR.empty((nrows, ncols)))

    @classmethod
    def from_coo(cls, nrows, ncols, rows, cols, vals=None) -> "Matrix":
        return cls(CSR.from_coo((nrows, ncols), rows, cols, vals))

    @classmethod
    def from_dense(cls, dense) -> "Matrix":
        return cls(CSR.from_dense(np.asarray(dense)))

    @classmethod
    def from_csr(cls, csr: CSR) -> "Matrix":
        return cls(csr)

    # -- properties -------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self.csr.shape

    @property
    def nrows(self) -> int:
        return self.csr.nrows

    @property
    def ncols(self) -> int:
        return self.csr.ncols

    @property
    def nvals(self) -> int:
        """GraphBLAS ``GrB_Matrix_nvals``."""
        return self.csr.nnz

    # -- element access ---------------------------------------------------
    def __getitem__(self, idx: Tuple[int, int]) -> Optional[float]:
        i, j = idx
        cols, vals = self.csr.row(i)
        pos = np.searchsorted(cols, j)
        if pos < cols.shape[0] and cols[pos] == j:
            return float(vals[pos])
        return None  # implicit zero

    def to_dense(self) -> np.ndarray:
        return self.csr.to_dense()

    def dup(self) -> "Matrix":
        return Matrix(self.csr.copy())

    def transpose(self) -> "Matrix":
        return Matrix(self.csr.transpose())

    def pattern(self) -> "Matrix":
        return Matrix(self.csr.pattern())

    # -- GraphBLAS-style operations (also available as free functions) ----
    def ewise_mult(self, other: "Matrix", op: Callable = np.multiply) -> "Matrix":
        return Matrix(ewise_mult(self.csr, other.csr, op=op))

    def ewise_add(self, other: "Matrix", op: Callable = np.add) -> "Matrix":
        return Matrix(ewise_add(self.csr, other.csr, op=op))

    def apply(self, fn: Callable[[np.ndarray], np.ndarray]) -> "Matrix":
        """GrB_apply: unary function on every stored value."""
        out = self.csr.copy()
        out.data[:] = fn(out.data)
        return Matrix(out)

    def select(self, keep: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]) -> "Matrix":
        """GxB_select: keep entries where ``keep(rows, cols, vals)`` is True."""
        rows, cols, vals = self.csr.to_coo()
        mask = np.asarray(keep(rows, cols, vals), dtype=bool)
        return Matrix(CSR.from_coo(self.shape, rows[mask], cols[mask], vals[mask]))

    def reduce_scalar(self, op: Callable = np.add) -> float:
        """GrB_reduce to scalar."""
        if op is np.add:
            return reduce_sum(self.csr)
        if self.nvals == 0:
            return 0.0
        return float(op.reduce(self.csr.data))

    def reduce_rows(self, op=np.add) -> "Vector":
        """GrB_reduce along rows -> column vector."""
        from ..sparse import row_reduce

        dense = row_reduce(self.csr, op=op)
        return Vector.from_dense(dense)

    def extract_row(self, i: int) -> "Vector":
        cols, vals = self.csr.row(i)
        return Vector.from_coo(self.ncols, cols, vals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"gb.Matrix({self.nrows}x{self.ncols}, nvals={self.nvals})"


class Vector:
    """A GraphBLAS-style sparse vector (stored as a 1 x n Matrix row)."""

    __slots__ = ("_row",)

    def __init__(self, row: CSR):
        if row.nrows != 1:
            raise ValueError("vector storage must be a single-row CSR")
        self._row = row

    @classmethod
    def new(cls, size: int) -> "Vector":
        return cls(CSR.empty((1, size)))

    @classmethod
    def from_coo(cls, size: int, idx, vals=None) -> "Vector":
        idx = np.asarray(idx, dtype=np.int64)
        return cls(
            CSR.from_coo((1, size), np.zeros(idx.shape[0], dtype=np.int64), idx, vals)
        )

    @classmethod
    def from_dense(cls, dense) -> "Vector":
        dense = np.asarray(dense, dtype=np.float64)
        idx = np.flatnonzero(dense)
        return cls.from_coo(dense.shape[0], idx, dense[idx])

    @property
    def size(self) -> int:
        return self._row.ncols

    @property
    def nvals(self) -> int:
        return self._row.nnz

    @property
    def indices(self) -> np.ndarray:
        return self._row.indices

    @property
    def values(self) -> np.ndarray:
        return self._row.data

    def __getitem__(self, i: int) -> Optional[float]:
        return Matrix(self._row)[0, i]

    def to_dense(self) -> np.ndarray:
        return self._row.to_dense()[0]

    def as_row_matrix(self) -> Matrix:
        return Matrix(self._row)

    def dup(self) -> "Vector":
        return Vector(self._row.copy())

    def pattern_bool(self) -> np.ndarray:
        out = np.zeros(self.size, dtype=bool)
        out[self.indices] = True
        return out

    def reduce_scalar(self, op: Callable = np.add) -> float:
        return Matrix(self._row).reduce_scalar(op)

    def ewise_mult(self, other: "Vector", op: Callable = np.multiply) -> "Vector":
        """Element-wise multiply (pattern intersection)."""
        return Vector(ewise_mult(self._row, other._row, op=op))

    def ewise_add(self, other: "Vector", op: Callable = np.add) -> "Vector":
        """Element-wise add (pattern union)."""
        return Vector(ewise_add(self._row, other._row, op=op))

    def apply(self, fn: Callable[[np.ndarray], np.ndarray]) -> "Vector":
        """GrB_apply on a vector."""
        out = self._row.copy()
        out.data[:] = fn(out.data)
        return Vector(out)

    def select(self, keep: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> "Vector":
        """Keep entries where ``keep(indices, values)`` is True."""
        idx, vals = self.indices, self.values
        mask = np.asarray(keep(idx, vals), dtype=bool)
        return Vector.from_coo(self.size, idx[mask], vals[mask])

    def mask_out(self, other: "Vector", *, complement: bool = False) -> "Vector":
        """Structural masking of a vector by another's pattern."""
        return Vector(mask_pattern(self._row, other._row, complement=complement))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"gb.Vector(size={self.size}, nvals={self.nvals})"
