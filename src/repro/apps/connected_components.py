"""Connected components via label propagation (FastSV-style).

Another linear-algebraic graph kernel in the paper's application family
(Section 2's "duality between graph and matrices"): every vertex starts
with its own id as label, and each round every vertex adopts the minimum
label among itself and its neighbours —

    labels = min(labels, A (min.second) labels)

a masked SpMV on the (min, second) semiring.  Converges in O(diameter)
rounds (the FastSV/Shiloach-Vishkin hooking tricks accelerate this; the
plain propagation suffices here and keeps the kernel exercise pure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..machine import OpCounter
from ..semiring import MIN_FIRST
from ..sparse import CSR
from ..core.spmv import masked_spmv_push

__all__ = ["connected_components", "CCResult"]


@dataclass
class CCResult:
    """Component labels (smallest vertex id in each component)."""

    labels: np.ndarray
    n_components: int
    rounds: int


def connected_components(
    a: CSR,
    *,
    counter: Optional[OpCounter] = None,
    max_rounds: Optional[int] = None,
) -> CCResult:
    """Connected components of the undirected graph ``a``."""
    n = a.nrows
    if a.ncols != n:
        raise ValueError("adjacency must be square")
    labels = np.arange(n, dtype=np.float64)
    frontier = np.ones(n, dtype=bool)
    all_mask = np.ones(n, dtype=bool)
    rounds = 0
    cap = max_rounds if max_rounds is not None else n
    while frontier.any() and rounds < cap:
        # candidate labels pulled from neighbours whose label changed
        cand, hit = masked_spmv_push(
            a, labels, frontier, all_mask, semiring=MIN_FIRST, counter=counter
        )
        improved = hit & (cand < labels)
        if not improved.any():
            break
        labels[improved] = cand[improved]
        frontier = improved
        rounds += 1
    ids = np.unique(labels)
    return CCResult(
        labels=labels.astype(np.int64),
        n_components=int(ids.shape[0]),
        rounds=rounds,
    )
