"""Triangle Counting via masked SpGEMM — paper Section 8.2.

The paper's method (also [2, 15, 29]): relabel vertices in non-increasing
degree order, take the lower-triangular part ``L``, and count

    #triangles = sum( L .* (L @ L) )

on the PLUS_PAIR semiring (each wedge contributes 1).  The element-wise
product with ``L`` *is* the mask: the masked SpGEMM computes ``L @ L`` only
at positions where ``L`` itself has an edge.  The paper benchmarks only the
Masked-SpGEMM part; :func:`triangle_count_detail` reports its timing and
operation counters so the benches can do the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..machine import OpCounter
from ..observe import timed_span
from ..semiring import PLUS_PAIR
from ..sparse import CSR, reduce_sum
from ..core import masked_spgemm
from ..graphs import relabel_by_degree

__all__ = ["triangle_count", "triangle_count_detail", "TriangleCountResult"]


@dataclass
class TriangleCountResult:
    """Outcome of one triangle-counting run."""

    triangles: int
    spgemm_seconds: float  #: time spent inside the masked SpGEMM only
    total_seconds: float
    counter: OpCounter
    l_nnz: int


def _prepare(a: CSR, relabel: bool) -> CSR:
    g = a.pattern()
    if relabel:
        g = relabel_by_degree(g)
    return g.tril(-1)


def triangle_count(
    a: CSR, *, algo: str = "auto", relabel: bool = True, impl: str = "auto",
    phases: int = 1, backend: Optional[str] = None,
) -> int:
    """Number of triangles in the undirected graph with adjacency ``a``."""
    return triangle_count_detail(
        a, algo=algo, relabel=relabel, impl=impl, phases=phases, backend=backend
    ).triangles


def triangle_count_detail(
    a: CSR,
    *,
    algo: str = "auto",
    relabel: bool = True,
    impl: str = "auto",
    phases: int = 1,
    counter: Optional[OpCounter] = None,
    call_log: Optional[list] = None,
    backend: Optional[str] = None,
) -> TriangleCountResult:
    """Triangle counting with timing/counter detail for the benches.

    ``backend`` (``algo="auto"`` only) forces the execution backend of the
    underlying masked SpGEMM; ``None`` lets the planner's cost model pick.
    """
    counter = counter if counter is not None else OpCounter()
    # tracer spans double as the stage timers: tril/spgemm/reduce durations
    # land in trace exports when tracing is on and still populate the
    # result fields when it is off (timed_span always measures)
    with timed_span("tc.run", {"algo": algo}) as sp_total:
        with timed_span("tc.prepare", {"relabel": relabel}):
            low = _prepare(a, relabel)
        if call_log is not None:
            call_log.append((low, low, low, False))
        with timed_span(
            "tc.spgemm", {"algo": algo, "phases": phases}, counter=counter
        ) as sp_mm:
            c = masked_spgemm(
                low,
                low,
                low,
                algo=algo,
                impl=impl,
                phases=phases,
                semiring=PLUS_PAIR,
                counter=counter,
                backend=backend if algo == "auto" else None,
            )
        with timed_span("tc.reduce"):
            tri = int(round(reduce_sum(c)))
    return TriangleCountResult(
        triangles=tri,
        spgemm_seconds=sp_mm.seconds,
        total_seconds=sp_total.seconds,
        counter=counter,
        l_nnz=low.nnz,
    )
