"""Sparse deep neural network inference with masked SpGEMM.

The MIT/GraphChallenge Sparse DNN benchmark drives layered sparse
matrix products: activations ``Y`` (batch x neurons, sparse) flow through
sparse weight layers ``W_l`` as

    Y <- ReLU(Y @ W_l + bias_l)

Masked SpGEMM gives this pipeline a *budgeted* variant: keeping only the
top-k activations per sample (activation sparsification, standard in
sparse-DNN inference) means the next layer's product needs only those
output columns — which is a masked product whose mask is the surviving
activation pattern's reachable set.  This module implements:

* :func:`sparse_dnn_forward` — exact layered inference (plain SpGEMM),
* :func:`sparse_dnn_forward_topk` — per-layer top-k sparsified inference
  where each layer is computed through :func:`repro.core.masked_spgemm`
  with the candidate mask built from the surviving activations,
* :func:`random_sparse_dnn` — a synthetic RadiX-net-style network.

It is an extension application in the spirit of the paper's intro (masked
SpGEMM beyond graph analytics), with the exact variant as its oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..engine import resolve_session
from ..machine import OpCounter
from ..semiring import PLUS_TIMES
from ..sparse import CSR
from ..core import masked_spgemm, spgemm_saxpy_fast

__all__ = [
    "SparseDNN",
    "random_sparse_dnn",
    "sparse_dnn_forward",
    "sparse_dnn_forward_topk",
    "DNNResult",
]


@dataclass
class SparseDNN:
    """A layered sparse network: weights[l] is (neurons x neurons) CSR."""

    weights: List[CSR]
    biases: List[float]

    @property
    def depth(self) -> int:
        return len(self.weights)

    @property
    def neurons(self) -> int:
        return self.weights[0].nrows

    def validate(self) -> "SparseDNN":
        if len(self.biases) != len(self.weights):
            raise ValueError("one bias per layer required")
        n = self.neurons
        for w in self.weights:
            if w.shape != (n, n):
                raise ValueError("all layers must be square and same size")
        return self


def random_sparse_dnn(
    neurons: int = 1024,
    depth: int = 4,
    fan_in: int = 16,
    bias: float = -0.3,
    seed: int = 0,
) -> SparseDNN:
    """A synthetic sparse network: every neuron reads ``fan_in`` random
    inputs with positive-skewed weights; a negative bias induces activation
    sparsity through ReLU (the GraphChallenge recipe)."""
    rng = np.random.default_rng(seed)
    weights = []
    for _l in range(depth):
        rows = np.repeat(np.arange(neurons), fan_in)
        cols = rng.integers(0, neurons, size=neurons * fan_in)
        vals = rng.normal(0.25, 0.5, size=neurons * fan_in)
        weights.append(CSR.from_coo((neurons, neurons), rows, cols, vals))
    return SparseDNN(weights, [bias] * depth).validate()


@dataclass
class DNNResult:
    """Final activations + per-layer statistics."""

    activations: CSR
    nnz_per_layer: List[int] = field(default_factory=list)
    flops: int = 0
    counter: OpCounter = field(default_factory=OpCounter)


def _relu_bias(y: CSR, bias: float) -> CSR:
    out = y.copy()
    out.data[:] = np.maximum(0.0, out.data + bias)
    return out.drop_zeros()


def sparse_dnn_forward(
    net: SparseDNN,
    x: CSR,
    *,
    counter: Optional[OpCounter] = None,
) -> DNNResult:
    """Exact layered inference: ``Y <- ReLU(Y @ W_l + bias)`` per layer.

    The bias is applied only to positions with a stored value (sparse-DNN
    convention: inactive neurons stay inactive)."""
    counter = counter if counter is not None else OpCounter()
    y = x
    nnzs = []
    for w, b in zip(net.weights, net.biases):
        y = spgemm_saxpy_fast(y, w, counter=counter)
        y = _relu_bias(y, b)
        nnzs.append(y.nnz)
    return DNNResult(activations=y, nnz_per_layer=nnzs,
                     flops=counter.flops, counter=counter)


def _topk_rows(y: CSR, k: int) -> CSR:
    """Keep the k largest activations per row."""
    rows_out = []
    cols_out = []
    vals_out = []
    for i in range(y.nrows):
        cols, vals = y.row(i)
        if cols.shape[0] > k:
            part = np.argpartition(-vals, k - 1)[:k]
            cols, vals = cols[part], vals[part]
        rows_out.append(np.full(cols.shape[0], i, dtype=np.int64))
        cols_out.append(cols)
        vals_out.append(vals)
    return CSR.from_coo(
        y.shape,
        np.concatenate(rows_out) if rows_out else np.empty(0, np.int64),
        np.concatenate(cols_out) if cols_out else np.empty(0, np.int64),
        np.concatenate(vals_out) if vals_out else np.empty(0),
    )


def sparse_dnn_forward_topk(
    net: SparseDNN,
    x: CSR,
    *,
    top_k: int = 32,
    algo: str = "auto",
    counter: Optional[OpCounter] = None,
    session=None,
    delta="auto",
) -> DNNResult:
    """Budgeted inference: after each layer keep only the top-k activations
    per sample, and compute the next layer as a *masked* product restricted
    to the columns reachable from the survivors.

    The candidate mask for layer ``l`` is ``pattern(Y_sparse @ pattern(W_l))``
    — exactly the reachable output positions — built with a cheap boolean
    product on the already-sparsified ``Y``; the masked numeric product then
    prices only those positions.  With ``top_k >= max row nnz`` this equals
    the exact forward pass.

    The weight layers are constant across batches, so a long-lived
    ``session`` (an :class:`~repro.engine.ExecutionSession`; default:
    loop-local for ``algo="auto"``, ``False`` disables) keeps their
    fingerprints and published segments warm across calls.  ``delta``
    (default ``"auto"``; ignored without a session) threads the layers
    through the incremental engine — per-layer operands usually change
    wholesale, so most calls diff and fall back, but repeated batches on
    identical activations return the cached result outright
    (``docs/incremental.md``).
    """
    counter = counter if counter is not None else OpCounter()
    session, owned = resolve_session(session, auto=(algo == "auto"))
    y = x
    nnzs = []
    try:
        for w, b in zip(net.weights, net.biases):
            y = _topk_rows(y, top_k)
            # reachable output pattern of the sparsified activations
            mask = spgemm_saxpy_fast(y.pattern(), w.pattern()).pattern()
            y = masked_spgemm(y, w, mask, algo=algo, semiring=PLUS_TIMES,
                              counter=counter, session=session,
                              delta=delta if session is not None else None)
            y = _relu_bias(y, b)
            nnzs.append(y.nnz)
    finally:
        if owned and session is not None:
            session.close()
    return DNNResult(activations=y, nnz_per_layer=nnzs,
                     flops=counter.flops, counter=counter)
