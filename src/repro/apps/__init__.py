"""Graph-analytics applications built on masked SpGEMM: the paper's three
benchmarks (Triangle Counting, k-truss, Betweenness Centrality) plus BFS."""

from .betweenness import BetweennessResult, betweenness_centrality
from .bfs import BFSResult, multi_source_bfs
from .connected_components import CCResult, connected_components
from .direction_bfs import DirectionBFSResult, direction_optimized_bfs
from .ktruss import KTrussResult, ktruss
from .markov_clustering import MCLResult, markov_clustering
from .sparse_dnn import (
    DNNResult,
    SparseDNN,
    random_sparse_dnn,
    sparse_dnn_forward,
    sparse_dnn_forward_topk,
)
from .sssp import SSSPResult, sssp
from .streaming import (
    StreamingResult,
    edge_stream_from_graph,
    sliding_window_triangles,
)
from .tree_inference import (
    InferenceResult,
    LabelTree,
    beam_search_inference,
    exhaustive_inference,
    random_label_tree,
)
from .triangle_counting import (
    TriangleCountResult,
    triangle_count,
    triangle_count_detail,
)

__all__ = [
    "BetweennessResult",
    "betweenness_centrality",
    "BFSResult",
    "multi_source_bfs",
    "CCResult",
    "connected_components",
    "DirectionBFSResult",
    "direction_optimized_bfs",
    "KTrussResult",
    "ktruss",
    "MCLResult",
    "markov_clustering",
    "SSSPResult",
    "sssp",
    "StreamingResult",
    "edge_stream_from_graph",
    "sliding_window_triangles",
    "DNNResult",
    "SparseDNN",
    "random_sparse_dnn",
    "sparse_dnn_forward",
    "sparse_dnn_forward_topk",
    "InferenceResult",
    "LabelTree",
    "beam_search_inference",
    "exhaustive_inference",
    "random_label_tree",
    "TriangleCountResult",
    "triangle_count",
    "triangle_count_detail",
]
