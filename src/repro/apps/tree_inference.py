"""Tree-based extreme multi-label inference via masked SpGEMM.

The paper's introduction cites Etter et al. [21] ("Accelerating inference
for sparse extreme multi-label ranking trees") as a masked-SpGEMM
application beyond graph analytics.  The computation: a *probabilistic
label tree* (PLT) ranks a huge label set by beam search — each tree level
holds a weight matrix ``W_l`` (rows = tree nodes at level l, columns =
features), queries are sparse feature vectors ``X`` (batch x features),
and level ``l`` scores only the *children of the current beam*:

    S_l = M_l .* (X @ W_l^T)

where the mask ``M_l`` (batch x nodes_l) holds exactly the beam-children
pairs.  The beam keeps the top-``beam_width`` scoring nodes per query and
descends.  The mask is what makes this fast: without it, every query would
score every node at every level.

This module implements the PLT structure, the beam-search inference on top
of :func:`repro.core.masked_spgemm`, and an unmasked ("score everything")
reference for validation/benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..machine import OpCounter
from ..semiring import PLUS_TIMES
from ..sparse import CSR
from ..core import masked_spgemm

__all__ = ["LabelTree", "beam_search_inference", "exhaustive_inference",
           "random_label_tree", "InferenceResult"]


@dataclass
class LabelTree:
    """A probabilistic label tree.

    ``levels[l]`` is the weight matrix of level ``l`` as CSR with shape
    ``(n_nodes_l, n_features)``; ``children[l][p]`` lists the level-``l+1``
    node ids under node ``p`` of level ``l``.  Level 0 is the root level
    (often a handful of coarse clusters); the last level's nodes are the
    labels themselves.
    """

    levels: List[CSR]
    children: List[List[np.ndarray]]

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def n_labels(self) -> int:
        return self.levels[-1].nrows

    def validate(self) -> "LabelTree":
        if len(self.children) != len(self.levels) - 1:
            raise ValueError("children must link consecutive levels")
        for l, kids in enumerate(self.children):
            if len(kids) != self.levels[l].nrows:
                raise ValueError(f"level {l}: children list length mismatch")
            seen = np.concatenate([k for k in kids]) if kids else np.empty(0)
            n_next = self.levels[l + 1].nrows
            if seen.shape[0] != n_next or np.unique(seen).shape[0] != n_next:
                raise ValueError(
                    f"level {l}: children must partition level {l + 1}"
                )
        return self


def random_label_tree(
    n_features: int,
    branching: int = 8,
    depth: int = 3,
    nnz_per_node: int = 12,
    seed: int = 0,
) -> LabelTree:
    """A synthetic PLT with ``branching**(l+1)`` nodes at level ``l``.

    Built bottom-up like a real probabilistic label tree: leaf (label)
    weight rows are sparse random vectors, and every internal node's row is
    the (sparsified) mean of its children's rows — so a parent's score
    predicts its subtree's scores and beam search is informative.
    """
    rng = np.random.default_rng(seed)
    children: List[List[np.ndarray]] = []
    # leaf level
    n_leaves = branching**depth
    rows = np.repeat(np.arange(n_leaves), nnz_per_node)
    cols = rng.integers(0, n_features, size=n_leaves * nnz_per_node)
    vals = rng.normal(size=n_leaves * nnz_per_node)
    leaf = CSR.from_coo((n_leaves, n_features), rows, cols, vals)
    levels = [leaf]
    # internal levels: parent row = mean of children rows, truncated to the
    # heaviest nnz_per_node entries (a sparsified subtree summary)
    cur = leaf
    for l in range(depth - 1, 0, -1):
        n_nodes = branching**l
        kid_ids = np.arange(n_nodes * branching).reshape(n_nodes, branching)
        p_rows: List[int] = []
        p_cols: List[int] = []
        p_vals: List[float] = []
        for p in range(n_nodes):
            acc: dict = {}
            for c in kid_ids[p]:
                ccols, cvals = cur.row(int(c))
                for j, v in zip(ccols, cvals):
                    acc[int(j)] = acc.get(int(j), 0.0) + float(v) / branching
            top = sorted(acc.items(), key=lambda kv: -abs(kv[1]))
            for j, v in top[: nnz_per_node * 2]:
                p_rows.append(p)
                p_cols.append(j)
                p_vals.append(v)
        parent = CSR.from_coo(
            (n_nodes, n_features),
            np.asarray(p_rows, dtype=np.int64),
            np.asarray(p_cols, dtype=np.int64),
            np.asarray(p_vals),
        )
        levels.insert(0, parent)
        children.insert(0, [kid_ids[p] for p in range(n_nodes)])
        cur = parent
    return LabelTree(levels, children).validate()


@dataclass
class InferenceResult:
    """Top-k labels and scores per query, plus work statistics."""

    labels: np.ndarray  #: (batch, k) label ids (-1 padding)
    scores: np.ndarray  #: (batch, k) scores
    masked_flops: int = 0
    counter: OpCounter = field(default_factory=OpCounter)


def _topk_per_row(scores: CSR, k: int) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Top-k (indices, values) of each row of a CSR score matrix."""
    out = []
    for i in range(scores.nrows):
        cols, vals = scores.row(i)
        if cols.shape[0] <= k:
            order = np.argsort(-vals, kind="stable")
        else:
            part = np.argpartition(-vals, k - 1)[:k]
            order = part[np.argsort(-vals[part], kind="stable")]
        out.append((cols[order], vals[order]))
    return out


def beam_search_inference(
    tree: LabelTree,
    x: CSR,
    *,
    beam_width: int = 4,
    top_k: int = 5,
    algo: str = "auto",
    counter: Optional[OpCounter] = None,
) -> InferenceResult:
    """Masked-SpGEMM beam search over the label tree.

    At each level the mask contains, for every query, exactly the children
    of its current beam nodes, so the masked product prices only
    ``batch * beam * branching`` dot products instead of
    ``batch * n_nodes``.
    """
    counter = counter if counter is not None else OpCounter()
    batch = x.nrows

    def masked_scores(mask: CSR, level: int) -> CSR:
        """Masked product plus explicit zeros for mask candidates the
        product missed — a beam candidate with no shared features scores 0
        and must stay rankable (it may beat negative scores)."""
        wt = tree.levels[level].transpose()  # features x nodes
        s = masked_spgemm(x, wt, mask, algo=algo, semiring=PLUS_TIMES,
                          counter=counter)
        from ..sparse import ewise_add, mask_pattern

        zeros = mask_pattern(mask, s, complement=True)
        zeros = CSR(zeros.shape, zeros.indptr, zeros.indices,
                    np.zeros(zeros.nnz), sorted_indices=zeros.sorted_indices,
                    check=False)
        return ewise_add(s, zeros)

    # level 0: beam over all root nodes (scored exhaustively — tiny)
    full_mask = CSR.from_dense(np.ones((batch, tree.levels[0].nrows)))
    scores = masked_scores(full_mask, 0)
    beams = _topk_per_row(scores, beam_width)

    for l in range(1, tree.depth):
        kids = tree.children[l - 1]
        m_rows: List[int] = []
        m_cols: List[int] = []
        for q in range(batch):
            beam_nodes, _ = beams[q]
            for p in beam_nodes:
                ch = kids[int(p)]
                m_rows.extend([q] * len(ch))
                m_cols.extend(ch.tolist())
        n_nodes = tree.levels[l].nrows
        mask = CSR.from_coo(
            (batch, n_nodes),
            np.asarray(m_rows, dtype=np.int64),
            np.asarray(m_cols, dtype=np.int64),
            np.ones(len(m_rows)),
        )
        scores = masked_scores(mask, l)
        width = beam_width if l + 1 < tree.depth else top_k
        beams = _topk_per_row(scores, width)

    labels = np.full((batch, top_k), -1, dtype=np.int64)
    vals = np.zeros((batch, top_k))
    for q, (cols, sc) in enumerate(beams):
        k = min(top_k, cols.shape[0])
        labels[q, :k] = cols[:k]
        vals[q, :k] = sc[:k]
    return InferenceResult(labels=labels, scores=vals,
                           masked_flops=counter.flops, counter=counter)


def exhaustive_inference(
    tree: LabelTree,
    x: CSR,
    *,
    top_k: int = 5,
    counter: Optional[OpCounter] = None,
) -> InferenceResult:
    """Reference: score every leaf label with a full (unmasked) product."""
    counter = counter if counter is not None else OpCounter()
    from ..core import spgemm_saxpy_fast

    wt = tree.levels[-1].transpose()
    scores = spgemm_saxpy_fast(x, wt, counter=counter)
    # rank over ALL labels (implicit zeros included) — a label the query
    # shares no features with scores 0, which outranks negative scores
    dense = scores.to_dense()
    labels = np.full((x.nrows, top_k), -1, dtype=np.int64)
    vals = np.zeros((x.nrows, top_k))
    for q in range(x.nrows):
        row = dense[q]
        part = np.argpartition(-row, min(top_k, row.shape[0]) - 1)[:top_k]
        order = part[np.argsort(-row[part], kind="stable")]
        order = order[np.argsort(-row[order], kind="stable")]
        labels[q, : order.shape[0]] = order
        vals[q, : order.shape[0]] = row[order]
    return InferenceResult(labels=labels, scores=vals,
                           masked_flops=counter.flops, counter=counter)
