"""k-truss via iterated masked SpGEMM — paper Section 8.3.

The k-truss of a graph is the maximal subgraph in which every edge is
supported by at least ``k - 2`` triangles.  The masked-SpGEMM formulation
(Davis [15]): iterate

    S = A .* (A @ A)          # support of every edge (PLUS_PAIR semiring)
    A = { edges with S >= k-2 }

until no edge is removed.  Each iteration is one masked SpGEMM whose mask is
the *current* (shrinking) adjacency — this is why the paper observes the
mask getting sparser as pruning proceeds, favouring pull-based schemes.

The paper reports ``sum(flops of all masked SpGEMMs) / total time``; the
result object carries both pieces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..engine import resolve_session
from ..machine import OpCounter, total_flops
from ..observe import timed_span
from ..semiring import PLUS_PAIR
from ..sparse import CSR
from ..core import masked_spgemm

__all__ = ["ktruss", "KTrussResult"]


@dataclass
class KTrussResult:
    """Outcome of one k-truss run."""

    truss: CSR  #: adjacency of the k-truss subgraph (pattern)
    iterations: int
    spgemm_seconds: float  #: time inside masked SpGEMM calls only
    total_seconds: float
    flops: int  #: sum of flops(A@A) over all iterations (paper's numerator)
    edges_per_iter: List[int] = field(default_factory=list)
    counter: OpCounter = field(default_factory=OpCounter)


def ktruss(
    a: CSR,
    k: int = 5,
    *,
    algo: str = "auto",
    impl: str = "auto",
    phases: int = 1,
    max_iters: int = 100,
    counter: Optional[OpCounter] = None,
    call_log: Optional[list] = None,
    backend: Optional[str] = None,
    shards=None,
    session=None,
    delta="auto",
) -> KTrussResult:
    """Compute the ``k``-truss of the undirected graph ``a``.

    ``a`` is taken as a symmetric pattern (values ignored, diagonal
    dropped).  Each iteration performs ``S = A .* (A @ A)`` with the
    current adjacency as the mask and keeps edges with support
    ``>= k - 2``.

    ``call_log``, if given, receives one ``(a, b, mask, complement)`` tuple
    per masked SpGEMM call so benches can model every scheme from a single
    recorded run.  ``backend`` (``algo="auto"`` only) forces the execution
    backend of each iteration's masked SpGEMM — iterative apps like this
    are exactly where the persistent process pool amortises its spawn cost.
    ``shards`` is passed through to every iteration's masked SpGEMM (see
    ``docs/sharding.md``); with a session and the process backend, the
    final fixed-point iteration re-multiplies an unchanged adjacency, so
    its shard segments are served from the session's registry.

    ``session`` controls cross-call caching: pass an
    :class:`~repro.engine.ExecutionSession` to share one across apps,
    ``None`` (default, ``algo="auto"`` only) to open a loop-local session,
    or ``False`` to disable caching entirely.

    ``delta`` (default ``"auto"``) makes each sessioned iteration
    incremental (see ``docs/incremental.md``): the pruning loop removes a
    shrinking edge set per round, so once the delta is small only the
    dirty output rows are recomputed and spliced into the previous
    round's support matrix — bit-for-bit identical to full recomputation,
    with the saved work certified by ``counter.rows_patched``.  Pass
    ``None`` to recompute fully every round; ignored without a session.
    """
    if k < 3:
        raise ValueError("k must be >= 3")
    counter = counter if counter is not None else OpCounter()
    # sharded runs route through the engine even with a forced algo, so
    # they benefit from (and default to) a loop-local session as well
    session, owned = resolve_session(
        session, auto=(algo == "auto" or shards is not None)
    )
    # per-iteration spans (edges shrink as pruning proceeds — the paper's
    # sparsifying-mask observation) with the masked SpGEMM nested inside;
    # timed_span keeps the result's second fields populated untraced
    try:
        with timed_span("ktruss.run", {"k": k, "algo": algo}) as sp_total:
            cur = a.pattern().triu(1)
            # rebuild full symmetric pattern without diagonal
            cur = _sym(cur)
            support_needed = k - 2
            spgemm_time = 0.0
            flops = 0
            edges = []
            it = 0
            for it in range(1, max_iters + 1):
                edges.append(cur.nnz)
                flops += total_flops(cur, cur)
                if call_log is not None:
                    call_log.append((cur, cur, cur, False))
                with timed_span(
                    "ktruss.iter", {"iteration": it, "edges": cur.nnz}
                ):
                    with timed_span(
                        "ktruss.spgemm", {"algo": algo, "phases": phases},
                        counter=counter,
                    ) as sp_mm:
                        s = masked_spgemm(
                            cur, cur, cur, algo=algo, impl=impl, phases=phases,
                            semiring=PLUS_PAIR, counter=counter,
                            backend=backend
                            if (algo == "auto" or shards is not None)
                            else None,
                            shards=shards,
                            session=session,
                            delta=delta if session is not None else None,
                        )
                    spgemm_time += sp_mm.seconds
                    # keep edges of cur whose support >= k-2; edges with zero
                    # support are absent from s entirely
                    keep_rows, keep_cols, keep_vals = s.to_coo()
                    strong = keep_vals >= support_needed
                    nxt = CSR.from_coo(
                        cur.shape, keep_rows[strong], keep_cols[strong],
                        np.ones(int(strong.sum())),
                    )
                if nxt.nnz == cur.nnz:
                    cur = nxt
                    break
                cur = nxt
        total = sp_total.seconds
    finally:
        if owned and session is not None:
            session.close()
    return KTrussResult(
        truss=cur,
        iterations=it,
        spgemm_seconds=spgemm_time,
        total_seconds=total,
        flops=flops,
        edges_per_iter=edges,
        counter=counter,
    )


def _sym(upper: CSR) -> CSR:
    rows, cols, vals = upper.to_coo()
    r = np.concatenate([rows, cols])
    c = np.concatenate([cols, rows])
    return CSR.from_coo(upper.shape, r, c, np.ones(r.shape[0])).pattern()
