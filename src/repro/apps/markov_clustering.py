"""Markov Clustering (MCL) — an SpGEMM-driven application [35, 36].

The paper lists Markov clustering among the applications whose backbone is
SpGEMM (Section 2, citing Van Dongen and the HipMCL work of two of the
authors).  MCL alternates:

* **expansion** — ``M = M @ M`` (a plain SpGEMM on column-stochastic M),
* **inflation** — element-wise power ``M .^ r`` followed by column
  re-normalisation,
* **pruning** — drop entries below a threshold (keeping columns stochastic),

until the matrix converges to a doubly-idempotent limit whose connected
structure gives the clusters.

Masked SpGEMM enters through the pruning: since tiny entries are dropped
anyway, the expansion step can be *restricted upfront* to positions likely
to survive — we use the pattern of ``M`` itself plus its strongest
2-hop closure as the mask (``selective expansion``), trading a small
accuracy tolerance for a large flop saving.  The unmasked variant is the
exact reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..engine import resolve_session
from ..machine import OpCounter
from ..sparse import CSR, pattern_union
from ..core import masked_spgemm, spgemm_saxpy_fast

__all__ = ["markov_clustering", "MCLResult"]


@dataclass
class MCLResult:
    """Clusters plus convergence statistics."""

    clusters: List[np.ndarray]
    labels: np.ndarray  #: cluster id per vertex
    iterations: int
    converged: bool
    flops: int = 0
    counter: OpCounter = field(default_factory=OpCounter)


def _column_normalize(m: CSR) -> CSR:
    rows, cols, vals = m.to_coo()
    colsum = np.zeros(m.ncols)
    np.add.at(colsum, cols, vals)
    colsum[colsum == 0] = 1.0
    return CSR.from_coo(m.shape, rows, cols, vals / colsum[cols])


def _inflate(m: CSR, r: float) -> CSR:
    out = m.copy()
    out.data[:] = np.power(out.data, r)
    return _column_normalize(out)


def _prune(m: CSR, threshold: float) -> CSR:
    return _column_normalize(m.drop_zeros(threshold))


def _connected_components(m: CSR) -> np.ndarray:
    """Union-find over the symmetrised pattern."""
    n = m.nrows
    parent = np.arange(n)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    rows, cols, _ = m.to_coo()
    for i, j in zip(rows, cols):
        ri, rj = find(int(i)), find(int(j))
        if ri != rj:
            parent[ri] = rj
    return np.asarray([find(int(v)) for v in range(n)])


def markov_clustering(
    a: CSR,
    *,
    inflation: float = 2.0,
    prune_threshold: float = 1e-4,
    max_iters: int = 60,
    tol: float = 1e-8,
    selective_expansion: bool = False,
    algo: str = "auto",
    counter: Optional[OpCounter] = None,
    session=None,
    delta="auto",
) -> MCLResult:
    """Cluster the undirected graph ``a`` with MCL.

    ``selective_expansion=True`` replaces the plain expansion SpGEMM with a
    masked one restricted to ``pattern(M) U pattern(M_strong^2)`` where
    ``M_strong`` keeps each column's heavier half — the flop-saving trick
    enabled by masked SpGEMM.  ``session`` (an
    :class:`~repro.engine.ExecutionSession`; default: loop-local when the
    masked expansion is in play, ``False`` disables) caches plans across
    the expansion iterations.  ``delta`` (default ``"auto"``; ignored
    without a session) makes the sessioned expansion incremental: as the
    iteration converges, M's rows stabilise and only the still-moving
    rows are recomputed (``docs/incremental.md``).
    """
    if a.nrows != a.ncols:
        raise ValueError("adjacency must be square")
    counter = counter if counter is not None else OpCounter()
    session, owned = resolve_session(
        session, auto=(selective_expansion and algo == "auto")
    )
    n = a.nrows
    # add self loops (standard MCL initialisation) and normalise
    loops = CSR.from_coo((n, n), np.arange(n), np.arange(n), np.ones(n))
    from ..sparse import ewise_add

    m = _column_normalize(ewise_add(a.pattern(), loops))
    flops = 0
    converged = False
    it = 0
    try:
        for it in range(1, max_iters + 1):
            from ..machine import total_flops

            flops += total_flops(m, m)
            if selective_expansion:
                strong = m.drop_zeros(float(np.median(m.data)) * 0.5)
                hop2 = spgemm_saxpy_fast(strong.pattern(), strong.pattern())
                mask = pattern_union(m.pattern(), hop2.pattern())
                expanded = masked_spgemm(
                    m, m, mask, algo=algo, counter=counter, session=session,
                    delta=delta if session is not None else None,
                )
            else:
                expanded = spgemm_saxpy_fast(m, m, counter=counter)
            nxt = _prune(_inflate(expanded, inflation), prune_threshold)
            # convergence: stable pattern and values
            if nxt.nnz == m.nnz and nxt.equals(m, rtol=0, atol=tol):
                m = nxt
                converged = True
                break
            m = nxt
    finally:
        if owned and session is not None:
            session.close()

    labels_raw = _connected_components(m)
    ids = {r: k for k, r in enumerate(np.unique(labels_raw))}
    labels = np.asarray([ids[r] for r in labels_raw])
    clusters = [np.flatnonzero(labels == k) for k in range(len(ids))]
    return MCLResult(
        clusters=clusters, labels=labels, iterations=it,
        converged=converged, flops=flops, counter=counter,
    )
