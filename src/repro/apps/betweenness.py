"""Batched Betweenness Centrality via masked SpGEMM — paper Section 8.4.

Multi-source Brandes [8] in the GraphBLAS formulation [11]: a batch of
``s`` sources is processed as ``s x n`` sparse matrices.

Forward (BFS) sweep — uses the **complemented** mask:

    frontier_{d+1} = !numsp_pattern .* (frontier_d @ A)     (PLUS_TIMES)
    numsp += frontier_{d+1}

``numsp`` accumulates shortest-path counts; the complemented mask prevents
re-discovering visited vertices — the paper's canonical use of mask
complement.

Backward (dependency) sweep — uses the **plain** mask:

    w_d   = frontier_d .* ((1 + delta) / numsp)             (element-wise)
    t_d   = frontier_{d-1} .* (w_d @ A^T)                   (masked SpGEMM)
    delta += t_d .* numsp_{(d-1) pattern values}

Finally ``bc(v) = sum_q delta[q, v]`` over the batch, excluding each
source's own row entry (Brandes's ``w != s`` guard).

For undirected graphs ``A^T = A``; we multiply by ``A`` transposed
explicitly so directed graphs are also handled.

The paper's metric is TEPS = ``batch_size * num_edges / total_time`` with a
batch of 512; batch size is a parameter here (laptop-scale benches use
smaller batches, see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..engine import resolve_session
from ..machine import OpCounter
from ..observe import timed_span
from ..semiring import PLUS_TIMES
from ..sparse import CSR
from ..core import masked_spgemm
from ..core.masked_spgemm import supports_complement

__all__ = ["betweenness_centrality", "BetweennessResult"]


@dataclass
class BetweennessResult:
    """Outcome of one batched BC run."""

    centrality: np.ndarray  #: length-n BC scores (sum over the batch)
    depth: int
    spgemm_seconds: float
    total_seconds: float
    teps: float
    #: masked-SpGEMM time split by stage (paper Sec. 8.4 measures both):
    #: forward uses the complemented mask, backward the plain mask
    forward_seconds: float = 0.0
    backward_seconds: float = 0.0
    counter: OpCounter = field(default_factory=OpCounter)


def _lookup(mat: CSR, rows: np.ndarray, cols: np.ndarray, default: float) -> np.ndarray:
    """Values of ``mat`` at the given coordinates (``default`` if absent)."""
    if mat.nnz == 0:
        return np.full(rows.shape[0], default)
    m_rows = np.repeat(np.arange(mat.nrows, dtype=np.int64), mat.row_nnz())
    keys = m_rows * np.int64(mat.ncols) + mat.indices
    q = rows * np.int64(mat.ncols) + cols
    idx = np.searchsorted(keys, q)
    idx_c = np.minimum(idx, keys.shape[0] - 1)
    hit = keys[idx_c] == q
    out = np.full(rows.shape[0], default)
    out[hit] = mat.data[idx_c[hit]]
    return out


def betweenness_centrality(
    a: CSR,
    sources: Optional[Sequence[int]] = None,
    *,
    batch_size: int = 512,
    algo: str = "auto",
    impl: str = "auto",
    phases: int = 1,
    counter: Optional[OpCounter] = None,
    seed: int = 0,
    call_log: Optional[list] = None,
    backend: Optional[str] = None,
    shards=None,
    session=None,
) -> BetweennessResult:
    """Betweenness centrality restricted to a batch of source vertices.

    With ``sources=range(n)`` (and an unweighted graph) the scores match
    Brandes / networkx exactly (unnormalised, directed-sum convention:
    for undirected graphs networkx halves the scores).

    ``backend`` (``algo="auto"`` only) forces the execution backend of the
    per-level masked SpGEMMs.  ``shards`` passes the shard-grid knob
    through to every level's masked SpGEMM (see ``docs/sharding.md``).
    ``session`` controls cross-call caching —
    an :class:`~repro.engine.ExecutionSession`, ``None`` (default: open a
    loop-local one for ``algo="auto"``), or ``False`` to disable.  BC is
    the paper's best case for reuse: ``A`` and ``A^T`` are constant across
    every level, so their shm segments publish once and only the small
    frontier/numsp operands move per call.
    """
    if not supports_complement(algo):
        raise ValueError(
            f"{algo} cannot run BC: the forward sweep needs a complemented "
            "mask (the paper excludes MCA and Inner here too)"
        )
    n = a.nrows
    if a.ncols != n:
        raise ValueError("adjacency must be square")
    # unweighted shortest paths: only the pattern of A matters
    a = a.pattern()
    if sources is None:
        rng = np.random.default_rng(seed)
        k = min(batch_size, n)
        sources = rng.choice(n, size=k, replace=False)
    sources = np.asarray(list(sources), dtype=np.int64)
    s = sources.shape[0]
    counter = counter if counter is not None else OpCounter()
    session, owned = resolve_session(
        session, auto=(algo == "auto" or shards is not None)
    )
    # stage spans: per-step forward (complemented mask) / backward (plain
    # mask) breakdowns appear in trace exports; timed_span also feeds the
    # result's *_seconds fields when tracing is off
    try:
        return _betweenness_body(
            a, sources, s, algo=algo, impl=impl, phases=phases,
            counter=counter, call_log=call_log, backend=backend,
            shards=shards, session=session,
        )
    finally:
        if owned and session is not None:
            session.close()


def _betweenness_body(
    a: CSR,
    sources: np.ndarray,
    s: int,
    *,
    algo: str,
    impl: str,
    phases: int,
    counter: OpCounter,
    call_log: Optional[list],
    backend: Optional[str],
    shards,
    session,
) -> BetweennessResult:
    n = a.nrows
    with timed_span("bc.run", {"batch": s, "algo": algo}) as sp_total:
        a_t = a.transpose()

        # frontier_0: one unit entry per source row
        frontier = CSR.from_coo(
            (s, n), np.arange(s, dtype=np.int64), sources, np.ones(s)
        )
        numsp = frontier.copy()
        frontiers: List[CSR] = [frontier]
        spgemm_time = 0.0
        forward_time = 0.0
        backward_time = 0.0

        # ---- forward sweep ----
        level = 0
        while frontier.nnz:
            if call_log is not None:
                call_log.append((frontier, a, numsp, True))
            level += 1
            with timed_span(
                "bc.forward", {"depth": level, "frontier_nnz": frontier.nnz},
                counter=counter,
            ) as sp_f:
                frontier = masked_spgemm(
                    frontier, a, numsp, algo=algo, impl=impl, phases=phases,
                    complement=True, semiring=PLUS_TIMES, counter=counter,
                    backend=backend
                    if (algo == "auto" or shards is not None)
                    else None,
                    shards=shards, session=session,
                )
            spgemm_time += sp_f.seconds
            forward_time += sp_f.seconds
            if frontier.nnz == 0:
                break
            frontiers.append(frontier)
            fr, fc, fv = frontier.to_coo()
            nr, nc, nv = numsp.to_coo()
            numsp = CSR.from_coo(
                (s, n),
                np.concatenate([nr, fr]),
                np.concatenate([nc, fc]),
                np.concatenate([nv, fv]),
            )

        depth = len(frontiers) - 1

        # ---- backward sweep ----
        delta = CSR.empty((s, n))
        for d in range(depth, 0, -1):
            f_d = frontiers[d]
            rows, cols, _ = f_d.to_coo()
            # w = f_d .* ((1 + delta) / numsp)
            dvals = _lookup(delta, rows, cols, 0.0)
            spv = _lookup(numsp, rows, cols, 1.0)
            w = CSR.from_coo((s, n), rows, cols, (1.0 + dvals) / spv)
            if call_log is not None:
                call_log.append((w, a_t, frontiers[d - 1], False))
            with timed_span(
                "bc.backward", {"depth": d}, counter=counter
            ) as sp_b:
                t_d = masked_spgemm(
                    w, a_t, frontiers[d - 1], algo=algo, impl=impl,
                    phases=phases, semiring=PLUS_TIMES, counter=counter,
                    backend=backend
                    if (algo == "auto" or shards is not None)
                    else None,
                    shards=shards, session=session,
                )
            spgemm_time += sp_b.seconds
            backward_time += sp_b.seconds
            # delta += t_d .* numsp (on t_d's pattern)
            tr, tc, tv = t_d.to_coo()
            contrib = tv * _lookup(numsp, tr, tc, 0.0)
            dr, dc, dv = delta.to_coo()
            delta = CSR.from_coo(
                (s, n),
                np.concatenate([dr, tr]),
                np.concatenate([dc, tc]),
                np.concatenate([dv, contrib]),
            )

        # centrality: column sums of delta, excluding each source's own entry
        out = np.zeros(n)
        dr, dc, dv = delta.to_coo()
        own = dc == sources[dr]
        np.add.at(out, dc[~own], dv[~own])
    total = sp_total.seconds
    teps = s * a.nnz / total if total > 0 else 0.0
    return BetweennessResult(
        centrality=out,
        depth=depth,
        spgemm_seconds=spgemm_time,
        total_seconds=total,
        teps=teps,
        forward_seconds=forward_time,
        backward_seconds=backward_time,
        counter=counter,
    )
