"""Sliding-window graph analytics over an edge stream — the delta engine's
first dynamic-graph workload.

The ROADMAP names streaming/dynamic graphs as the scenario class the
incremental engine (:mod:`repro.engine.delta`, ``docs/incremental.md``)
opens up: a window sliding over an edge stream inserts a few edges at the
front and deletes a few at the back each step, so consecutive adjacency
snapshots differ in a handful of rows while the masked product
``S = A .* (A @ A)`` — per-edge triangle support, the same product k-truss
and triangle counting iterate — is recomputed per step.  Under a session
with ``delta="auto"`` each step recomputes only the rows the inserted and
deleted edges (and their neighbourhoods, through B) actually touch, and
splices them into the previous step's support matrix.  Results are
bit-for-bit identical to recomputing every window from scratch; the
saved work is certified by ``counter.rows_patched``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..engine import resolve_session
from ..machine import OpCounter
from ..observe import timed_span
from ..semiring import PLUS_PAIR
from ..sparse import CSR
from ..core import masked_spgemm

__all__ = ["StreamingResult", "sliding_window_triangles", "edge_stream_from_graph"]


@dataclass
class StreamingResult:
    """Outcome of one sliding-window run."""

    steps: int
    triangles: List[int]  #: global triangle count per window position
    edges_per_step: List[int]  #: undirected edge count of each window
    support: CSR  #: per-edge triangle support of the final window
    total_seconds: float
    counter: OpCounter = field(default_factory=OpCounter)


def edge_stream_from_graph(g: CSR, *, seed: int = 0) -> np.ndarray:
    """Shuffle a graph's undirected edges into an ``(m, 2)`` stream.

    Takes the strict upper triangle of ``g`` (each undirected edge once)
    and permutes it — the standard way to synthesise an insert-ordered
    edge stream from a static benchmark graph.
    """
    upper = g.pattern().triu(1)
    rows, cols, _ = upper.to_coo()
    edges = np.stack([rows, cols], axis=1)
    rng = np.random.default_rng(seed)
    return edges[rng.permutation(edges.shape[0])]


def _window_adjacency(edges: np.ndarray, n: int) -> CSR:
    """Symmetric, loop-free adjacency of one window's edge set."""
    if edges.shape[0] == 0:
        return CSR.empty((n, n))
    u, v = edges[:, 0], edges[:, 1]
    keep = u != v
    u, v = u[keep], v[keep]
    r = np.concatenate([u, v])
    c = np.concatenate([v, u])
    return CSR.from_coo((n, n), r, c, np.ones(r.shape[0])).pattern()


def sliding_window_triangles(
    edges: np.ndarray,
    n: int,
    *,
    window: int,
    step: int,
    algo: str = "auto",
    backend: Optional[str] = None,
    shards=None,
    counter: Optional[OpCounter] = None,
    session=None,
    delta="auto",
    max_steps: Optional[int] = None,
) -> StreamingResult:
    """Triangle support over a window sliding along an edge stream.

    ``edges`` is an ``(m, 2)`` integer array of undirected edges (self
    loops dropped, duplicates within a window deduplicated); at step
    ``t`` the active window is ``edges[t*step : t*step + window]``, so
    each step deletes ``step`` edges at the tail and inserts ``step`` at
    the head.  Every step computes ``S = A .* (A @ A)`` on the PLUS_PAIR
    semiring — ``S[i, j]`` counts the triangles through edge ``(i, j)``
    — and the global triangle count ``sum(S) / 6``.

    ``session`` / ``delta`` follow the iterative-app convention
    (:func:`~repro.apps.ktruss`): ``algo="auto"`` opens a loop-local
    session by default and ``delta="auto"`` makes each step incremental —
    a small ``step``-to-``window`` ratio is exactly the near-O(delta)
    regime ``docs/incremental.md`` describes.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must be an (m, 2) array")
    if window <= 0 or step <= 0:
        raise ValueError("window and step must be positive")
    counter = counter if counter is not None else OpCounter()
    session, owned = resolve_session(
        session, auto=(algo == "auto" or shards is not None)
    )
    triangles: List[int] = []
    edge_counts: List[int] = []
    support = CSR.empty((n, n))
    nsteps = 0
    try:
        with timed_span(
            "streaming.run", {"window": window, "step": step, "algo": algo}
        ) as sp_total:
            pos = 0
            while pos < edges.shape[0]:
                active = edges[pos:pos + window]
                cur = _window_adjacency(active, n)
                with timed_span(
                    "streaming.step",
                    {"step": nsteps, "edges": cur.nnz // 2},
                    counter=counter,
                ):
                    support = masked_spgemm(
                        cur, cur, cur, algo=algo, semiring=PLUS_PAIR,
                        counter=counter,
                        backend=backend
                        if (algo == "auto" or shards is not None)
                        else None,
                        shards=shards,
                        session=session,
                        delta=delta if session is not None else None,
                    )
                triangles.append(int(round(float(support.data.sum()) / 6.0)))
                edge_counts.append(cur.nnz // 2)
                nsteps += 1
                if max_steps is not None and nsteps >= max_steps:
                    break
                if pos + window >= edges.shape[0]:
                    break
                pos += step
        total = sp_total.seconds
    finally:
        if owned and session is not None:
            session.close()
    return StreamingResult(
        steps=nsteps,
        triangles=triangles,
        edges_per_step=edge_counts,
        support=support,
        total_seconds=total,
        counter=counter,
    )
