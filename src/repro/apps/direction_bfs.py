"""Direction-optimized BFS — the origin story of masking (paper Section 4).

Classic push-pull BFS (Beamer et al. [5], Yang et al. [38]): while the
frontier is small, *push* — expand out-edges of frontier vertices, masked
by the complement of the visited set; when the frontier is a large fraction
of the graph, *pull* — every unvisited vertex checks its in-neighbours for
frontier membership, which is a masked SpMV whose mask is the unvisited
set.

The per-level direction choice has two modes.  The default is the standard
work heuristic: pull when the frontier's outgoing-edge count exceeds
``alpha`` times the unexplored edge count (Beamer's parameterisation,
simplified).  With ``machine=`` the decision instead goes through the
machine cost model (:func:`repro.machine.estimate_spmv_direction`), which
prices both directions in cycles from the frontier/unvisited statistics —
the same model the planner uses for SpGEMM bands, so a fitted config
(``machine="fitted"``) recalibrates BFS steering too.  Every level records
its decision, the modeled cycle estimates and the frontier density in an
``app.bfs.level`` span, which the prediction ledger
(:mod:`repro.observe.ledger`) pairs with the level's measured time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..machine import OpCounter, estimate_spmv_direction, resolve_machine
from ..observe import tracer as _obs
from ..semiring import PLUS_PAIR
from ..sparse import CSC, CSR
from ..core.spmv import masked_spmv_pull, masked_spmv_push

__all__ = ["direction_optimized_bfs", "DirectionBFSResult"]


@dataclass
class DirectionBFSResult:
    """BFS levels plus the per-level push/pull decisions."""

    levels: np.ndarray  #: level per vertex, -1 if unreached
    directions: List[str] = field(default_factory=list)
    depth: int = 0


def direction_optimized_bfs(
    a: CSR,
    source: int,
    *,
    alpha: float = 4.0,
    force: Optional[str] = None,
    machine=None,
    counter: Optional[OpCounter] = None,
) -> DirectionBFSResult:
    """BFS from ``source`` with per-level push/pull direction optimization.

    ``force``: pin the direction to ``"push"`` or ``"pull"`` (for the
    ablation bench); default chooses per level.

    ``machine``: a :class:`~repro.machine.MachineConfig` (or a name such as
    ``"haswell"`` / ``"fitted"``) routes the per-level decision through the
    cost model's :func:`~repro.machine.estimate_spmv_direction` instead of
    the ``alpha`` heuristic; ``None`` (default) keeps the heuristic.
    """
    n = a.nrows
    if a.ncols != n:
        raise ValueError("adjacency must be square")
    if not (0 <= source < n):
        raise ValueError("source out of range")
    if force not in (None, "push", "pull"):
        raise ValueError("force must be None, 'push' or 'pull'")
    if machine is not None:
        machine = resolve_machine(machine)
    a = a.pattern()
    csc = CSC.from_csr(a)
    deg = a.row_nnz()

    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    x_vals = np.ones(n)

    total_edges = a.nnz
    explored = int(deg[source])
    directions: List[str] = []
    depth = 0
    while frontier.any():
        frontier_vertices = int(frontier.sum())
        frontier_edges = int(deg[frontier].sum())
        remaining = max(1, total_edges - explored)
        est = None
        if force is not None:
            direction = force
            decision_source = "forced"
        elif machine is not None:
            est = estimate_spmv_direction(
                frontier_vertices=frontier_vertices,
                frontier_edges=frontier_edges,
                unvisited_vertices=n - int(visited.sum()),
                unvisited_edges=remaining,
                nvertices=n,
                machine=machine,
            )
            direction = est.direction
            decision_source = "cost_model"
        else:
            direction = "pull" if frontier_edges * alpha > remaining else "push"
            decision_source = "alpha"
        tr = _obs.current()
        level_cm = (
            tr.span(
                "app.bfs.level",
                {"level": depth + 1, "direction": direction,
                 "decision_source": decision_source,
                 "frontier_density": frontier_vertices / max(1, n),
                 "frontier_edges": frontier_edges,
                 "est_push_cycles": est.push_cycles if est is not None else 0.0,
                 "est_pull_cycles": est.pull_cycles if est is not None else 0.0},
                counter=counter,
            )
            if tr is not None else _obs.NULL_SPAN
        )
        with level_cm:
            if direction == "push":
                # next = !visited .* (frontier^T A)
                _, nxt = masked_spmv_push(
                    a, x_vals, frontier, visited,
                    complement=True, semiring=PLUS_PAIR, counter=counter,
                )
            else:
                # next = unvisited .* (frontier^T A): pull with the unvisited
                # set as a plain mask — the direction-optimized formulation
                _, nxt = masked_spmv_pull(
                    csc, x_vals, frontier, ~visited,
                    semiring=PLUS_PAIR, counter=counter,
                )
            nxt &= ~visited
        if not nxt.any():
            break
        depth += 1
        directions.append(direction)
        levels[nxt] = depth
        visited |= nxt
        explored += int(deg[nxt].sum())
        frontier = nxt
    return DirectionBFSResult(levels=levels, directions=directions, depth=depth)
