"""Single/multi-source shortest paths on the min-plus semiring.

Frontier-driven Bellman–Ford in GraphBLAS style: distances relax through

    cand = frontier (min.+) A

and the next frontier is the set of vertices whose distance improved —
computed with masked SpMV so each step only touches the active frontier's
out-edges.  Exercises the MIN_PLUS semiring end-to-end (the TC/k-truss/BC
apps all use PLUS-monoids).

Edge weights are the stored values of ``a`` (must be non-negative for the
delta-check early exit to be safe; negative edges fall back to full
|V|-round Bellman–Ford semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..machine import OpCounter
from ..semiring import MIN_PLUS
from ..sparse import CSR
from ..core.spmv import masked_spmv_push

__all__ = ["sssp", "SSSPResult"]


@dataclass
class SSSPResult:
    """Shortest-path distances per source."""

    dist: np.ndarray  #: (n_sources, n) distances; inf if unreachable
    sources: np.ndarray
    rounds: int


def sssp(
    a: CSR,
    sources: Sequence[int],
    *,
    counter: Optional[OpCounter] = None,
    max_rounds: Optional[int] = None,
) -> SSSPResult:
    """Shortest paths from each source over the weighted adjacency ``a``."""
    n = a.nrows
    if a.ncols != n:
        raise ValueError("adjacency must be square")
    if a.nnz and a.data.min() < 0:
        raise ValueError("sssp requires non-negative edge weights")
    sources = np.asarray(list(sources), dtype=np.int64)
    if sources.size and (sources.min() < 0 or sources.max() >= n):
        raise ValueError("source out of range")
    rounds_cap = max_rounds if max_rounds is not None else n
    dist = np.full((sources.shape[0], n), np.inf)
    total_rounds = 0
    all_mask = np.ones(n, dtype=bool)
    for q, src in enumerate(sources):
        d = dist[q]
        d[src] = 0.0
        frontier = np.zeros(n, dtype=bool)
        frontier[src] = True
        for _ in range(rounds_cap):
            cand, hit = masked_spmv_push(
                a, d, frontier, all_mask, semiring=MIN_PLUS, counter=counter
            )
            improved = hit & (cand < d)
            if not improved.any():
                break
            d[improved] = cand[improved]
            frontier = improved
            total_rounds += 1
    return SSSPResult(dist=dist, sources=sources, rounds=total_rounds)
