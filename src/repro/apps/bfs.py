"""Multi-source BFS via masked SpGEMM (supplementary application).

Not one of the paper's three benchmarks, but the simplest exercise of the
complemented-mask path ("any multi-source graph traversal where the mask
serves as a filter to avoid rediscovery of previously discovered vertices",
paper Section 1): each BFS level is

    frontier_{d+1} = !visited .* (frontier_d @ A)

on the PLUS_PAIR semiring (any parent counts once — only reachability
matters).  Returns the level of every vertex for every source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..engine import resolve_session
from ..machine import OpCounter
from ..semiring import PLUS_PAIR
from ..sparse import CSR
from ..core import masked_spgemm

__all__ = ["multi_source_bfs", "BFSResult"]


@dataclass
class BFSResult:
    """levels[q, v] = BFS depth of v from sources[q]; -1 if unreachable."""

    levels: np.ndarray
    sources: np.ndarray
    depth: int


def multi_source_bfs(
    a: CSR,
    sources: Sequence[int],
    *,
    algo: str = "auto",
    impl: str = "auto",
    counter: Optional[OpCounter] = None,
    session=None,
) -> BFSResult:
    """Level-synchronous BFS from every source at once (one masked SpGEMM
    per level; the complemented mask is the visited set).  ``A`` is
    constant across levels, so a ``session`` (an
    :class:`~repro.engine.ExecutionSession`; default: loop-local for
    ``algo="auto"``, ``False`` disables) publishes it once."""
    n = a.nrows
    if a.ncols != n:
        raise ValueError("adjacency must be square")
    sources = np.asarray(list(sources), dtype=np.int64)
    s = sources.shape[0]
    levels = np.full((s, n), -1, dtype=np.int64)
    levels[np.arange(s), sources] = 0

    frontier = CSR.from_coo((s, n), np.arange(s, dtype=np.int64), sources, np.ones(s))
    visited = frontier.copy()
    session, owned = resolve_session(session, auto=(algo == "auto"))
    d = 0
    try:
        while frontier.nnz:
            d += 1
            frontier = masked_spgemm(
                frontier, a, visited, algo=algo, impl=impl, complement=True,
                semiring=PLUS_PAIR, counter=counter, session=session,
            )
            if frontier.nnz == 0:
                d -= 1
                break
            fr, fc, _ = frontier.to_coo()
            levels[fr, fc] = d
            vr, vc, vv = visited.to_coo()
            visited = CSR.from_coo(
                (s, n),
                np.concatenate([vr, fr]),
                np.concatenate([vc, fc]),
                np.concatenate([vv, np.ones(fr.shape[0])]),
            )
    finally:
        if owned and session is not None:
            session.close()
    return BFSResult(levels=levels, sources=sources, depth=d)
