"""Reproduction of "Parallel Algorithms for Masked Sparse Matrix-Matrix
Products" (ICPP 2022)."""

import logging as _logging

__version__ = "1.0.0"

# Library logging convention: one "repro" logger hierarchy, silent by
# default (NullHandler), so degradations that change execution behaviour —
# e.g. the process backend falling back to threads on an untransferable
# semiring — are observable the moment an application configures logging,
# without the library ever printing on its own.
logger = _logging.getLogger("repro")
logger.addHandler(_logging.NullHandler())
