"""Reproduction of "Parallel Algorithms for Masked Sparse Matrix-Matrix
Products" (ICPP 2022)."""
__version__ = "1.0.0"
