"""Additional synthetic graph families for the real-world stand-in suite.

The SuiteSparse collection matrices the paper benchmarks span several
structural regimes: low-degree planar road networks, regular 2D/3D meshes,
heavy-tailed web/social graphs, small-world graphs and near-bipartite
matrices.  These generators provide deterministic members of each family so
that the 26-graph suite (:mod:`repro.graphs.suite`) exercises the same
density/structure axes that drive the paper's performance crossovers.
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSR

__all__ = [
    "grid2d",
    "grid3d",
    "path_like_road",
    "small_world",
    "power_law",
    "block_diagonal_dense",
    "bipartite_like",
]


def _symmetrize(n: int, rows: np.ndarray, cols: np.ndarray) -> CSR:
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    r = np.concatenate([rows, cols])
    c = np.concatenate([cols, rows])
    return CSR.from_coo((n, n), r, c, np.ones(r.shape[0])).pattern()


def grid2d(side: int, *, diagonal: bool = False) -> CSR:
    """4-connected (8-connected with ``diagonal``) 2D grid graph."""
    n = side * side
    idx = np.arange(n, dtype=np.int64)
    x, y = idx % side, idx // side
    rows, cols = [], []
    shifts = [(1, 0), (0, 1)]
    if diagonal:
        shifts += [(1, 1), (1, -1)]
    for dx, dy in shifts:
        ok = (x + dx >= 0) & (x + dx < side) & (y + dy >= 0) & (y + dy < side)
        rows.append(idx[ok])
        cols.append((x + dx)[ok] + (y + dy)[ok] * side)
    return _symmetrize(n, np.concatenate(rows), np.concatenate(cols))


def grid3d(side: int) -> CSR:
    """6-connected 3D mesh."""
    n = side**3
    idx = np.arange(n, dtype=np.int64)
    x = idx % side
    y = (idx // side) % side
    z = idx // (side * side)
    rows, cols = [], []
    for dx, dy, dz in [(1, 0, 0), (0, 1, 0), (0, 0, 1)]:
        ok = (x + dx < side) & (y + dy < side) & (z + dz < side)
        rows.append(idx[ok])
        cols.append((x + dx)[ok] + (y + dy)[ok] * side + (z + dz)[ok] * side * side)
    return _symmetrize(n, np.concatenate(rows), np.concatenate(cols))


def path_like_road(n: int, *, extra_every: int = 37, seed: int = 0) -> CSR:
    """Road-network-like graph: a long path with sparse shortcut edges —
    very low, near-constant degree like the SuiteSparse road matrices."""
    rng = np.random.default_rng(seed)
    idx = np.arange(n - 1, dtype=np.int64)
    rows = [idx]
    cols = [idx + 1]
    n_extra = max(1, n // extra_every)
    er = rng.integers(0, n, size=n_extra, dtype=np.int64)
    ec = np.minimum(n - 1, er + rng.integers(2, 50, size=n_extra))
    rows.append(er)
    cols.append(ec)
    return _symmetrize(n, np.concatenate(rows), np.concatenate(cols))


def small_world(n: int, k: int = 4, p: float = 0.05, *, seed: int = 0) -> CSR:
    """Watts–Strogatz-style ring lattice with random rewiring."""
    rng = np.random.default_rng(seed)
    idx = np.arange(n, dtype=np.int64)
    rows, cols = [], []
    for d in range(1, k // 2 + 1):
        tgt = (idx + d) % n
        rewire = rng.random(n) < p
        tgt = np.where(rewire, rng.integers(0, n, size=n, dtype=np.int64), tgt)
        rows.append(idx)
        cols.append(tgt)
    return _symmetrize(n, np.concatenate(rows), np.concatenate(cols))


def power_law(n: int, m_edges: int, *, exponent: float = 2.1, seed: int = 0) -> CSR:
    """Heavy-tailed graph via the configuration-model shortcut: endpoint of
    each edge drawn with probability proportional to ``rank^(-1/(exp-1))``."""
    rng = np.random.default_rng(seed)
    w = np.power(np.arange(1, n + 1, dtype=np.float64), -1.0 / (exponent - 1.0))
    w /= w.sum()
    rows = rng.choice(n, size=m_edges, p=w).astype(np.int64)
    cols = rng.choice(n, size=m_edges, p=w).astype(np.int64)
    return _symmetrize(n, rows, cols)


def block_diagonal_dense(n_blocks: int, block: int, *, seed: int = 0, fill: float = 0.6) -> CSR:
    """Dense diagonal blocks — mimics matrices with locally dense structure
    (e.g. FEM or cliques), a regime where push flops grow quadratically."""
    rng = np.random.default_rng(seed)
    n = n_blocks * block
    rows, cols = [], []
    for t in range(n_blocks):
        base = t * block
        rr, cc = np.nonzero(rng.random((block, block)) < fill)
        rows.append(rr + base)
        cols.append(cc + base)
    return _symmetrize(n, np.concatenate(rows).astype(np.int64), np.concatenate(cols).astype(np.int64))


def bipartite_like(n_left: int, n_right: int, degree: float, *, seed: int = 0) -> CSR:
    """Near-bipartite square graph: edges only between the two vertex sets
    (plus none inside), stored as one square adjacency of size left+right."""
    rng = np.random.default_rng(seed)
    n = n_left + n_right
    m = int(n_left * degree)
    rows = rng.integers(0, n_left, size=m, dtype=np.int64)
    cols = n_left + rng.integers(0, n_right, size=m, dtype=np.int64)
    return _symmetrize(n, rows, cols)
