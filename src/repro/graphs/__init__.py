"""Graph/matrix generators: Erdős–Rényi, R-MAT (Graph500), structural
families, the 26-graph real-world stand-in suite, and relabeling."""

from .erdos_renyi import erdos_renyi, erdos_renyi_graph
from .generators import (
    bipartite_like,
    block_diagonal_dense,
    grid2d,
    grid3d,
    path_like_road,
    power_law,
    small_world,
)
from .relabel import degree_sort_permutation, relabel_by_degree
from .rmat import GRAPH500_EDGE_FACTOR, GRAPH500_PARAMS, rmat
from .suite import SUITE, load, load_all, suite_names

__all__ = [
    "erdos_renyi",
    "erdos_renyi_graph",
    "bipartite_like",
    "block_diagonal_dense",
    "grid2d",
    "grid3d",
    "path_like_road",
    "power_law",
    "small_world",
    "degree_sort_permutation",
    "relabel_by_degree",
    "GRAPH500_EDGE_FACTOR",
    "GRAPH500_PARAMS",
    "rmat",
    "SUITE",
    "load",
    "load_all",
    "suite_names",
]
