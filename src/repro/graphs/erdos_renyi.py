"""Erdős–Rényi random sparse matrices.

The paper uses ER graphs for the controlled density experiments (Figure 7),
parameterised by the expected *degree* (nonzeros per row) rather than an
edge probability, so we expose the same knob.
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSR

__all__ = ["erdos_renyi", "erdos_renyi_graph"]


def erdos_renyi(
    nrows: int,
    ncols: int,
    degree: float,
    *,
    seed: int = 0,
    values: str = "uniform",
) -> CSR:
    """Random matrix with ``degree`` expected nonzeros per row.

    Sampling draws ``round(nrows * degree)`` coordinates uniformly with
    replacement and deduplicates, so the realised density is slightly below
    the target for dense settings — the standard G(n, M)-style generator.

    ``values``: ``"uniform"`` (U(0,1]), ``"ones"``.
    """
    if degree < 0:
        raise ValueError("degree must be non-negative")
    rng = np.random.default_rng(seed)
    m = int(round(nrows * degree))
    m = min(m, nrows * ncols)
    rows = rng.integers(0, nrows, size=m, dtype=np.int64)
    cols = rng.integers(0, ncols, size=m, dtype=np.int64)
    if values == "ones":
        vals = np.ones(m)
    else:
        vals = rng.random(m) + 1e-9
    # deduplicate coordinates (keep first occurrence)
    keys = rows * np.int64(ncols) + cols
    _, first = np.unique(keys, return_index=True)
    return CSR.from_coo((nrows, ncols), rows[first], cols[first], vals[first])


def erdos_renyi_graph(n: int, degree: float, *, seed: int = 0, symmetric: bool = True) -> CSR:
    """ER *graph* adjacency matrix: square, zero diagonal, optionally
    symmetrised (undirected)."""
    a = erdos_renyi(n, n, degree, seed=seed)
    rows, cols, vals = a.to_coo()
    keep = rows != cols
    rows, cols, vals = rows[keep], cols[keep], vals[keep]
    if symmetric:
        # canonicalise each sampled edge to (min, max) so both directions
        # get the SAME value, then deduplicate and mirror
        lo = np.minimum(rows, cols)
        hi = np.maximum(rows, cols)
        keys = lo * np.int64(n) + hi
        order = np.argsort(keys, kind="stable")
        keys, lo, hi, vals = keys[order], lo[order], hi[order], vals[order]
        uniq = np.empty(keys.shape[0], dtype=bool)
        if keys.shape[0]:
            uniq[0] = True
            uniq[1:] = keys[1:] != keys[:-1]
        lo, hi, vals = lo[uniq], hi[uniq], vals[uniq]
        rows = np.concatenate([lo, hi])
        cols = np.concatenate([hi, lo])
        vals = np.concatenate([vals, vals])
    return CSR.from_coo((n, n), rows, cols, vals)
