"""The 26-graph "real-world" stand-in suite.

The paper benchmarks the 26 SuiteSparse matrices of Nagasaka et al. (their
Table 2; input nnz 350K-100M).  That collection is not available offline,
so — per the DESIGN.md substitution table — this module defines 26 named,
deterministic synthetic graphs spanning the same structural axes at
laptop-friendly sizes: ER at several densities, R-MAT/power-law heavy
tails, 2D/3D meshes, road-like planar graphs, small-world graphs,
near-bipartite and locally-dense matrices.

The suite is what the performance-profile experiments (Figures 8, 9, 12,
13, 16) iterate over.  Each entry is a zero-argument factory so benches pay
only for the graphs they use; :func:`load` memoises.

Sizes are chosen so the full 14-scheme sweep over the suite finishes in
minutes in pure Python while keeping nnz spread over ~2 orders of
magnitude (3K-300K), preserving the small-vs-large cache crossovers.
Pass ``scale_factor`` to :func:`load`/:func:`load_all` to grow everything
for a beefier machine.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..sparse import CSR
from .erdos_renyi import erdos_renyi_graph
from .generators import (
    bipartite_like,
    block_diagonal_dense,
    grid2d,
    grid3d,
    path_like_road,
    power_law,
    small_world,
)
from .rmat import rmat

__all__ = ["SUITE", "suite_names", "load", "load_all"]


def _s(x: float, f: float) -> int:
    return max(4, int(x * f))


def _build_suite() -> Dict[str, Callable[[float], CSR]]:
    # name -> factory(scale_factor). Degrees/densities fixed; sizes scale.
    return {
        # --- Erdős–Rényi at increasing density (Figure-7 regimes) ---
        "er-sparse-s": lambda f: erdos_renyi_graph(_s(2000, f), 3, seed=11),
        "er-sparse-l": lambda f: erdos_renyi_graph(_s(12000, f), 4, seed=12),
        "er-mid-s": lambda f: erdos_renyi_graph(_s(1500, f), 12, seed=13),
        "er-mid-l": lambda f: erdos_renyi_graph(_s(8000, f), 14, seed=14),
        "er-dense-s": lambda f: erdos_renyi_graph(_s(800, f), 40, seed=15),
        "er-dense-l": lambda f: erdos_renyi_graph(_s(3000, f), 48, seed=16),
        # --- R-MAT / heavy-tailed (web & social-like) ---
        "rmat-10": lambda f: rmat(10, seed=21),
        "rmat-11": lambda f: rmat(11, seed=22),
        "rmat-12": lambda f: rmat(12, seed=23),
        "rmat-13-ef8": lambda f: rmat(13, edge_factor=8, seed=24),
        "powerlaw-s": lambda f: power_law(_s(3000, f), _s(24000, f), seed=25),
        "powerlaw-l": lambda f: power_law(_s(15000, f), _s(120000, f), seed=26),
        "powerlaw-steep": lambda f: power_law(_s(8000, f), _s(48000, f), exponent=1.9, seed=27),
        # --- meshes (FEM-like regular structure) ---
        "grid2d-s": lambda f: grid2d(_s(48, f)),
        "grid2d-l": lambda f: grid2d(_s(130, f)),
        "grid2d-diag": lambda f: grid2d(_s(72, f), diagonal=True),
        "grid3d-s": lambda f: grid3d(_s(14, f)),
        "grid3d-l": lambda f: grid3d(_s(24, f)),
        # --- road-like (very low degree, huge diameter) ---
        "road-s": lambda f: path_like_road(_s(8000, f), seed=31),
        "road-l": lambda f: path_like_road(_s(40000, f), seed=32),
        # --- small world ---
        "smallworld-s": lambda f: small_world(_s(4000, f), k=6, p=0.03, seed=41),
        "smallworld-l": lambda f: small_world(_s(20000, f), k=8, p=0.08, seed=42),
        # --- locally dense / clique-ish ---
        "blockdense-s": lambda f: block_diagonal_dense(_s(30, f), 24, seed=51),
        "blockdense-l": lambda f: block_diagonal_dense(_s(80, f), 32, seed=52),
        # --- near-bipartite ---
        "bipartite-s": lambda f: bipartite_like(_s(1500, f), _s(2500, f), 6, seed=61),
        "bipartite-l": lambda f: bipartite_like(_s(6000, f), _s(9000, f), 8, seed=62),
    }


SUITE: Dict[str, Callable[[float], CSR]] = _build_suite()

_cache: Dict[tuple, CSR] = {}


def suite_names() -> List[str]:
    """The 26 suite graph names, in canonical order."""
    return list(SUITE.keys())


def load(name: str, scale_factor: float = 1.0) -> CSR:
    """Build (and memoise) one suite graph."""
    if name not in SUITE:
        raise KeyError(f"unknown suite graph {name!r}")
    key = (name, scale_factor)
    if key not in _cache:
        _cache[key] = SUITE[name](scale_factor)
    return _cache[key]


def load_all(scale_factor: float = 1.0, names=None) -> Dict[str, CSR]:
    """Build the whole suite (or the named subset)."""
    return {n: load(n, scale_factor) for n in (names or suite_names())}
