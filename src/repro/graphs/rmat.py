"""R-MAT (Recursive MATrix) graph generator — Chakrabarti et al. [13].

The paper's scaling experiments (Figures 10, 11, 14, 15) use R-MAT graphs
"with parameters identical to those used in the Graph500 benchmark":
``(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`` and edge factor 16.  A graph of
*scale* ``s`` has ``2^s`` vertices and ``edge_factor * 2^s`` generated
edges (before dedup / self-loop removal, per Graph500 convention).

The generator is fully vectorized: every one of the ``s`` bit levels is
drawn for all edges at once.
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSR

__all__ = ["rmat", "GRAPH500_PARAMS", "GRAPH500_EDGE_FACTOR"]

GRAPH500_PARAMS = (0.57, 0.19, 0.19, 0.05)
GRAPH500_EDGE_FACTOR = 16


def rmat(
    scale: int,
    *,
    edge_factor: int = GRAPH500_EDGE_FACTOR,
    params: tuple = GRAPH500_PARAMS,
    seed: int = 0,
    symmetric: bool = True,
    drop_self_loops: bool = True,
) -> CSR:
    """Generate an R-MAT adjacency matrix of ``2**scale`` vertices."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    a, b, c, d = params
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("R-MAT parameters must sum to 1")
    n = 1 << scale
    m = edge_factor * n
    rng = np.random.default_rng(seed)

    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    # per-level quadrant choice: P(row bit=0, col bit=0)=a, (0,1)=b,
    # (1,0)=c, (1,1)=d
    for _level in range(scale):
        r = rng.random(m)
        row_bit = (r >= a + b).astype(np.int64)
        col_bit = (((r >= a) & (r < a + b)) | (r >= a + b + c)).astype(np.int64)
        rows = (rows << 1) | row_bit
        cols = (cols << 1) | col_bit

    vals = rng.random(m) + 1e-9
    if drop_self_loops:
        keep = rows != cols
        rows, cols, vals = rows[keep], cols[keep], vals[keep]
    if symmetric:
        rows, cols, vals = (
            np.concatenate([rows, cols]),
            np.concatenate([cols, rows]),
            np.concatenate([vals, vals]),
        )
    # CSR.from_coo sums duplicates; for adjacency use pattern semantics
    mat = CSR.from_coo((n, n), rows, cols, vals)
    return mat.pattern()
