"""Vertex relabeling helpers.

Triangle counting (paper Section 8.2) requires "vertices in the original
graph [to] be sorted in non-increasing order of their degrees" before taking
``L = tril(A)`` — the standard trick [29] that bounds the work of
``L .* (L @ L)``.
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSR

__all__ = ["degree_sort_permutation", "relabel_by_degree"]


def degree_sort_permutation(a: CSR, *, ascending: bool = False) -> np.ndarray:
    """Permutation ``perm`` such that vertex ``i`` of the relabeled graph is
    vertex ``perm[i]`` of the original, ordered by degree (non-increasing by
    default).  Ties broken by vertex id for determinism."""
    deg = a.row_nnz()
    key = deg if ascending else -deg
    return np.lexsort((np.arange(a.nrows), key)).astype(np.int64)


def relabel_by_degree(a: CSR, *, ascending: bool = False) -> CSR:
    """Symmetric permutation of a square adjacency so that degrees are
    non-increasing (the triangle-counting preprocessing step)."""
    return a.permute(degree_sort_permutation(a, ascending=ascending))
