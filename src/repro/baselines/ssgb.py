"""SuiteSparse:GraphBLAS baseline stand-ins — SS:DOT and SS:SAXPY.

The paper compares against SS:GB 5.1.4's ``GrB_mxm`` (Section 8): **SS:DOT**
(a pull-based dot-product method similar to Inner) and **SS:SAXPY** (a
push-based method that accumulates *full* rows with a SPA-like structure or
a hash table chosen by a density heuristic, applying the mask only when the
row is emitted — i.e. the mask does not prune the accumulation itself for
the cases the paper measures).

Porting the actual library is out of scope (DESIGN.md substitution table);
these functions reproduce its *algorithmic behaviour*:

* ``ssgb_dot`` — inner-product masked SpGEMM, **including the B-transpose
  the library performs before each call** when the format does not match
  (the overhead the paper calls out in the BC benchmark, Section 8.4).
* ``ssgb_saxpy`` — full-row push SpGEMM followed by late masking
  (mechanically: product expansion + sort-reduce + mask filter), i.e. it
  pays ``flops(AB)`` and the full-row accumulator traffic regardless of
  the mask.

Both run real code and are also present in the cost model
(:data:`repro.machine.MODEL_ALGOS`) with a per-call library overhead term.
``scipy_masked_spgemm`` (the ground-truth oracle) lives in
:mod:`repro.baselines.scipy_ref`.
"""

from __future__ import annotations

from typing import Optional

from ..machine import OpCounter
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import CSC, CSR, mask_pattern
from ..core.kernels.inner_kernel import masked_spgemm_inner_fast
from ..core.kernels.saxpy_kernel import spgemm_saxpy_fast

__all__ = ["ssgb_dot", "ssgb_saxpy", "SSGB_ALGOS"]

SSGB_ALGOS = ("ssgb_dot", "ssgb_saxpy")


def ssgb_dot(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
) -> CSR:
    """SS:DOT-style masked SpGEMM.

    For a complemented mask the dot method must evaluate every output
    position *not* in the mask — SS:GB does this by materialising the
    complement against the full index space, which is what makes it
    "prohibitively slow" in the paper's BC runs.  We reproduce that
    behaviour: the complement pattern is built explicitly (bounded by the
    unmasked product pattern) and then the dot kernel runs on it.
    """
    if complement:
        # positions to evaluate = pattern(A@B) \ mask  (anything else is 0)
        full = spgemm_saxpy_fast(a, b, semiring=semiring, counter=counter)
        return mask_pattern(full, mask, complement=True)
    # the library transposes B into the needed orientation on every call;
    # we do the same (no caching) — this is the measured overhead
    b_csc = CSC.from_csr(b)
    return masked_spgemm_inner_fast(
        a, b, mask, semiring=semiring, counter=counter, b_csc=b_csc
    )


def ssgb_saxpy(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    complement: bool = False,
    semiring: Semiring = PLUS_TIMES,
    counter: Optional[OpCounter] = None,
) -> CSR:
    """SS:SAXPY-style masked SpGEMM: full-row push accumulation, mask
    applied only on row output."""
    full = spgemm_saxpy_fast(a, b, semiring=semiring, counter=counter)
    return mask_pattern(full, mask, complement=complement)
