"""Baselines: SS:GB algorithmic stand-ins and the scipy ground-truth oracle."""

from .scipy_ref import scipy_masked_spgemm, scipy_spgemm
from .ssgb import SSGB_ALGOS, ssgb_dot, ssgb_saxpy

__all__ = [
    "scipy_masked_spgemm",
    "scipy_spgemm",
    "SSGB_ALGOS",
    "ssgb_dot",
    "ssgb_saxpy",
]
