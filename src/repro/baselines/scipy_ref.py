"""Ground-truth oracle via scipy.sparse.

Used by tests and benches to validate every kernel: computes the masked
product the obvious way (full SpGEMM, then masking).  Only valid on the
arithmetic (PLUS_TIMES) semiring — scipy has no semiring support — so the
tests cross-check other semirings between the reference and fast tiers
instead.
"""

from __future__ import annotations

from ..sparse import CSR

__all__ = ["scipy_masked_spgemm", "scipy_spgemm"]


def scipy_spgemm(a: CSR, b: CSR) -> CSR:
    """Plain ``A @ B`` through scipy (arithmetic semiring)."""
    return CSR.from_scipy((a.to_scipy() @ b.to_scipy()).tocsr())


def scipy_masked_spgemm(a: CSR, b: CSR, mask: CSR, *, complement: bool = False) -> CSR:
    """``M .* (A @ B)`` (or ``!M``) through scipy, with explicit zeros of
    the product dropped (scipy's convention)."""
    c = (a.to_scipy() @ b.to_scipy()).tocsr()
    c.eliminate_zeros()
    m = mask.to_scipy().tocsr()
    m.data[:] = 1.0
    if complement:
        # keep entries of c not present in m
        inter = c.multiply(m)  # entries of c at masked positions
        keep = c - inter
        keep = keep.tocsr()
        # subtraction may leave explicit zeros where values coincide; use
        # pattern arithmetic instead for robustness:
        c_pat = c.copy()
        c_pat.data[:] = 1.0
        keep_pat = c_pat - c_pat.multiply(m)
        keep_pat.eliminate_zeros()
        out = c.multiply(keep_pat)
        out = out.tocsr()
        return CSR.from_scipy(out)
    out = c.multiply(m).tocsr()
    return CSR.from_scipy(out)
