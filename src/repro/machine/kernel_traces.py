"""Memory-access traces of the masked SpGEMM kernels.

The cost model (:mod:`repro.machine.cost_model`) *interpolates* the price
of a random access from the working-set size.  This module provides the
ground truth to validate that interpolation against: it synthesises the
actual byte-address streams each algorithm issues — following the five
access patterns of Section 4.2 and each accumulator's layout — and replays
them through the exact set-associative LRU simulator
(:class:`repro.machine.cache.CacheSim`).

A virtual address space is laid out per kernel run::

    [A.indptr | A.indices | A.data | B.indptr | B.indices | B.data |
     M.indptr | M.indices | accumulator arrays | output]

Traces are exact for the given matrices (every accumulator touch, B-row
fetch and mask scan appears at its true address and order); replaying them
is O(accesses) Python, so callers use laptop-scale inputs.

Used by ``benchmarks/test_ablation_cache_model.py`` to show the modeled
MSA-vs-Hash crossover agrees with simulated miss counts, and by unit tests.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..sparse import CSC, CSR
from .cache import AccessTrace, CacheSim

__all__ = ["build_trace", "replay_miss_rate", "TRACEABLE_ALGOS"]

TRACEABLE_ALGOS = ("msa", "hash", "mca", "inner")

WORD = 8


class _Layout:
    """Sequential virtual-address allocator."""

    def __init__(self) -> None:
        self._next = 0
        self.regions: Dict[str, Tuple[int, int]] = {}

    def alloc(self, name: str, words: int) -> int:
        base = self._next
        self.regions[name] = (base, words * WORD)
        self._next += words * WORD
        # separate regions by a page to avoid accidental line sharing
        self._next = (self._next + 4095) & ~4095
        return base


def _common_layout(a: CSR, b: CSR, mask: CSR):
    lay = _Layout()
    bases = {
        "a_indptr": lay.alloc("a_indptr", a.nrows + 1),
        "a_indices": lay.alloc("a_indices", max(1, a.nnz)),
        "a_data": lay.alloc("a_data", max(1, a.nnz)),
        "b_indptr": lay.alloc("b_indptr", b.nrows + 1),
        "b_indices": lay.alloc("b_indices", max(1, b.nnz)),
        "b_data": lay.alloc("b_data", max(1, b.nnz)),
        "m_indptr": lay.alloc("m_indptr", mask.nrows + 1),
        "m_indices": lay.alloc("m_indices", max(1, mask.nnz)),
    }
    return lay, bases


def _push_row_accesses(trace, bases, a: CSR, b: CSR, i: int):
    """Patterns 1-3 of Section 4.2 for output row i."""
    lo, hi = int(a.indptr[i]), int(a.indptr[i + 1])
    if hi > lo:
        span = np.arange(lo, hi, dtype=np.int64)
        trace.touch("a_row", bases["a_indices"], span)  # pattern 1
        trace.touch("a_row_vals", bases["a_data"], span)
        ks = a.indices[lo:hi]
        trace.touch("b_rowptr", bases["b_indptr"], ks)  # pattern 2
        for k in ks:  # pattern 3: stanza reads of B rows
            blo, bhi = int(b.indptr[k]), int(b.indptr[k + 1])
            if bhi > blo:
                bspan = np.arange(blo, bhi, dtype=np.int64)
                trace.touch("b_stanza", bases["b_indices"], bspan)
                trace.touch("b_stanza_vals", bases["b_data"], bspan)


def build_trace(a: CSR, b: CSR, mask: CSR, algo: str) -> AccessTrace:
    """Exact access trace of one masked SpGEMM with the given algorithm."""
    algo = algo.lower()
    if algo not in TRACEABLE_ALGOS:
        raise ValueError(f"no trace builder for {algo!r}; one of {TRACEABLE_ALGOS}")
    a = a.sort_indices()
    b = b.sort_indices()
    mask = mask.sort_indices()
    lay, bases = _common_layout(a, b, mask)
    n = b.ncols
    trace = AccessTrace()

    if algo == "inner":
        csc = CSC.from_csr(b)
        bases["bc_indptr"] = lay.alloc("bc_indptr", n + 1)
        bases["bc_indices"] = lay.alloc("bc_indices", max(1, b.nnz))
        bases["bc_data"] = lay.alloc("bc_data", max(1, b.nnz))
        bases["out"] = lay.alloc("out", max(1, mask.nnz))
        out_pos = 0
        for i in range(a.nrows):
            mlo, mhi = int(mask.indptr[i]), int(mask.indptr[i + 1])
            if mhi == mlo:
                continue
            alo, ahi = int(a.indptr[i]), int(a.indptr[i + 1])
            aspan = np.arange(alo, ahi, dtype=np.int64)
            for mp in range(mlo, mhi):
                j = int(mask.indices[mp])
                trace.touch("m_scan", bases["m_indices"], np.asarray([mp]))
                trace.touch("col_ptr", bases["bc_indptr"], np.asarray([j]))
                clo, chi = int(csc.indptr[j]), int(csc.indptr[j + 1])
                if chi > clo:
                    cspan = np.arange(clo, chi, dtype=np.int64)
                    trace.touch("col_fetch", bases["bc_indices"], cspan)
                    trace.touch("col_vals", bases["bc_data"], cspan)
                # re-walk the A row per dot product
                if ahi > alo:
                    trace.touch("a_row", bases["a_indices"], aspan)
                trace.touch("out", bases["out"], np.asarray([out_pos]))
                out_pos += 1
        return trace

    # push algorithms: accumulator layout differs
    if algo == "msa":
        bases["acc_vals"] = lay.alloc("acc_vals", n)
        bases["acc_states"] = lay.alloc("acc_states", n)
    out_words = max(1, int(np.minimum(mask.row_nnz(), 1 << 30).sum()))
    bases["out"] = lay.alloc("out", out_words)

    out_pos = 0
    for i in range(a.nrows):
        mlo, mhi = int(mask.indptr[i]), int(mask.indptr[i + 1])
        nm = mhi - mlo
        if nm == 0:
            continue
        mcols = mask.indices[mlo:mhi]
        mspan = np.arange(mlo, mhi, dtype=np.int64)
        trace.touch("m_row", bases["m_indices"], mspan)

        if algo == "hash":
            cap = max(4, 1 << int(np.ceil(np.log2(max(1, nm * 4)))))
            bases["acc_vals"] = lay.alloc(f"hash_vals_{i}", cap)
            bases["acc_states"] = bases["acc_vals"]  # packed in one entry
            slot_of = {int(c): (int(c) * 0x9E3779B1) % cap for c in mcols}
        elif algo == "mca":
            bases["acc_vals"] = lay.alloc(f"mca_vals_{i}", nm)
            slot_of = {int(c): r for r, c in enumerate(mcols)}

        # setAllowed: one accumulator touch per mask nonzero
        if algo == "msa":
            trace.touch("acc_allow", bases["acc_states"], mcols)
        elif algo == "hash":
            trace.touch(
                "acc_allow", bases["acc_vals"],
                np.asarray([slot_of[int(c)] for c in mcols]),
            )
        # (MCA: allowed-by-construction, no touches)

        # inserts: every product touches the accumulator (MSA/Hash), only
        # matched products for MCA (the merge walks m_indices instead)
        alo, ahi = int(a.indptr[i]), int(a.indptr[i + 1])
        _push_row_accesses(trace, bases, a, b, i)
        allowed = set(int(c) for c in mcols)
        for k in a.indices[alo:ahi]:
            blo, bhi = int(b.indptr[k]), int(b.indptr[k + 1])
            cols = b.indices[blo:bhi]
            if algo == "msa":
                trace.touch("acc_insert_state", bases["acc_states"], cols)
                hits = cols[np.isin(cols, mcols)]
                if hits.shape[0]:
                    trace.touch("acc_insert_val", bases["acc_vals"], hits)
            elif algo == "hash":
                probe = np.asarray(
                    [slot_of.get(int(c), (int(c) * 0x9E3779B1) % cap) for c in cols]
                )
                trace.touch("acc_insert", bases["acc_vals"], probe)
            else:  # mca: two-pointer merge re-walks the mask row
                trace.touch("mca_merge", bases["m_indices"], mspan)
                hits = [slot_of[int(c)] for c in cols if int(c) in allowed]
                if hits:
                    trace.touch("acc_insert", bases["acc_vals"], np.asarray(hits))

        # gather through the mask
        if algo == "msa":
            trace.touch("acc_gather", bases["acc_states"], mcols)
        elif algo == "hash":
            trace.touch(
                "acc_gather", bases["acc_vals"],
                np.asarray([slot_of[int(c)] for c in mcols]),
            )
        else:
            trace.touch("acc_gather", bases["acc_vals"],
                        np.arange(nm, dtype=np.int64))
        trace.touch("out", bases["out"],
                    np.arange(out_pos, out_pos + nm, dtype=np.int64))
        out_pos += nm
    return trace


def replay_miss_rate(
    a: CSR,
    b: CSR,
    mask: CSR,
    algo: str,
    *,
    cache_bytes: int = 256 * 1024,
    line_bytes: int = 64,
    assoc: int = 8,
) -> Tuple[float, int, int]:
    """Build + replay a kernel trace; returns (miss_rate, hits, misses)."""
    trace = build_trace(a, b, mask, algo)
    sim = CacheSim(cache_bytes, line_bytes=line_bytes, assoc=assoc)
    hits, misses = trace.replay(sim)
    total = hits + misses
    return (misses / total if total else 0.0), hits, misses
