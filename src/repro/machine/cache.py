"""Set-associative LRU cache simulator.

The paper's key performance arguments are cache arguments: MSA's dense
length-``n`` arrays overflow L1/L2 (Section 5.3), the Hash accumulator trades
probe overhead for compactness, the Inner algorithm streams columns of ``B``
with no reuse (Section 4.1), and the Haswell-vs-KNL differences stem from the
40 MB L3 that KNL lacks (Section 8.3).

We model a single cache level (per-thread "effective private cache" or the
shared LLC, depending on the experiment) as a set-associative LRU cache over
64-byte lines.  Kernels do not call the simulator per access — that would be
hopeless in Python; instead the cost model replays *access summaries*
(address streams in compressed form, see :class:`AccessTrace`) or uses the
analytic traffic formulas of :mod:`repro.machine.traffic` when the problem is
large.

The simulator is still exact for the streams it is given, and is unit-tested
against hand-computed miss counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

__all__ = ["CacheSim", "AccessTrace"]


class CacheSim:
    """Set-associative LRU cache over fixed-size lines.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    line_bytes:
        Cache-line size (the paper's ``L`` words; default 64 bytes = 8
        words of 8 bytes).
    assoc:
        Associativity.  ``assoc=size/line`` gives a fully-associative LRU.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 64, assoc: int = 8) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or assoc <= 0:
            raise ValueError("cache parameters must be positive")
        n_lines = max(1, size_bytes // line_bytes)
        assoc = min(assoc, n_lines)
        n_sets = max(1, n_lines // assoc)
        # round number of sets down to a power of two for cheap indexing
        n_sets = 1 << (n_sets.bit_length() - 1)
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.n_sets = n_sets
        # tags[s] is a list ordered MRU-first
        self._tags: List[List[int]] = [[] for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0

    @property
    def size_bytes(self) -> int:
        return self.n_sets * self.assoc * self.line_bytes

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate all lines and reset statistics."""
        self._tags = [[] for _ in range(self.n_sets)]
        self.reset_stats()

    def access(self, addr: int) -> bool:
        """Touch one byte address; return True on hit."""
        line = addr // self.line_bytes
        s = line & (self.n_sets - 1)
        tag = line >> 0
        ways = self._tags[s]
        try:
            i = ways.index(tag)
        except ValueError:
            self.misses += 1
            ways.insert(0, tag)
            if len(ways) > self.assoc:
                ways.pop()
            return False
        self.hits += 1
        if i:
            ways.insert(0, ways.pop(i))
        return True

    def access_range(self, start: int, nbytes: int) -> Tuple[int, int]:
        """Touch a contiguous byte range; return (hits, misses) added."""
        h0, m0 = self.hits, self.misses
        first = start // self.line_bytes
        last = (start + max(nbytes, 1) - 1) // self.line_bytes
        for line in range(first, last + 1):
            self.access(line * self.line_bytes)
        return self.hits - h0, self.misses - m0

    def access_many(self, addrs: Iterable[int]) -> Tuple[int, int]:
        """Touch a sequence of byte addresses; return (hits, misses) added."""
        h0, m0 = self.hits, self.misses
        for a in addrs:
            self.access(int(a))
        return self.hits - h0, self.misses - m0

    def miss_rate(self) -> float:
        n = self.hits + self.misses
        return self.misses / n if n else 0.0


@dataclass
class AccessTrace:
    """Compressed representation of a kernel's memory-access stream.

    A trace is a list of ``(base, offsets, stride_bytes)`` segments: the
    kernel touched ``base + offsets[i] * stride_bytes`` for each i in order.
    Contiguous streams use ``offsets=np.arange(k)``; scatter/gather streams
    pass the actual index arrays (e.g. the column ids hitting a SPA).
    ``region`` labels the logical array for reporting.
    """

    segments: List[Tuple[str, int, np.ndarray, int]]

    def __init__(self) -> None:
        self.segments = []

    def touch(
        self, region: str, base: int, offsets: np.ndarray, stride_bytes: int = 8
    ) -> None:
        self.segments.append(
            (region, int(base), np.asarray(offsets, dtype=np.int64), int(stride_bytes))
        )

    def touch_contiguous(self, region: str, base: int, nbytes: int) -> None:
        n_words = max(1, nbytes // 8)
        self.touch(region, base, np.arange(n_words, dtype=np.int64), 8)

    def replay(self, cache: CacheSim, sample: int = 1) -> Tuple[int, int]:
        """Replay the trace through a cache; returns (hits, misses).

        ``sample > 1`` replays every ``sample``-th access of long scatter
        segments (contiguous segments are always replayed exactly since
        their cost is cheap to model precisely).
        """
        h0, m0 = cache.hits, cache.misses
        for _region, base, offsets, stride in self.segments:
            addrs = base + offsets * stride
            if sample > 1 and offsets.shape[0] > 4 * sample:
                addrs = addrs[::sample]
            cache.access_many(addrs.tolist())
        return cache.hits - h0, cache.misses - m0

    def n_accesses(self) -> int:
        return sum(seg[2].shape[0] for seg in self.segments)
