"""Cost-attribution reports for the machine model.

``explain(A, B, M, machine)`` renders where each algorithm's modeled time
goes (the per-component breakdown of :class:`RowCostModel`), which is the
diagnostic a user reaches for when the model's recommendation is
surprising: it shows *why* MSA's accumulator term explodes on a large
matrix, or why Inner's column fetches dominate on a dense mask.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..sparse import CSR
from .config import HASWELL, MachineConfig
from .cost_model import MODEL_ALGOS, RowCostModel

__all__ = ["explain", "breakdown_table"]


def breakdown_table(
    a: CSR,
    b: CSR,
    mask: CSR,
    machine: MachineConfig = HASWELL,
    *,
    algos: Optional[Sequence[str]] = None,
    complement: bool = False,
    phases: int = 1,
) -> Dict[str, Dict[str, float]]:
    """``{algo: {component: cycles}}`` for the given problem."""
    model = RowCostModel(a, b, mask, machine, complement=complement)
    out: Dict[str, Dict[str, float]] = {}
    for algo in algos or MODEL_ALGOS:
        if complement and algo in ("inner", "mca"):
            continue
        est = model.estimate(algo, phases=phases)
        row = dict(est.breakdown)
        row["TOTAL"] = est.total_cycles
        out[algo] = row
    return out


def explain(
    a: CSR,
    b: CSR,
    mask: CSR,
    machine: MachineConfig = HASWELL,
    *,
    algos: Optional[Sequence[str]] = None,
    complement: bool = False,
    phases: int = 1,
    top: int = 4,
) -> str:
    """Human-readable cost attribution, cheapest algorithm first."""
    table = breakdown_table(
        a, b, mask, machine, algos=algos, complement=complement, phases=phases
    )
    lines = [
        f"Modeled cost attribution on {machine.name} "
        f"(A {a.shape} nnz={a.nnz}, B {b.shape} nnz={b.nnz}, "
        f"mask nnz={mask.nnz}{', complement' if complement else ''}):"
    ]
    for algo in sorted(table, key=lambda k: table[k]["TOTAL"]):
        row = table[algo]
        total = row.pop("TOTAL")
        parts = sorted(row.items(), key=lambda kv: -kv[1])[:top]
        detail = ", ".join(
            f"{name} {100 * v / total:.0f}%" for name, v in parts if v > 0
        )
        lines.append(f"  {algo:10s} {total:12.4g} cycles  ({detail})")
    return "\n".join(lines)
