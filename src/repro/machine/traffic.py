"""Analytic memory-traffic formulas from Section 4 of the paper.

These reproduce, verbatim, the paper's asymptotic traffic analyses:

* Pull-based (inner-product) algorithm, Section 4.1::

      traffic = nnz(A) + nnz(M) * (1 + nnz(B)/n)

  (rows of A are reused; every mask nonzero triggers a cold fetch of a
  column of B of average length ``nnz(B)/n``).

* Push-based row-by-row algorithms, Section 4.2 — the three mask- and
  accumulator-independent access patterns::

      pattern 1 (read A rows, unit stride)      : O(nnz(A))
      pattern 2 (B row pointers, random)        : O(nnz(A) * L)
      pattern 3 (B rows, stanza reads)          : O(flops(AB))

  Patterns 4 (accumulator scatter) and 5 (output write) depend on the
  accumulator and are modeled in :mod:`repro.machine.cost_model`.

All quantities are in *words* (the paper's unit: one word per index or
value).  ``L`` is the number of words per cache line.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse import CSR

__all__ = [
    "flops_per_row",
    "total_flops",
    "useful_flops_per_row",
    "pull_traffic_words",
    "push_common_traffic_words",
    "TrafficBreakdown",
]


def flops_per_row(a: CSR, b: CSR) -> np.ndarray:
    """``flops(A[i,:] @ B)`` for every row i: the number of scalar products a
    push-based algorithm evaluates *without* a mask.  (The paper counts one
    "flop" per multiply; we follow that convention.)"""
    b_row_nnz = b.row_nnz()
    if a.nnz == 0:
        return np.zeros(a.nrows, dtype=np.int64)
    contrib = b_row_nnz[a.indices]
    out = np.zeros(a.nrows, dtype=np.int64)
    np.add.at(out, np.repeat(np.arange(a.nrows), a.row_nnz()), contrib)
    return out


def total_flops(a: CSR, b: CSR) -> int:
    """``flops(AB)`` — scalar multiplications of the unmasked product."""
    return int(flops_per_row(a, b).sum())


def useful_flops_per_row(a: CSR, b: CSR, mask: CSR) -> np.ndarray:
    """Scalar products that land on an *unmasked* output position — the
    irreducible work any correct masked algorithm must perform.

    Computed exactly via a boolean SpGEMM restricted to the mask pattern.
    Cost is O(flops(AB)); used by benches for GFLOPS-style metrics.
    """
    out = np.zeros(a.nrows, dtype=np.int64)
    n = mask.ncols
    allowed = np.zeros(n, dtype=bool)
    for i in range(a.nrows):
        mcols, _ = mask.row(i)
        if mcols.shape[0] == 0:
            continue
        allowed[mcols] = True
        acols, _ = a.row(i)
        cnt = 0
        for k in acols:
            bcols, _ = b.row(int(k))
            cnt += int(allowed[bcols].sum())
        out[i] = cnt
        allowed[mcols] = False
    return out


@dataclass(frozen=True)
class TrafficBreakdown:
    """Words moved, split by the paper's access patterns."""

    read_inputs: float
    row_pointers: float
    stanza_reads: float
    accumulator: float
    output_write: float

    @property
    def total(self) -> float:
        return (
            self.read_inputs
            + self.row_pointers
            + self.stanza_reads
            + self.accumulator
            + self.output_write
        )


def pull_traffic_words(a: CSR, b: CSR, mask: CSR) -> float:
    """Section 4.1 traffic of the inner-product algorithm, in words."""
    n = b.ncols if b.ncols else 1
    return float(a.nnz + mask.nnz * (1.0 + b.nnz / n))


def push_common_traffic_words(a: CSR, b: CSR, line_words: int = 8) -> TrafficBreakdown:
    """Section 4.2 traffic common to all push-based algorithms (patterns
    1-3).  Accumulator and output terms are zero here; the cost model adds
    them per algorithm."""
    fl = total_flops(a, b)
    return TrafficBreakdown(
        read_inputs=float(2 * a.nnz),  # indices + values
        row_pointers=float(a.nnz * line_words),
        stanza_reads=float(2 * fl),
        accumulator=0.0,
        output_write=0.0,
    )
