"""Calibrate a MachineConfig from measurements on the local host.

The Haswell/KNL presets reproduce the *paper's* machines.  To predict which
masked-SpGEMM algorithm wins on the machine actually running this library,
the constants can instead be fitted locally:

* random-touch cost vs working-set size (a scatter microbenchmark at
  several sizes) gives ``hit_cycles`` / ``llc_cycles`` / ``dram_cycles``
  and the capacity breakpoints;
* a streaming pass gives the line-fetch cost;
* ``os.cpu_count()`` gives the core count.

Measurements run through the same vectorized primitives the fast kernels
use (``np.add.at`` scatter, contiguous reads), so the calibrated model
predicts *this process's* kernel behaviour, amortised Python overhead
included.  Times are converted to "cycles" at a nominal frequency — only
ratios matter to the model.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

import numpy as np

from .config import MachineConfig

__all__ = ["measure_touch_costs", "calibrate_machine"]

NOMINAL_GHZ = 1.0  # 1 cycle == 1 ns in calibrated configs


def _time_best(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_touch_costs(
    sizes_bytes: Tuple[int, ...] = (1 << 14, 1 << 17, 1 << 20, 1 << 23, 1 << 26),
    touches: int = 1 << 19,
    seed: int = 0,
) -> Dict[int, float]:
    """ns per random scatter touch into arrays of the given byte sizes."""
    rng = np.random.default_rng(seed)
    out: Dict[int, float] = {}
    vals = np.ones(touches)
    for size in sizes_bytes:
        n = max(1, size // 8)
        target = np.zeros(n)
        idx = rng.integers(0, n, size=touches)

        def body(target=target, idx=idx):
            np.add.at(target, idx, vals)

        body()  # warm-up
        out[size] = _time_best(body) / touches * 1e9
    return out


def _stream_cost_ns_per_line(nbytes: int = 1 << 26, line: int = 64) -> float:
    src = np.zeros(nbytes // 8)
    dst = np.zeros_like(src)

    def body():
        np.add(src, 1.0, out=dst)

    body()
    secs = _time_best(body)
    return secs / (nbytes / line) * 1e9


def calibrate_machine(name: str = "local", *, quick: bool = True) -> MachineConfig:
    """Fit a :class:`MachineConfig` to the local host.

    ``quick=True`` uses smaller buffers (sub-second total); ``False``
    measures with larger sweeps for more stable constants.
    """
    sizes = (1 << 14, 1 << 18, 1 << 22, 1 << 25) if quick else (
        1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26
    )
    touches = 1 << 18 if quick else 1 << 21
    costs = measure_touch_costs(sizes, touches=touches)
    sizes_sorted: List[int] = sorted(costs)
    hit_ns = costs[sizes_sorted[0]]
    dram_ns = costs[sizes_sorted[-1]]
    mid = sizes_sorted[len(sizes_sorted) // 2]
    llc_ns = costs[mid]
    # breakpoints: private capacity = largest size within 1.5x of the hit
    # cost; LLC capacity = largest size within 1.5x of the mid cost
    private = max(
        (s for s in sizes_sorted if costs[s] <= 1.5 * hit_ns),
        default=sizes_sorted[0],
    )
    llc = max(
        (s for s in sizes_sorted if costs[s] <= 1.5 * llc_ns),
        default=private,
    )
    line_ns = _stream_cost_ns_per_line(1 << 24 if quick else 1 << 26)
    cores = os.cpu_count() or 1
    ghz = NOMINAL_GHZ
    return MachineConfig(
        name=name,
        cores=cores,
        ghz=ghz,
        private_cache_bytes=int(private),
        llc_bytes=int(llc) if llc > private else 0,
        hit_cycles=max(0.25, hit_ns * ghz),
        llc_cycles=max(0.5, llc_ns * ghz),
        dram_cycles=max(1.0, dram_ns * ghz, line_ns * ghz),
    )
