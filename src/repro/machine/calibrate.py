"""Calibrate a MachineConfig from measurements on the local host.

The Haswell/KNL presets reproduce the *paper's* machines.  To predict which
masked-SpGEMM algorithm wins on the machine actually running this library,
the constants can instead be fitted locally:

* random-touch cost vs working-set size (a scatter microbenchmark at
  several sizes) gives ``hit_cycles`` / ``llc_cycles`` / ``dram_cycles``
  and the capacity breakpoints;
* a streaming pass gives the line-fetch cost;
* ``os.cpu_count()`` gives the core count.

Measurements run through the same vectorized primitives the fast kernels
use (``np.add.at`` scatter, contiguous reads), so the calibrated model
predicts *this process's* kernel behaviour, amortised Python overhead
included.  Times are converted to "cycles" at a nominal frequency — only
ratios matter to the model.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Dict, List, Tuple

import numpy as np

from .config import MachineConfig

__all__ = [
    "measure_touch_costs",
    "calibrate_machine",
    "measure_backend_overhead",
    "calibrate_process_crossover",
]

NOMINAL_GHZ = 1.0  # 1 cycle == 1 ns in calibrated configs


def _time_best(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_touch_costs(
    sizes_bytes: Tuple[int, ...] = (1 << 14, 1 << 17, 1 << 20, 1 << 23, 1 << 26),
    touches: int = 1 << 19,
    seed: int = 0,
) -> Dict[int, float]:
    """ns per random scatter touch into arrays of the given byte sizes."""
    rng = np.random.default_rng(seed)
    out: Dict[int, float] = {}
    vals = np.ones(touches)
    for size in sizes_bytes:
        n = max(1, size // 8)
        target = np.zeros(n)
        idx = rng.integers(0, n, size=touches)

        def body(target=target, idx=idx):
            np.add.at(target, idx, vals)

        body()  # warm-up
        out[size] = _time_best(body) / touches * 1e9
    return out


def _stream_cost_ns_per_line(nbytes: int = 1 << 26, line: int = 64) -> float:
    src = np.zeros(nbytes // 8)
    dst = np.zeros_like(src)

    def body():
        np.add(src, 1.0, out=dst)

    body()
    secs = _time_best(body)
    return secs / (nbytes / line) * 1e9


def calibrate_machine(name: str = "local", *, quick: bool = True) -> MachineConfig:
    """Fit a :class:`MachineConfig` to the local host.

    ``quick=True`` uses smaller buffers (sub-second total); ``False``
    measures with larger sweeps for more stable constants.
    """
    sizes = (1 << 14, 1 << 18, 1 << 22, 1 << 25) if quick else (
        1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26
    )
    touches = 1 << 18 if quick else 1 << 21
    costs = measure_touch_costs(sizes, touches=touches)
    sizes_sorted: List[int] = sorted(costs)
    hit_ns = costs[sizes_sorted[0]]
    dram_ns = costs[sizes_sorted[-1]]
    mid = sizes_sorted[len(sizes_sorted) // 2]
    llc_ns = costs[mid]
    # breakpoints: private capacity = largest size within 1.5x of the hit
    # cost; LLC capacity = largest size within 1.5x of the mid cost
    private = max(
        (s for s in sizes_sorted if costs[s] <= 1.5 * hit_ns),
        default=sizes_sorted[0],
    )
    llc = max(
        (s for s in sizes_sorted if costs[s] <= 1.5 * llc_ns),
        default=private,
    )
    line_ns = _stream_cost_ns_per_line(1 << 24 if quick else 1 << 26)
    cores = os.cpu_count() or 1
    ghz = NOMINAL_GHZ
    return MachineConfig(
        name=name,
        cores=cores,
        ghz=ghz,
        private_cache_bytes=int(private),
        llc_bytes=int(llc) if llc > private else 0,
        hit_cycles=max(0.25, hit_ns * ghz),
        llc_cycles=max(0.5, llc_ns * ghz),
        dram_cycles=max(1.0, dram_ns * ghz, line_ns * ghz),
    )


# ----------------------------------------------------------------------
# Process-backend overhead calibration
# ----------------------------------------------------------------------


def _probe_problem(seed: int = 0):
    """A small masked-SpGEMM instance whose compute dominates dispatch."""
    from ..graphs import erdos_renyi

    a = erdos_renyi(256, 256, 8.0, seed=seed)
    mask = erdos_renyi(256, 256, 8.0, seed=seed + 1)
    return a, mask


def measure_backend_overhead(workers: int = 2, *, repeats: int = 3) -> Dict[str, float]:
    """Measured wall seconds of the process backend's fixed costs.

    Returns ``{"spawn_seconds", "dispatch_seconds"}``: the one-time cost of
    bringing up the persistent worker pool, and the per-call cost of
    publishing operands into shared memory, attaching them in workers and
    shipping results back — measured on a near-trivial problem so compute
    is negligible.  The pool is shut down first so the spawn is really
    measured, and left warm afterwards (later calls reuse it).
    """
    from ..parallel.executor import run_partitioned
    from ..parallel.pool import process_backend_available, shutdown_pool

    if not process_backend_available():  # pragma: no cover - platform gate
        return {"spawn_seconds": float("inf"), "dispatch_seconds": float("inf")}
    from ..graphs import erdos_renyi

    tiny = erdos_renyi(32, 32, 2.0, seed=0)
    parts = [np.arange(0, 16), np.arange(16, 32)][: max(1, workers)]

    def call():
        run_partitioned(
            tiny, tiny, tiny, algo="hash", parts=parts, backend="process"
        )

    shutdown_pool()
    t0 = time.perf_counter()
    call()  # cold: includes worker spawn
    first = time.perf_counter() - t0
    dispatch = _time_best(call, repeats)  # warm: publish/attach/dispatch only
    return {
        "spawn_seconds": max(0.0, first - dispatch),
        "dispatch_seconds": dispatch,
    }


def calibrate_process_crossover(
    machine: MachineConfig, *, workers: int = 2, margin: float = 4.0
) -> MachineConfig:
    """Fit ``process_crossover_cycles`` (and the overhead seconds) to this host.

    Runs a probe problem serially to learn the host's wall-seconds per
    *modeled* cycle, measures the process backend's per-call dispatch
    overhead, and sets the crossover so the planner picks ``process`` only
    when the modeled work is worth at least ``margin`` x the dispatch cost
    in wall time.  Returns a new (frozen-dataclass) config; the input is
    untouched.
    """
    from ..engine import Planner, execute

    a, mask = _probe_problem()
    pl = Planner(machine).plan(a, a, mask)
    modeled = sum(band.est_cycles for band in pl.bands)
    if modeled <= 0:
        from .traffic import total_flops

        modeled = max(1.0, total_flops(a, a) * machine.flop_cycles)
    wall = _time_best(lambda: execute(pl, a, a, mask, backend="serial"))
    sec_per_cycle = wall / modeled
    overhead = measure_backend_overhead(workers)
    crossover = margin * overhead["dispatch_seconds"] / max(sec_per_cycle, 1e-18)
    return dataclasses.replace(
        machine,
        process_spawn_seconds=float(overhead["spawn_seconds"]),
        process_dispatch_seconds=float(overhead["dispatch_seconds"]),
        process_crossover_cycles=float(crossover),
    )
