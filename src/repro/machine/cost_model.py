"""Per-row cost model for masked SpGEMM algorithms.

Why a model?  The paper's results are wall-clock measurements of C++/OpenMP
kernels on 32-core Haswell and 68-core KNL machines.  This reproduction runs
in CPython on a single core, where (a) the GIL forbids thread parallelism and
(b) interpreter overhead swamps cache effects.  The paper's *findings*,
however, are consequences of operation counts and memory traffic — which we
can compute exactly or near-exactly from the inputs — fed through a simple
memory-hierarchy cost function.  This module implements that function; the
scheduler (:mod:`repro.machine.scheduler`) turns per-row costs into parallel
makespans for the scaling figures.

The model charges, per output row ``i`` (notation as in the paper:
``u = A[i,:]``, ``m = M[i,:]``):

* the three mask-independent push patterns of Section 4.2 (A-row stream,
  B row-pointer randoms, B-row stanza reads),
* a streaming read of the mask row (every masked algorithm consumes it),
* algorithm-specific accumulator traffic, where a random touch into a
  working set of ``W`` bytes costs ``hit``, ``llc`` or ``dram`` cycles
  depending on how ``W`` compares with the machine's private-cache and LLC
  capacities (this is what makes MSA lose to Hash on large matrices and win
  on small ones, and what separates Haswell from KNL),
* a streaming write of the output row.

Two-phase (2P) variants are charged an additional symbolic sweep: the same
index traversal without value arithmetic (factor :data:`SYMBOLIC_FACTOR` of
the numeric index traffic), reproducing the paper's "1P beats 2P" finding.

The constants come from :class:`repro.machine.config.MachineConfig`.
Absolute predicted seconds are *not* claims about the paper's hardware;
every benchmark reports them only to compare algorithms with each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..sparse import CSR
from .config import MachineConfig
from .traffic import flops_per_row

__all__ = [
    "MODEL_ALGOS",
    "RowCostModel",
    "ModelEstimate",
    "DirectionEstimate",
    "estimate_row_cycles",
    "estimate_seconds",
    "estimate_spmv_direction",
    "SYMBOLIC_FACTOR",
]

#: Algorithms the model understands.  "ssgb_dot"/"ssgb_saxpy" model the
#: SuiteSparse:GraphBLAS baselines (see repro.baselines.ssgb).
MODEL_ALGOS = (
    "inner",
    "msa",
    "hash",
    "mca",
    "heap",
    "heapdot",
    "esc",
    "ssgb_dot",
    "ssgb_saxpy",
)

#: Relative cost of a symbolic sweep vs the numeric index traffic.
SYMBOLIC_FACTOR = 0.55

#: Expected probes per hash operation at load factor 0.25 (open addressing,
#: linear probing): ~ (1 + 1/(1-a)) / 2.
HASH_EXPECTED_PROBES = 1.17

#: Cycles per step of a branchy two-pointer sorted merge (vs 1.0 for a
#: streaming multiply-accumulate) — calibrates Inner vs push on the
#: comparable-density diagonal of Figure 7.
MERGE_CYCLES = 2.0

WORD = 8  # bytes per index/value word, as in the paper's analysis


def _random_touch_cycles(ws_bytes: np.ndarray, m: MachineConfig) -> np.ndarray:
    """Expected cycles for one random access into a working set of the given
    size: interpolates hit -> LLC -> DRAM as the set overflows each level."""
    ws = np.maximum(np.asarray(ws_bytes, dtype=np.float64), 1.0)
    p_priv = np.minimum(1.0, m.private_cache_bytes / ws)
    if m.llc_bytes > 0:
        p_llc = np.minimum(1.0, m.llc_bytes / ws)
        beyond = p_llc * m.llc_cycles + (1.0 - p_llc) * m.dram_cycles
    else:
        beyond = np.full_like(ws, m.dram_cycles)
    return p_priv * m.hit_cycles + (1.0 - p_priv) * beyond


def _stream_cycles(
    words: np.ndarray, m: MachineConfig, per_line: float | None = None
) -> np.ndarray:
    """Cycles to stream the given number of words at line granularity.

    ``per_line`` is the cost of one line fetch; defaults to DRAM, but
    callers pass a footprint-aware cost when the streamed structure may be
    cache-resident (the paper's analyses assume ``nnz >> Z``; Figure-7-size
    inputs violate that, and the crossovers depend on it)."""
    lines = np.asarray(words, dtype=np.float64) / (m.line_bytes / WORD)
    return lines * (m.dram_cycles if per_line is None else per_line)


@dataclass
class ModelEstimate:
    """Result of a model evaluation."""

    algo: str
    machine: str
    row_cycles: np.ndarray  #: modeled cycles per output row (numeric phase)
    pre_cycles: float  #: serial, non-row-parallel cycles (e.g. transpose)
    breakdown: Dict[str, float]  #: aggregate cycles by component

    @property
    def total_cycles(self) -> float:
        return float(self.row_cycles.sum() + self.pre_cycles)

    def seconds(self, machine: MachineConfig, threads: int = 1) -> float:
        """Serial-equivalent seconds at the given thread count assuming a
        perfectly balanced schedule (use the scheduler for real makespans)."""
        par = float(self.row_cycles.sum()) / max(1, threads)
        return machine.seconds(par + self.pre_cycles)


class RowCostModel:
    """Evaluates the per-row cost model for one (A, B, M, machine) tuple.

    The expensive derived statistics (per-row flops etc.) are computed once
    in the constructor and shared by every algorithm evaluation, so scanning
    all 14 schemes for a Figure-7-style grid is cheap.
    """

    def __init__(
        self,
        a: CSR,
        b: CSR,
        mask: CSR,
        machine: MachineConfig,
        *,
        complement: bool = False,
    ) -> None:
        if a.ncols != b.nrows:
            raise ValueError("inner dimensions of A and B do not agree")
        if mask.shape != (a.nrows, b.ncols):
            raise ValueError("mask shape must match the output shape")
        self.a, self.b, self.mask = a, b, mask
        self.machine = machine
        self.complement = complement
        self.n = b.ncols
        self.nnz_a = a.row_nnz().astype(np.float64)
        self.nnz_m = mask.row_nnz().astype(np.float64)
        self.flops = flops_per_row(a, b).astype(np.float64)
        n = max(1, self.n)
        # expected number of distinct columns produced by the unmasked row
        self.distinct = n * (1.0 - np.exp(-self.flops / n))
        if complement:
            # products landing outside the mask
            frac = 1.0 - self.nnz_m / n
            self.useful = self.flops * frac
            self.out_nnz = self.distinct * frac
        else:
            frac = np.minimum(1.0, self.nnz_m / n)
            self.useful = self.flops * frac
            self.out_nnz = np.minimum(self.nnz_m, self.distinct * frac + 1e-12)
        # footprint-aware per-access costs: the Section-4 analyses assume
        # nnz >> cache, but small/medium inputs are (partially) resident —
        # which is exactly what moves the Figure-7 crossovers and the
        # Haswell/KNL differences.
        b_bytes = (2 * b.nnz + b.nrows) * WORD
        a_bytes = (2 * a.nnz + a.nrows) * WORD
        m_bytes = (mask.nnz + mask.nrows) * WORD
        mach = machine
        self.b_touch = float(_random_touch_cycles(np.asarray([b_bytes]), mach)[0])
        self.a_touch = float(_random_touch_cycles(np.asarray([a_bytes]), mach)[0])
        self.m_touch = float(_random_touch_cycles(np.asarray([m_bytes]), mach)[0])

    # ------------------------------------------------------------------
    def _push_common(self) -> Dict[str, np.ndarray]:
        m = self.machine
        comp = {}
        comp["read_a"] = _stream_cycles(2.0 * self.nnz_a, m, self.a_touch)
        comp["b_rowptr"] = self.nnz_a * self.b_touch
        # stanza reads: line-granule streaming + one extra line per stanza
        comp["stanza"] = (
            _stream_cycles(2.0 * self.flops, m, self.b_touch)
            + self.nnz_a * self.b_touch
        )
        comp["read_mask"] = _stream_cycles(2.0 * self.nnz_m, m, self.m_touch)
        comp["write_out"] = _stream_cycles(2.0 * self.out_nnz, m)
        return comp

    def _finish(self, algo: str, comp: Dict[str, np.ndarray], pre: float = 0.0,
                phases: int = 1) -> ModelEstimate:
        rows = np.zeros(self.a.nrows, dtype=np.float64)
        for v in comp.values():
            rows = rows + v
        if phases == 2:
            # symbolic sweep: index traffic without value arithmetic
            sym = SYMBOLIC_FACTOR * (rows - comp.get("compute", 0.0))
            rows = rows + sym
            comp = dict(comp)
            comp["symbolic"] = sym
        breakdown = {k: float(np.sum(v)) for k, v in comp.items()}
        if pre:
            breakdown["pre"] = float(pre)
        return ModelEstimate(
            algo=algo,
            machine=self.machine.name,
            row_cycles=rows,
            pre_cycles=float(pre),
            breakdown=breakdown,
        )

    # ------------------------------------------------------------------
    # individual algorithms
    # ------------------------------------------------------------------
    def msa(self, phases: int = 1) -> ModelEstimate:
        """MSA: dense length-n accumulator; cost dominated by random touches into a 2n-word working set."""
        m = self.machine
        comp = self._push_common()
        ws = 2.0 * self.n * WORD  # values + states, length-n each
        touch = _random_touch_cycles(np.full(self.a.nrows, ws), m)
        if self.complement:
            # setNotAllowed + inserts + gather via inserted-key list
            touches = self.nnz_m + self.flops + self.out_nnz
        else:
            # setAllowed + inserts + mask-ordered gather
            touches = 2.0 * self.nnz_m + self.flops
        comp["accumulator"] = touches * touch
        comp["compute"] = self.flops * m.flop_cycles
        return self._finish("msa", comp, phases=phases)

    def hash(self, phases: int = 1) -> ModelEstimate:
        """Hash: table sized by nnz(m) at load 0.25; compact but pays probe overhead and per-row init."""
        m = self.machine
        comp = self._push_common()
        if self.complement:
            # table sized by an upper bound on the row output
            slots = 4.0 * np.minimum(self.flops, float(self.n))
        else:
            slots = 4.0 * self.nnz_m  # load factor 0.25
        ws = 2.0 * slots * WORD
        touch = _random_touch_cycles(ws, m) + HASH_EXPECTED_PROBES * m.probe_cycles
        touches = 2.0 * self.nnz_m + self.flops
        comp["accumulator"] = touches * touch
        comp["accum_init"] = _stream_cycles(2.0 * slots, m) * 0.25  # memset, write-combined
        comp["compute"] = self.flops * m.flop_cycles
        return self._finish("hash", comp, phases=phases)

    def mca(self, phases: int = 1) -> ModelEstimate:
        """MCA: compact rank-indexed accumulator plus the Algorithm-3 two-pointer merge."""
        if self.complement:
            raise ValueError("MCA does not support complemented masks (paper, Sec. 8.4)")
        m = self.machine
        comp = self._push_common()
        ws = 2.0 * self.nnz_m * WORD
        touch = _random_touch_cycles(ws, m)
        comp["accumulator"] = (self.useful + 2.0 * self.nnz_m) * touch
        # two-pointer merge of the mask against every B row (Algorithm 3):
        comp["merge"] = (
            (self.nnz_a * self.nnz_m + self.flops) * MERGE_CYCLES * m.flop_cycles
        )
        comp["compute"] = self.useful * m.flop_cycles
        return self._finish("mca", comp, phases=phases)

    def _heap(self, algo: str, ninspect: float, phases: int) -> ModelEstimate:
        m = self.machine
        comp = self._push_common()
        logu = np.log2(np.maximum(2.0, self.nnz_a))
        if self.complement:
            # NInspect = 0: every product goes through the heap
            heap_ops = self.flops * logu
            inspect = np.zeros_like(self.flops)
        elif ninspect == 0:
            heap_ops = self.flops * logu
            inspect = np.zeros_like(self.flops)
        elif ninspect == np.inf:
            # HeapDot: only intersection elements enter the heap, but every
            # INSERT's inspection loop (Algorithm 5) re-scans the mask from
            # the *shared* cursor position, so the expected per-insert scan
            # is a constant fraction of the remaining mask row — the cost
            # that makes HeapDot noncompetitive on TC/k-truss (paper Sec. 8)
            # while still winning when flops(uB) is tiny (Figure 7's
            # inputs-much-sparser-than-mask corner).
            heap_ops = self.useful * logu
            inspect = (
                self.flops * (0.5 * self.nnz_m + 1.0) + self.nnz_a
            ) * MERGE_CYCLES
        else:
            # NInspect = 1: a product skips the heap when the current mask
            # element matches (probability ~ mask density).
            alpha = np.minimum(1.0, self.nnz_m / max(1, self.n))
            heap_ops = self.flops * (alpha + (1.0 - alpha) * logu)
            inspect = self.flops
        comp["heap"] = heap_ops * m.heap_cycles
        comp["inspect"] = inspect * m.flop_cycles
        comp["compute"] = self.useful * m.flop_cycles
        return self._finish(algo, comp, phases=phases)

    def heap(self, phases: int = 1) -> ModelEstimate:
        return self._heap("heap", 0 if self.complement else 1, phases)

    def heapdot(self, phases: int = 1) -> ModelEstimate:
        return self._heap("heapdot", 0 if self.complement else np.inf, phases)

    def esc(self, phases: int = 1) -> ModelEstimate:
        """Masked Expand-Sort-Compress (extension algorithm): no random
        accumulator traffic at all — a streaming mask filter (binary search
        per product) followed by a sort of the survivors."""
        m = self.machine
        comp = self._push_common()
        # filter: one binary search into the mask keys per product
        log_m = np.log2(np.maximum(2.0, self.nnz_m))
        comp["filter"] = self.flops * log_m * 0.5 * m.flop_cycles
        # sort survivors: comparison sort, streaming passes
        useful = np.maximum(1.0, self.useful)
        comp["sort"] = self.useful * np.log2(np.maximum(2.0, useful)) * (
            1.5 * m.flop_cycles
        )
        # compress: one streaming reduction pass
        comp["compute"] = self.useful * m.flop_cycles
        return self._finish("esc", comp, phases=phases)

    def inner(self, phases: int = 1, *, pre_transpose: bool = False) -> ModelEstimate:
        """Pull-based dot products (Section 4.1): mask-driven column fetches of B."""
        if self.complement:
            # A complemented inner product would have to evaluate every
            # position NOT in the mask — the paper deems this prohibitive
            # and excludes Inner from the BC benchmark.
            raise ValueError("inner-product algorithm does not support complement")
        m = self.machine
        avg_col = self.b.nnz / max(1, self.n)
        comp: Dict[str, np.ndarray] = {}
        comp["read_a"] = _stream_cycles(2.0 * self.nnz_a, m, self.a_touch)
        comp["read_mask"] = _stream_cycles(2.0 * self.nnz_m, m, self.m_touch)
        # Each mask nonzero streams one cold column of B (Section 4.1).  The
        # column start is a *dependent* load (indptr -> column data) that the
        # prefetcher cannot hide, unlike push's long sequential row sweeps —
        # charge it a latency penalty whenever B is not private-cache
        # resident.  This is what hands the comparable-density regime to the
        # accumulator schemes (paper Fig. 7) while leaving the sparse-mask
        # regime to Inner.
        b_bytes = (2 * self.b.nnz + self.b.nrows) * WORD
        latency = 0.75 * m.dram_cycles if b_bytes > m.private_cache_bytes else 0.0
        comp["col_fetch"] = self.nnz_m * (
            _stream_cycles(np.full(self.a.nrows, 2.0 * avg_col), m, self.b_touch)
            + self.b_touch
            + latency
        )
        # sorted-merge dot product per mask entry: branchy two-pointer walk
        comp["compute"] = (
            self.nnz_m * (self.nnz_a + avg_col) * MERGE_CYCLES * m.flop_cycles
        )
        comp["write_out"] = _stream_cycles(2.0 * self.out_nnz, m)
        pre = 0.0
        if pre_transpose:
            # building the CSC of B before the call (SS:GB behaviour in BC)
            pre = float(
                self.b.nnz
                * _random_touch_cycles(
                    np.asarray([2.0 * self.b.nnz * WORD]), m
                )[0]
            )
        return self._finish("inner", comp, pre=pre, phases=phases)

    def ssgb_dot(self, phases: int = 1) -> ModelEstimate:
        """SS:DOT baseline: Inner plus the per-call B transpose and library overhead."""
        if self.complement:
            # with a complemented mask the dot method cannot enumerate the
            # output from the mask; SS:GB falls back to materialising the
            # full product and filtering — the "very serious bottleneck"
            # the paper reports for SS:DOT in BC (Section 8.4)
            est = self.ssgb_saxpy(phases=1)
            return ModelEstimate(
                "ssgb_dot", est.machine, est.row_cycles,
                est.pre_cycles + self._transpose_cycles(), est.breakdown,
            )
        est = self.inner(phases=1, pre_transpose=True)
        # library per-call analysis/dispatch overhead
        pre = est.pre_cycles + 5e4
        return ModelEstimate("ssgb_dot", est.machine, est.row_cycles, pre, est.breakdown)

    def _transpose_cycles(self) -> float:
        """Cost of building the CSC of B before the call (SS:GB re-does this
        per call when the stored orientation does not match)."""
        ws = np.asarray([2.0 * self.b.nnz * WORD])
        return float(self.b.nnz * _random_touch_cycles(ws, self.machine)[0])

    def ssgb_saxpy(self, phases: int = 1) -> ModelEstimate:
        """SS:SAXPY: push-based SpGEMM over the FULL row (mask applied only
        when the row is emitted), with an SS:GB-style SPA/hash choice."""
        m = self.machine
        comp = self._push_common()
        # SPA over the full row vs hash sized by the unmasked row output
        ws_spa = np.full(self.a.nrows, 2.0 * self.n * WORD)
        spa_touch = _random_touch_cycles(ws_spa, m)
        slots = 4.0 * np.maximum(1.0, self.distinct)
        hash_touch = (
            _random_touch_cycles(2.0 * slots * WORD, m)
            + HASH_EXPECTED_PROBES * m.probe_cycles
        )
        touches = self.flops + self.distinct  # inserts + gather (no mask help)
        comp["accumulator"] = touches * np.minimum(spa_touch, hash_touch)
        # late mask application: merge emitted row with the mask row
        comp["mask_filter"] = (
            (self.distinct + self.nnz_m) * MERGE_CYCLES * m.flop_cycles
        )
        comp["compute"] = self.flops * m.flop_cycles
        return self._finish("ssgb_saxpy", comp, pre=5e4, phases=phases)

    # ------------------------------------------------------------------
    def row_bytes(self, algo: str) -> np.ndarray:
        """Modeled per-row memory traffic in bytes for one algorithm.

        The same count-to-traffic word accounting as
        :func:`repro.observe.estimated_bytes_moved`, but evaluated on the
        *modeled* quantities before the run — the prediction the ledger
        pairs with the measured counters.  Streams (operand reads, mask,
        output) charge two words per element; the algorithm's accumulator
        interactions charge one word per touch.
        """
        key = algo.lower()
        if key == "inner":
            avg_col = self.b.nnz / max(1, self.n)
            words = (
                2.0 * self.nnz_a
                + 2.0 * self.nnz_m
                + self.nnz_m * 2.0 * avg_col
                + 2.0 * self.out_nnz
            )
            return words * float(WORD)
        words = (
            2.0 * self.nnz_a
            + 2.0 * self.flops
            + 2.0 * self.nnz_m
            + 2.0 * self.out_nnz
        )
        if key in ("msa", "hash"):
            words = words + self.flops + 2.0 * self.nnz_m
        elif key == "mca":
            words = words + self.useful + 2.0 * self.nnz_m
        elif key == "esc":
            words = words + 2.0 * self.useful
        else:  # heap schemes and baselines: every product transits the heap
            words = words + self.flops
        return words * float(WORD)

    # ------------------------------------------------------------------
    def estimate(self, algo: str, phases: int = 1) -> ModelEstimate:
        """Evaluate the model for one named algorithm."""
        key = algo.lower()
        if key not in MODEL_ALGOS:
            raise ValueError(f"unknown algorithm {algo!r}; expected one of {MODEL_ALGOS}")
        return getattr(self, key)(phases=phases)


@dataclass(frozen=True)
class DirectionEstimate:
    """Modeled cycles for one push vs pull masked-SpMV step (BFS level)."""

    push_cycles: float
    pull_cycles: float

    @property
    def direction(self) -> str:
        """The modeled-cheaper side (ties go to push, like the paper's
        direction-optimizing baseline at ``alpha -> inf``)."""
        return "pull" if self.pull_cycles < self.push_cycles else "push"


def estimate_spmv_direction(
    *,
    frontier_vertices: int,
    frontier_edges: int,
    unvisited_vertices: int,
    unvisited_edges: int,
    nvertices: int,
    machine: MachineConfig,
) -> DirectionEstimate:
    """Cost-model estimate of one BFS level's push vs pull masked SpMV.

    Replaces :func:`repro.apps.direction_bfs`'s ad-hoc ``alpha`` constant
    with the same memory-hierarchy accounting the SpGEMM planner uses
    (Yang/Buluç/Owens' measured-density signal, PAPERS.md):

    * **push** streams the frontier rows' adjacency (one multiply-add and
      one random touch into the visited array per edge);
    * **pull** scans each unvisited vertex's in-edges with the branchy
      two-pointer merge until it hits a frontier member — expected scan
      length ``min(avg_degree, 1/frontier_density)`` per vertex, the
      early-exit that makes pull win on dense frontiers.
    """
    m = machine
    n = max(1, int(nvertices))
    visited_ws = np.asarray([2.0 * n * WORD])
    touch = float(_random_touch_cycles(visited_ws, m)[0])
    push = float(frontier_edges) * (m.flop_cycles + touch) + float(
        frontier_vertices
    ) * (2.0 * m.hit_cycles)
    density = float(frontier_vertices) / n
    if unvisited_vertices > 0 and unvisited_edges > 0:
        avg_deg = float(unvisited_edges) / float(unvisited_vertices)
        expected = float(unvisited_vertices) * min(
            avg_deg, 1.0 / max(density, 1.0 / n)
        )
        scanned = min(float(unvisited_edges), expected)
    else:
        scanned = 0.0
    pull = scanned * (MERGE_CYCLES * m.flop_cycles + touch) + float(
        unvisited_vertices
    ) * (2.0 * m.hit_cycles)
    return DirectionEstimate(push_cycles=push, pull_cycles=pull)


def estimate_row_cycles(
    a: CSR,
    b: CSR,
    mask: CSR,
    algo: str,
    machine: MachineConfig,
    *,
    phases: int = 1,
    complement: bool = False,
) -> ModelEstimate:
    """One-shot convenience wrapper around :class:`RowCostModel`."""
    return RowCostModel(a, b, mask, machine, complement=complement).estimate(
        algo, phases=phases
    )


def estimate_seconds(
    a: CSR,
    b: CSR,
    mask: CSR,
    algo: str,
    machine: MachineConfig,
    *,
    threads: int = 1,
    phases: int = 1,
    complement: bool = False,
    schedule: str = "dynamic",
    chunk: int = 64,
) -> float:
    """Modeled wall-clock seconds using the makespan scheduler."""
    from .scheduler import simulate_makespan

    est = estimate_row_cycles(
        a, b, mask, algo, machine, phases=phases, complement=complement
    )
    span = simulate_makespan(
        est.row_cycles, threads=min(threads, machine.cores), schedule=schedule, chunk=chunk
    )
    return machine.seconds(span + est.pre_cycles)
