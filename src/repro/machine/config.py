"""Machine configurations for the cost model.

Two presets mirror the paper's testbeds (Section 7):

* ``HASWELL`` — 2x Intel Xeon E5-2698v3, 32 cores total, 2.3 GHz, 40 MB
  shared L3, 256 KB L2 per core.
* ``KNL`` — Intel Xeon Phi 7250, 68 cores, 1.4 GHz, **no L3**, 1 MB L2
  shared per 2-core tile (0.5 MB effective per core).

The model only needs a handful of parameters: per-core "effective private
cache" capacity (what an accumulator must fit into to be cheap), last-level
capacity, line size, core count, and rough throughput/latency constants.
The constants are calibrated so *relative* algorithm behaviour matches the
paper; absolute times are not meaningful and EXPERIMENTS.md never claims
they are.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineConfig", "HASWELL", "KNL", "MACHINES"]


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of a modeled shared-memory machine."""

    name: str
    cores: int
    ghz: float
    line_bytes: int = 64
    #: capacity an accumulator effectively has per core (L2-ish)
    private_cache_bytes: int = 256 * 1024
    #: last-level cache capacity shared by all cores (0 = none)
    llc_bytes: int = 40 * 1024 * 1024
    #: amortised cycles for a cache-resident access (scatter/gather)
    hit_cycles: float = 1.5
    #: cycles for an LLC hit (only if llc_bytes > 0)
    llc_cycles: float = 40.0
    #: cycles for a DRAM access (per cache line, amortised)
    dram_cycles: float = 200.0
    #: cycles per arithmetic op (semiring multiply-add)
    flop_cycles: float = 1.0
    #: cycles per hash probe / heap op beyond the memory cost
    probe_cycles: float = 3.0
    heap_cycles: float = 8.0
    #: one-time wall cost to bring up the persistent process pool (amortised
    #: across every later call; informational, not part of the crossover)
    process_spawn_seconds: float = 0.3
    #: per-call wall overhead of the process backend: publishing operands,
    #: attaching segments in workers, pickling results back
    process_dispatch_seconds: float = 2e-3
    #: modeled cycles of whole-problem work above which the process backend
    #: amortises its dispatch overhead.  Note the unit: *modeled* cycles of
    #: the paper-machine cost model, not host cycles — CPython wall time per
    #: modeled cycle is much larger, which is exactly why a fixed crossover
    #: works; recalibrate with repro.machine.calibrate_process_crossover to
    #: fit the host actually running the library.
    process_crossover_cycles: float = 2.0e6
    #: operand working-set bytes above which ``shards="auto"`` splits the
    #: problem into a doubly-compressed shard grid (row blocks of A x
    #: column panels of B/M); below it the auto path stays unsharded.  The
    #: default is generous next to CI-sized graphs — sharding is opt-in
    #: until operands genuinely outgrow one node's comfortable footprint.
    shard_memory_budget_bytes: int = 256 << 20
    #: upper-bound flops at/above which ``batch="auto"`` runs the fast
    #: kernels' bucketed tier (row-size-class batches, lazy expansion,
    #: symbolic/numeric fusion); below it the fixed bucketing overhead
    #: (argsort, chunk bookkeeping) outweighs the per-row dispatch it saves.
    #: Both tiers are bit-for-bit identical, so this knob is purely a
    #: performance crossover — the default sits above the CI-sized graphs
    #: and below the Fig. 10/11 R-MAT scaling cases.
    batch_crossover_flops: int = 1 << 18

    def seconds(self, cycles: float) -> float:
        """Convert modeled cycles to seconds."""
        return cycles / (self.ghz * 1e9)


HASWELL = MachineConfig(
    name="haswell",
    cores=32,
    ghz=2.3,
    private_cache_bytes=256 * 1024,
    llc_bytes=40 * 1024 * 1024,
)

# KNL: no L3; MCDRAM acts as a high-bandwidth memory, so DRAM penalty is a
# bit lower, but the missing LLC is what drives the paper's MSA-vs-Inner
# differences between the two machines.
KNL = MachineConfig(
    name="knl",
    cores=68,
    ghz=1.4,
    private_cache_bytes=512 * 1024,
    llc_bytes=0,
    llc_cycles=0.0,
    dram_cycles=170.0,
)

MACHINES = {m.name: m for m in (HASWELL, KNL)}
