"""Operation counters for instrumented kernel runs.

The paper's conclusions are driven by *how much work* and *what memory
traffic* each algorithm incurs (Sections 4.1-4.3), not by constant factors of
a particular ISA.  The reference kernels therefore record a small set of
architecture-neutral counters which the machine model (:mod:`repro.machine.
cost_model`) converts to predicted times.

Counter semantics:

* ``flops`` — semiring multiply-add pairs actually evaluated.  For a masked
  algorithm that skips masked-out products this is smaller than
  ``flops(AB)``.
* ``useful_flops`` — multiply-adds that land on an unmasked output entry
  (identical for all correct algorithms on the same problem; the difference
  ``flops - useful_flops`` is the wasted work the mask could have saved).
* ``accum_inserts`` / ``accum_removes`` / ``accum_allowed`` — accumulator
  interface traffic (Section 5.1).
* ``hash_probes`` — linear-probing steps in the hash accumulator.
* ``heap_pushes`` / ``heap_pops`` — priority-queue traffic (each costs
  ``O(log nnz(u))``).
* ``mask_scans`` — mask entries inspected (MCA/Heap iterate the mask).
* ``accum_init`` — accumulator cells initialised (MSA pays ``ncols`` once,
  amortised across rows via the reset-list trick; Hash pays
  ``nnz(m)/load_factor`` per row).
* ``spa_resets`` — cells cleared when recycling a dense accumulator.
* ``symbolic_flops`` — work done in a 2P symbolic phase.
* ``rows_recomputed`` / ``rows_patched`` / ``delta_fallbacks`` — the
  delta engine's work certificate (:mod:`repro.engine.delta`): output rows
  re-executed because their inputs changed, rows spliced unchanged from
  the cached result, and incremental calls that fell back to a full
  recompute because the dirty fraction exceeded the threshold.
* ``plan_cache_hits`` / ``segments_reused`` / ``bytes_republished`` —
  cross-call reuse wins of an :class:`~repro.engine.ExecutionSession`
  (plan reused from the session's LRU; shared-memory operand segments
  served from the session registry instead of republished; bytes rewritten
  in place for a values-only operand change).  Zero in sessionless runs,
  so backend-equivalence comparisons are unaffected.

Schema growth: counters cross process and file boundaries (pool workers
pickle them back; the benchmark history stores their dict form), so every
consumer of *another* counter's fields must tolerate a field the producer
predates.  :meth:`OpCounter.merge` treats a missing field as 0 and
:meth:`OpCounter.diff` accepts snapshots shorter than the current field
list — adding a counter must never make old payloads unreadable.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

__all__ = ["OpCounter"]


@dataclass
class OpCounter:
    """Mutable bundle of operation counts for one kernel invocation."""

    flops: int = 0
    useful_flops: int = 0
    accum_inserts: int = 0
    accum_removes: int = 0
    accum_allowed: int = 0
    hash_probes: int = 0
    heap_pushes: int = 0
    heap_pops: int = 0
    mask_scans: int = 0
    accum_init: int = 0
    spa_resets: int = 0
    symbolic_flops: int = 0
    output_nnz: int = 0
    # session-reuse counters (appended last: snapshots taken before the
    # schema grew keep reading correctly through diff())
    plan_cache_hits: int = 0
    segments_reused: int = 0
    bytes_republished: int = 0
    # delta-execution counters (repro.engine.delta): output rows actually
    # recomputed vs. spliced unchanged from the cached result, and calls
    # where the dirty fraction forced a full recompute.  Zero outside
    # ``delta=`` runs, so equivalence comparisons are unaffected.
    rows_recomputed: int = 0
    rows_patched: int = 0
    delta_fallbacks: int = 0

    def merge(self, other: "OpCounter") -> "OpCounter":
        """Accumulate another counter into this one (in place).

        ``other`` may be an older-schema counter (unpickled from a worker
        running previous code, or reconstructed from a stored dict) that
        lacks recently added fields; those merge as 0 instead of raising.
        """
        for f in fields(self):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name, 0))
        return self

    def snapshot(self) -> tuple:
        """Cheap immutable snapshot of every field (for :meth:`diff`)."""
        return tuple(getattr(self, f.name) for f in fields(self))

    def diff(self, before: Optional[tuple]) -> dict:
        """Non-zero per-field deltas since a :meth:`snapshot`.

        ``before=None`` means "since zero" — the full current state.  A
        snapshot shorter than the current field list (taken before a
        schema grew) reads as 0 for the missing trailing fields.  The
        tracer (:mod:`repro.observe`) attaches these deltas to spans so a
        nested span reports exactly the operations charged *inside* it.
        """
        out = {}
        for i, f in enumerate(fields(self)):
            base = before[i] if before is not None and i < len(before) else 0
            delta = getattr(self, f.name) - base
            if delta:
                out[f.name] = delta
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "OpCounter":
        """Rebuild from :meth:`as_dict` output, ignoring unknown keys — a
        newer producer's extra counters must not break an older reader."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in payload.items() if k in known})

    def total_ops(self) -> int:
        """A scalar summary: every counted event, each weighted 1."""
        return sum(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def copy(self) -> "OpCounter":
        return OpCounter(**self.as_dict())
