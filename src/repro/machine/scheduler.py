"""Parallel-schedule (makespan) simulator.

The paper parallelizes masked SpGEMM across output rows ("plenty of
coarse-grained parallelism across rows", Section 3) with OpenMP.  Given a
vector of per-row costs (from the cost model or from measured per-row work),
this module computes the makespan under the common OpenMP scheduling
policies, which is exactly what the strong-scaling figures (Fig. 11) need:

* ``static`` — contiguous blocks of ceil(n/p) rows per thread.
* ``cyclic`` — round-robin rows (OpenMP ``schedule(static,1)``).
* ``dynamic`` — greedy chunk self-scheduling (OpenMP ``schedule(dynamic,c)``):
  an idle thread grabs the next chunk of ``chunk`` rows.
* ``guided`` — decreasing chunk sizes (remaining/p, floored at ``chunk``).

All policies respect the classic list-scheduling bounds, which the tests
assert: ``max(total/p, max_row) <= makespan <= total/p + max_row_chunk``.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List

import numpy as np

__all__ = ["simulate_makespan", "speedup_curve", "SCHEDULES"]

SCHEDULES = ("static", "cyclic", "dynamic", "guided")


def _chunks_dynamic(n: int, chunk: int) -> Iterable[slice]:
    for lo in range(0, n, chunk):
        yield slice(lo, min(n, lo + chunk))


def _chunks_guided(n: int, p: int, min_chunk: int) -> Iterable[slice]:
    lo = 0
    while lo < n:
        size = max(min_chunk, (n - lo) // max(1, 2 * p))
        yield slice(lo, min(n, lo + size))
        lo += size


def simulate_makespan(
    row_cycles: np.ndarray,
    threads: int,
    schedule: str = "dynamic",
    chunk: int = 64,
) -> float:
    """Makespan (cycles) of executing rows with the given policy.

    ``row_cycles`` is a 1-D array of non-negative per-row costs; ``threads``
    the number of workers.
    """
    costs = np.asarray(row_cycles, dtype=np.float64)
    if costs.ndim != 1:
        raise ValueError("row_cycles must be 1-D")
    if np.any(costs < 0):
        raise ValueError("row costs must be non-negative")
    n = costs.shape[0]
    p = int(threads)
    if p <= 0:
        raise ValueError("threads must be positive")
    if n == 0:
        return 0.0
    if p == 1:
        return float(costs.sum())

    if schedule == "static":
        block = -(-n // p)  # ceil
        ends = [float(costs[i * block : (i + 1) * block].sum()) for i in range(p)]
        return max(ends)

    if schedule == "cyclic":
        ends = [float(costs[i::p].sum()) for i in range(p)]
        return max(ends)

    if schedule == "dynamic":
        chunks = _chunks_dynamic(n, max(1, chunk))
    elif schedule == "guided":
        chunks = _chunks_guided(n, p, max(1, chunk))
    else:
        raise ValueError(f"unknown schedule {schedule!r}; expected one of {SCHEDULES}")

    # greedy list scheduling: next chunk goes to the earliest-free worker
    prefix = np.concatenate(([0.0], np.cumsum(costs)))
    workers: List[float] = [0.0] * p
    heapq.heapify(workers)
    for sl in chunks:
        w = float(prefix[sl.stop] - prefix[sl.start])
        t = heapq.heappop(workers)
        heapq.heappush(workers, t + w)
    return max(workers)


def speedup_curve(
    row_cycles: np.ndarray,
    thread_counts: Iterable[int],
    schedule: str = "dynamic",
    chunk: int = 64,
    serial_cycles: float = 0.0,
) -> dict:
    """Speedup vs thread count: ``T(1) / T(p)`` including any serial
    (non-parallelizable) component ``serial_cycles`` — Amdahl-style."""
    base = float(np.sum(row_cycles)) + serial_cycles
    out = {}
    for p in thread_counts:
        span = simulate_makespan(row_cycles, p, schedule=schedule, chunk=chunk)
        out[int(p)] = base / (span + serial_cycles) if base else 1.0
    return out
