"""History-fitted machine calibration: close the modeled→measured loop.

:mod:`repro.machine.calibrate` measures the *host* with micro-benchmarks;
this module goes the other way and fits :class:`MachineConfig` cycle
parameters to the **application measurements the repo already records** —
the work certificates (operation counters) and median seconds of
``BENCH_history.json`` runs, or the per-band prediction rows of
:mod:`repro.observe.ledger`.

The model being fitted is the counter-linear form the cost model and
:func:`repro.observe.estimated_bytes_moved` share: a record that measured
``y`` seconds and counted ``flops``/``hash_probes``/``heap ops``/
accumulator touches/moved bytes is predicted as::

    y ≈ ( flop_cycles  * (flops + symbolic_flops)
        + probe_cycles * hash_probes
        + heap_cycles  * (heap_pushes + heap_pops)
        + hit_cycles   * (accumulator + mask touches)
        + dram_cycles  * (bytes_moved / line_bytes) ) / (ghz * 1e9)
        + process_dispatch_seconds * [backend == "process"]

Fitting is a deterministic robust regression: relative-error weighted
least squares with non-negativity enforced by dropping violating columns
(those parameters keep the base config's values).  The result is persisted
as a **versioned fitted config** (``.repro_machine.json``) with provenance
— sample count, residual statistics, a held-out evaluation and the
environment fingerprint — and every ``machine=`` argument in the engine
accepts the string ``"fitted"`` to load it (:func:`resolve_machine`).

Fitted configs use the nominal 1 GHz convention of
:mod:`repro.machine.calibrate`: one modeled cycle is one nanosecond of
host time, so ``seconds()`` returns honest wall-clock predictions.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .config import HASWELL, MACHINES, MachineConfig

__all__ = [
    "FIT_SCHEMA_VERSION",
    "FITTED_PARAMS",
    "DEFAULT_FITTED_PATH",
    "FITTED_PATH_ENV",
    "MACHINE_ENV",
    "FitResult",
    "default_machine",
    "samples_from_history",
    "samples_from_predictions",
    "fit_machine",
    "evaluate_config",
    "save_fitted",
    "load_fitted",
    "load_fitted_payload",
    "resolve_machine",
]

FIT_SCHEMA_VERSION = 1

#: the MachineConfig parameters the fit may replace
FITTED_PARAMS = (
    "hit_cycles",
    "dram_cycles",
    "flop_cycles",
    "probe_cycles",
    "heap_cycles",
    "process_dispatch_seconds",
    "batch_crossover_flops",
)

#: default on-disk location of the fitted config (cwd-relative), overridable
#: via the environment variable below or an explicit path argument
DEFAULT_FITTED_PATH = ".repro_machine.json"
FITTED_PATH_ENV = "REPRO_MACHINE_FILE"

#: environment variable naming the default machine ("haswell" | "knl" |
#: "fitted") for every call that does not pass one explicitly
MACHINE_ENV = "REPRO_MACHINE"

#: nominal clock of a fitted config: 1 cycle == 1 ns of host time
NOMINAL_GHZ = 1.0

#: counter fields that are session telemetry, not work — never features
_NON_WORK_COUNTERS = ("plan_cache_hits", "segments_reused", "bytes_republished")

#: margin used to derive the process crossover from the fitted dispatch
#: overhead (same semantics as repro.machine.calibrate_process_crossover)
_CROSSOVER_MARGIN = 4.0

#: regression feature columns, in order: (param, unit).  "dispatch" is in
#: seconds; the cycle features are divided by ghz*1e9 when building the
#: design matrix.
_CYCLE_FEATURES = (
    "flop_cycles",
    "probe_cycles",
    "heap_cycles",
    "hit_cycles",
    "dram_cycles",
)


@dataclasses.dataclass(frozen=True)
class FitResult:
    """A fitted config plus everything needed to audit it."""

    machine: MachineConfig
    provenance: Dict

    def payload(self) -> dict:
        """The JSON document :func:`save_fitted` persists."""
        return {
            "schema_version": FIT_SCHEMA_VERSION,
            "machine": dataclasses.asdict(self.machine),
            "provenance": self.provenance,
        }


# ----------------------------------------------------------------------
# sample extraction
# ----------------------------------------------------------------------
def _touch_words(counters: Dict[str, int]) -> float:
    g = counters.get
    return float(
        g("accum_inserts", 0)
        + g("accum_removes", 0)
        + g("accum_init", 0)
        + g("spa_resets", 0)
        + g("mask_scans", 0)
        + 2 * g("output_nnz", 0)
    )


def _feature_row(counters: Dict[str, int], bytes_moved: float,
                 base: MachineConfig) -> Dict[str, float]:
    g = counters.get
    return {
        "flop_cycles": float(g("flops", 0) + g("symbolic_flops", 0)),
        "probe_cycles": float(g("hash_probes", 0)),
        "heap_cycles": float(g("heap_pushes", 0) + g("heap_pops", 0)),
        "hit_cycles": _touch_words(counters),
        "dram_cycles": float(bytes_moved) / float(max(1, base.line_bytes)),
    }


def samples_from_history(history: dict, *, base: MachineConfig = HASWELL
                         ) -> List[dict]:
    """Fit samples from a ``BENCH_history.json`` document.

    One sample per record carrying both a work certificate (counters) and a
    positive measured median; session-telemetry counters are ignored.
    """
    samples: List[dict] = []
    for run in history.get("runs", ()):
        for rec in run.get("records", ()):
            counters = rec.get("counters") or {}
            counters = {
                k: v for k, v in counters.items() if k not in _NON_WORK_COUNTERS
            }
            med = float(rec.get("median_s") or 0.0)
            if not counters or med <= 0.0:
                continue
            samples.append(
                {
                    "scheme": rec.get("scheme"),
                    "case": rec.get("case"),
                    "backend": rec.get("backend", "serial"),
                    "seconds": med,
                    "features": _feature_row(
                        counters, rec.get("bytes_moved_estimate", 0), base
                    ),
                }
            )
    return samples


def samples_from_predictions(payload: dict, *, base: MachineConfig = HASWELL,
                             backend: str = "serial") -> List[dict]:
    """Fit samples from a prediction-ledger payload
    (:func:`repro.observe.predictions`): one per row that carries counters."""
    from ..observe.exporters import estimated_bytes_moved

    samples: List[dict] = []
    for row in payload.get("rows", ()):
        counters = row.get("counters") or {}
        counters = {
            k: v for k, v in counters.items() if k not in _NON_WORK_COUNTERS
        }
        sec = float(row.get("measured_seconds") or 0.0)
        if not counters or sec <= 0.0:
            continue
        samples.append(
            {
                "scheme": row.get("kind"),
                "case": row.get("key"),
                "backend": row.get("attrs", {}).get("backend", backend),
                "seconds": sec,
                "features": _feature_row(
                    counters, estimated_bytes_moved(counters), base
                ),
            }
        )
    return samples


# ----------------------------------------------------------------------
# the regression
# ----------------------------------------------------------------------
def _predict_seconds(sample: dict, params: Dict[str, float],
                     ghz: float, dispatch: float) -> float:
    cycles = sum(
        params[name] * sample["features"][name] for name in _CYCLE_FEATURES
    )
    sec = cycles / (ghz * 1e9)
    if sample["backend"] == "process":
        sec += dispatch
    return sec


def evaluate_config(machine: MachineConfig, samples: Iterable[dict]) -> dict:
    """Aggregate modeled/measured ratio error of a config over samples.

    The headline number is the median absolute log10 ratio — 0 means the
    model nails every sample, 1 means it is 10x off in the median.
    """
    params = {name: float(getattr(machine, name)) for name in _CYCLE_FEATURES}
    dispatch = float(machine.process_dispatch_seconds)
    logs: List[float] = []
    for s in samples:
        modeled = _predict_seconds(s, params, machine.ghz, dispatch)
        if modeled > 0.0 and s["seconds"] > 0.0:
            logs.append(abs(float(np.log10(s["seconds"] / modeled))))
    if not logs:
        return {"samples": 0, "median_abs_log10_ratio": None}
    return {
        "samples": len(logs),
        "median_abs_log10_ratio": float(np.median(logs)),
        "max_abs_log10_ratio": float(np.max(logs)),
    }


def _solve(samples: List[dict], base: MachineConfig
           ) -> Tuple[Dict[str, float], Optional[float], List[str]]:
    """Deterministic non-negative weighted least squares.

    Rows are weighted by ``1/seconds`` so the fit minimises *relative*
    error (a 2x miss on a microsecond record matters as much as on a
    millisecond one).  Non-negativity is enforced by iteratively dropping
    columns whose coefficient comes out non-positive; dropped parameters
    keep the base config's values.  Returns ``(cycle_params,
    dispatch_seconds_or_None, fitted_param_names)``.
    """
    names = list(_CYCLE_FEATURES)
    has_dispatch = any(s["backend"] == "process" for s in samples)
    cols = names + (["dispatch"] if has_dispatch else [])
    y = np.asarray([s["seconds"] for s in samples], dtype=np.float64)
    w = 1.0 / np.maximum(y, 1e-12)
    X = np.zeros((len(samples), len(cols)), dtype=np.float64)
    for i, s in enumerate(samples):
        for j, name in enumerate(names):
            # feature counts -> seconds at the nominal clock
            X[i, j] = s["features"][name] / (NOMINAL_GHZ * 1e9)
        if has_dispatch and s["backend"] == "process":
            X[i, len(names)] = 1.0
    # drop all-zero columns up front (e.g. no heap scheme in the history)
    active = [j for j in range(len(cols)) if float(np.abs(X[:, j]).sum()) > 0.0]
    while True:
        if not active:
            return {}, None, []
        Xa = X[:, active] * w[:, None]
        ya = y * w
        theta, *_ = np.linalg.lstsq(Xa, ya, rcond=None)
        bad = [k for k, t in enumerate(theta) if t <= 0.0]
        if not bad:
            break
        active = [j for k, j in enumerate(active) if k not in bad]
    params: Dict[str, float] = {}
    dispatch: Optional[float] = None
    fitted: List[str] = []
    for k, j in enumerate(active):
        col = cols[j]
        if col == "dispatch":
            dispatch = float(theta[k])
            fitted.append("process_dispatch_seconds")
        else:
            params[col] = float(theta[k])
            fitted.append(col)
    return params, dispatch, fitted


def fit_machine(
    history: dict,
    *,
    base: MachineConfig = HASWELL,
    name: str = "fitted",
    holdout: Optional[str] = None,
    samples: Optional[List[dict]] = None,
) -> FitResult:
    """Fit a :class:`MachineConfig` to accumulated measurements.

    ``history`` is a loaded ``BENCH_history.json`` document (ignored when
    explicit ``samples`` are passed).  ``holdout`` names a scheme excluded
    from the fit and used to evaluate generalisation — the provenance
    records both the fitted and the base config's error on it, which is
    the acceptance check ``python -m repro.machine fit`` prints.

    The fit is deterministic: same history, same result, bit for bit.
    """
    if samples is None:
        samples = samples_from_history(history, base=base)
    if not samples:
        raise ValueError(
            "no fit samples: the history carries no records with work "
            "certificates (counters) and positive measured medians"
        )
    fit_set = [s for s in samples if holdout is None or s["scheme"] != holdout]
    held = [s for s in samples if holdout is not None and s["scheme"] == holdout]
    if not fit_set:
        raise ValueError(f"holdout {holdout!r} excluded every fit sample")
    params, dispatch, fitted_names = _solve(fit_set, base)
    if not params:
        raise ValueError("degenerate fit: every feature column was empty")

    values: Dict[str, float] = {}
    for pname in _CYCLE_FEATURES:
        values[pname] = params.get(pname, float(getattr(base, pname)))
    dispatch_s = (
        dispatch if dispatch is not None else float(base.process_dispatch_seconds)
    )
    # derived knobs, re-expressed at the nominal clock:
    # - the process crossover keeps calibrate_process_crossover's semantics
    #   (work must be worth a margin times the dispatch overhead),
    # - the batch crossover shifts inversely with the fitted per-flop cost
    #   (a k-times-slower flop amortises the fixed bucketing overhead at
    #   k-times-fewer flops).
    crossover_cycles = dispatch_s * _CROSSOVER_MARGIN * NOMINAL_GHZ * 1e9
    flop_scale = values["flop_cycles"] / max(float(base.flop_cycles), 1e-12)
    batch_crossover = int(
        min(1 << 30, max(1 << 10, base.batch_crossover_flops / max(flop_scale, 1e-12)))
    )
    machine = dataclasses.replace(
        base,
        name=name,
        ghz=NOMINAL_GHZ,
        hit_cycles=values["hit_cycles"],
        dram_cycles=values["dram_cycles"],
        flop_cycles=values["flop_cycles"],
        probe_cycles=values["probe_cycles"],
        heap_cycles=values["heap_cycles"],
        process_dispatch_seconds=dispatch_s,
        process_crossover_cycles=float(crossover_cycles),
        batch_crossover_flops=batch_crossover,
    )

    residual = evaluate_config(machine, fit_set)
    provenance: Dict = {
        "base": base.name,
        "samples": len(fit_set),
        "params_fitted": sorted(fitted_names),
        "residual": residual,
        "holdout": None,
        "env": _env_fingerprint(),
    }
    if holdout is not None:
        provenance["holdout"] = {
            "scheme": holdout,
            "samples": len(held),
            "fitted": evaluate_config(machine, held),
            "default": evaluate_config(base, held),
        }
    return FitResult(machine=machine, provenance=provenance)


def _env_fingerprint() -> dict:
    """Environment provenance (lazy import: bench pulls in the apps)."""
    try:
        from ..bench.history import env_fingerprint

        return env_fingerprint(os.getcwd())
    except Exception:  # pragma: no cover - bench should always import
        return {}


# ----------------------------------------------------------------------
# persistence + resolution
# ----------------------------------------------------------------------
def _fitted_path(path: Optional[str]) -> str:
    if path is not None:
        return str(path)
    return os.environ.get(FITTED_PATH_ENV) or DEFAULT_FITTED_PATH


def save_fitted(result: FitResult, path: Optional[str] = None) -> str:
    """Persist a fit result; returns the path written."""
    target = _fitted_path(path)
    with open(target, "w") as fh:
        json.dump(result.payload(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    return target


def load_fitted_payload(path: Optional[str] = None) -> Optional[dict]:
    """The raw fitted-config document, or ``None`` when absent/invalid."""
    target = _fitted_path(path)
    if not os.path.exists(target):
        return None
    try:
        with open(target) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    if payload.get("schema_version") != FIT_SCHEMA_VERSION:
        return None
    return payload


def load_fitted(path: Optional[str] = None) -> MachineConfig:
    """Load the persisted fitted config (``machine="fitted"``'s target).

    Looks at ``path``, then ``$REPRO_MACHINE_FILE``, then
    ``./.repro_machine.json``; raises with a pointer to the fit CLI when
    nothing is there.
    """
    payload = load_fitted_payload(path)
    if payload is None:
        raise FileNotFoundError(
            f"no fitted machine config at {_fitted_path(path)!r}; run "
            "`python -m repro.machine fit` (see docs/calibration.md) or set "
            f"${FITTED_PATH_ENV}"
        )
    fields = {f.name for f in dataclasses.fields(MachineConfig)}
    doc = {k: v for k, v in payload["machine"].items() if k in fields}
    return MachineConfig(**doc)


def default_machine() -> MachineConfig:
    """The machine targeted when no ``machine=`` is given anywhere.

    Haswell (the paper's primary platform), unless the ``REPRO_MACHINE``
    environment variable names a preset or ``"fitted"`` — the hook CI uses
    to re-run entire equivalence suites under a fitted config without
    touching a single call site.
    """
    name = os.environ.get(MACHINE_ENV, "").strip()
    if not name:
        return HASWELL
    return resolve_machine(name)


def resolve_machine(machine, *, default: Optional[MachineConfig] = None
                    ) -> MachineConfig:
    """Resolve a ``machine=`` argument: a config, a preset name, or
    ``"fitted"`` (the persisted host-calibrated config).  ``None`` falls
    back to ``default`` when given, else to :func:`default_machine`."""
    if machine is None:
        return default if default is not None else default_machine()
    if isinstance(machine, MachineConfig):
        return machine
    if isinstance(machine, str):
        key = machine.lower()
        if key == "fitted":
            return load_fitted()
        if key in MACHINES:
            return MACHINES[key]
        raise ValueError(
            f"unknown machine {machine!r}; expected a MachineConfig, one of "
            f"{sorted(MACHINES)} or 'fitted'"
        )
    raise TypeError(
        f"machine must be a MachineConfig, a name or None, got {type(machine)!r}"
    )
