"""CLI for the machine model: ``python -m repro.machine fit``.

Fits :class:`MachineConfig` cycle parameters to the measurements
accumulated in ``BENCH_history.json`` (see :mod:`repro.machine.fit` and
``docs/calibration.md``) and persists the fitted config with provenance.
The fit is deterministic for a fixed history, so CI can assert the output
bit for bit.
"""

from __future__ import annotations

import argparse
import json
import sys

from .config import MACHINES
from .fit import (
    DEFAULT_FITTED_PATH,
    evaluate_config,
    fit_machine,
    load_fitted,
    samples_from_history,
    save_fitted,
)


def _cmd_fit(args: argparse.Namespace) -> int:
    with open(args.history) as fh:
        history = json.load(fh)
    base = MACHINES[args.base]
    result = fit_machine(
        history, base=base, name=args.name, holdout=args.holdout
    )
    path = save_fitted(result, args.out)
    if args.json:
        json.dump(result.payload(), sys.stdout, indent=1, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    prov = result.provenance
    m = result.machine
    print(f"fitted machine config written to {path}")
    print(
        f"  samples={prov['samples']}  params fitted: "
        + ", ".join(prov["params_fitted"])
    )
    print(
        f"  flop={m.flop_cycles:.3g}  hit={m.hit_cycles:.3g} "
        f"dram={m.dram_cycles:.3g}  probe={m.probe_cycles:.3g} "
        f"heap={m.heap_cycles:.3g} cycles (1 cycle = 1 ns)"
    )
    print(
        f"  dispatch={m.process_dispatch_seconds:.3g} s  "
        f"process crossover={m.process_crossover_cycles:.3g} cycles  "
        f"batch crossover={m.batch_crossover_flops} flops"
    )
    res = prov["residual"]
    print(
        f"  fit residual: median |log10 ratio| = "
        f"{res['median_abs_log10_ratio']:.3f} over {res['samples']} samples"
    )
    held = prov.get("holdout")
    if held:
        f_err = held["fitted"]["median_abs_log10_ratio"]
        d_err = held["default"]["median_abs_log10_ratio"]
        verdict = "improved" if (f_err or 0) < (d_err or 0) else "NOT improved"
        print(
            f"  held-out {held['scheme']}: fitted {f_err:.3f} vs "
            f"default {d_err:.3f} median |log10 ratio| ({verdict})"
        )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    machine = load_fitted(args.path)
    with open(args.history) as fh:
        history = json.load(fh)
    samples = samples_from_history(history)
    print(json.dumps(evaluate_config(machine, samples), indent=1))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.machine",
        description="machine-model utilities",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fit = sub.add_parser(
        "fit", help="fit MachineConfig parameters to recorded history"
    )
    fit.add_argument("--history", default="BENCH_history.json",
                     help="BENCH_history.json to fit against")
    fit.add_argument("--out", default=DEFAULT_FITTED_PATH,
                     help="where to write the fitted config")
    fit.add_argument("--base", default="haswell", choices=sorted(MACHINES),
                     help="config supplying unfitted parameters")
    fit.add_argument("--name", default="fitted",
                     help="name of the fitted config")
    fit.add_argument("--holdout", default="MCA-1P",
                     help="scheme held out of the fit for evaluation "
                          "(empty string disables)")
    fit.add_argument("--json", action="store_true",
                     help="print the full payload as JSON")
    fit.set_defaults(func=_cmd_fit)

    show = sub.add_parser(
        "show", help="evaluate the persisted fitted config against a history"
    )
    show.add_argument("--path", default=None)
    show.add_argument("--history", default="BENCH_history.json")
    show.set_defaults(func=_cmd_show)

    args = parser.parse_args(argv)
    if getattr(args, "holdout", None) == "":
        args.holdout = None
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
