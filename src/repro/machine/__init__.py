"""Machine model: operation counters, cache simulator, analytic traffic
formulas (paper Section 4), per-row cost model, and a parallel-schedule
simulator used for the scaling experiments.

See DESIGN.md ("Substitutions") for why the reproduction pairs real
wall-clock kernels with this model instead of relying on CPython wall-clock
alone.
"""

from .cache import AccessTrace, CacheSim
from .calibrate import (
    calibrate_machine,
    calibrate_process_crossover,
    measure_backend_overhead,
    measure_touch_costs,
)
from .config import HASWELL, KNL, MACHINES, MachineConfig
from .cost_model import (
    MODEL_ALGOS,
    DirectionEstimate,
    ModelEstimate,
    RowCostModel,
    estimate_row_cycles,
    estimate_seconds,
    estimate_spmv_direction,
)
from .counters import OpCounter
from .fit import (
    FITTED_PARAMS,
    FIT_SCHEMA_VERSION,
    MACHINE_ENV,
    FitResult,
    default_machine,
    evaluate_config,
    fit_machine,
    load_fitted,
    load_fitted_payload,
    resolve_machine,
    samples_from_history,
    samples_from_predictions,
    save_fitted,
)
from .kernel_traces import TRACEABLE_ALGOS, build_trace, replay_miss_rate
from .report import breakdown_table, explain
from .scheduler import SCHEDULES, simulate_makespan, speedup_curve
from .traffic import (
    TrafficBreakdown,
    flops_per_row,
    pull_traffic_words,
    push_common_traffic_words,
    total_flops,
    useful_flops_per_row,
)

__all__ = [
    "AccessTrace",
    "CacheSim",
    "calibrate_machine",
    "calibrate_process_crossover",
    "measure_backend_overhead",
    "measure_touch_costs",
    "HASWELL",
    "KNL",
    "MACHINES",
    "MachineConfig",
    "MODEL_ALGOS",
    "ModelEstimate",
    "DirectionEstimate",
    "RowCostModel",
    "estimate_row_cycles",
    "estimate_seconds",
    "estimate_spmv_direction",
    "OpCounter",
    "FIT_SCHEMA_VERSION",
    "FITTED_PARAMS",
    "MACHINE_ENV",
    "FitResult",
    "default_machine",
    "fit_machine",
    "evaluate_config",
    "samples_from_history",
    "samples_from_predictions",
    "save_fitted",
    "load_fitted",
    "load_fitted_payload",
    "resolve_machine",
    "TRACEABLE_ALGOS",
    "build_trace",
    "replay_miss_rate",
    "breakdown_table",
    "explain",
    "SCHEDULES",
    "simulate_makespan",
    "speedup_curve",
    "TrafficBreakdown",
    "flops_per_row",
    "pull_traffic_words",
    "push_common_traffic_words",
    "total_flops",
    "useful_flops_per_row",
]
