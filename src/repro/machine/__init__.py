"""Machine model: operation counters, cache simulator, analytic traffic
formulas (paper Section 4), per-row cost model, and a parallel-schedule
simulator used for the scaling experiments.

See DESIGN.md ("Substitutions") for why the reproduction pairs real
wall-clock kernels with this model instead of relying on CPython wall-clock
alone.
"""

from .cache import AccessTrace, CacheSim
from .calibrate import (
    calibrate_machine,
    calibrate_process_crossover,
    measure_backend_overhead,
    measure_touch_costs,
)
from .config import HASWELL, KNL, MACHINES, MachineConfig
from .cost_model import (
    MODEL_ALGOS,
    ModelEstimate,
    RowCostModel,
    estimate_row_cycles,
    estimate_seconds,
)
from .counters import OpCounter
from .kernel_traces import TRACEABLE_ALGOS, build_trace, replay_miss_rate
from .report import breakdown_table, explain
from .scheduler import SCHEDULES, simulate_makespan, speedup_curve
from .traffic import (
    TrafficBreakdown,
    flops_per_row,
    pull_traffic_words,
    push_common_traffic_words,
    total_flops,
    useful_flops_per_row,
)

__all__ = [
    "AccessTrace",
    "CacheSim",
    "calibrate_machine",
    "calibrate_process_crossover",
    "measure_backend_overhead",
    "measure_touch_costs",
    "HASWELL",
    "KNL",
    "MACHINES",
    "MachineConfig",
    "MODEL_ALGOS",
    "ModelEstimate",
    "RowCostModel",
    "estimate_row_cycles",
    "estimate_seconds",
    "OpCounter",
    "TRACEABLE_ALGOS",
    "build_trace",
    "replay_miss_rate",
    "breakdown_table",
    "explain",
    "SCHEDULES",
    "simulate_makespan",
    "speedup_curve",
    "TrafficBreakdown",
    "flops_per_row",
    "pull_traffic_words",
    "push_common_traffic_words",
    "total_flops",
    "useful_flops_per_row",
]
