#!/usr/bin/env python3
"""Quickstart: masked sparse matrix-matrix products in five minutes.

Shows the core public API:

* building CSR matrices,
* ``masked_spgemm`` with each algorithm of the paper (MSA / Hash / MCA /
  Heap / HeapDot / Inner), with plain and complemented masks,
* operation counters,
* the cost model that predicts which algorithm wins on a given machine.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ALGOS, masked_spgemm, supports_complement
from repro.graphs import erdos_renyi
from repro.machine import HASWELL, OpCounter, RowCostModel
from repro.semiring import PLUS_PAIR
from repro.sparse import CSR


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build sparse matrices.  CSR.from_coo / from_dense / from_scipy
    #    all work; here we use the Erdős–Rényi generator.
    # ------------------------------------------------------------------
    n = 2000
    a = erdos_renyi(n, n, degree=8, seed=1)
    b = erdos_renyi(n, n, degree=8, seed=2)
    mask = erdos_renyi(n, n, degree=4, seed=3)
    print(f"A: {a}")
    print(f"B: {b}")
    print(f"mask: {mask}")

    # ------------------------------------------------------------------
    # 2. C = mask .* (A @ B) — the masked product.  Only positions present
    #    in the mask are computed; everything else is skipped, not merely
    #    discarded.
    # ------------------------------------------------------------------
    c = masked_spgemm(a, b, mask, algo="msa")
    print(f"\nC = M .* (A@B): {c}")
    assert c.nnz <= mask.nnz

    # every algorithm computes the same matrix
    for algo in ALGOS:
        c_algo = masked_spgemm(a, b, mask, algo=algo)
        assert c_algo.drop_zeros(1e-14).equals(c.drop_zeros(1e-14)), algo
    print(f"all {len(ALGOS)} algorithms agree: {sorted(ALGOS)}")

    # ------------------------------------------------------------------
    # 3. Complemented mask: C = !mask .* (A @ B) — compute everything the
    #    mask does NOT cover (used to avoid re-visiting vertices in graph
    #    traversals).  MCA and Inner cannot do this (see the paper).
    # ------------------------------------------------------------------
    c_out = masked_spgemm(a, b, mask, algo="msa", complement=True)
    print(f"\nC = !M .* (A@B): {c_out}")
    print("complement support:",
          {algo: supports_complement(algo) for algo in sorted(ALGOS)})

    # ------------------------------------------------------------------
    # 4. Custom semirings: count matched pairs instead of multiplying
    #    values (PLUS_PAIR — what triangle counting uses).
    # ------------------------------------------------------------------
    c_pairs = masked_spgemm(a, b, mask, algo="hash", semiring=PLUS_PAIR)
    print(f"\nPLUS_PAIR product has integer-valued data: "
          f"max={c_pairs.data.max():.0f}")

    # ------------------------------------------------------------------
    # 5. Operation counters: how much work did the mask save?
    # ------------------------------------------------------------------
    counter = OpCounter()
    masked_spgemm(a, b, mask, algo="msa", impl="reference", counter=counter)
    from repro.machine import total_flops

    print(f"\nmask saved work: {counter.flops} useful multiplies vs "
          f"{total_flops(a, b)} unmasked flops "
          f"({counter.flops / total_flops(a, b):.1%} useful)")

    # ------------------------------------------------------------------
    # 6. The machine model: which algorithm should you use *here*?
    # ------------------------------------------------------------------
    model = RowCostModel(a, b, mask, HASWELL)
    costs = {algo: model.estimate(algo).total_cycles for algo in ALGOS}
    ranked = sorted(costs, key=costs.get)
    print(f"\nmodeled ranking on {HASWELL.name} "
          f"(32 cores, 40MB LLC): {ranked}")
    print("model says:", ranked[0], "— try it!")


if __name__ == "__main__":
    main()
