#!/usr/bin/env python3
"""Batched Betweenness Centrality with masked SpGEMM (paper Section 8.4).

Runs multi-source Brandes on an R-MAT graph, showing:

* the complemented-mask forward sweep (frontier expansion that never
  re-visits a vertex) and the plain-mask backward sweep,
* TEPS throughput for the complement-capable algorithms,
* agreement with an exact networkx check on a small graph (if networkx is
  installed).

Run:  python examples/betweenness_centrality.py
"""

import numpy as np

from repro.apps import betweenness_centrality, multi_source_bfs
from repro.graphs import erdos_renyi_graph, rmat


def main() -> None:
    g = rmat(10, seed=5)
    n = g.nrows
    batch = 64
    print(f"graph: n={n}, edges={g.nnz // 2}, batch={batch} sources\n")

    # -- run BC with each complement-capable algorithm -----------------
    results = {}
    for algo in ("msa", "hash", "heap", "heapdot"):
        res = betweenness_centrality(g, batch_size=batch, algo=algo, seed=9)
        results[algo] = res
        print(f"  {algo:8s} depth={res.depth}  "
              f"spgemm={res.spgemm_seconds * 1e3:8.1f} ms  "
              f"TEPS={res.teps / 1e6:7.2f} M")

    base = results["msa"].centrality
    for algo, res in results.items():
        assert np.allclose(res.centrality, base), algo
    print("\nall algorithms agree on the centrality vector")

    top = np.argsort(base)[::-1][:5]
    print("top-5 central vertices:",
          [(int(v), round(float(base[v]), 1)) for v in top])

    # -- the BFS building block (pure complement-mask traversal) -------
    hubs = np.argsort(g.row_nnz())[::-1][:4]
    bfs = multi_source_bfs(g, hubs.tolist())
    reach = (bfs.levels >= 0).sum(axis=1)
    print(f"\nBFS from the 4 highest-degree hubs: "
          f"depth={bfs.depth}, reachable per source={reach.tolist()}")

    # -- exact check against networkx (optional dependency) ------------
    try:
        import networkx as nx
    except ImportError:
        print("\n(networkx not installed; skipping the exact check)")
        return
    small = erdos_renyi_graph(150, 6, seed=2)
    ours = betweenness_centrality(small, sources=range(150)).centrality / 2
    ref = nx.betweenness_centrality(
        nx.from_scipy_sparse_array(small.to_scipy()), normalized=False
    )
    err = max(abs(ours[v] - ref[v]) for v in range(150))
    print(f"\nexact check vs networkx on a 150-vertex graph: max |err| = {err:.2e}")
    assert err < 1e-8


if __name__ == "__main__":
    main()
