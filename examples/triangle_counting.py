#!/usr/bin/env python3
"""Triangle Counting with masked SpGEMM (paper Section 8.2).

Counts triangles on an R-MAT graph and on members of the real-world
stand-in suite via ``sum(L .* (L @ L))``, comparing every algorithm's wall
time and operation profile, and showing why the degree-sorted relabeling
matters.

Run:  python examples/triangle_counting.py
"""

import time

from repro.apps import triangle_count_detail
from repro.core import ALGOS
from repro.graphs import load, rmat
from repro.machine import total_flops


def count_with_all_algorithms(name, graph):
    print(f"\n=== {name}: n={graph.nrows}, edges={graph.nnz // 2} ===")
    rows = []
    expected = None
    for algo in sorted(ALGOS):
        res = triangle_count_detail(graph, algo=algo)
        if expected is None:
            expected = res.triangles
        assert res.triangles == expected, (algo, res.triangles, expected)
        rows.append((algo, res.spgemm_seconds))
    rows.sort(key=lambda r: r[1])
    print(f"triangles = {expected}")
    for algo, secs in rows:
        bar = "#" * max(1, int(40 * secs / rows[-1][1]))
        print(f"  {algo:8s} {secs * 1e3:9.2f} ms  {bar}")


def relabeling_effect(graph):
    """Degree-sorted relabeling bounds the work of L @ L (paper [29])."""
    low_plain = graph.pattern().tril(-1)
    from repro.graphs import relabel_by_degree

    low_sorted = relabel_by_degree(graph.pattern()).tril(-1)
    print("\n=== effect of degree-sorted relabeling on L.*(L@L) work ===")
    print(f"  flops without relabel: {total_flops(low_plain, low_plain):>12,}")
    print(f"  flops with    relabel: {total_flops(low_sorted, low_sorted):>12,}")


def main() -> None:
    g = rmat(11, seed=7)
    count_with_all_algorithms("R-MAT scale 11", g)
    relabeling_effect(g)

    for name in ("er-mid-s", "smallworld-s", "powerlaw-s"):
        t0 = time.perf_counter()
        count_with_all_algorithms(name, load(name))
        print(f"  [{time.perf_counter() - t0:.1f}s total]")


if __name__ == "__main__":
    main()
