#!/usr/bin/env python3
"""Machine-model explorer: why does algorithm X win here?

Uses `repro.machine.explain` to attribute modeled cost per algorithm on
three contrasting problems (the Figure-7 regimes), on the paper's two
machine presets and on a configuration calibrated to this host.

Run:  python examples/model_explorer.py
"""

from repro.graphs import erdos_renyi
from repro.machine import HASWELL, KNL, calibrate_machine, explain


def problem(d_in: int, d_mask: int, n: int = 4096, seed: int = 0):
    a = erdos_renyi(n, n, d_in, seed=seed)
    b = erdos_renyi(n, n, d_in, seed=seed + 1)
    m = erdos_renyi(n, n, d_mask, seed=seed + 2)
    return a, b, m


def main() -> None:
    regimes = {
        "mask << inputs  (inner territory)": problem(48, 1),
        "inputs << mask  (heap territory)": problem(1, 48),
        "comparable      (accumulator territory)": problem(12, 12),
    }
    for title, (a, b, m) in regimes.items():
        print(f"### {title}")
        print(explain(a, b, m, HASWELL,
                      algos=("inner", "msa", "hash", "mca", "heap", "esc")))
        print()

    # machine effects: the same comparable-density problem on KNL (no L3)
    a, b, m = regimes["comparable      (accumulator territory)"]
    print("### the same comparable problem on KNL (no L3):")
    print(explain(a, b, m, KNL, algos=("inner", "msa", "hash", "mca")))
    print()

    print("### calibrated to this host:")
    local = calibrate_machine()
    print(f"(calibrated: private={local.private_cache_bytes >> 10}KB, "
          f"llc={local.llc_bytes >> 20}MB, hit={local.hit_cycles:.1f}, "
          f"dram={local.dram_cycles:.1f} cycles)")
    print(explain(a, b, m, local, algos=("inner", "msa", "hash", "mca")))


if __name__ == "__main__":
    main()
