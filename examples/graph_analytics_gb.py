#!/usr/bin/env python3
"""Graph analytics through the GraphBLAS-style interface.

The paper's benchmark harness plugs masked-SpGEMM algorithms behind the
GraphBLAS API (Section 7).  This example shows that interface end-to-end:

* `mxm` with masks, complements and pluggable algorithms,
* triangle counting written as three GraphBLAS calls,
* direction-optimized BFS (masked SpMV push-pull),
* Markov clustering of a modular graph.

Run:  python examples/graph_analytics_gb.py
"""

import numpy as np

import repro.graphblas as gb
from repro.apps import direction_optimized_bfs, markov_clustering
from repro.graphs import block_diagonal_dense, rmat
from repro.semiring import PLUS_PAIR


def triangle_counting_gb() -> None:
    g = rmat(10, seed=1)
    print(f"=== triangle counting via gb.mxm (n={g.nrows}) ===")
    a = gb.Matrix.from_csr(g)
    low = gb.Matrix.from_csr(g.tril(-1))
    for algo in ("msa", "mca", "inner", "hybrid"):
        c = gb.mxm(low, low, mask=low, semiring=PLUS_PAIR,
                   desc=gb.Descriptor(algo=algo))
        print(f"  algo={algo:7s} triangles = {int(c.reduce_scalar())}")


def masked_vs_unmasked() -> None:
    g = rmat(9, seed=2)
    a = gb.Matrix.from_csr(g)
    low = gb.Matrix.from_csr(g.tril(-1))
    full = gb.mxm(low, low)  # no mask: full product
    masked = gb.mxm(low, low, mask=low)
    print(f"\n=== the mask's effect ===\n"
          f"  unmasked product: {full.nvals} entries\n"
          f"  masked product:   {masked.nvals} entries "
          f"({masked.nvals / max(1, full.nvals):.1%} kept)")


def bfs_push_pull() -> None:
    g = rmat(11, seed=3)
    hub = int(np.argmax(g.row_nnz()))
    res = direction_optimized_bfs(g, hub)
    print(f"\n=== direction-optimized BFS from hub {hub} ===")
    print(f"  levels used: {res.directions} (depth {res.depth})")
    reached = int((res.levels >= 0).sum())
    print(f"  reached {reached}/{g.nrows} vertices")


def clustering() -> None:
    g = block_diagonal_dense(5, 16, seed=4, fill=0.7)
    res = markov_clustering(g)
    sizes = sorted(len(c) for c in res.clusters)
    print(f"\n=== Markov clustering (5 planted blocks of 16) ===")
    print(f"  found {len(res.clusters)} clusters of sizes {sizes} "
          f"in {res.iterations} iterations (converged={res.converged})")


def main() -> None:
    triangle_counting_gb()
    masked_vs_unmasked()
    bfs_push_pull()
    clustering()


if __name__ == "__main__":
    main()
