#!/usr/bin/env python3
"""End-to-end analytics on a real graph file (Zachary's karate club).

Shows the MatrixMarket path a user with SuiteSparse matrices would take:
load ``.mtx`` → run the full masked-SpGEMM application stack → save
intermediate results as ``.npz``.

Run:  python examples/real_data.py [path/to/matrix.mtx]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.apps import (
    betweenness_centrality,
    connected_components,
    ktruss,
    markov_clustering,
    triangle_count_detail,
)
from repro.sparse import load_npz, read_mtx, save_npz

DEFAULT = Path(__file__).parent.parent / "data" / "karate.mtx"


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT
    g = read_mtx(path)
    print(f"loaded {path.name}: {g.nrows} vertices, {g.nnz // 2} edges")

    cc = connected_components(g)
    print(f"\nconnected components: {cc.n_components}")

    tc = triangle_count_detail(g)
    print(f"triangles: {tc.triangles} "
          f"({tc.counter.flops} masked flops, "
          f"{tc.spgemm_seconds * 1e3:.2f} ms in the masked SpGEMM)")

    for k in (3, 4, 5):
        res = ktruss(g, k)
        print(f"{k}-truss: {res.truss.nnz // 2} edges "
              f"({res.iterations} pruning iterations)")

    bc = betweenness_centrality(g, sources=range(g.nrows))
    top = np.argsort(bc.centrality)[::-1][:5]
    print("top-5 betweenness:",
          [(int(v), round(float(bc.centrality[v] / 2), 1)) for v in top])

    mcl = markov_clustering(g, inflation=1.8)
    sizes = sorted((len(c) for c in mcl.clusters), reverse=True)
    print(f"MCL communities: {len(mcl.clusters)} (sizes {sizes[:6]}...)")

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "graph.npz"
        save_npz(out, g)
        again = load_npz(out)
        assert again.equals(g)
        print(f"\nround-tripped through {out.name} "
              f"({out.stat().st_size} bytes compressed)")


if __name__ == "__main__":
    main()
