#!/usr/bin/env python3
"""Masked SpGEMM for tree-based extreme multi-label inference.

The paper's introduction cites Etter et al. (2021), who accelerate ranking
trees with masked SpGEMM: during beam search over a probabilistic label
tree, each level scores only the children of the surviving beam — a masked
product whose mask is the beam frontier.

This example builds a synthetic label tree (4096 labels), runs beam-search
inference over a batch of sparse queries, and sweeps the beam width to show
the flops/recall tradeoff the masking enables.

Run:  python examples/tree_inference.py
"""

import time

import numpy as np

from repro.apps import (
    beam_search_inference,
    exhaustive_inference,
    random_label_tree,
)
from repro.graphs import erdos_renyi


def main() -> None:
    n_features = 5000
    tree = random_label_tree(n_features, branching=8, depth=4,
                             nnz_per_node=16, seed=1)
    print(f"label tree: depth={tree.depth}, labels={tree.n_labels}, "
          f"level sizes={[lvl.nrows for lvl in tree.levels]}")

    batch = 64
    x = erdos_renyi(batch, n_features, 30, seed=2)
    print(f"queries: batch={batch}, ~30 features each\n")

    t0 = time.perf_counter()
    exact = exhaustive_inference(tree, x, top_k=5)
    t_exact = time.perf_counter() - t0
    print(f"exhaustive scoring: {exact.counter.flops:>9,} flops, "
          f"{t_exact * 1e3:7.1f} ms")

    print(f"\n{'beam':>5} {'flops':>10} {'saving':>7} {'recall@5':>9} {'ms':>8}")
    for beam in (1, 2, 4, 8, 16):
        t0 = time.perf_counter()
        res = beam_search_inference(tree, x, beam_width=beam, top_k=5,
                                    algo="mca")
        dt = time.perf_counter() - t0
        recall = float(np.isin(res.labels, exact.labels).mean())
        saving = exact.counter.flops / max(1, res.masked_flops)
        print(f"{beam:>5} {res.masked_flops:>10,} {saving:>6.1f}x "
              f"{recall:>8.2%} {dt * 1e3:>8.1f}")

    print("\nthe mask prices only beam-children, so flops grow with the "
          "beam, not with the label count — the Etter et al. speedup "
          "mechanism.  Recall climbs with beam width while staying far "
          "below exhaustive cost (real PLTs route much better than this "
          "random-feature tree).")


if __name__ == "__main__":
    main()
