#!/usr/bin/env python3
"""k-truss decomposition with iterated masked SpGEMM (paper Section 8.3).

Shows the pruning dynamics the paper exploits: the mask (the current
adjacency) gets sparser every iteration, which is why pull-based schemes
become competitive mid-run.  Prints per-iteration edge counts, the flops
metric the paper reports, and a truss-peeling sweep over k.

Run:  python examples/ktruss_pruning.py
"""

from repro.apps import ktruss
from repro.graphs import load, rmat


def main() -> None:
    g = rmat(11, seed=3)
    print(f"graph: n={g.nrows}, edges={g.nnz // 2}\n")

    # -- one detailed k=5 run ------------------------------------------
    res = ktruss(g, k=5)
    print(f"k=5 truss: {res.truss.nnz // 2} edges after {res.iterations} "
          f"iterations")
    print("edges per iteration:")
    first = res.edges_per_iter[0]
    for i, e in enumerate(res.edges_per_iter, 1):
        bar = "#" * max(1, int(50 * e / first))
        print(f"  iter {i:2d}: {e // 2:>8} edges  {bar}")
    gflops = res.flops / max(res.spgemm_seconds, 1e-12) / 1e9
    print(f"\npaper's metric (sum flops / total spgemm time): "
          f"{gflops:.3f} GFLOPS equivalent "
          f"({res.flops:,} flops, {res.spgemm_seconds * 1e3:.1f} ms)")

    # -- truss peeling: how many edges survive at each k? ---------------
    print("\ntruss peeling on rmat-10 (suite):")
    g2 = load("rmat-10")
    for k in range(3, 9):
        r = ktruss(g2, k)
        print(f"  k={k}: {r.truss.nnz // 2:>7} edges "
              f"({r.iterations} iterations)")

    # -- algorithm comparison on one run ---------------------------------
    print("\nper-algorithm timing (k=5, rmat-10):")
    rows = []
    for algo in ("msa", "hash", "mca", "inner"):
        r = ktruss(g2, 5, algo=algo)
        rows.append((algo, r.spgemm_seconds))
    rows.sort(key=lambda x: x[1])
    for algo, secs in rows:
        print(f"  {algo:6s} {secs * 1e3:8.1f} ms")


if __name__ == "__main__":
    main()
