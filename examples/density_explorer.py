#!/usr/bin/env python3
"""Density explorer: who wins where? (paper Figure 7 + Section 4.3)

Sweeps mask density against input density on Erdős–Rényi matrices and
prints the winning algorithm per cell, three ways:

1. the machine cost model on the Haswell preset (the paper's Figure 7),
2. the same on the KNL preset (no L3 — watch the regions move),
3. measured wall-clock of the vectorized kernels in this process.

Also demonstrates the hybrid per-row dispatcher (the paper's future work)
routing a mixed-density problem.

Run:  python examples/density_explorer.py
"""

import time

from repro.bench import fig07_density_grid, render_grid
from repro.core import classify_rows, masked_spgemm
from repro.graphs import erdos_renyi
from repro.machine import HASWELL, KNL
from repro.sparse import CSC


def modeled_grids() -> None:
    degrees = (1, 4, 16, 64)
    for machine in (HASWELL, KNL):
        res = fig07_density_grid(n=4096, degrees=degrees, machine=machine)
        print(render_grid(
            "input_deg", "mask_deg",
            res.input_degrees, res.mask_degrees, res.winners,
            title=f"modeled winners on {machine.name} (n=4096)",
        ))
        print()


def measured_grid() -> None:
    degrees = (2, 8, 32)
    n = 4000
    winners = {}
    for d_in in degrees:
        a = erdos_renyi(n, n, d_in, seed=d_in)
        b = erdos_renyi(n, n, d_in, seed=d_in + 99)
        b_csc = CSC.from_csr(b)
        for d_m in degrees:
            m = erdos_renyi(n, n, d_m, seed=d_m + 7)
            best, best_t = None, float("inf")
            for algo in ("msa", "hash", "mca", "inner"):
                t0 = time.perf_counter()
                masked_spgemm(a, b, m, algo=algo,
                              b_csc=b_csc if algo == "inner" else None)
                t = time.perf_counter() - t0
                if t < best_t:
                    best, best_t = algo, t
            winners[(d_in, d_m)] = best
    print(render_grid(
        "input_deg", "mask_deg", list(degrees), list(degrees), winners,
        title=f"measured winners in this process (n={n}, vectorized kernels)",
    ))
    print()


def hybrid_demo() -> None:
    n = 3000
    a = erdos_renyi(n, n, 24, seed=1)
    b = erdos_renyi(n, n, 12, seed=2)
    m = erdos_renyi(n, n, 2, seed=3)
    classes = classify_rows(a, b, m, HASWELL)
    print("hybrid routing on a (dense A, sparse mask) problem:")
    for algo, rows in classes.items():
        print(f"  {algo:6s} <- {rows.size} rows")


def main() -> None:
    modeled_grids()
    measured_grid()
    hybrid_demo()


if __name__ == "__main__":
    main()
