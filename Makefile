# Convenience targets for the masked SpGEMM reproduction.

PY ?= python3

.PHONY: install test bench figures measured examples clean

install:
	$(PY) setup.py develop

test:
	$(PY) -m pytest tests/ -q

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -q

figures:
	$(PY) -m repro.bench --all

measured:
	REPRO_MEASURED=1 $(PY) -m pytest benchmarks/ --benchmark-only -q

examples:
	for f in examples/*.py; do echo "== $$f"; $(PY) $$f || exit 1; done

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
