"""Tests for the tracing & metrics layer (:mod:`repro.observe`).

Four contracts, in the order the module docstring states them:

1. Tracing off is (nearly) free — the kernel micro-benchmark through the
   ``traced_kernel`` wrapper stays within 2% of the undecorated kernel.
2. Spans nest correctly per thread: parent links, exception handling, and
   stack hygiene.
3. Spans cross processes: a process-backend run yields spans from at least
   two distinct worker pids, and the merged trace's counter totals are
   bit-for-bit equal to a serial run of the same problem.
4. Exports are valid: Chrome trace JSON round-trips and carries the plan,
   the metrics summary reproduces the OpCounter totals, and the report
   interleaves plan explanation with measured spans.

Cross-process tests carry the ``backend`` marker (CI's backend-smoke job);
the whole module carries ``trace``.
"""

from __future__ import annotations

import json
import logging
import os
import time

import numpy as np
import pytest

from repro.core.kernels.msa_kernel import masked_spgemm_msa_fast
from repro.engine import Planner
from repro.engine.executor import execute
from repro.graphs import erdos_renyi, rmat, relabel_by_degree
from repro.machine import HASWELL, OpCounter
from repro.observe import (
    Tracer,
    current,
    metrics,
    report,
    set_tracer,
    timed_span,
    tracing,
    write_chrome_trace,
    write_metrics,
)
from repro.parallel import parallel_masked_spgemm, shutdown_pool
from repro.parallel.pool import process_backend_available
from repro.semiring import PLUS_PAIR, PLUS_TIMES, Semiring
from repro.apps import triangle_count_detail

pytestmark = pytest.mark.trace


def _triple(seed=1):
    a = erdos_renyi(60, 60, 5, seed=seed, values="uniform")
    b = erdos_renyi(60, 60, 5, seed=seed + 1, values="uniform")
    m = erdos_renyi(60, 60, 8, seed=seed + 2)
    return a, b, m


# ----------------------------------------------------------------------
# 1. disabled-path overhead
# ----------------------------------------------------------------------


class TestDisabledOverhead:
    def test_no_tracer_installed_by_default(self):
        assert current() is None

    def test_wrapper_overhead_under_two_percent(self):
        """`traced_kernel`'s disabled path: one global read per call.

        Times the decorated entry point against ``__wrapped__`` (the bare
        kernel) with tracing off, min-of-repeats both ways.  The 2% bound
        is the ISSUE's acceptance criterion; a small absolute floor keeps
        the test honest on noisy CI machines where a sub-millisecond
        kernel can jitter more than 2% for reasons unrelated to tracing.
        """
        a, b, m = _triple()
        bare = masked_spgemm_msa_fast.__wrapped__
        # warm both paths (allocators, caches)
        masked_spgemm_msa_fast(a, b, m, semiring=PLUS_TIMES)
        bare(a, b, m, semiring=PLUS_TIMES)

        def best_of(fn, trials=7, calls=20):
            best = float("inf")
            for _ in range(trials):
                t0 = time.perf_counter()
                for _ in range(calls):
                    fn(a, b, m, semiring=PLUS_TIMES)
                best = min(best, time.perf_counter() - t0)
            return best

        assert current() is None
        t_bare = best_of(bare)
        t_wrapped = best_of(masked_spgemm_msa_fast)
        assert t_wrapped <= t_bare * 1.02 + 200e-6, (
            f"disabled-path overhead too high: {t_wrapped:.6f}s wrapped "
            f"vs {t_bare:.6f}s bare"
        )

    def test_wrapped_attribute_reaches_bare_kernel(self):
        assert masked_spgemm_msa_fast.__wrapped__ is not masked_spgemm_msa_fast

    def test_timed_span_measures_without_tracer(self):
        assert current() is None
        with timed_span("x") as sp:
            time.sleep(0.001)
        assert sp.seconds >= 0.001


# ----------------------------------------------------------------------
# 2. span nesting / integrity
# ----------------------------------------------------------------------


class TestSpanIntegrity:
    def test_nesting_parent_links(self):
        with tracing() as tr:
            with tr.span("outer"):
                with tr.span("inner"):
                    pass
                with tr.span("inner2"):
                    pass
        by_name = {sp.name: sp for sp in tr.spans}
        outer, inner, inner2 = by_name["outer"], by_name["inner"], by_name["inner2"]
        assert inner.parent_id == outer.span_id
        assert inner2.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.span_id != inner2.span_id
        assert all(sp.pid == os.getpid() for sp in tr.spans)
        assert tr.depth() == 0

    def test_exception_closes_span_and_tags_error(self):
        with tracing() as tr:
            with pytest.raises(ValueError):
                with tr.span("will_fail"):
                    raise ValueError("boom")
        (sp,) = tr.spans
        assert sp.name == "will_fail"
        assert sp.attrs["error"] == "ValueError"
        assert tr.depth() == 0

    def test_counter_delta_attached(self):
        c = OpCounter()
        c.flops = 100
        with tracing() as tr:
            with tr.span("work", counter=c):
                c.flops += 7
                c.output_nnz += 3
        (sp,) = tr.spans
        assert sp.counters == {"flops": 7, "output_nnz": 3}

    def test_tracing_restores_previous(self):
        assert current() is None
        with tracing() as outer_tr:
            assert current() is outer_tr
            with tracing() as inner_tr:
                assert current() is inner_tr
            assert current() is outer_tr
        assert current() is None

    def test_ingest_remaps_ids_preserves_structure(self):
        worker = Tracer()
        prev = set_tracer(None)  # make sure ids are local to `worker`
        try:
            with worker.span("parent"):
                with worker.span("child"):
                    pass
        finally:
            set_tracer(prev)
        records = worker.export()
        # mimic a foreign pid so track labelling is exercised
        for rec in records:
            rec["pid"] = 99999

        coord = Tracer()
        with coord.span("local"):
            pass
        coord.ingest(records)
        spans = {sp.name: sp for sp in coord.spans}
        assert spans["child"].parent_id == spans["parent"].span_id
        assert spans["parent"].parent_id is None
        assert spans["parent"].pid == 99999
        ids = [sp.span_id for sp in coord.spans]
        assert len(ids) == len(set(ids)), "ingested ids must not collide"


# ----------------------------------------------------------------------
# 3. engine / kernels emit spans; exports are valid
# ----------------------------------------------------------------------


class TestExports:
    @pytest.fixture(scope="class")
    def traced_tc(self):
        """One traced serial triangle count, shared across export tests."""
        g = rmat(8, seed=5)
        counter = OpCounter()
        with tracing() as tr:
            res = triangle_count_detail(
                g, algo="auto", backend="serial", counter=counter
            )
        return g, res, counter, tr

    def test_expected_span_names(self, traced_tc):
        _, _, _, tr = traced_tc
        names = {sp.name for sp in tr.spans}
        assert "tc.run" in names
        assert "tc.spgemm" in names
        assert "engine.execute" in names
        assert "engine.band" in names
        assert any(n.startswith("kernel.") for n in names)

    def test_chrome_trace_round_trips_with_plan(self, traced_tc, tmp_path):
        _, _, _, tr = traced_tc
        path = tmp_path / "tc.trace.json"
        write_chrome_trace(path, tr)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert events, "trace must not be empty"
        x = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in x)
        execs = [e for e in x if e["name"] == "engine.execute"]
        assert execs and "plan" in execs[0]["args"], (
            "engine.execute event must carry the plan metadata"
        )
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["args"]["name"] == "coordinator" for e in meta)

    def test_metrics_reproduce_counter_totals(self, traced_tc):
        _, _, counter, tr = traced_tc
        m = metrics(tr, machine=HASWELL)
        want = {k: v for k, v in counter.as_dict().items() if v}
        assert m["counter_totals"] == want, (
            "leaf-span counter totals must equal the run's OpCounter"
        )
        assert m["seconds_by_phase"].get("numeric", 0.0) > 0.0
        assert m["bytes_moved_estimate"] > 0
        assert m["machine"] == HASWELL.name
        assert m["process_count"] == 1

    def test_metrics_json_serializable(self, traced_tc, tmp_path):
        _, _, _, tr = traced_tc
        path = tmp_path / "tc.metrics.json"
        write_metrics(path, tr, machine=HASWELL)
        doc = json.loads(path.read_text())
        assert doc["span_count"] == len(tr.spans)

    def test_report_interleaves_plan_and_spans(self, traced_tc):
        g, _, _, tr = traced_tc
        low = relabel_by_degree(g.pattern()).tril(-1)
        pl = Planner(HASWELL).plan(low, low, low)
        text = report(tr, plan=pl)
        assert "tc.run" in text
        assert "engine.execute" in text
        assert "modeled" in text.lower()

    def test_tracing_does_not_change_results(self, traced_tc):
        g, res, counter, _ = traced_tc
        ref_counter = OpCounter()
        ref = triangle_count_detail(
            g, algo="auto", backend="serial", counter=ref_counter
        )
        assert ref.triangles == res.triangles
        assert ref_counter.as_dict() == counter.as_dict()

    def test_apps_report_timings_untraced(self):
        assert current() is None
        g = rmat(7, seed=2)
        res = triangle_count_detail(g, algo="msa")
        assert res.total_seconds > 0
        assert res.spgemm_seconds > 0
        assert res.total_seconds >= res.spgemm_seconds


# ----------------------------------------------------------------------
# 4. cross-process span collection (backend marker: CI smoke job)
# ----------------------------------------------------------------------


@pytest.mark.backend
class TestProcessBackendTracing:
    @pytest.fixture(scope="class", autouse=True)
    def _pool_teardown(self):
        yield
        shutdown_pool()

    @pytest.mark.skipif(
        not process_backend_available(), reason="no shared-memory support"
    )
    def test_worker_spans_and_counter_equivalence(self):
        low = relabel_by_degree(rmat(11, seed=1).pattern()).tril(-1)

        c_serial = OpCounter()
        ref = parallel_masked_spgemm(
            low, low, low, algo="msa", threads=4, backend="serial",
            semiring=PLUS_PAIR, counter=c_serial,
        )
        c_proc = OpCounter()
        with tracing() as tr:
            got = parallel_masked_spgemm(
                low, low, low, algo="msa", threads=4, backend="process",
                semiring=PLUS_PAIR, counter=c_proc,
            )

        # results and counters: bit-for-bit equal to the serial run
        assert np.array_equal(got.indptr, ref.indptr)
        assert np.array_equal(got.indices, ref.indices)
        assert np.array_equal(got.data, ref.data)
        assert c_proc.as_dict() == c_serial.as_dict()

        # spans from >= 2 distinct worker pids, merged onto the timeline
        me = os.getpid()
        worker_pids = {sp.pid for sp in tr.spans if sp.pid != me}
        assert len(worker_pids) >= 2, (
            f"expected spans from >=2 worker processes, got {worker_pids}"
        )
        part = [sp for sp in tr.spans if sp.name == "parallel.partition"]
        assert part and all(sp.pid != me for sp in part)
        assert all(sp.attrs.get("backend") == "process" for sp in part)
        kern = [sp for sp in tr.spans if sp.name.startswith("kernel.")]
        assert kern and all(sp.pid != me for sp in kern)

        # parent links survive the merge: every worker kernel span hangs
        # under a partition span from the *same* pid (a flattened-ingest
        # id collision would cross-link kernels onto a foreign partition).
        # kernel.bucket chunk spans nest one level deeper, inside the
        # kernel whose batched tier emitted them.
        by_id = {sp.span_id: sp for sp in tr.spans}
        for sp in kern:
            parent = by_id[sp.parent_id]
            if sp.name == "kernel.bucket":
                assert parent.name.startswith("kernel.")
            else:
                assert parent.name == "parallel.partition"
            assert parent.pid == sp.pid
            assert parent.t0 <= sp.t0 and sp.t1 <= parent.t1

        # the merged trace's leaf counters reproduce the whole-run totals
        m = metrics(tr)
        want = {k: v for k, v in c_serial.as_dict().items() if v}
        assert m["counter_totals"] == want
        assert m["process_count"] >= 3  # coordinator + >=2 workers

    @pytest.mark.skipif(
        not process_backend_available(), reason="no shared-memory support"
    )
    def test_untraced_process_run_ships_no_spans(self):
        low = relabel_by_degree(rmat(9, seed=3).pattern()).tril(-1)
        assert current() is None
        out = parallel_masked_spgemm(
            low, low, low, algo="msa", threads=2, backend="process",
            semiring=PLUS_PAIR,
        )
        assert out.nnz >= 0  # ran; nothing to trace, nothing crashed


# ----------------------------------------------------------------------
# semiring fallback: loud, recorded on the plan
# ----------------------------------------------------------------------


class TestSemiringFallback:
    def test_unpicklable_semiring_warns_and_notes_plan(self, caplog):
        a, b, m = _triple(seed=9)
        weird = Semiring(
            "local_lambda", lambda x, y: x + y, lambda x, y: x * y
        )
        pl = Planner(HASWELL).plan(a, b, m, backend="process")
        assert pl.backend == "process"
        with caplog.at_level(logging.WARNING, logger="repro"):
            got = execute(pl, a, b, m, semiring=weird)
        assert any(
            "fell back to thread" in r.message for r in caplog.records
        ), "degradation must be logged on the repro logger"
        assert any("fell back to thread" in n for n in pl.notes), (
            "degradation must be recorded in the plan's notes"
        )
        ref = execute(
            Planner(HASWELL).plan(a, b, m, backend="serial"), a, b, m,
            semiring=weird,
        )
        assert np.array_equal(got.indptr, ref.indptr)
        assert np.array_equal(got.indices, ref.indices)
        assert np.allclose(got.data, ref.data)


# ----------------------------------------------------------------------
# exporter edge cases: empty traces and zero-span batches
# ----------------------------------------------------------------------


class TestExportEdgeCases:
    def test_metrics_on_empty_trace(self):
        with tracing() as tr:
            pass
        m = metrics(tr, machine=HASWELL)
        assert m["span_count"] == 0
        assert m["counter_totals"] == {}
        assert m["bytes_moved_estimate"] == 0
        assert m["seconds_by_phase"] == {}
        assert m["probes"] == {}

    def test_chrome_trace_on_empty_trace(self, tmp_path):
        with tracing() as tr:
            pass
        path = tmp_path / "empty.trace.json"
        write_chrome_trace(path, tr)
        doc = json.loads(path.read_text())
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []

    def test_report_on_empty_trace(self):
        with tracing() as tr:
            pass
        text = report(tr)
        assert isinstance(text, str)

    def test_ingest_zero_span_batch(self):
        with tracing() as tr:
            with tr.span("only.local"):
                pass
            tr.ingest([])
        assert [sp.name for sp in tr.spans] == ["only.local"]
        assert metrics(tr, machine=HASWELL)["span_count"] == 1

    def test_metrics_accepts_empty_span_list(self):
        m = metrics([], machine=HASWELL)
        assert m["span_count"] == 0 and m["counter_totals"] == {}

    def test_metrics_schema_version_leads_the_payload(self):
        from repro.observe import METRICS_SCHEMA_VERSION

        m = metrics([], machine=HASWELL)
        assert m["schema_version"] == METRICS_SCHEMA_VERSION
        assert next(iter(m)) == "schema_version"

    def test_metrics_on_never_enabled_tracer(self):
        """``metrics(None)`` — observability was never switched on — must
        export as cleanly as an empty trace, with the runtime section
        empty rather than absent."""
        m = metrics(None, machine=HASWELL)
        assert m["span_count"] == 0
        assert m["counter_totals"] == {}
        assert m["runtime"] == {}
        json.dumps(m)

    def test_chrome_trace_on_never_enabled_tracer(self):
        from repro.observe import chrome_trace

        doc = chrome_trace(None)
        assert doc["traceEvents"] == []
        json.dumps(doc)

    def test_report_on_never_enabled_tracer(self):
        text = report(None)
        assert "0 spans" in text
        assert "(no spans recorded)" in text

    def test_untraced_sessioned_report_shows_cache_and_pool(self):
        """Satellite contract: an *untraced* sessioned run still surfaces
        segment-cache occupancy and pool size through ``report()``."""
        from repro.engine import ExecutionSession

        assert current() is None
        g = rmat(7, seed=4)
        low = relabel_by_degree(g.pattern()).tril(-1)
        with ExecutionSession() as session:
            from repro.core import masked_spgemm

            masked_spgemm(low, low, low, algo="msa", semiring=PLUS_PAIR,
                          session=session)
            text = report(None, session=session)
        assert "segment cache" in text
        assert "process pool" in text
        assert "plan cache" in text


# ----------------------------------------------------------------------
# prediction-ledger bias flags (PR 8's summary statistics)
# ----------------------------------------------------------------------


class TestLedgerBiasFlags:
    @staticmethod
    def _rows(ratios, kind="band"):
        """Ledger rows with measured/modeled == each requested ratio."""
        return [
            {"kind": kind, "modeled_seconds": 0.001,
             "measured_seconds": 0.001 * r}
            for r in ratios
        ]

    def test_optimistic_when_model_undershoots(self):
        from repro.observe import misprediction_summary

        entry = misprediction_summary(self._rows([90.0, 100.0, 110.0]))["band"]
        assert entry["bias"] == "optimistic"
        assert entry["ratio_median"] == pytest.approx(100.0)

    def test_pessimistic_when_model_overshoots(self):
        from repro.observe import misprediction_summary

        entry = misprediction_summary(self._rows([0.01, 0.012, 0.009]))["band"]
        assert entry["bias"] == "pessimistic"

    def test_centered_inside_2x_both_ways(self):
        from repro.observe import misprediction_summary

        for ratios in ([0.9, 1.0, 1.1], [2.0], [0.5]):
            entry = misprediction_summary(self._rows(ratios))["band"]
            assert entry["bias"] == "centered", ratios

    def test_single_sample_mad_is_zero(self):
        from repro.observe import misprediction_summary

        entry = misprediction_summary(self._rows([3.0]))["band"]
        assert entry["with_model"] == 1
        assert entry["log10_ratio_mad"] == 0.0
        assert entry["bias"] == "optimistic"

    def test_all_identical_ratios_mad_is_zero(self):
        from repro.observe import misprediction_summary

        entry = misprediction_summary(self._rows([4.0] * 5))["band"]
        assert entry["log10_ratio_mad"] == 0.0
        assert entry["ratio_median"] == pytest.approx(4.0)

    def test_unmodeled_rows_counted_but_excluded_from_ratios(self):
        from repro.observe import misprediction_summary

        rows = self._rows([10.0, 10.0])
        rows.append({"kind": "band", "modeled_seconds": None,
                     "measured_seconds": 0.5})
        rows.append({"kind": "band", "modeled_seconds": 0.0,
                     "measured_seconds": 0.5})
        entry = misprediction_summary(rows)["band"]
        assert entry["rows"] == 4
        assert entry["with_model"] == 2
        assert entry["bias"] == "optimistic"

    def test_kinds_summarised_independently(self):
        from repro.observe import misprediction_summary

        rows = self._rows([100.0], kind="band") + \
            self._rows([0.01], kind="shard-cell")
        summary = misprediction_summary(rows)
        assert summary["band"]["bias"] == "optimistic"
        assert summary["shard-cell"]["bias"] == "pessimistic"
