"""Property-based tests (hypothesis) on the core data structures and the
masked SpGEMM invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import scipy_masked_spgemm
from repro.core import ALGOS, masked_spgemm, supports_complement
from repro.core.accumulators import MSA, HashAccumulator
from repro.machine import simulate_makespan
from repro.sparse import CSR, ewise_add, ewise_mult, mask_pattern

from .conftest import assert_csr_equal

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------


@st.composite
def coo_matrix(draw, max_dim=24, max_nnz=60):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        st.lists(st.integers(0, nrows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, ncols - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-8, 8, allow_nan=False, allow_infinity=False, width=32),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return CSR.from_coo(
        (nrows, ncols), np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64), np.array(vals),
    )


@st.composite
def spgemm_triple(draw, max_dim=16, max_nnz=48):
    m_ = draw(st.integers(1, max_dim))
    k = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))

    def mat(nr, nc):
        nnz = draw(st.integers(0, max_nnz))
        rows = draw(st.lists(st.integers(0, nr - 1), min_size=nnz, max_size=nnz))
        cols = draw(st.lists(st.integers(0, nc - 1), min_size=nnz, max_size=nnz))
        vals = draw(
            st.lists(
                st.floats(-4, 4, allow_nan=False, allow_infinity=False, width=32),
                min_size=nnz,
                max_size=nnz,
            )
        )
        return CSR.from_coo(
            (nr, nc), np.array(rows, dtype=np.int64),
            np.array(cols, dtype=np.int64), np.array(vals),
        )

    return mat(m_, k), mat(k, n), mat(m_, n)


# ----------------------------------------------------------------------
# CSR structural properties
# ----------------------------------------------------------------------


class TestCSRProperties:
    @given(coo_matrix())
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold(self, m):
        m.check()
        assert m.nnz == int(m.indptr[-1])

    @given(coo_matrix())
    @settings(max_examples=60, deadline=None)
    def test_dense_roundtrip(self, m):
        assert_csr_equal(CSR.from_dense(m.to_dense()), m.drop_zeros())

    @given(coo_matrix())
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, m):
        assert_csr_equal(m.transpose().transpose(), m)

    @given(coo_matrix())
    @settings(max_examples=60, deadline=None)
    def test_scipy_roundtrip(self, m):
        assert_csr_equal(CSR.from_scipy(m.to_scipy()), m)

    @given(coo_matrix())
    @settings(max_examples=40, deadline=None)
    def test_tril_triu_diag_partition(self, m):
        if m.nrows != m.ncols:
            return
        total = m.tril(-1).nnz + m.triu(1).nnz + m.tril(0).triu(0).nnz
        assert total == m.nnz


class TestEwiseProperties:
    @given(coo_matrix(max_dim=12))
    @settings(max_examples=40, deadline=None)
    def test_mult_with_self_squares(self, m):
        sq = ewise_mult(m, m)
        assert np.allclose(sq.to_dense(), m.to_dense() ** 2)

    @given(coo_matrix(max_dim=12), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_add_commutes(self, m, seed):
        rng = np.random.default_rng(seed)
        other = CSR.from_dense(
            (rng.random(m.shape) < 0.2) * rng.random(m.shape)
        )
        assert_csr_equal(ewise_add(m, other), ewise_add(other, m))

    @given(coo_matrix(max_dim=12), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_mask_partition_identity(self, m, seed):
        """mask(X, M) + mask(X, !M) == X for arbitrary X, M."""
        rng = np.random.default_rng(seed)
        mask = CSR.from_dense((rng.random(m.shape) < 0.3).astype(float))
        inside = mask_pattern(m, mask)
        outside = mask_pattern(m, mask, complement=True)
        assert inside.nnz + outside.nnz == m.nnz
        assert_csr_equal(ewise_add(inside, outside), m)


# ----------------------------------------------------------------------
# masked SpGEMM properties
# ----------------------------------------------------------------------


class TestMaskedSpGEMMProperties:
    @given(spgemm_triple())
    @settings(max_examples=25, deadline=None)
    def test_all_algorithms_match_oracle(self, triple):
        a, b, m = triple
        want = scipy_masked_spgemm(a, b, m)
        for algo in ALGOS:
            got = masked_spgemm(a, b, m, algo=algo, impl="auto")
            assert_csr_equal(got, want, msg=algo)

    @given(spgemm_triple())
    @settings(max_examples=20, deadline=None)
    def test_complement_algorithms_match_oracle(self, triple):
        a, b, m = triple
        want = scipy_masked_spgemm(a, b, m, complement=True)
        for algo in ALGOS:
            if not supports_complement(algo):
                continue
            got = masked_spgemm(a, b, m, algo=algo, impl="auto", complement=True)
            assert_csr_equal(got, want, msg=algo)

    @given(spgemm_triple())
    @settings(max_examples=20, deadline=None)
    def test_output_within_mask(self, triple):
        a, b, m = triple
        got = masked_spgemm(a, b, m, algo="msa")
        outside = mask_pattern(got, m, complement=True)
        assert outside.nnz == 0

    @given(spgemm_triple())
    @settings(max_examples=20, deadline=None)
    def test_symbolic_equals_numeric_nnz(self, triple):
        from repro.core import symbolic_masked

        a, b, m = triple
        got = masked_spgemm(a, b, m, algo="hash")
        assert np.array_equal(symbolic_masked(a, b, m), got.row_nnz())


# ----------------------------------------------------------------------
# accumulator state machines under random op sequences
# ----------------------------------------------------------------------


class TestAccumulatorProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["allow", "insert", "remove"]),
                st.integers(0, 15),
                st.floats(-4, 4, allow_nan=False, allow_infinity=False, width=32),
            ),
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_msa_and_hash_agree_with_model(self, ops):
        """MSA and Hash must implement identical semantics; a dict-based
        model accumulator defines them."""
        msa = MSA(16, lambda x, y: x + y)
        hsh = HashAccumulator(16, lambda x, y: x + y)
        allowed = set()
        values = {}
        for op, key, val in ops:
            if op == "allow":
                msa.set_allowed(key)
                hsh.set_allowed(key)
                allowed.add(key)
            elif op == "insert":
                msa.insert(key, val)
                hsh.insert(key, val)
                if key in allowed:
                    values[key] = values.get(key, 0.0) + val
            else:
                want = values.pop(key, None)
                got_msa = msa.remove(key)
                got_hsh = hsh.remove(key)
                allowed.discard(key)
                if want is None:
                    assert got_msa is None and got_hsh is None
                else:
                    assert got_msa is not None and got_hsh is not None
                    assert abs(got_msa - want) < 1e-9
                    assert abs(got_hsh - want) < 1e-9


# ----------------------------------------------------------------------
# scheduler bounds
# ----------------------------------------------------------------------


class TestSchedulerProperties:
    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=200),
        st.integers(1, 16),
        st.integers(1, 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_list_scheduling_bounds(self, costs, p, chunk):
        costs = np.asarray(costs)
        span = simulate_makespan(costs, p, schedule="dynamic", chunk=chunk)
        total = costs.sum()
        chunk_sums = [costs[i : i + chunk].sum() for i in range(0, len(costs), chunk)]
        max_chunk = max(chunk_sums)
        assert span >= max(total / p, max_chunk) - 1e-6
        assert span <= total / p + max_chunk + 1e-6


class TestSpMVProperties:
    @given(coo_matrix(max_dim=20), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_push_pull_agree(self, a, seed):
        from repro.core import masked_spmv_pull, masked_spmv_push
        from repro.sparse import CSC

        rng = np.random.default_rng(seed)
        x_vals = rng.random(a.nrows)
        x_pat = rng.random(a.nrows) < 0.5
        m_pat = rng.random(a.ncols) < 0.5
        yp, hp = masked_spmv_push(a, x_vals, x_pat, m_pat)
        yl, hl = masked_spmv_pull(CSC.from_csr(a), x_vals, x_pat, m_pat)
        assert np.array_equal(hp, hl)
        assert np.allclose(yp[hp], yl[hl])

    @given(coo_matrix(max_dim=16), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_push_matches_dense(self, a, seed):
        from repro.core import masked_spmv_push

        rng = np.random.default_rng(seed)
        x_vals = rng.random(a.nrows)
        x_pat = rng.random(a.nrows) < 0.4
        m_pat = rng.random(a.ncols) < 0.6
        y, hit = masked_spmv_push(a, x_vals, x_pat, m_pat)
        want = ((x_vals * x_pat) @ a.to_dense()) * m_pat
        assert np.allclose(y[hit], want[hit])
        # positions the kernel did not hit must be exact zeros in the oracle
        assert np.allclose(want[~hit & m_pat], 0.0)


class TestChunkedProperties:
    @given(spgemm_triple(), st.integers(1, 30))
    @settings(max_examples=25, deadline=None)
    def test_panel_width_invariant(self, triple, panel):
        from repro.core import masked_spgemm_chunked

        a, b, m = triple
        want = masked_spgemm(a, b, m, algo="msa")
        got = masked_spgemm_chunked(a, b, m, panel_width=panel)
        assert_csr_equal(got, want)


class TestOrientationProperties:
    @given(spgemm_triple())
    @settings(max_examples=25, deadline=None)
    def test_row_column_agree(self, triple):
        a, b, m = triple
        row = masked_spgemm(a, b, m, algo="hash", orientation="row")
        col = masked_spgemm(a, b, m, algo="hash", orientation="column")
        assert_csr_equal(col, row)
