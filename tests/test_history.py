"""Tests for the benchmark history store and regression gate.

The two acceptance anchors, asserted in the same test so they can never
drift apart: an artificially injected 2x hash slowdown is *always* flagged
(the ``max_rel`` band ceiling caps how much measured noise can excuse),
while comparing two identical runs never is (``delta = 0`` sits inside any
band).  Around them: record shape, append-only persistence, schema-version
refusal, and the two CLIs' exit-code contract (0 clean, 1 regression,
2 malformed input).

Collection happens once per module on a deliberately tiny pinned case set
(R-MAT scale 6, a 128-node mini-grid); everything downstream reuses that
run, so the suite stays CI-sized.
"""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

from repro.bench import history, regress
from repro.bench.history import (
    HISTORY_BASENAME,
    PINNED_SCHEME_NAMES,
    SCHEMA_VERSION,
    append_run,
    collect_run,
    env_fingerprint,
    latest_run,
    load_history,
    pinned_cases,
    record_key,
    run_artifact_name,
    write_run,
)
from repro.bench.regress import compare_records, compare_runs, render_report

pytestmark = pytest.mark.history


@pytest.fixture(scope="module")
def tiny_run():
    """One collected run over the miniature pinned case set."""
    cases = pinned_cases(rmat_scale=6, grid_n=128, grid_degrees=(2, 4))
    return collect_run(repeats=2, cases=cases, session_rmat_scale=6)


def _rec(median, mad=0.0, **overrides):
    base = {
        "scheme": "Hash-1P", "case": "c", "backend": "serial", "threads": 1,
        "repeats": 3, "median_s": median, "mad_s": mad,
        "samples_s": [median] * 3, "counters": {"flops": 10},
        "bytes_moved_estimate": 100, "probes": {},
    }
    base.update(overrides)
    return base


# ----------------------------------------------------------------------
# record collection
# ----------------------------------------------------------------------
class TestCollection:
    def test_run_shape(self, tiny_run):
        assert tiny_run["schema_version"] == SCHEMA_VERSION
        assert set(tiny_run["env"]) == {
            "git_sha", "python", "numpy", "cpu_count", "platform", "machine",
        }
        # 3 pinned schemes x (1 TC case + 2x2 grid cells), plus the
        # sessioned iterative-app records and the sharded/batched TC records
        assert len(tiny_run["records"]) == 20
        schemes = {r["scheme"] for r in tiny_run["records"]}
        assert schemes == set(PINNED_SCHEME_NAMES) | {
            "ktruss-session", "ktruss-delta", "bc-session", "tc-sharded",
            "tc-batched",
        }

    def test_record_carries_work_certificate(self, tiny_run):
        for r in tiny_run["records"]:
            assert r["repeats"] == 2 and len(r["samples_s"]) == 2
            assert r["median_s"] > 0 and r["mad_s"] >= 0
            assert r["counters"].get("flops", 0) > 0
            if "session" in r:
                # sessioned app records certify cache telemetry instead of
                # probe histograms; work counters must exclude the cache
                # counters (those live under "session").  tc-batched runs
                # the explicit-algo route (no plan cache) — its certificate
                # is the fused symbolic-bound reuse instead.
                if r["scheme"] == "tc-batched":
                    assert r["session"]["fused_numeric_hits"] > 0
                else:
                    assert r["session"]["plan_cache_hits"] > 0
                assert "plan_cache_hits" not in r["counters"]
                continue
            assert r["bytes_moved_estimate"] > 0
            assert r["probes"], f"no probe histograms on {record_key(r)}"

    def test_median_and_mad_match_samples(self, tiny_run):
        r = tiny_run["records"][0]
        arr = np.asarray(r["samples_s"])
        assert r["median_s"] == pytest.approx(float(np.median(arr)))
        assert r["mad_s"] == pytest.approx(
            float(np.median(np.abs(arr - np.median(arr))))
        )

    def test_counters_deterministic_across_collections(self, tiny_run):
        # repeats must match tiny_run's: sessioned records report the LAST
        # repeat's counters, and the incremental ktruss-delta record only
        # reaches its steady state (patch vs fallback mix) from repeat 2 on.
        cases = pinned_cases(rmat_scale=6, grid_n=128, grid_degrees=(2, 4))
        again = collect_run(repeats=2, cases=cases, session_rmat_scale=6)
        by_key = {record_key(r): r for r in again["records"]}
        for r in tiny_run["records"]:
            assert by_key[record_key(r)]["counters"] == r["counters"]

    def test_record_key_identity(self):
        assert record_key(_rec(1.0)) == "Hash-1P|c|serial|1"

    def test_env_fingerprint_git_sha(self):
        assert len(env_fingerprint()["git_sha"]) == 40
        assert env_fingerprint(cwd="/")["git_sha"] == "unknown"


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
class TestPersistence:
    def test_append_load_roundtrip(self, tiny_run, tmp_path):
        path = tmp_path / HISTORY_BASENAME
        append_run(path, tiny_run)
        second = copy.deepcopy(tiny_run)
        append_run(path, second)
        hist = load_history(path)
        assert len(hist["runs"]) == 2
        assert latest_run(hist)["records"] == second["records"]

    def test_single_run_artifact_roundtrip(self, tiny_run, tmp_path):
        name = run_artifact_name(tiny_run)
        assert name.startswith("BENCH_") and name.endswith(".json")
        path = tmp_path / name
        write_run(path, tiny_run)
        with open(path) as fh:
            payload = json.load(fh)
        # latest_run accepts a bare artifact as well as a history file
        assert latest_run(payload)["env"] == tiny_run["env"]

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps(
            {"schema_version": SCHEMA_VERSION + 1, "runs": []}
        ))
        with pytest.raises(ValueError, match="schema_version"):
            load_history(path)
        with pytest.raises(ValueError, match="schema_version"):
            latest_run({"schema_version": SCHEMA_VERSION + 1, "records": []})

    def test_non_history_payload_refused(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema_version": 1, "nonsense": True}))
        with pytest.raises(ValueError, match="runs"):
            load_history(path)

    def test_empty_history_has_no_latest(self):
        with pytest.raises(ValueError, match="no runs"):
            latest_run({"schema_version": 1, "runs": []})


# ----------------------------------------------------------------------
# band arithmetic (pure, no collection)
# ----------------------------------------------------------------------
class TestBand:
    def test_identical_records_ok(self):
        c = compare_records(_rec(1.0, 0.1), _rec(1.0, 0.1))
        assert c["status"] == "ok" and c["delta_s"] == 0.0

    def test_two_x_flagged_even_with_huge_mad(self):
        # MAD as large as the median: without the max_rel ceiling the noise
        # band (5 * 1.4826 * 1.0) would swallow the 2x shift
        c = compare_records(_rec(1.0, 1.0), _rec(2.0, 1.0))
        assert c["status"] == "regressed"
        assert c["band_s"] == pytest.approx(0.5)  # max_rel * base

    def test_min_rel_floor_absorbs_quantisation(self):
        # zero MAD (repeats quantised identically) + 20% drift: inside the
        # floor — a noisy shared machine wobbles that much run to run
        c = compare_records(_rec(1.0, 0.0), _rec(1.20, 0.0))
        assert c["status"] == "ok"
        assert c["band_s"] == pytest.approx(0.25)

    def test_improvement_flagged_symmetrically(self):
        c = compare_records(_rec(1.0, 0.0), _rec(0.4, 0.0))
        assert c["status"] == "improved"

    def test_counters_changed_travels(self):
        head = _rec(2.0, counters={"flops": 999})
        c = compare_records(_rec(1.0), head)
        assert c["counters_changed"] is True


# ----------------------------------------------------------------------
# the acceptance anchors
# ----------------------------------------------------------------------
class TestRegressionGate:
    def test_identical_runs_pass_and_injected_2x_fails(self, tiny_run):
        """Both anchors together: same run twice -> ok; the same run with
        every hash record's median doubled -> regression on exactly the
        hash keys, deterministically (max_rel caps what noise can excuse).
        """
        clean = compare_runs(tiny_run, copy.deepcopy(tiny_run))
        assert clean["verdict"] == "ok"
        assert clean["regressions"] == [] and clean["improvements"] == []

        slowed = copy.deepcopy(tiny_run)
        hash_keys = []
        for r in slowed["records"]:
            if r["scheme"] == "Hash-1P":
                r["median_s"] *= 2.0
                r["samples_s"] = [s * 2.0 for s in r["samples_s"]]
                hash_keys.append(record_key(r))
        verdict = compare_runs(tiny_run, slowed)
        assert verdict["verdict"] == "regression"
        assert verdict["regressions"] == sorted(hash_keys)
        # counters did not change: the report can say "machine, not algorithm"
        for c in verdict["comparisons"]:
            assert c["counters_changed"] is False

    def test_missing_and_new_keys_reported(self, tiny_run):
        head = copy.deepcopy(tiny_run)
        dropped = head["records"].pop()
        added = _rec(1.0, case="novel")
        head["records"].append(added)
        verdict = compare_runs(tiny_run, head)
        assert record_key(dropped) in verdict["missing_in_head"]
        assert record_key(added) in verdict["new_in_head"]
        # absent keys are annotations, not regressions
        assert verdict["verdict"] == "ok"

    def test_env_mismatch_warns_but_ignores_sha(self, tiny_run):
        head = copy.deepcopy(tiny_run)
        head["env"]["git_sha"] = "f" * 40
        head["env"]["cpu_count"] = tiny_run["env"]["cpu_count"] + 1
        verdict = compare_runs(tiny_run, head)
        assert verdict["env_mismatch"] == ["cpu_count"]

    def test_render_report_marks_regressions(self, tiny_run):
        slowed = copy.deepcopy(tiny_run)
        for r in slowed["records"]:
            if r["scheme"] == "Hash-1P":
                r["median_s"] *= 2.0
        text = render_report(compare_runs(tiny_run, slowed))
        assert "verdict: REGRESSION" in text
        reg_lines = [ln for ln in text.splitlines() if "regressed" in ln]
        assert len(reg_lines) == 5
        assert all("!" in ln and "Hash-1P|" in ln for ln in reg_lines)
        clean_text = render_report(compare_runs(tiny_run, tiny_run))
        assert "verdict: OK" in clean_text


# ----------------------------------------------------------------------
# CLI exit-code contract
# ----------------------------------------------------------------------
class TestCLI:
    def _artifacts(self, tiny_run, tmp_path):
        base = tmp_path / "base.json"
        write_run(base, tiny_run)
        slowed = copy.deepcopy(tiny_run)
        for r in slowed["records"]:
            if r["scheme"] == "Hash-1P":
                r["median_s"] *= 2.0
        head = tmp_path / "head.json"
        write_run(head, slowed)
        return base, head

    def test_regress_clean_exits_zero(self, tiny_run, tmp_path, capsys):
        base, _ = self._artifacts(tiny_run, tmp_path)
        rc = regress.main(["--baseline", str(base), "--head", str(base)])
        assert rc == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_regress_regression_exits_one_and_writes_json(
        self, tiny_run, tmp_path, capsys
    ):
        base, head = self._artifacts(tiny_run, tmp_path)
        out = tmp_path / "verdict.json"
        rc = regress.main(["--baseline", str(base), "--head", str(head),
                           "--json", str(out)])
        assert rc == 1
        assert "verdict: REGRESSION" in capsys.readouterr().out
        verdict = json.loads(out.read_text())
        assert verdict["verdict"] == "regression"
        assert all(k.startswith("Hash-1P|") for k in verdict["regressions"])

    def test_regress_malformed_baseline_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert regress.main(["--baseline", str(bad)]) == 2
        assert "cannot load baseline" in capsys.readouterr().err
        assert regress.main(["--baseline", str(tmp_path / "absent.json")]) == 2

    def test_regress_accepts_history_baseline(self, tiny_run, tmp_path):
        hist = tmp_path / HISTORY_BASENAME
        append_run(hist, tiny_run)
        _, head = self._artifacts(tiny_run, tmp_path)
        assert regress.main(["--baseline", str(hist), "--head", str(head)]) == 1

    def test_history_cli_writes_artifact_and_appends(
        self, tmp_path, capsys, monkeypatch
    ):
        # shrink the pinned set the CLI collects so the test stays fast
        monkeypatch.setattr(
            history, "pinned_cases",
            lambda rmat_scale=8: pinned_cases(
                rmat_scale=rmat_scale, grid_n=64, grid_degrees=(2,)
            ),
        )
        hist = tmp_path / HISTORY_BASENAME
        rc = history.main(["--repeats", "1", "--rmat-scale", "5",
                           "--history", str(hist),
                           "--run-dir", str(tmp_path)])
        assert rc == 0
        loaded = load_history(hist)
        assert len(loaded["runs"]) == 1
        run = latest_run(loaded)
        artifact = tmp_path / run_artifact_name(run)
        assert artifact.exists()
        with open(artifact) as fh:
            assert latest_run(json.load(fh))["records"] == run["records"]

    def test_history_cli_skips_append_with_dash(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            history, "pinned_cases",
            lambda rmat_scale=8: pinned_cases(
                rmat_scale=rmat_scale, grid_n=64, grid_degrees=(2,)
            ),
        )
        monkeypatch.chdir(tmp_path)
        rc = history.main(["--repeats", "1", "--rmat-scale", "5",
                           "--history", "-", "--run-dir", str(tmp_path)])
        assert rc == 0
        assert not (tmp_path / HISTORY_BASENAME).exists()

    def test_bench_main_baseline_delegates_to_regress(
        self, tiny_run, tmp_path, monkeypatch
    ):
        from repro.bench.__main__ import main as bench_main

        base, head = self._artifacts(tiny_run, tmp_path)
        # a fresh head collection would be slow; point the gate at the
        # prepared artifact by intercepting the delegated argv
        seen = {}

        def fake_regress(argv):
            seen["argv"] = argv
            return 1

        monkeypatch.setattr(regress, "main", fake_regress)
        rc = bench_main(["--baseline", str(base)])
        assert rc == 1
        assert seen["argv"][:2] == ["--baseline", str(base)]
