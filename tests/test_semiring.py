"""Unit tests for the semiring algebra."""

import numpy as np
import pytest

from repro.semiring import (
    MAX_TIMES,
    MIN_FIRST,
    MIN_PLUS,
    OR_AND,
    PLUS_AND,
    PLUS_FIRST,
    PLUS_PAIR,
    PLUS_SECOND,
    PLUS_TIMES,
    STANDARD_SEMIRINGS,
    Semiring,
)

ALL = list(STANDARD_SEMIRINGS.values())


@pytest.mark.parametrize("sr", ALL, ids=[s.name for s in ALL])
class TestSemiringLaws:
    """Algebraic laws every registered semiring must satisfy (on a sample)."""

    def _sample(self, sr):
        # boolean semirings are only defined on {0, 1}
        if sr.name in ("or_and",):
            return [0.0, 1.0]
        return [0.0, 1.0, 2.0, 3.5, 7.0]

    def test_add_commutative(self, sr):
        sample = self._sample(sr)
        for x in sample:
            for y in sample:
                assert sr.add(x, y) == sr.add(y, x)

    def test_add_associative(self, sr):
        sample = self._sample(sr)
        for x in sample:
            for y in sample:
                for z in sample:
                    assert sr.add(sr.add(x, y), z) == pytest.approx(
                        sr.add(x, sr.add(y, z))
                    )

    def test_add_identity(self, sr):
        for x in self._sample(sr):
            assert sr.add(x, sr.add_identity) == x
            assert sr.add(sr.add_identity, x) == x

    def test_scalar_matches_ufunc(self, sr):
        xs = np.array(self._sample(sr) * 2)
        ys = np.array((self._sample(sr) * 2)[::-1])
        vec = np.asarray(sr.add_ufunc(xs, ys), dtype=float)
        scal = np.array([sr.add(x, y) for x, y in zip(xs, ys)], dtype=float)
        assert np.allclose(vec, scal)

    def test_mult_scalar_matches_ufunc(self, sr):
        xs = np.array(self._sample(sr) * 2)
        ys = np.array((self._sample(sr) * 2)[::-1])
        vec = np.asarray(sr.mult_ufunc(xs, ys), dtype=float)
        scal = np.array([sr.mult(x, y) for x, y in zip(xs, ys)], dtype=float)
        assert np.allclose(vec, scal)


class TestSpecificSemirings:
    def test_plus_times(self):
        assert PLUS_TIMES.mult(3.0, 4.0) == 12.0
        assert PLUS_TIMES.add(3.0, 4.0) == 7.0

    def test_plus_pair_counts(self):
        # PAIR ignores values: every matched pair contributes exactly 1
        assert PLUS_PAIR.mult(17.0, -3.0) == 1.0
        assert PLUS_PAIR.mult(0.5, 0.5) == 1.0

    def test_plus_and(self):
        assert PLUS_AND.mult(2.0, 3.0) == 1.0
        assert PLUS_AND.mult(0.0, 3.0) == 0.0

    def test_min_plus(self):
        assert MIN_PLUS.mult(2.0, 3.0) == 5.0
        assert MIN_PLUS.add(2.0, 3.0) == 2.0
        assert MIN_PLUS.add_identity == np.inf

    def test_max_times(self):
        assert MAX_TIMES.add(2.0, 3.0) == 3.0
        assert MAX_TIMES.add_identity == -np.inf

    def test_or_and(self):
        assert OR_AND.add(0.0, 0.0) == 0.0
        assert OR_AND.add(1.0, 0.0) == 1.0
        assert OR_AND.mult(1.0, 1.0) == 1.0

    def test_first_second(self):
        assert PLUS_FIRST.mult(5.0, 9.0) == 5.0
        assert PLUS_SECOND.mult(5.0, 9.0) == 9.0
        assert MIN_FIRST.mult(5.0, 9.0) == 5.0

    def test_registry_complete(self):
        assert set(STANDARD_SEMIRINGS) == {
            "plus_times",
            "plus_pair",
            "plus_and",
            "min_plus",
            "max_times",
            "or_and",
            "min_first",
            "plus_first",
            "plus_second",
        }

    def test_custom_semiring(self):
        sr = Semiring("plus_max", lambda x, y: x + y, max,
                      add_ufunc=np.add, mult_ufunc=np.maximum)
        assert sr.mult(2.0, 5.0) == 5.0
        assert sr.plus(1.0, 2.0) == 3.0
        assert repr(sr) == "Semiring(plus_max)"
