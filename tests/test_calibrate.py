"""Tests for local machine calibration."""

import numpy as np
import pytest

from repro.machine import (
    HASWELL,
    RowCostModel,
    calibrate_machine,
    measure_touch_costs,
)
from repro.graphs import erdos_renyi


class TestMeasureTouchCosts:
    def test_returns_positive_costs(self):
        costs = measure_touch_costs((1 << 14, 1 << 20), touches=1 << 15)
        assert set(costs) == {1 << 14, 1 << 20}
        for v in costs.values():
            assert v > 0

    def test_larger_working_set_not_cheaper(self):
        """Random touches into a much larger array cannot be systematically
        cheaper (cache physics; allow 20% noise)."""
        costs = measure_touch_costs((1 << 14, 1 << 25), touches=1 << 17)
        assert costs[1 << 25] > 0.8 * costs[1 << 14]


class TestCalibrateMachine:
    @pytest.fixture(scope="class")
    def machine(self):
        return calibrate_machine(quick=True)

    def test_sane_config(self, machine):
        assert machine.cores >= 1
        assert machine.private_cache_bytes > 0
        assert machine.hit_cycles > 0
        assert machine.dram_cycles >= machine.hit_cycles
        if machine.llc_bytes:
            assert machine.llc_bytes > machine.private_cache_bytes
            assert machine.hit_cycles <= machine.llc_cycles <= machine.dram_cycles * 1.5

    def test_usable_by_cost_model(self, machine):
        a = erdos_renyi(256, 256, 6, seed=1)
        m = erdos_renyi(256, 256, 6, seed=2)
        model = RowCostModel(a, a, m, machine)
        for algo in ("msa", "hash", "inner"):
            assert model.estimate(algo).total_cycles > 0

    def test_model_regime_structure_survives_calibration(self, machine):
        """The three Figure-7 regimes must appear under calibrated
        constants too, not only under the Haswell preset."""
        n = 2048
        # mask much sparser than inputs -> inner
        a = erdos_renyi(n, n, 32, seed=3)
        m = erdos_renyi(n, n, 1, seed=4)
        model = RowCostModel(a, a, m, machine)
        t = {algo: model.estimate(algo).total_cycles
             for algo in ("inner", "msa", "hash", "heap")}
        assert min(t, key=t.get) == "inner"
        # inputs much sparser than mask -> heap family or accumulator,
        # never inner
        a2 = erdos_renyi(n, n, 1, seed=5)
        m2 = erdos_renyi(n, n, 48, seed=6)
        model2 = RowCostModel(a2, a2, m2, machine)
        t2 = {algo: model2.estimate(algo).total_cycles
              for algo in ("inner", "msa", "hash", "heap", "heapdot")}
        assert min(t2, key=t2.get) != "inner"


@pytest.mark.backend
class TestProcessCrossoverCalibration:
    """Backend-overhead calibration (spawns a small worker pool)."""

    def test_measure_backend_overhead(self):
        from repro.machine import measure_backend_overhead
        from repro.parallel import shutdown_pool

        ov = measure_backend_overhead(2)
        assert ov["dispatch_seconds"] > 0
        assert ov["spawn_seconds"] >= 0
        shutdown_pool()

    def test_calibrate_returns_new_config(self):
        from repro.machine import calibrate_process_crossover
        from repro.parallel import shutdown_pool

        fitted = calibrate_process_crossover(HASWELL, workers=2)
        assert fitted is not HASWELL
        assert fitted.process_crossover_cycles > 0
        assert fitted.process_dispatch_seconds > 0
        # untouched fields carry over
        assert fitted.cores == HASWELL.cores
        assert fitted.name == HASWELL.name
        # the input preset is frozen and unchanged
        assert HASWELL.process_crossover_cycles == 2.0e6
        shutdown_pool()
