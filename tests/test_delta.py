"""Incremental masked-SpGEMM suite: row diffs, patched plans, targeted
invalidation — and above all the bit-for-bit contract: a delta patch must
equal a full recompute exactly, in structure and values, on every backend,
sharded or not.

Covers the diff helpers (:func:`repro.sparse.block_digests`,
:func:`repro.sparse.changed_rows`, :func:`repro.sparse.dirty_blocks`), the
splice primitive (:meth:`repro.sparse.CSR.replace_rows`), the session's
targeted :meth:`~repro.engine.ExecutionSession.invalidate`, the sharded
values-only republish (one-shard value delta rewrites exactly that shard's
bytes), the fallback policy and its counters, the prediction-ledger rows,
and the apps that default onto the path (k-truss, streaming windows).

The module carries the ``delta`` marker so CI runs it inside the
backend-smoke job (``pytest -m delta``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import masked_spgemm
from repro.engine import (
    DELTA_MAX_FRACTION,
    ExecutionSession,
    ShardGrid,
)
from repro.graphs import erdos_renyi, rmat
from repro.machine import OpCounter
from repro.parallel import (
    active_segments,
    process_backend_available,
    shutdown_pool,
)
from repro.sparse import (
    CSR,
    DELTA_BLOCK_ROWS,
    block_digests,
    changed_rows,
    dirty_blocks,
)

pytestmark = pytest.mark.delta

BACKENDS = ("serial", "thread", "process")

needs_process = pytest.mark.skipif(
    not process_backend_available(),
    reason="platform lacks shared-memory process support",
)


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_pool()
    assert active_segments() == ()


def _same(got: CSR, ref: CSR) -> None:
    assert got.shape == ref.shape
    assert np.array_equal(got.indptr, ref.indptr)
    assert np.array_equal(got.indices, ref.indices)
    assert np.array_equal(got.data, ref.data)


def _copy(g: CSR) -> CSR:
    return CSR(g.shape, g.indptr.copy(), g.indices.copy(), g.data.copy(),
               sorted_indices=g.sorted_indices)


def _drop_entry(g: CSR, row: int) -> CSR:
    """A structure delta: remove ``row``'s last stored entry."""
    lo, hi = int(g.indptr[row]), int(g.indptr[row + 1])
    assert hi > lo, "test row must be nonempty"
    keep = np.ones(g.nnz, dtype=bool)
    keep[hi - 1] = False
    indptr = g.indptr.copy()
    indptr[row + 1:] -= 1
    return CSR(g.shape, indptr, g.indices[keep], g.data[keep],
               sorted_indices=True)


def _scale_row(g: CSR, row: int, factor: float = 2.0) -> CSR:
    """A values-only delta confined to one row."""
    data = g.data.copy()
    lo, hi = int(g.indptr[row]), int(g.indptr[row + 1])
    data[lo:hi] = data[lo:hi] * factor
    return CSR(g.shape, g.indptr.copy(), g.indices.copy(), data,
               sorted_indices=g.sorted_indices)


# ----------------------------------------------------------------------
# diff helpers
# ----------------------------------------------------------------------
class TestDiffHelpers:
    def test_block_digest_vector_shape(self):
        a = erdos_renyi(64, 64, 4, seed=1, values="uniform")
        d = block_digests(a, block_rows=8)
        assert d.shape == (8,)
        assert d.dtype == np.dtype("S16")
        # default chunking: one digest per DELTA_BLOCK_ROWS rows
        full = block_digests(a)
        assert full.shape == (-(-a.nrows // DELTA_BLOCK_ROWS),)

    def test_digests_deterministic_and_content_keyed(self):
        a = erdos_renyi(64, 64, 4, seed=1, values="uniform")
        assert np.array_equal(block_digests(a, block_rows=8),
                              block_digests(_copy(a), block_rows=8))
        b = _scale_row(a, 21)
        da, db = block_digests(a, block_rows=8), block_digests(b, block_rows=8)
        assert np.array_equal(dirty_blocks(da, db), [2])  # row 21 -> block 2
        # values=False digests ignore a values-only change
        assert np.array_equal(block_digests(a, block_rows=8, values=False),
                              block_digests(b, block_rows=8, values=False))

    def test_dirty_blocks_localise_structure_change(self):
        a = erdos_renyi(64, 64, 4, seed=1, values="uniform")
        b = _drop_entry(a, 5)
        assert np.array_equal(
            dirty_blocks(block_digests(a, block_rows=8),
                         block_digests(b, block_rows=8)),
            [0],
        )

    def test_dirty_blocks_length_mismatch_raises(self):
        a = erdos_renyi(64, 64, 4, seed=1)
        with pytest.raises(ValueError):
            dirty_blocks(block_digests(a, block_rows=8),
                         block_digests(a, block_rows=16))

    def test_changed_rows_empty_delta(self):
        a = erdos_renyi(64, 64, 4, seed=1, values="uniform")
        assert changed_rows(a, _copy(a)).size == 0

    def test_changed_rows_structure_delta(self):
        a = erdos_renyi(64, 64, 4, seed=1, values="uniform")
        b = _drop_entry(a, 5)
        assert np.array_equal(changed_rows(a, b), [5])
        # a structural change is visible with and without values
        assert np.array_equal(changed_rows(a, b, values=False), [5])

    def test_changed_rows_values_toggle(self):
        a = erdos_renyi(64, 64, 4, seed=1, values="uniform")
        b = _scale_row(a, 21)
        assert np.array_equal(changed_rows(a, b), [21])
        assert changed_rows(a, b, values=False).size == 0

    def test_changed_rows_all_dirty(self):
        a = erdos_renyi(64, 64, 4, seed=1, values="uniform")
        b = CSR(a.shape, a.indptr.copy(), a.indices.copy(), a.data * 2.0,
                sorted_indices=True)
        nonempty = np.flatnonzero(np.diff(a.indptr) > 0)
        assert np.array_equal(changed_rows(a, b), nonempty)

    def test_changed_rows_hypersparse(self):
        n = 5000
        rows = np.array([7, 1234, 4999], dtype=np.int64)
        cols = np.array([3, 9, 0], dtype=np.int64)
        a = CSR.from_coo((n, n), rows, cols, np.array([1.0, 2.0, 3.0]))
        b = CSR.from_coo((n, n), rows, cols, np.array([1.0, 5.0, 3.0]))
        assert np.array_equal(changed_rows(a, b), [1234])

    def test_changed_rows_restricted_to_candidates(self):
        a = erdos_renyi(64, 64, 4, seed=1, values="uniform")
        b = _scale_row(_scale_row(a, 5), 40)
        assert np.array_equal(changed_rows(a, b), [5, 40])
        sub = changed_rows(a, b, rows=np.arange(32, 64, dtype=np.int64))
        assert np.array_equal(sub, [40])


# ----------------------------------------------------------------------
# CSR.replace_rows — the splice primitive
# ----------------------------------------------------------------------
class TestReplaceRows:
    def _pair(self, n=64, deg=4):
        a = erdos_renyi(n, n, deg, seed=1, values="uniform")
        b = erdos_renyi(n, n, deg + 2, seed=2, values="uniform")
        return a, b

    def test_empty_rows_returns_self(self):
        a, b = self._pair()
        assert a.replace_rows(np.empty(0, dtype=np.int64), b) is a

    def test_all_rows_equals_source(self):
        a, b = self._pair()
        _same(a.replace_rows(np.arange(a.nrows), b), b)

    def test_scipy_rebuild_equivalence(self):
        a, b = self._pair()
        rows = np.array([0, 3, 17, 40, 63], dtype=np.int64)
        got = a.replace_rows(rows, b)
        lil = a.to_scipy().tolil()
        src = b.to_scipy().tolil()
        for r in rows:
            lil.rows[r] = list(src.rows[r])
            lil.data[r] = list(src.data[r])
        ref = CSR.from_scipy(lil.tocsr())
        _same(got, ref)
        assert got.sorted_indices

    def test_rows_unsorted_with_duplicates(self):
        a, b = self._pair()
        got = a.replace_rows(np.array([40, 3, 3, 17, 40]), b)
        _same(got, a.replace_rows(np.array([3, 17, 40]), b))

    def test_hypersparse_splice(self):
        n = 5000
        a = CSR.from_coo((n, n), np.array([7, 1234, 4999]),
                         np.array([3, 9, 0]), np.array([1.0, 2.0, 3.0]))
        b = CSR.from_coo((n, n), np.array([1234, 1234]),
                         np.array([2, 8]), np.array([4.0, 5.0]))
        got = a.replace_rows(np.array([1234]), b)
        dense = a.to_dense()
        dense[1234] = b.to_dense()[1234]
        assert np.array_equal(got.to_dense(), dense)
        assert got.nnz == 4

    def test_row_emptied_and_row_filled(self):
        n = 8
        a = CSR.from_coo((n, n), np.array([1, 1, 5]), np.array([0, 2, 5]),
                         np.array([1.0, 2.0, 3.0]))
        empty = CSR.empty((n, n))
        got = a.replace_rows(np.array([1]), empty)
        assert got.nnz == 1 and np.diff(got.indptr)[1] == 0
        back = got.replace_rows(np.array([1]), a)
        _same(back, a)

    def test_unsorted_indices_rejected(self):
        srt = CSR((1, 5), np.array([0, 2]), np.array([1, 3]),
                  np.array([1.0, 2.0]), sorted_indices=True)
        uns = CSR((1, 5), np.array([0, 2]), np.array([3, 1]),
                  np.array([1.0, 2.0]), sorted_indices=False, check=False)
        with pytest.raises(ValueError, match="sorted_indices"):
            uns.replace_rows(np.array([0]), srt)
        with pytest.raises(ValueError, match="sorted_indices"):
            srt.replace_rows(np.array([0]), uns)

    def test_shape_mismatch_and_range_rejected(self):
        a, b = self._pair()
        with pytest.raises(ValueError, match="equal-shaped"):
            a.replace_rows(np.array([0]), CSR.empty((a.nrows, a.ncols + 1)))
        with pytest.raises(ValueError, match="out of range"):
            a.replace_rows(np.array([a.nrows]), b)
        with pytest.raises(ValueError, match="out of range"):
            a.replace_rows(np.array([-1]), b)


# ----------------------------------------------------------------------
# targeted session invalidation
# ----------------------------------------------------------------------
class TestTargetedInvalidate:
    def test_unrelated_entries_survive(self):
        a = erdos_renyi(48, 48, 3, seed=1, values="uniform")
        u = erdos_renyi(48, 48, 3, seed=9, values="uniform")
        with ExecutionSession() as sess:
            pa = sess.plan(a, a, a)
            pu = sess.plan(u, u, u)
            ca, cu = sess.csc_of(a), sess.csc_of(u)
            bu = sess.one_phase_bound(u, u, u, complement=False)
            sess.invalidate(a)
            # unrelated entries survive the eviction untouched
            assert sess.plan(u, u, u) is pu
            assert sess.csc_of(u) is cu
            assert sess.one_phase_bound(u, u, u, complement=False) is bu
            # dependent entries are gone: same content rebuilds fresh
            assert sess.plan(a, a, a) is not pa
            assert sess.csc_of(a) is not ca

    def test_invalidate_none_clears_everything(self):
        a = erdos_renyi(48, 48, 3, seed=1, values="uniform")
        with ExecutionSession() as sess:
            pa = sess.plan(a, a, a)
            sess.invalidate()
            assert sess.plan(a, a, a) is not pa

    def test_delta_state_evicted_for_operand_only(self):
        a = erdos_renyi(48, 48, 4, seed=1, values="uniform")
        b = erdos_renyi(48, 48, 4, seed=2, values="uniform")
        m = erdos_renyi(48, 48, 6, seed=3)
        v = erdos_renyi(64, 64, 4, seed=9, values="uniform")
        with ExecutionSession() as sess:
            c = OpCounter()
            masked_spgemm(a, b, m, algo="auto", session=sess, delta="force",
                          counter=c)
            masked_spgemm(v, v, v, algo="auto", session=sess, delta="force",
                          counter=c)
            c2 = OpCounter()
            masked_spgemm(a, b, m, algo="auto", session=sess, delta="force",
                          counter=c2)
            assert c2.rows_patched == a.nrows  # identical-call hit
            sess.invalidate(a)
            c3, c4 = OpCounter(), OpCounter()
            masked_spgemm(a, b, m, algo="auto", session=sess, delta="force",
                          counter=c3)
            assert c3.rows_recomputed == a.nrows  # state evicted: cold
            # the unrelated problem's delta state survived
            masked_spgemm(v, v, v, algo="auto", session=sess, delta="force",
                          counter=c4)
            assert c4.rows_patched == v.nrows


# ----------------------------------------------------------------------
# delta modes, fallback policy, counters
# ----------------------------------------------------------------------
class TestDeltaModes:
    def _problem(self, n=96):
        a = erdos_renyi(n, n, 4, seed=1, values="uniform")
        b = erdos_renyi(n, n, 4, seed=2, values="uniform")
        m = erdos_renyi(n, n, 6, seed=3)
        return a, b, m

    def test_force_without_session_raises(self):
        a, b, m = self._problem()
        with pytest.raises(ValueError, match="requires a caching"):
            masked_spgemm(a, b, m, algo="auto", delta="force")
        with pytest.raises(ValueError, match="requires a caching"):
            masked_spgemm(a, b, m, algo="auto", delta="force", session=False)

    def test_auto_without_session_degrades_to_full(self):
        a, b, m = self._problem()
        ref = masked_spgemm(a, b, m, algo="auto")
        _same(masked_spgemm(a, b, m, algo="auto", delta="auto"), ref)

    def test_invalid_delta_rejected(self):
        a, b, m = self._problem()
        with ExecutionSession() as sess:
            for bad in (1.5, 0.0, -0.2, "bogus"):
                with pytest.raises(ValueError):
                    masked_spgemm(a, b, m, algo="auto", session=sess,
                                  delta=bad)

    def test_identical_call_is_a_hit(self):
        a, b, m = self._problem()
        with ExecutionSession() as sess:
            r1 = masked_spgemm(a, b, m, algo="auto", session=sess,
                               delta="auto")
            c = OpCounter()
            r2 = masked_spgemm(a, b, m, algo="auto", session=sess,
                               delta="auto", counter=c)
            assert r2 is r1
            assert c.rows_patched == a.nrows
            assert c.rows_recomputed == 0
            assert sess.stats()["delta_hits"] == 1

    def test_mask_values_only_change_is_a_hit(self):
        a, b, m = self._problem()
        m = CSR(m.shape, m.indptr, m.indices,
                np.arange(1.0, m.nnz + 1.0), sorted_indices=True)
        m2 = CSR(m.shape, m.indptr.copy(), m.indices.copy(), m.data * 3.0,
                 sorted_indices=True)
        with ExecutionSession() as sess:
            r1 = masked_spgemm(a, b, m, algo="auto", session=sess,
                               delta="force")
            c = OpCounter()
            r2 = masked_spgemm(a, b, m2, algo="auto", session=sess,
                               delta="force", counter=c)
            assert r2 is r1  # mask values never reach the product
            assert c.rows_patched == a.nrows

    def test_large_delta_falls_back(self):
        a, b, m = self._problem()
        a2 = erdos_renyi(a.nrows, a.ncols, 4, seed=77, values="uniform")
        ref = masked_spgemm(a2, b, m, algo="auto")
        with ExecutionSession() as sess:
            masked_spgemm(a, b, m, algo="auto", session=sess, delta="auto")
            c = OpCounter()
            got = masked_spgemm(a2, b, m, algo="auto", session=sess,
                                delta="auto", counter=c)
            _same(got, ref)
            assert c.delta_fallbacks == 1
            assert c.rows_recomputed == a.nrows
            assert sess.stats()["delta_fallbacks"] == 1

    def test_numeric_threshold_honoured(self):
        a, b, m = self._problem()
        a2 = _drop_entry(a, 5)  # one dirty row out of 96: fraction ~1%
        with ExecutionSession() as sess:
            masked_spgemm(a, b, m, algo="auto", session=sess, delta=0.001)
            c = OpCounter()
            masked_spgemm(a2, b, m, algo="auto", session=sess, delta=0.001,
                          counter=c)
            assert c.delta_fallbacks == 1  # 1/96 > 0.001: fallback
        with ExecutionSession() as sess:
            masked_spgemm(a, b, m, algo="auto", session=sess, delta=0.5)
            c = OpCounter()
            masked_spgemm(a2, b, m, algo="auto", session=sess, delta=0.5,
                          counter=c)
            assert c.delta_fallbacks == 0
            assert 0 < c.rows_recomputed < a.nrows
        assert DELTA_MAX_FRACTION == 0.5

    def test_b_change_propagates_through_a_columns(self):
        a, b, m = self._problem()
        row = 7
        b2 = _scale_row(b, row)
        ref = masked_spgemm(a, b2, m, algo="auto")
        with ExecutionSession() as sess:
            masked_spgemm(a, b, m, algo="auto", session=sess, delta="force")
            c = OpCounter()
            got = masked_spgemm(a, b2, m, algo="auto", session=sess,
                                delta="force", counter=c)
            _same(got, ref)
        # exactly the rows referencing column 7 of A were recomputed
        readers = np.unique(np.repeat(
            np.arange(a.nrows), np.diff(a.indptr))[a.indices == row])
        assert c.rows_recomputed == readers.size
        assert c.rows_patched == a.nrows - readers.size


# ----------------------------------------------------------------------
# bit-for-bit equivalence: every backend, sharded and unsharded
# ----------------------------------------------------------------------
class TestDeltaEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("shards", [None, (2, 2)],
                             ids=["unsharded", "sharded"])
    def test_patch_equals_full_recompute(self, backend, shards):
        if backend == "process" and not process_backend_available():
            pytest.skip("no process backend")
        n = 96
        a = erdos_renyi(n, n, 4, seed=1, values="uniform")
        b = erdos_renyi(n, n, 4, seed=2, values="uniform")
        m = erdos_renyi(n, n, 6, seed=3)
        a2 = _drop_entry(_scale_row(a, 40), 5)
        ref1 = masked_spgemm(a, b, m, algo="auto", backend=backend,
                             shards=shards)
        ref2 = masked_spgemm(a2, b, m, algo="auto", backend=backend,
                             shards=shards)
        with ExecutionSession() as sess:
            c = OpCounter()
            r1 = masked_spgemm(a, b, m, algo="auto", backend=backend,
                               shards=shards, session=sess, delta="force",
                               counter=c)
            r2 = masked_spgemm(a2, b, m, algo="auto", backend=backend,
                               shards=shards, session=sess, delta="force",
                               counter=c)
            _same(r1, ref1)
            _same(r2, ref2)
            assert c.rows_recomputed == n + 2  # full run + rows {5, 40}
            assert c.rows_patched == n - 2
            assert c.delta_fallbacks == 0
            assert sess.stats()["delta_patches"] == 1
        shutdown_pool()

    def test_patch_chain_stays_exact(self):
        # repeated patches splice into patched results — no drift allowed
        n = 96
        a = erdos_renyi(n, n, 4, seed=1, values="uniform")
        b = erdos_renyi(n, n, 4, seed=2, values="uniform")
        m = erdos_renyi(n, n, 6, seed=3)
        with ExecutionSession() as sess:
            cur = a
            masked_spgemm(cur, b, m, algo="auto", session=sess, delta="force")
            for row in (5, 17, 40, 63):
                cur = _drop_entry(cur, row)
                got = masked_spgemm(cur, b, m, algo="auto", session=sess,
                                    delta="force")
                _same(got, masked_spgemm(cur, b, m, algo="auto"))

    def test_complemented_mask_patch(self):
        n = 96
        a = erdos_renyi(n, n, 4, seed=1, values="uniform")
        b = erdos_renyi(n, n, 4, seed=2, values="uniform")
        m = erdos_renyi(n, n, 6, seed=3)
        a2 = _drop_entry(a, 5)
        ref = masked_spgemm(a2, b, m, algo="auto", complement=True)
        with ExecutionSession() as sess:
            masked_spgemm(a, b, m, algo="auto", complement=True,
                          session=sess, delta="force")
            got = masked_spgemm(a2, b, m, algo="auto", complement=True,
                                session=sess, delta="force")
            _same(got, ref)


# ----------------------------------------------------------------------
# sharded values-only republish (process backend)
# ----------------------------------------------------------------------
@needs_process
class TestShardedRepublish:
    def test_one_shard_value_delta_republishes_that_shard_only(self):
        n = 64
        a = erdos_renyi(n, n, 6, seed=1, values="uniform")
        b = erdos_renyi(n, n, 6, seed=2, values="uniform")
        m = erdos_renyi(n, n, 6, seed=5)
        grid = ShardGrid.regular((n, n), 2, 2)
        from repro.parallel.shards import mask_cells

        ncells = len(mask_cells(m, grid))
        assert ncells == 4  # a dense-ish mask fills every cell
        # values-only change confined to A's first row block
        a2 = _scale_row(a, 5)
        assert 5 < grid.row_bounds[1]
        ref = masked_spgemm(a2, b, m, algo="msa")
        with ExecutionSession() as sess:
            c1, c2 = OpCounter(), OpCounter()
            masked_spgemm(a, b, m, algo="msa", shards=(2, 2),
                          backend="process", session=sess, counter=c1)
            got = masked_spgemm(a2, b, m, algo="msa", shards=(2, 2),
                                backend="process", session=sess, counter=c2)
            _same(got, ref)
            st = sess.segment_cache.stats()
            # exactly block 0's data bytes were rewritten in place
            block0_nbytes = int(a.indptr[grid.row_bounds[1]]) * a.data.itemsize
            assert st["values_republished"] == 1
            assert c2.bytes_republished == block0_nbytes
            # every other shard was served from the cache untouched:
            # A block 1, both B panels, all mask cells
            assert c2.segments_reused == 1 + 2 + ncells
        assert active_segments() == ()
        shutdown_pool()


# ----------------------------------------------------------------------
# prediction ledger
# ----------------------------------------------------------------------
class TestLedger:
    def test_delta_patch_rows_priced(self):
        from repro.observe import prediction_rows, tracing

        n = 96
        a = erdos_renyi(n, n, 4, seed=1, values="uniform")
        b = erdos_renyi(n, n, 4, seed=2, values="uniform")
        m = erdos_renyi(n, n, 6, seed=3)
        a2 = _drop_entry(a, 5)
        with ExecutionSession() as sess, tracing() as tr:
            masked_spgemm(a, b, m, algo="auto", session=sess, delta="force")
            masked_spgemm(a2, b, m, algo="auto", session=sess, delta="force")
        rows = [r for r in prediction_rows(tr)
                if r["kind"] == "delta-patch"]
        assert len(rows) == 1
        (row,) = rows
        assert row["key"] == "delta:1"
        assert row["attrs"]["rows_recomputed"] == 1
        assert row["attrs"]["rows_patched"] == n - 1
        assert 0.0 < row["attrs"]["dirty_fraction"] <= 1.0
        assert row["modeled_cycles"] > 0.0
        assert row["measured_seconds"] >= 0.0


# ----------------------------------------------------------------------
# apps on the delta path
# ----------------------------------------------------------------------
class TestApps:
    def test_ktruss_small_delta_certified(self):
        # an 8-clique plus one weak vertex in a 600-vertex universe: the
        # first prune removes only the weak edges, so iteration 2 is a
        # genuine small-delta patch — 9 dirty rows, not 600
        from repro.apps import ktruss

        n = 600
        r, c = [], []
        for i in range(8):
            for j in range(8):
                if i != j:
                    r.append(i)
                    c.append(j)
        for u, v in [(8, 0), (8, 1)]:
            r += [u, v]
            c += [v, u]
        g = CSR.from_coo((n, n), np.array(r), np.array(c),
                         np.ones(len(r))).pattern()
        base = ktruss(g, 4, algo="auto", session=False, delta=None)
        cnt = OpCounter()
        with ExecutionSession() as sess:
            res = ktruss(g, 4, algo="auto", session=sess, delta="auto",
                         counter=cnt)
        assert np.array_equal(res.truss.to_dense(), base.truss.to_dense())
        assert res.iterations == base.iterations == 2
        # iteration 1 ran cold (600 rows); iteration 2 patched: rows
        # {0..8} dirty through the pruned edges and their A-columns
        assert cnt.rows_recomputed == n + 9
        assert cnt.rows_patched == n - 9
        assert cnt.delta_fallbacks == 0
        assert cnt.rows_recomputed < res.iterations * n  # the certificate

    def test_ktruss_delta_equals_plain_on_rmat(self):
        # hub-heavy graphs mostly fall back — results must stay identical
        from repro.apps import ktruss

        g = rmat(7, seed=10)
        base = ktruss(g, 5, algo="auto", session=False, delta=None)
        with ExecutionSession() as sess:
            res = ktruss(g, 5, algo="auto", session=sess, delta="auto")
        assert np.array_equal(res.truss.to_dense(), base.truss.to_dense())
        assert res.iterations == base.iterations

    def test_streaming_matches_full_recompute(self):
        from repro.apps import edge_stream_from_graph, sliding_window_triangles

        g = erdos_renyi(128, 128, 6, seed=4)
        edges = edge_stream_from_graph(g, seed=0)
        full = sliding_window_triangles(edges, 128, window=200, step=25,
                                        session=False)
        with ExecutionSession() as sess:
            inc = sliding_window_triangles(edges, 128, window=200, step=25,
                                           session=sess, delta="auto")
        assert inc.steps == full.steps > 1
        assert inc.triangles == full.triangles
        assert inc.edges_per_step == full.edges_per_step
        _same(inc.support, full.support)

    def test_streaming_stream_roundtrip(self):
        from repro.apps import edge_stream_from_graph, sliding_window_triangles

        from repro.sparse import pattern_union

        raw = erdos_renyi(64, 64, 5, seed=4)
        g = pattern_union(raw.pattern(), raw.transpose().pattern())
        edges = edge_stream_from_graph(g, seed=1)
        assert edges.shape == (g.triu(1).nnz, 2)
        # a window covering the whole stream reproduces the static count
        from repro.apps import triangle_count

        res = sliding_window_triangles(edges, 64, window=edges.shape[0],
                                       step=edges.shape[0], session=False)
        assert res.steps == 1
        assert res.triangles[0] == triangle_count(g)

    def test_mcl_delta_equals_plain(self):
        from repro.apps import markov_clustering

        g = erdos_renyi(64, 64, 4, seed=6)
        base = markov_clustering(g, selective_expansion=True, algo="auto",
                                 session=False)
        with ExecutionSession() as sess:
            res = markov_clustering(g, selective_expansion=True, algo="auto",
                                    session=sess, delta="auto")
        assert np.array_equal(res.labels, base.labels)
        assert res.iterations == base.iterations
