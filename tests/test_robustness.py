"""Failure-injection and edge-case robustness tests across the library."""

import numpy as np
import pytest

from repro.baselines import scipy_masked_spgemm
from repro.core import ALGOS, masked_spgemm
from repro.sparse import CSR

from .conftest import assert_csr_equal, random_csr


class TestUnsortedInputs:
    """Kernels require sorted rows; the dispatcher must canonicalise
    unsorted inputs rather than corrupting results."""

    def _shuffled(self, m: CSR, seed=0) -> CSR:
        rng = np.random.default_rng(seed)
        rows, cols, vals = m.to_coo()
        perm = rng.permutation(rows.shape[0])
        rows, cols, vals = rows[perm], cols[perm], vals[perm]
        # rebuild CSR rows with unsorted column order, bypassing from_coo
        order = np.argsort(rows, kind="stable")
        rows, cols, vals = rows[order], cols[order], vals[order]
        indptr = np.zeros(m.nrows + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSR(m.shape, indptr, cols, vals, sorted_indices=False)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_unsorted_operands(self, algo, small_triple):
        a, b, m = small_triple
        want = scipy_masked_spgemm(a, b, m)
        got = masked_spgemm(
            self._shuffled(a, 1), self._shuffled(b, 2), self._shuffled(m, 3),
            algo=algo,
        )
        assert_csr_equal(got, want, msg=algo)


class TestNumericEdgeCases:
    def test_nan_values_propagate(self):
        a = CSR.from_coo((2, 2), [0], [0], [np.nan])
        b = CSR.from_coo((2, 2), [0], [1], [2.0])
        m = CSR.from_coo((2, 2), [0], [1], [1.0])
        c = masked_spgemm(a, b, m, algo="msa")
        assert c.nnz == 1
        assert np.isnan(c.data[0])

    def test_infinities(self):
        a = CSR.from_coo((2, 2), [0], [0], [np.inf])
        b = CSR.from_coo((2, 2), [0], [1], [2.0])
        m = CSR.from_coo((2, 2), [0], [1], [1.0])
        c = masked_spgemm(a, b, m, algo="hash")
        assert c.data[0] == np.inf

    def test_cancellation_keeps_structural_entry(self):
        """1*1 + 1*(-1) = 0: GraphBLAS keeps computed zeros (structure is
        meaningful); drop_zeros removes them explicitly."""
        a = CSR.from_coo((1, 2), [0, 0], [0, 1], [1.0, 1.0])
        b = CSR.from_coo((2, 1), [0, 1], [0, 0], [1.0, -1.0])
        m = CSR.from_coo((1, 1), [0], [0], [1.0])
        c = masked_spgemm(a, b, m, algo="msa")
        assert c.nnz == 1
        assert c.data[0] == 0.0
        assert c.drop_zeros().nnz == 0

    def test_tiny_values_survive(self):
        a = CSR.from_coo((1, 1), [0], [0], [1e-300])
        b = CSR.from_coo((1, 1), [0], [0], [1e-300])
        m = CSR.from_coo((1, 1), [0], [0], [1.0])
        c = masked_spgemm(a, b, m, algo="mca")
        assert c.nnz == 1  # underflows to 0.0 but stays structural

    def test_negative_values(self, small_triple):
        a, b, m = small_triple
        a = a.copy()
        a.data[:] = -a.data
        want = scipy_masked_spgemm(a, b, m)
        for algo in ("msa", "inner"):
            assert_csr_equal(masked_spgemm(a, b, m, algo=algo), want)


class TestExtremeShapes:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_single_row(self, algo):
        a = random_csr(1, 20, 5, seed=1)
        b = random_csr(20, 30, 3, seed=2)
        m = random_csr(1, 30, 8, seed=3)
        assert_csr_equal(
            masked_spgemm(a, b, m, algo=algo), scipy_masked_spgemm(a, b, m)
        )

    @pytest.mark.parametrize("algo", ALGOS)
    def test_single_column_output(self, algo):
        a = random_csr(15, 10, 3, seed=4)
        b = random_csr(10, 1, 1, seed=5)
        m = random_csr(15, 1, 1, seed=6)
        assert_csr_equal(
            masked_spgemm(a, b, m, algo=algo), scipy_masked_spgemm(a, b, m)
        )

    def test_1x1(self):
        a = CSR.from_coo((1, 1), [0], [0], [3.0])
        m = CSR.from_coo((1, 1), [0], [0], [1.0])
        for algo in ALGOS:
            c = masked_spgemm(a, a, m, algo=algo)
            assert c.to_dense()[0, 0] == 9.0

    def test_tall_skinny_times_short_fat(self):
        a = random_csr(200, 3, 1, seed=7)
        b = random_csr(3, 200, 40, seed=8)
        m = random_csr(200, 200, 2, seed=9)
        assert_csr_equal(
            masked_spgemm(a, b, m, algo="hash"), scipy_masked_spgemm(a, b, m)
        )

    def test_dense_inputs(self):
        rng = np.random.default_rng(10)
        a = CSR.from_dense(rng.random((12, 12)))
        m = random_csr(12, 12, 4, seed=11)
        assert_csr_equal(
            masked_spgemm(a, a, m, algo="msa"), scipy_masked_spgemm(a, a, m)
        )


class TestMaskEdgeCases:
    def test_mask_equal_to_full_product_pattern(self, small_triple):
        a, b, _ = small_triple
        full = scipy_masked_spgemm(
            a, b, CSR.from_dense(np.ones((a.nrows, b.ncols)))
        )
        got = masked_spgemm(a, b, full.pattern(), algo="mca")
        assert_csr_equal(got, full)

    def test_mask_disjoint_from_product(self, small_triple):
        a, b, _ = small_triple
        full = scipy_masked_spgemm(
            a, b, CSR.from_dense(np.ones((a.nrows, b.ncols)))
        )
        from repro.sparse import mask_pattern

        all_ones = CSR.from_dense(np.ones((a.nrows, b.ncols)))
        disjoint = mask_pattern(all_ones, full, complement=True)
        for algo in ("msa", "inner", "heap"):
            got = masked_spgemm(a, b, disjoint, algo=algo)
            assert got.nnz == 0, algo

    def test_mask_values_are_irrelevant(self, small_triple):
        a, b, m = small_triple
        weird = m.copy()
        weird.data[:] = np.nan  # pattern-only semantics must ignore values
        got = masked_spgemm(a, b, weird, algo="msa")
        want = masked_spgemm(a, b, m, algo="msa")
        assert_csr_equal(got, want)


class TestLargeRandomCrossCheck:
    """A bigger randomized cross-check than the unit tests use."""

    def test_medium_scale_all_fast_algos(self):
        a = random_csr(500, 400, 8, seed=20)
        b = random_csr(400, 600, 8, seed=21)
        m = random_csr(500, 600, 10, seed=22)
        want = scipy_masked_spgemm(a, b, m)
        for algo in ("msa", "hash", "mca", "inner"):
            assert_csr_equal(masked_spgemm(a, b, m, algo=algo), want, msg=algo)

    def test_medium_scale_complement(self):
        a = random_csr(300, 300, 6, seed=23)
        b = random_csr(300, 300, 6, seed=24)
        m = random_csr(300, 300, 6, seed=25)
        want = scipy_masked_spgemm(a, b, m, complement=True)
        for algo in ("msa", "hash"):
            got = masked_spgemm(a, b, m, algo=algo, complement=True)
            assert_csr_equal(got, want, msg=algo)


class TestDtypePreservation:
    def test_float32_inputs_accepted(self):
        a = random_csr(10, 10, 3, seed=30).astype(np.float32)
        b = random_csr(10, 10, 3, seed=31).astype(np.float32)
        m = random_csr(10, 10, 3, seed=32)
        got = masked_spgemm(a, b, m, algo="msa")
        want = scipy_masked_spgemm(
            a.astype(np.float64), b.astype(np.float64), m
        )
        assert_csr_equal(got, want, tol=1e-5)

    def test_integer_values_coerced(self):
        a = CSR.from_coo((2, 2), [0], [0], np.array([3], dtype=np.int32))
        assert a.data.dtype == np.float64
        assert a.data[0] == 3.0


class TestHugeIndexSpace:
    def test_wide_matrix_key_arithmetic(self):
        """row*ncols+col flat keys must stay exact for wide matrices."""
        ncols = 1 << 30
        a = CSR.from_coo((4, 8), [0, 1], [2, 3], [1.0, 2.0])
        b = CSR.from_coo((8, ncols), [2, 3], [ncols - 1, ncols - 2],
                         [5.0, 7.0])
        m = CSR.from_coo((4, ncols), [0, 1], [ncols - 1, ncols - 2],
                         [1.0, 1.0])
        # note: "inner" is excluded — it would build the CSC of B, whose
        # column-pointer array alone is ncols * 8 bytes = 8.6 GB here
        for algo in ("hash", "mca", "esc"):
            got = masked_spgemm(a, b, m, algo=algo)
            assert got.nnz == 2, algo
            rows, cols, vals = got.to_coo()
            dense_vals = dict(zip(zip(rows, cols), vals))
            assert dense_vals[(0, ncols - 1)] == 5.0
            assert dense_vals[(1, ncols - 2)] == 14.0
