"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import CSR
from repro.graphs import erdos_renyi, erdos_renyi_graph


def random_csr(nrows, ncols, degree, seed=0, values="uniform") -> CSR:
    """Random CSR matrix (ER model)."""
    return erdos_renyi(nrows, ncols, degree, seed=seed, values=values)


@pytest.fixture
def small_triple():
    """A, B, M with compatible shapes for masked SpGEMM tests."""
    a = random_csr(40, 30, 4, seed=1)
    b = random_csr(30, 50, 4, seed=2)
    m = random_csr(40, 50, 6, seed=3)
    return a, b, m


@pytest.fixture
def small_graph():
    """Symmetric, zero-diagonal adjacency for app tests."""
    return erdos_renyi_graph(80, 6, seed=4)


def assert_csr_equal(got: CSR, want: CSR, *, tol=1e-12, msg=""):
    """Structural + numeric equality after dropping numeric zeros."""
    g = got.drop_zeros(1e-14)
    w = want.drop_zeros(1e-14)
    assert g.shape == w.shape, f"shape {g.shape} != {w.shape} {msg}"
    assert g.nnz == w.nnz, f"nnz {g.nnz} != {w.nnz} {msg}"
    assert np.array_equal(g.indptr, w.indptr), f"indptr differ {msg}"
    assert np.array_equal(g.indices, w.indices), f"indices differ {msg}"
    assert np.allclose(g.data, w.data, rtol=1e-10, atol=tol), f"data differ {msg}"
