"""Smoke tests: the example scripts must run end-to-end.

Only the fast examples run in the default test suite; the longer ones are
covered by the benchmark harness and can be exercised with
``REPRO_RUN_ALL_EXAMPLES=1``.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST = ["quickstart.py", "graph_analytics_gb.py", "model_explorer.py", "real_data.py"]
SLOW = [
    "triangle_counting.py",
    "betweenness_centrality.py",
    "ktruss_pruning.py",
    "density_explorer.py",
    "tree_inference.py",
]

RUN_ALL = os.environ.get("REPRO_RUN_ALL_EXAMPLES", "0") == "1"


def _run(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


@pytest.mark.parametrize("name", FAST)
def test_fast_examples_run(name):
    out = _run(name)
    assert out.strip()


@pytest.mark.parametrize("name", SLOW)
@pytest.mark.skipif(not RUN_ALL, reason="set REPRO_RUN_ALL_EXAMPLES=1")
def test_slow_examples_run(name):
    out = _run(name)
    assert out.strip()


def test_all_examples_exist():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert set(FAST + SLOW) <= present
