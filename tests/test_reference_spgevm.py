"""Row-level (SpGEVM) tests of the reference algorithms — the unit the
paper actually specifies (Algorithms 2-5 compute one output row)."""

import numpy as np
import pytest

from repro.core.accumulators import MCA, MSA, HashAccumulator
from repro.core.reference import (
    spgevm_accumulator,
    spgevm_heap,
    spgevm_heap_complement,
    spgevm_inner,
    spgevm_mca,
)
from repro.machine import OpCounter
from repro.semiring import PLUS_TIMES
from repro.sparse import CSC

from .conftest import random_csr


@pytest.fixture
def row_problem():
    """One SpGEVM instance: u (sparse row), B, m (sparse mask row)."""
    rng = np.random.default_rng(5)
    b = random_csr(30, 40, 4, seed=6)
    u_cols = np.sort(rng.choice(30, size=8, replace=False)).astype(np.int64)
    u_vals = rng.random(8)
    m_cols = np.sort(rng.choice(40, size=12, replace=False)).astype(np.int64)
    return m_cols, u_cols, u_vals, b


def oracle(m_cols, u_cols, u_vals, b):
    u = np.zeros(b.nrows)
    u[u_cols] = u_vals
    v = u @ b.to_dense()
    out = {}
    for j in m_cols:
        prod_exists = any(
            int(k) in set(u_cols.tolist()) and b.to_dense()[int(k), int(j)] != 0
            for k in range(b.nrows)
        )
        if prod_exists:
            out[int(j)] = v[int(j)]
    return out


class TestSpGEVMAgainstOracle:
    def _check(self, cols, vals, m_cols, u_cols, u_vals, b):
        want = oracle(m_cols, u_cols, u_vals, b)
        assert sorted(cols) == sorted(want)
        for c, v in zip(cols, vals):
            assert v == pytest.approx(want[int(c)])

    def test_msa(self, row_problem):
        m_cols, u_cols, u_vals, b = row_problem
        acc = MSA(b.ncols, PLUS_TIMES.add)
        cols, vals = spgevm_accumulator(m_cols, u_cols, u_vals, b, acc, PLUS_TIMES)
        self._check(cols, vals, m_cols, u_cols, u_vals, b)

    def test_hash(self, row_problem):
        m_cols, u_cols, u_vals, b = row_problem
        acc = HashAccumulator(len(m_cols), PLUS_TIMES.add)
        cols, vals = spgevm_accumulator(m_cols, u_cols, u_vals, b, acc, PLUS_TIMES)
        self._check(cols, vals, m_cols, u_cols, u_vals, b)

    def test_mca(self, row_problem):
        m_cols, u_cols, u_vals, b = row_problem
        c = OpCounter()
        acc = MCA(len(m_cols), PLUS_TIMES.add, counter=c)
        cols, vals = spgevm_mca(m_cols, u_cols, u_vals, b, acc, PLUS_TIMES, c)
        self._check(cols, vals, m_cols, u_cols, u_vals, b)

    @pytest.mark.parametrize("ninspect", [0, 1, float("inf")])
    def test_heap_all_ninspect(self, ninspect, row_problem):
        m_cols, u_cols, u_vals, b = row_problem
        c = OpCounter()
        cols, vals = spgevm_heap(m_cols, u_cols, u_vals, b, PLUS_TIMES, c, ninspect)
        self._check(cols, vals, m_cols, u_cols, u_vals, b)

    def test_inner(self, row_problem):
        m_cols, u_cols, u_vals, b = row_problem
        c = OpCounter()
        cols, vals = spgevm_inner(m_cols, u_cols, u_vals, CSC.from_csr(b),
                                  PLUS_TIMES, c)
        self._check(cols, vals, m_cols, u_cols, u_vals, b)

    def test_heap_complement(self, row_problem):
        m_cols, u_cols, u_vals, b = row_problem
        c = OpCounter()
        cols, vals = spgevm_heap_complement(m_cols, u_cols, u_vals, b,
                                            PLUS_TIMES, c)
        u = np.zeros(b.nrows)
        u[u_cols] = u_vals
        v = u @ b.to_dense()
        masked = set(int(j) for j in m_cols)
        # every produced column is outside the mask and correct
        for col, val in zip(cols, vals):
            assert int(col) not in masked
            assert val == pytest.approx(v[int(col)])


class TestOutputOrderStability:
    """Section 5.2: gathering in mask order keeps the output sorted when
    the mask is sorted — asserted at the SpGEVM level for every scheme."""

    def test_sorted_outputs(self, row_problem):
        m_cols, u_cols, u_vals, b = row_problem
        runs = {}
        acc = MSA(b.ncols, PLUS_TIMES.add)
        runs["msa"] = spgevm_accumulator(m_cols, u_cols, u_vals, b, acc, PLUS_TIMES)
        c = OpCounter()
        acc2 = MCA(len(m_cols), PLUS_TIMES.add, counter=c)
        runs["mca"] = spgevm_mca(m_cols, u_cols, u_vals, b, acc2, PLUS_TIMES, c)
        runs["heap"] = spgevm_heap(m_cols, u_cols, u_vals, b, PLUS_TIMES,
                                   OpCounter(), 1)
        runs["inner"] = spgevm_inner(m_cols, u_cols, u_vals, CSC.from_csr(b),
                                     PLUS_TIMES, OpCounter())
        for name, (cols, _) in runs.items():
            assert cols == sorted(cols), name


class TestEmptyRowCases:
    def test_empty_u(self):
        b = random_csr(10, 10, 3, seed=7)
        acc = MSA(10, PLUS_TIMES.add)
        cols, vals = spgevm_accumulator(
            np.array([1, 5]), np.array([], dtype=np.int64), np.array([]),
            b, acc, PLUS_TIMES,
        )
        assert cols == [] and vals == []

    def test_empty_mask_heap(self):
        b = random_csr(10, 10, 3, seed=8)
        cols, vals = spgevm_heap(
            np.array([], dtype=np.int64), np.array([0]), np.array([1.0]),
            b, PLUS_TIMES, OpCounter(), 1,
        )
        assert cols == []

    def test_empty_b_rows(self):
        from repro.sparse import CSR

        b = CSR.empty((10, 10))
        c = OpCounter()
        cols, vals = spgevm_heap(
            np.array([2]), np.array([0, 1]), np.array([1.0, 1.0]),
            b, PLUS_TIMES, c, 1,
        )
        assert cols == []
        assert c.heap_pushes == 0


class TestCounterSemantics:
    def test_lazy_insert_counts_only_allowed_flops(self, row_problem):
        m_cols, u_cols, u_vals, b = row_problem
        c = OpCounter()
        acc = MSA(b.ncols, PLUS_TIMES.add, counter=c)
        spgevm_accumulator(m_cols, u_cols, u_vals, b, acc, PLUS_TIMES)
        total_products = sum(len(b.row(int(k))[0]) for k in u_cols)
        assert c.accum_inserts == total_products
        assert c.flops <= total_products  # masked-out ones never multiply

    def test_heapdot_fewer_pushes_than_heap(self, row_problem):
        m_cols, u_cols, u_vals, b = row_problem
        c1, cinf = OpCounter(), OpCounter()
        spgevm_heap(m_cols, u_cols, u_vals, b, PLUS_TIMES, c1, 1)
        spgevm_heap(m_cols, u_cols, u_vals, b, PLUS_TIMES, cinf, float("inf"))
        assert cinf.heap_pushes <= c1.heap_pushes
