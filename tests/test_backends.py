"""Backend equivalence suite: serial / thread / process, bit for bit.

Every plan shape the engine tests exercise (forced algorithms, complemented
masks, 1P/2P phases, every partition strategy, column panels, auto plans)
is run under all three execution backends on the same problems
``tests/test_engine.py`` uses (karate + small ER / R-MAT).  The backends
must agree *exactly* — identical ``indptr`` / ``indices`` / ``data`` arrays
and identical :class:`OpCounter` totals — because they are different
executors of the same decomposition, not different algorithms.

Segment hygiene is asserted too: after the pool is shut down and every
publication group closed, no shared-memory segment this process created is
still registered or attachable.

The whole module carries the ``backend`` marker so CI can run it as a
dedicated smoke job (``pytest -m backend``).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core import ALL_ALGOS, supports_complement
from repro.engine import Planner, execute, plan
from repro.graphs import erdos_renyi, rmat
from repro.machine import HASWELL, OpCounter
from repro.parallel import (
    active_segments,
    process_backend_available,
    shutdown_pool,
)
from repro.parallel.shm import SegmentGroup, attach_csr
from repro.sparse import read_mtx

pytestmark = pytest.mark.backend

DATA = Path(__file__).parent.parent / "data"
WORKERS = 2
BACKENDS = ("serial", "thread", "process")


def _inputs():
    """The same problem set as tests/test_engine.py's cross-checks."""
    karate = read_mtx(DATA / "karate.mtx")
    er = erdos_renyi(48, 48, 3, seed=7, values="uniform")
    rm = rmat(6, seed=3)  # 64 vertices, Graph500 parameters
    return [("karate", karate), ("er", er), ("rmat", rm)]


@pytest.fixture(scope="module", params=_inputs(), ids=lambda p: p[0])
def square_problem(request):
    g = request.param[1]
    return g, g, g


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    """Leave no pool (and hence no segments) behind this module."""
    yield
    shutdown_pool()
    assert active_segments() == ()


def _run(pl, a, b, m, backend):
    counter = OpCounter()
    c = execute(pl, a, b, m, backend=backend, counter=counter)
    return c, counter


def _assert_backends_agree(pl, a, b, m):
    ref, ref_counter = _run(pl, a, b, m, "serial")
    for backend in BACKENDS[1:]:
        got, got_counter = _run(pl, a, b, m, backend)
        assert got.shape == ref.shape, backend
        assert np.array_equal(got.indptr, ref.indptr), backend
        assert np.array_equal(got.indices, ref.indices), backend
        # bitwise, not allclose: same partitions, same per-row product
        # order, so even floating-point sums must be identical
        assert np.array_equal(got.data, ref.data), backend
        assert got_counter == ref_counter, backend


class TestBackendEquivalence:
    @pytest.mark.parametrize("complement", [False, True])
    @pytest.mark.parametrize("algo", ALL_ALGOS)
    def test_forced_algos(self, algo, complement, square_problem):
        a, b, m = square_problem
        if complement and not supports_complement(algo):
            pytest.skip(f"{algo} has no complement support")
        pl = plan(a, b, m, algo=algo, threads=WORKERS, complement=complement)
        _assert_backends_agree(pl, a, b, m)

    @pytest.mark.parametrize("partition", ["block", "cyclic", "balanced"])
    def test_partitions(self, partition, square_problem):
        a, b, m = square_problem
        pl = plan(a, b, m, algo="hash", threads=WORKERS, partition=partition)
        _assert_backends_agree(pl, a, b, m)

    @pytest.mark.parametrize("phases", [1, 2])
    def test_phases(self, phases, square_problem):
        a, b, m = square_problem
        pl = plan(a, b, m, algo="msa", threads=WORKERS, phases=phases)
        _assert_backends_agree(pl, a, b, m)

    def test_column_panels(self, square_problem):
        a, b, m = square_problem
        pl = plan(a, b, m, algo="hash", threads=WORKERS, panel_width=16)
        _assert_backends_agree(pl, a, b, m)

    def test_auto_plan(self, square_problem):
        a, b, m = square_problem
        pl = Planner(HASWELL).plan(a, b, m, threads=WORKERS)
        _assert_backends_agree(pl, a, b, m)

    def test_more_workers_than_rows(self):
        g = erdos_renyi(5, 5, 2, seed=11)
        pl = plan(g, g, g, algo="hash", threads=8)
        _assert_backends_agree(pl, g, g, g)


class TestProcessBackendInternals:
    def test_process_backend_available(self):
        # Linux CI always has POSIX shared memory; the suite is meaningless
        # without it, so assert instead of skipping silently
        assert process_backend_available()

    def test_planner_picks_process_above_crossover(self):
        import dataclasses

        g = rmat(6, seed=3)
        cheap = dataclasses.replace(HASWELL, process_crossover_cycles=1.0)
        pl = Planner(cheap).plan(g, g, g, threads=WORKERS)
        assert pl.backend == "process"
        steep = dataclasses.replace(HASWELL, process_crossover_cycles=1e18)
        pl = Planner(steep).plan(g, g, g, threads=WORKERS)
        assert pl.backend == "thread"

    def test_serial_when_single_thread(self):
        g = rmat(6, seed=3)
        pl = Planner(HASWELL).plan(g, g, g, threads=1)
        assert pl.backend == "serial"


class TestSegmentHygiene:
    def test_no_segments_leak_across_calls(self, square_problem):
        a, b, m = square_problem
        pl = plan(a, b, m, algo="hash", threads=WORKERS)
        for _ in range(3):
            execute(pl, a, b, m, backend="process")
            # publication groups are per-call: nothing outlives the call
            assert active_segments() == ()

    def test_unlinked_names_do_not_resolve(self, square_problem):
        a, _, _ = square_problem
        with SegmentGroup() as group:
            spec = group.publish_csr(a)
            # while the group is open the segments round-trip exactly
            back = attach_csr(spec)
            assert np.array_equal(back.indptr, a.indptr)
            assert np.array_equal(back.indices, a.indices)
            assert np.array_equal(back.data, a.data)
            names = [spec.indptr.name, spec.indices.name, spec.data.name]
            assert set(names) <= set(active_segments())
            del back  # release the views so the attachment can close
        from repro.parallel.shm import clear_attachments

        clear_attachments()
        assert active_segments() == ()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_pool_shutdown_then_restart(self, square_problem):
        a, b, m = square_problem
        pl = plan(a, b, m, algo="msa", threads=WORKERS)
        first, _ = _run(pl, a, b, m, "process")
        shutdown_pool()
        assert active_segments() == ()
        # a fresh pool must come up transparently on the next call
        second, _ = _run(pl, a, b, m, "process")
        assert np.array_equal(first.indptr, second.indptr)
        assert np.array_equal(first.data, second.data)

    def test_no_shard_segments_leak_across_calls(self, square_problem):
        """Sessionless sharded process calls publish per-shard segment
        groups; every one of them must die with its call."""
        a, b, m = square_problem
        pl = plan(a, b, m, algo="msa", threads=WORKERS, shards=(3, 2))
        for _ in range(3):
            execute(pl, a, b, m, backend="process")
            assert active_segments() == ()

    def test_session_shard_segments_die_with_session_close(self, square_problem):
        """A session pins shard segments *across* calls — they must all
        unlink when the session closes, not before."""
        from repro.engine import ExecutionSession

        a, b, m = square_problem
        pl = plan(a, b, m, algo="msa", threads=WORKERS, shards=(3, 2))
        with ExecutionSession() as ses:
            execute(pl, a, b, m, backend="process", session=ses)
            held = active_segments()
            assert held != ()  # the registry keeps shard segments alive
            execute(pl, a, b, m, backend="process", session=ses)
            # reuse, not republication: no segment growth on the warm call
            assert active_segments() == held
        assert active_segments() == ()

    def test_dcsr_segments_round_trip(self, square_problem):
        from repro.parallel.shm import attach_dcsr, clear_attachments
        from repro.sparse import DCSR

        a, _, _ = square_problem
        d = DCSR.from_csr(a)
        with SegmentGroup() as group:
            spec = group.publish_dcsr(d)
            back = attach_dcsr(spec)
            assert np.array_equal(back.rows, d.rows)
            assert np.array_equal(back.indptr, d.indptr)
            assert np.array_equal(back.indices, d.indices)
            assert np.array_equal(back.data, d.data)
            del back
        clear_attachments()
        assert active_segments() == ()
