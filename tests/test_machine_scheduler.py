"""Unit tests for the parallel-schedule (makespan) simulator."""

import numpy as np
import pytest

from repro.machine import SCHEDULES, simulate_makespan, speedup_curve


class TestMakespanBasics:
    def test_single_thread_is_total(self):
        costs = np.array([1.0, 2.0, 3.0])
        for sched in SCHEDULES:
            assert simulate_makespan(costs, 1, schedule=sched) == 6.0

    def test_empty(self):
        assert simulate_makespan(np.array([]), 4) == 0.0

    def test_uniform_perfect_split(self):
        costs = np.ones(64)
        assert simulate_makespan(costs, 4, schedule="static") == 16.0
        assert simulate_makespan(costs, 4, schedule="cyclic") == 16.0
        assert simulate_makespan(costs, 4, schedule="dynamic", chunk=1) == 16.0

    def test_static_skew_imbalance(self):
        # all the work in the first block: static suffers, cyclic balances
        costs = np.zeros(64)
        costs[:16] = 1.0
        static = simulate_makespan(costs, 4, schedule="static")
        cyclic = simulate_makespan(costs, 4, schedule="cyclic")
        assert static == 16.0
        assert cyclic == 4.0

    def test_dynamic_beats_static_on_skew(self):
        rng = np.random.default_rng(0)
        costs = rng.pareto(1.5, size=512) + 0.1
        static = simulate_makespan(costs, 8, schedule="static")
        dynamic = simulate_makespan(costs, 8, schedule="dynamic", chunk=4)
        assert dynamic <= static + 1e-9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="threads"):
            simulate_makespan(np.ones(4), 0)
        with pytest.raises(ValueError, match="non-negative"):
            simulate_makespan(np.array([-1.0]), 2)
        with pytest.raises(ValueError, match="1-D"):
            simulate_makespan(np.ones((2, 2)), 2)
        with pytest.raises(ValueError, match="schedule"):
            simulate_makespan(np.ones(4), 2, schedule="magic")


class TestListSchedulingBounds:
    """Greedy schedules satisfy max(W/p, max_chunk) <= span <= W/p + max_chunk."""

    @pytest.mark.parametrize("sched", ["dynamic", "guided"])
    @pytest.mark.parametrize("p", [2, 4, 16])
    def test_bounds(self, sched, p):
        rng = np.random.default_rng(42)
        costs = rng.exponential(1.0, size=333)
        span = simulate_makespan(costs, p, schedule=sched, chunk=8)
        total = costs.sum()
        # the largest single chunk bounds both sides
        chunk_sums = [costs[i : i + 8].sum() for i in range(0, 333, 8)]
        max_chunk = max(chunk_sums)
        assert span >= max(total / p, max_chunk) - 1e-9
        assert span <= total / p + max_chunk + 1e-9

    def test_makespan_monotone_in_threads(self):
        rng = np.random.default_rng(7)
        costs = rng.random(256)
        spans = [simulate_makespan(costs, p, chunk=4) for p in (1, 2, 4, 8, 16)]
        for earlier, later in zip(spans, spans[1:]):
            assert later <= earlier + 1e-9


class TestSpeedupCurve:
    def test_ideal_speedup_uniform(self):
        curve = speedup_curve(np.ones(1024), [1, 2, 4, 8], chunk=1)
        for p in (1, 2, 4, 8):
            assert curve[p] == pytest.approx(p)

    def test_amdahl_serial_fraction(self):
        # 50% serial work caps speedup at 2
        curve = speedup_curve(np.ones(1000), [1000], chunk=1,
                              serial_cycles=1000.0)
        assert curve[1000] == pytest.approx(2.0, rel=0.01)

    def test_speedup_bounded_by_threads(self):
        rng = np.random.default_rng(1)
        costs = rng.random(500)
        curve = speedup_curve(costs, [1, 3, 9], chunk=2)
        for p, s in curve.items():
            assert s <= p + 1e-9
        assert curve[1] == pytest.approx(1.0)
