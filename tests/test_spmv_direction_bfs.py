"""Tests for masked SpMV (push/pull) and direction-optimized BFS — the
SpMV-level masking the paper traces its lineage to (Section 4)."""

import networkx as nx
import numpy as np
import pytest

from repro.apps import direction_optimized_bfs, multi_source_bfs
from repro.core import masked_spmv, masked_spmv_pull, masked_spmv_push
from repro.graphs import erdos_renyi_graph, rmat
from repro.machine import OpCounter
from repro.semiring import MIN_PLUS, PLUS_PAIR
from repro.sparse import CSC

from .conftest import random_csr


@pytest.fixture(scope="module")
def spmv_setup():
    a = random_csr(60, 50, 4, seed=1)
    rng = np.random.default_rng(2)
    x_vals = rng.random(60)
    x_pat = rng.random(60) < 0.4
    m_pat = rng.random(50) < 0.5
    return a, x_vals, x_pat, m_pat


def dense_oracle(a, x_vals, x_pat, m_pat, complement=False):
    xs = x_vals * x_pat
    y = xs @ a.to_dense()
    sel = ~m_pat if complement else m_pat
    return y * sel


class TestMaskedSpMV:
    def test_push_matches_oracle(self, spmv_setup):
        a, x_vals, x_pat, m_pat = spmv_setup
        want = dense_oracle(a, x_vals, x_pat, m_pat)
        y, hit = masked_spmv_push(a, x_vals, x_pat, m_pat)
        assert np.allclose(y[hit], want[hit])
        assert np.allclose(want[~hit], 0.0)

    def test_pull_matches_push(self, spmv_setup):
        a, x_vals, x_pat, m_pat = spmv_setup
        yp, hp = masked_spmv_push(a, x_vals, x_pat, m_pat)
        yl, hl = masked_spmv_pull(CSC.from_csr(a), x_vals, x_pat, m_pat)
        assert np.array_equal(hp, hl)
        assert np.allclose(yp[hp], yl[hl])

    def test_complement_push(self, spmv_setup):
        a, x_vals, x_pat, m_pat = spmv_setup
        want = dense_oracle(a, x_vals, x_pat, m_pat, complement=True)
        y, hit = masked_spmv_push(a, x_vals, x_pat, m_pat, complement=True)
        assert np.allclose(y[hit], want[hit])
        assert np.allclose(want[~hit], 0.0)

    def test_pull_rejects_complement(self, spmv_setup):
        a, x_vals, x_pat, m_pat = spmv_setup
        with pytest.raises(ValueError, match="complement"):
            masked_spmv(a, x_vals, x_pat, m_pat, direction="pull",
                        complement=True)

    def test_auto_direction_picks_pull_for_sparse_mask(self):
        a = random_csr(200, 200, 16, seed=3)
        csc = CSC.from_csr(a)
        x_vals = np.ones(200)
        x_pat = np.ones(200, dtype=bool)  # huge frontier
        m_pat = np.zeros(200, dtype=bool)
        m_pat[:2] = True  # tiny mask
        c_pull = OpCounter()
        masked_spmv(a, x_vals, x_pat, m_pat, direction="auto", a_csc=csc,
                    counter=c_pull)
        c_push = OpCounter()
        masked_spmv(a, x_vals, x_pat, m_pat, direction="push", counter=c_push)
        # pull touched only the 2 masked columns; push expanded everything
        assert c_pull.mask_scans == 2
        assert c_push.accum_inserts > 100 * c_pull.mask_scans

    def test_index_patterns_accepted(self, spmv_setup):
        a, x_vals, x_pat, m_pat = spmv_setup
        y1, h1 = masked_spmv_push(a, x_vals, x_pat, m_pat)
        y2, h2 = masked_spmv_push(
            a, x_vals, np.flatnonzero(x_pat), np.flatnonzero(m_pat)
        )
        assert np.array_equal(h1, h2)
        assert np.allclose(y1, y2)

    def test_semiring_min_plus(self, spmv_setup):
        a, x_vals, x_pat, m_pat = spmv_setup
        y, hit = masked_spmv_push(a, x_vals, x_pat, m_pat, semiring=MIN_PLUS)
        # oracle: min over k in x of x_k + a_kj at masked positions
        d = a.to_dense()
        want = np.full(a.ncols, np.inf)
        for k in np.flatnonzero(x_pat):
            row = d[k]
            nz = row != 0
            want[nz] = np.minimum(want[nz], x_vals[k] + row[nz])
        want[~m_pat] = np.inf
        assert np.allclose(y[hit], want[hit])

    def test_empty_cases(self):
        a = random_csr(10, 10, 2, seed=4)
        y, hit = masked_spmv_push(
            a, np.zeros(10), np.zeros(10, dtype=bool), np.ones(10, dtype=bool)
        )
        assert not hit.any()
        y, hit = masked_spmv_pull(
            CSC.from_csr(a), np.ones(10), np.ones(10, dtype=bool),
            np.zeros(10, dtype=bool),
        )
        assert not hit.any()

    def test_bad_direction(self, spmv_setup):
        a, x_vals, x_pat, m_pat = spmv_setup
        with pytest.raises(ValueError, match="direction"):
            masked_spmv(a, x_vals, x_pat, m_pat, direction="sideways")


class TestDirectionOptimizedBFS:
    @pytest.fixture(scope="class")
    def graph(self):
        return erdos_renyi_graph(250, 6, seed=7)

    @pytest.mark.parametrize("force", [None, "push", "pull"])
    def test_matches_networkx(self, force, graph):
        G = nx.from_scipy_sparse_array(graph.to_scipy())
        res = direction_optimized_bfs(graph, 3, force=force)
        want = nx.single_source_shortest_path_length(G, 3)
        for v in range(graph.nrows):
            assert res.levels[v] == want.get(v, -1)

    def test_matches_masked_spgemm_bfs(self, graph):
        res = direction_optimized_bfs(graph, 11)
        ref = multi_source_bfs(graph, [11])
        assert np.array_equal(res.levels, ref.levels[0])

    def test_switches_direction_on_rmat(self):
        """On a heavy-tailed graph the frontier explodes — the optimizer
        must actually use pull at some level (the whole point)."""
        g = rmat(11, seed=4)
        hub = int(np.argmax(g.row_nnz()))
        res = direction_optimized_bfs(g, hub)
        assert "pull" in res.directions
        assert res.directions[0] == "push"

    def test_pull_does_less_work_on_huge_frontier(self):
        g = rmat(10, seed=5)
        hub = int(np.argmax(g.row_nnz()))
        c_auto, c_push = OpCounter(), OpCounter()
        direction_optimized_bfs(g, hub, counter=c_auto)
        direction_optimized_bfs(g, hub, force="push", counter=c_push)
        assert c_auto.total_ops() < c_push.total_ops()

    def test_validation(self, graph):
        with pytest.raises(ValueError, match="source"):
            direction_optimized_bfs(graph, 9999)
        with pytest.raises(ValueError, match="force"):
            direction_optimized_bfs(graph, 0, force="diagonal")

    def test_isolated_source(self):
        from repro.sparse import CSR

        g = CSR.from_coo((5, 5), [1, 2], [2, 1], [1.0, 1.0])
        res = direction_optimized_bfs(g, 0)
        assert res.depth == 0
        assert res.levels[0] == 0
        assert (res.levels[1:] == -1).all()


class TestSSSP:
    @pytest.fixture(scope="class")
    def weighted_graph(self):
        # symmetric positive-weighted random graph
        g = erdos_renyi_graph(120, 5, seed=20)
        return g

    def test_matches_networkx_dijkstra(self, weighted_graph):
        from repro.apps import sssp

        g = weighted_graph
        G = nx.from_scipy_sparse_array(g.to_scipy())
        res = sssp(g, [0, 17, 63])
        for q, s in enumerate([0, 17, 63]):
            want = nx.single_source_dijkstra_path_length(G, s)
            for v in range(g.nrows):
                if v in want:
                    assert res.dist[q, v] == pytest.approx(want[v])
                else:
                    assert np.isinf(res.dist[q, v])

    def test_unweighted_equals_bfs_levels(self):
        from repro.apps import multi_source_bfs, sssp

        g = erdos_renyi_graph(80, 5, seed=21).pattern()
        res = sssp(g, [3])
        bfs = multi_source_bfs(g, [3])
        for v in range(80):
            if bfs.levels[0, v] >= 0:
                assert res.dist[0, v] == bfs.levels[0, v]
            else:
                assert np.isinf(res.dist[0, v])

    def test_source_distance_zero(self, weighted_graph):
        from repro.apps import sssp

        res = sssp(weighted_graph, [5])
        assert res.dist[0, 5] == 0.0

    def test_rejects_negative_weights(self):
        from repro.apps import sssp
        from repro.sparse import CSR

        g = CSR.from_coo((3, 3), [0, 1], [1, 0], [-1.0, -1.0])
        with pytest.raises(ValueError, match="non-negative"):
            sssp(g, [0])

    def test_rejects_bad_source(self, weighted_graph):
        from repro.apps import sssp

        with pytest.raises(ValueError, match="source"):
            sssp(weighted_graph, [999])

    def test_triangle_shortcut(self):
        """Direct edge vs cheaper 2-hop path: relaxation must find the
        2-hop route."""
        from repro.apps import sssp
        from repro.sparse import CSR

        rows = [0, 1, 0, 2, 1, 2]
        cols = [1, 0, 2, 0, 2, 1]
        vals = [10.0, 10.0, 1.0, 1.0, 2.0, 2.0]
        g = CSR.from_coo((3, 3), rows, cols, vals)
        res = sssp(g, [0])
        assert res.dist[0, 1] == pytest.approx(3.0)  # 0->2->1, not 0->1
