"""Tests for the GraphBLAS-flavoured interface."""

import numpy as np
import pytest

import repro.graphblas as gb
from repro.core import ALGOS, supports_complement
from repro.semiring import MIN_PLUS, PLUS_PAIR
from repro.graphs import erdos_renyi, erdos_renyi_graph

from .conftest import random_csr


@pytest.fixture
def abm():
    a = gb.Matrix.from_csr(random_csr(30, 25, 4, seed=1))
    b = gb.Matrix.from_csr(random_csr(25, 35, 4, seed=2))
    m = gb.Matrix.from_csr(random_csr(30, 35, 6, seed=3))
    return a, b, m


class TestMatrix:
    def test_construction_paths_agree(self):
        dense = np.zeros((4, 5))
        dense[1, 2] = 3.0
        dense[3, 0] = -1.0
        m1 = gb.Matrix.from_dense(dense)
        m2 = gb.Matrix.from_coo(4, 5, [1, 3], [2, 0], [3.0, -1.0])
        assert np.allclose(m1.to_dense(), m2.to_dense())
        assert m1.nvals == 2

    def test_new_is_empty(self):
        m = gb.Matrix.new(3, 4)
        assert m.nvals == 0
        assert m.shape == (3, 4)

    def test_getitem_implicit_zero(self):
        m = gb.Matrix.from_coo(3, 3, [0], [1], [5.0])
        assert m[0, 1] == 5.0
        assert m[0, 0] is None

    def test_dup_is_independent(self):
        m = gb.Matrix.from_coo(2, 2, [0], [0], [1.0])
        d = m.dup()
        d.csr.data[0] = 9.0
        assert m[0, 0] == 1.0

    def test_apply(self):
        m = gb.Matrix.from_coo(2, 2, [0, 1], [0, 1], [2.0, -3.0])
        sq = m.apply(lambda x: x * x)
        assert sq[0, 0] == 4.0
        assert sq[1, 1] == 9.0

    def test_select_offdiagonal(self):
        m = gb.Matrix.from_dense(np.ones((3, 3)))
        off = m.select(lambda r, c, v: r != c)
        assert off.nvals == 6

    def test_reduce(self):
        m = gb.Matrix.from_dense(np.arange(6).reshape(2, 3).astype(float))
        assert m.reduce_scalar() == 15.0
        rows = m.reduce_rows()
        assert np.allclose(rows.to_dense(), [3.0, 12.0])

    def test_extract_row(self):
        m = gb.Matrix.from_coo(3, 4, [1, 1], [0, 3], [2.0, 7.0])
        v = m.extract_row(1)
        assert v.size == 4
        assert v[0] == 2.0 and v[3] == 7.0

    def test_transpose_pattern(self):
        m = gb.Matrix.from_coo(2, 3, [0], [2], [4.0])
        t = m.transpose()
        assert t.shape == (3, 2)
        assert t[2, 0] == 4.0
        assert m.pattern()[0, 2] == 1.0


class TestVector:
    def test_roundtrip(self):
        v = gb.Vector.from_dense(np.array([0.0, 2.0, 0.0, 3.0]))
        assert v.nvals == 2
        assert v[1] == 2.0 and v[0] is None
        assert np.allclose(v.to_dense(), [0, 2, 0, 3])

    def test_pattern_bool(self):
        v = gb.Vector.from_coo(5, [1, 4], [1.0, 1.0])
        assert np.array_equal(v.pattern_bool(), [False, True, False, False, True])

    def test_reduce(self):
        v = gb.Vector.from_coo(5, [0, 2], [1.5, 2.5])
        assert v.reduce_scalar() == 4.0

    def test_rejects_multirow_storage(self):
        with pytest.raises(ValueError):
            gb.Vector(random_csr(2, 3, 1, seed=4))


class TestMxm:
    def test_unmasked_matches_dense(self, abm):
        a, b, _ = abm
        c = gb.mxm(a, b)
        assert np.allclose(c.to_dense(), a.to_dense() @ b.to_dense())

    @pytest.mark.parametrize("algo", list(ALGOS) + ["hybrid"])
    def test_masked_all_algorithms(self, algo, abm):
        a, b, m = abm
        c = gb.mxm(a, b, mask=m, desc=gb.Descriptor(algo=algo))
        want = (a.to_dense() @ b.to_dense()) * (m.to_dense() != 0)
        assert np.allclose(c.to_dense(), want)

    @pytest.mark.parametrize("algo", [x for x in ALGOS if supports_complement(x)])
    def test_complement(self, algo, abm):
        a, b, m = abm
        desc = gb.Descriptor(mask_complement=True, algo=algo)
        c = gb.mxm(a, b, mask=m, desc=desc)
        want = (a.to_dense() @ b.to_dense()) * (m.to_dense() == 0)
        assert np.allclose(c.to_dense(), want)

    def test_semiring(self, abm):
        a, b, m = abm
        c = gb.mxm(a, b, mask=m, semiring=PLUS_PAIR)
        pa = (a.to_dense() != 0).astype(float)
        pb = (b.to_dense() != 0).astype(float)
        want = (pa @ pb) * (m.to_dense() != 0)
        assert np.allclose(c.to_dense(), want)

    def test_accumulate_without_replace(self, abm):
        a, b, m = abm
        base = gb.Matrix.from_coo(30, 35, [0, 29], [0, 34], [100.0, 200.0])
        c = gb.mxm(a, b, mask=m, out=base, desc=gb.Descriptor(replace=False))
        # untouched positions of `base` survive
        got = c.to_dense()
        want = (a.to_dense() @ b.to_dense()) * (m.to_dense() != 0)
        overlap = want[0, 0] != 0
        if not overlap:
            assert got[0, 0] == 100.0
        mask_zero = want == 0
        # everywhere the product wrote nothing, base's values remain
        keep = np.zeros_like(got, dtype=bool)
        keep[0, 0] = keep[29, 34] = True
        assert np.allclose(got[~keep & ~mask_zero], want[~keep & ~mask_zero])

    def test_hybrid_complement(self, abm):
        """Hybrid mxm supports complemented masks: the classifier routes
        every row away from inner/mca (which lack complement support)."""
        a, b, m = abm
        c = gb.mxm(a, b, mask=m,
                   desc=gb.Descriptor(algo="hybrid", mask_complement=True))
        want = (a.to_dense() @ b.to_dense()) * (m.to_dense() == 0)
        assert np.allclose(c.to_dense(), want)

    def test_2p_descriptor(self, abm):
        a, b, m = abm
        c1 = gb.mxm(a, b, mask=m, desc=gb.Descriptor(phases=1))
        c2 = gb.mxm(a, b, mask=m, desc=gb.Descriptor(phases=2))
        assert np.allclose(c1.to_dense(), c2.to_dense())


class TestVxmMxv:
    def test_vxm_matches_dense(self):
        a = gb.Matrix.from_csr(random_csr(20, 25, 4, seed=5))
        v = gb.Vector.from_dense(np.arange(20).astype(float) * (np.arange(20) % 3 == 0))
        w = gb.vxm(v, a)
        assert np.allclose(w.to_dense(), v.to_dense() @ a.to_dense())

    def test_vxm_masked(self):
        a = gb.Matrix.from_csr(random_csr(20, 25, 4, seed=6))
        v = gb.Vector.from_coo(20, [0, 5], [1.0, 2.0])
        m = gb.Vector.from_coo(25, np.arange(0, 25, 2), None)
        w = gb.vxm(v, a, mask=m)
        want = (v.to_dense() @ a.to_dense()) * m.pattern_bool()
        assert np.allclose(w.to_dense(), want)

    def test_vxm_complement_mask(self):
        a = gb.Matrix.from_csr(random_csr(20, 25, 4, seed=7))
        v = gb.Vector.from_coo(20, [3], [1.0])
        m = gb.Vector.from_coo(25, np.arange(0, 25, 2), None)
        w = gb.vxm(v, a, mask=m, desc=gb.Descriptor(mask_complement=True))
        want = (v.to_dense() @ a.to_dense()) * ~m.pattern_bool()
        assert np.allclose(w.to_dense(), want)

    @pytest.mark.parametrize("algo", ["msa", "inner", "hybrid"])
    def test_vxm_direction_dispatch(self, algo):
        a = gb.Matrix.from_csr(random_csr(30, 30, 5, seed=8))
        v = gb.Vector.from_coo(30, [1, 2, 3], [1.0, 1.0, 1.0])
        m = gb.Vector.from_coo(30, [4, 5], None)
        w = gb.vxm(v, a, mask=m, desc=gb.Descriptor(algo=algo))
        want = (v.to_dense() @ a.to_dense()) * m.pattern_bool()
        assert np.allclose(w.to_dense(), want)

    def test_mxv(self):
        a = gb.Matrix.from_csr(random_csr(20, 25, 4, seed=9))
        v = gb.Vector.from_dense((np.arange(25) < 6).astype(float))
        w = gb.mxv(a, v)
        assert np.allclose(w.to_dense(), a.to_dense() @ v.to_dense())

    def test_min_plus_sssp_step(self):
        """One min-plus relaxation step == one round of Bellman-Ford."""
        g = erdos_renyi_graph(40, 4, seed=10)
        a = gb.Matrix.from_csr(g)
        dist = np.full(40, np.inf)
        dist[0] = 0.0
        v = gb.Vector.from_coo(40, [0], [0.0])
        w = gb.vxm(v, a, semiring=MIN_PLUS)
        dense = g.to_dense()
        want = {
            j: dense[0, j] for j in range(40) if dense[0, j] != 0
        }
        for j, d in want.items():
            assert w[j] == pytest.approx(d)


class TestTriangleCountViaGB:
    def test_tc_pipeline(self):
        """The paper's TC pipeline expressed in the GraphBLAS interface."""
        from repro.apps import triangle_count

        g = erdos_renyi_graph(80, 6, seed=11)
        a = gb.Matrix.from_csr(g)
        low = gb.Matrix.from_csr(g.pattern().tril(-1))
        c = gb.mxm(low, low, mask=low, semiring=PLUS_PAIR,
                   desc=gb.Descriptor(algo="mca"))
        assert int(c.reduce_scalar()) == triangle_count(g, relabel=False)


class TestVectorEwiseOps:
    def test_ewise_mult_intersection(self):
        v1 = gb.Vector.from_coo(6, [0, 2, 4], [2.0, 3.0, 4.0])
        v2 = gb.Vector.from_coo(6, [2, 4, 5], [10.0, 0.5, 7.0])
        out = v1.ewise_mult(v2)
        assert out.nvals == 2
        assert out[2] == 30.0
        assert out[4] == 2.0

    def test_ewise_add_union(self):
        v1 = gb.Vector.from_coo(4, [0, 1], [1.0, 2.0])
        v2 = gb.Vector.from_coo(4, [1, 3], [5.0, 9.0])
        out = v1.ewise_add(v2)
        assert np.allclose(out.to_dense(), [1.0, 7.0, 0.0, 9.0])

    def test_apply(self):
        v = gb.Vector.from_coo(3, [1], [-4.0])
        assert v.apply(np.abs)[1] == 4.0

    def test_select(self):
        v = gb.Vector.from_coo(5, [0, 1, 2], [1.0, -2.0, 3.0])
        pos = v.select(lambda i, vals: vals > 0)
        assert pos.nvals == 2
        assert pos[1] is None

    def test_mask_out(self):
        v = gb.Vector.from_coo(5, [0, 1, 2], [1.0, 2.0, 3.0])
        m = gb.Vector.from_coo(5, [1, 4], None)
        assert v.mask_out(m).nvals == 1
        assert v.mask_out(m, complement=True).nvals == 2

    def test_custom_ops(self):
        v1 = gb.Vector.from_coo(3, [0, 1], [5.0, 1.0])
        v2 = gb.Vector.from_coo(3, [0, 1], [2.0, 8.0])
        mx = v1.ewise_mult(v2, op=np.maximum)
        assert mx[0] == 5.0 and mx[1] == 8.0
