"""Cross-call execution-session suite: fingerprints, plan cache, segment
reuse — and above all equivalence: a sessioned run must be bit-for-bit
identical to a sessionless one, with identical work counters.

Covers the cache hit/miss matrix (new object with equal bytes → hit;
mutated values → values-only republish; mutated structure → full miss),
intra-call operand dedup (the k-truss A = B = M shape publishes one
segment set), segment-leak hygiene (``active_segments()`` empty after
close), strict-mode in-place-mutation detection, and the CI smoke case —
a sessioned BC batch on R-MAT over the process backend with
``segments_reused > 0``.

The module carries the ``session`` marker so CI runs it inside the
backend-smoke job (``pytest -m session``).
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import numpy as np
import pytest

from repro.core import masked_spgemm
from repro.engine import (
    ExecutionSession,
    Fingerprint,
    fingerprint_csr,
    plan_and_execute,
    resolve_session,
)
from repro.graphs import erdos_renyi, rmat
from repro.machine import OpCounter
from repro.parallel import (
    active_segments,
    process_backend_available,
    run_partitioned,
    shutdown_pool,
)
from repro.parallel.partition import block_partition
from repro.sparse import CSR, read_mtx

pytestmark = pytest.mark.session

DATA = Path(__file__).parent.parent / "data"
BACKENDS = ("serial", "thread", "process")

#: counters that report cache reuse, not algorithmic work — the only
#: OpCounter fields allowed to differ between sessioned and sessionless
SESSION_FIELDS = ("plan_cache_hits", "segments_reused", "bytes_republished")


def _inputs():
    karate = read_mtx(DATA / "karate.mtx")
    er = erdos_renyi(48, 48, 3, seed=7, values="uniform")
    rm = rmat(6, seed=3)
    return [("karate", karate), ("er", er), ("rmat", rm)]


@pytest.fixture(scope="module", params=_inputs(), ids=lambda p: p[0])
def square_problem(request):
    g = request.param[1]
    return g, g, g


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_pool()
    assert active_segments() == ()


def _work_fields(counter: OpCounter) -> dict:
    return {
        f.name: getattr(counter, f.name)
        for f in dataclasses.fields(counter)
        if f.name not in SESSION_FIELDS
    }


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_equal_bytes_equal_fingerprint(self):
        a = erdos_renyi(32, 32, 3, seed=1, values="uniform")
        b = CSR((32, 32), a.indptr.copy(), a.indices.copy(), a.data.copy(),
                sorted_indices=a.sorted_indices)
        assert fingerprint_csr(a) == fingerprint_csr(b)

    def test_values_change_structure_stable(self):
        a = erdos_renyi(32, 32, 3, seed=1, values="uniform")
        b = CSR((32, 32), a.indptr.copy(), a.indices.copy(), a.data * 2.0,
                sorted_indices=a.sorted_indices)
        fa, fb = fingerprint_csr(a), fingerprint_csr(b)
        assert fa.structure_key == fb.structure_key
        assert fa.key != fb.key

    def test_structure_change_changes_structure(self):
        a = erdos_renyi(32, 32, 3, seed=1)
        b = erdos_renyi(32, 32, 3, seed=2)
        assert fingerprint_csr(a).structure_key != fingerprint_csr(b).structure_key

    def test_identity_fast_path_digests_once(self):
        a = erdos_renyi(32, 32, 3, seed=1)
        sess = ExecutionSession()
        f1 = sess.fingerprint(a)
        f2 = sess.fingerprint(a)
        assert f1 is f2
        assert sess.fingerprint_digests == 1

    def test_invalidate_forces_redigest(self):
        a = erdos_renyi(32, 32, 3, seed=1, values="uniform")
        sess = ExecutionSession()
        f1 = sess.fingerprint(a)
        a.data[:] = a.data * 3.0  # in-place mutation: fast path cannot see it
        assert sess.fingerprint(a) is f1  # stale by design
        sess.invalidate(a)
        f2 = sess.fingerprint(a)
        assert f2.key != f1.key
        assert f2.structure_key == f1.structure_key

    def test_strict_mode_sees_inplace_mutation(self):
        a = erdos_renyi(32, 32, 3, seed=1, values="uniform")
        sess = ExecutionSession(strict=True)
        f1 = sess.fingerprint(a)
        a.data[:] = a.data * 3.0
        assert sess.fingerprint(a).key != f1.key

    def test_fingerprint_is_frozen_dataclass(self):
        fp = fingerprint_csr(erdos_renyi(8, 8, 2, seed=1))
        assert isinstance(fp, Fingerprint)
        with pytest.raises(dataclasses.FrozenInstanceError):
            fp.nnz = 0


# ----------------------------------------------------------------------
# plan cache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_same_structure_hits(self, square_problem):
        a, b, m = square_problem
        sess = ExecutionSession()
        p1 = sess.plan(a, b, m)
        p2 = sess.plan(a, b, m)
        assert p1 is p2
        assert sess.plan_cache_hits == 1
        assert sess.plan_cache_misses == 1

    def test_values_only_change_still_hits(self):
        a = erdos_renyi(48, 48, 3, seed=7, values="uniform")
        a2 = CSR((48, 48), a.indptr.copy(), a.indices.copy(), a.data * 2.0,
                 sorted_indices=a.sorted_indices)
        sess = ExecutionSession()
        p1 = sess.plan(a, a, a)
        p2 = sess.plan(a2, a2, a2)
        assert p1 is p2

    def test_structure_change_misses(self):
        a = erdos_renyi(48, 48, 3, seed=7)
        b = erdos_renyi(48, 48, 3, seed=8)
        sess = ExecutionSession()
        assert sess.plan(a, a, a) is not sess.plan(b, b, b)
        assert sess.plan_cache_hits == 0
        assert sess.plan_cache_misses == 2

    def test_knobs_partition_the_cache(self, square_problem):
        a, b, m = square_problem
        sess = ExecutionSession()
        p1 = sess.plan(a, b, m)
        p2 = sess.plan(a, b, m, complement=True)
        p3 = sess.plan(a, b, m, threads=2)
        assert p1 is not p2 and p1 is not p3 and p2 is not p3

    def test_counter_charged_on_hit_only(self, square_problem):
        a, b, m = square_problem
        sess = ExecutionSession()
        c = OpCounter()
        sess.plan(a, b, m, counter=c)
        assert c.plan_cache_hits == 0
        sess.plan(a, b, m, counter=c)
        assert c.plan_cache_hits == 1

    def test_plan_defaults_apply(self, square_problem):
        a, b, m = square_problem
        sess = ExecutionSession(plan_defaults={"threads": 2, "backend": "serial"})
        pl = sess.plan(a, b, m)
        assert pl.threads == 2
        assert pl.backend == "serial"

    def test_lru_eviction(self):
        sess = ExecutionSession(plan_cache_size=2)
        graphs = [erdos_renyi(32, 32, 3, seed=s) for s in range(3)]
        for g in graphs:
            sess.plan(g, g, g)
        sess.plan(graphs[0], graphs[0], graphs[0])  # evicted: misses again
        assert sess.plan_cache_misses == 4

    def test_machine_override_partitions_cache(self, square_problem):
        # regression: machine= was silently ignored alongside a caching
        # session; it must be honoured and key the cache
        from repro.machine import KNL

        a, b, m = square_problem
        with ExecutionSession() as sess:
            base = sess.plan(a, b, m)
            knl = sess.plan(a, b, m, machine=KNL)
            assert base.machine == "haswell"
            assert knl.machine == "knl"
            assert sess.plan_cache_misses == 2
            assert sess.plan(a, b, m, machine=KNL) is knl
            assert sess.plan(a, b, m) is base
            assert sess.plan_cache_hits == 2

    def test_foreign_planner_honoured_uncached(self, square_problem):
        from repro.engine import Planner
        from repro.machine import KNL

        a, b, m = square_problem
        with ExecutionSession() as sess:
            pl = sess.plan(a, b, m, planner=Planner(KNL))
            assert pl.machine == "knl"
            assert sess.plan_cache_hits == 0
            assert sess.plan_cache_misses == 0

    def test_plan_and_execute_threads_machine_into_session(self,
                                                           square_problem):
        from repro.machine import KNL

        a, b, m = square_problem
        ref = plan_and_execute(a, b, m, machine=KNL, backend="serial")
        with ExecutionSession() as sess:
            got = plan_and_execute(a, b, m, machine=KNL, backend="serial",
                                   session=sess)
            (cached,) = sess._plans.values()
            assert cached.machine == "knl"
        assert np.array_equal(got.indptr, ref.indptr)
        assert np.array_equal(got.indices, ref.indices)
        assert np.array_equal(got.data, ref.data)

    def test_caching_false_bypasses(self, square_problem):
        a, b, m = square_problem
        sess = ExecutionSession(caching=False)
        sess.plan(a, b, m)
        sess.plan(a, b, m)
        assert sess.plan_cache_hits == 0 and sess.plan_cache_misses == 0


# ----------------------------------------------------------------------
# derived CSC + symbolic bound memo
# ----------------------------------------------------------------------
class TestDerivedCaches:
    def test_csc_memoised_on_session_and_object(self):
        a = erdos_renyi(48, 48, 3, seed=7, values="uniform")
        sess = ExecutionSession()
        c1 = sess.csc_of(a)
        c2 = sess.csc_of(a)
        assert c1 is c2
        assert sess.csc_cache_hits == 1
        # a fresh session finds the object-level memo (same content)
        sess2 = ExecutionSession()
        assert sess2.csc_of(a) is c1
        assert sess2.csc_cache_misses == 0

    def test_csc_memo_invalidated_by_content_change(self):
        a = erdos_renyi(48, 48, 3, seed=7, values="uniform")
        sess = ExecutionSession()
        c1 = sess.csc_of(a)
        a.data[:] = a.data * 2.0
        sess.invalidate(a)
        c2 = sess.csc_of(a)
        assert c2 is not c1

    def test_symbolic_bounds_replay_counter(self, square_problem):
        a, b, m = square_problem
        sess = ExecutionSession()
        c_miss, c_hit, c_ref = OpCounter(), OpCounter(), OpCounter()
        r1 = sess.symbolic_bounds(a, b, m, complement=False, counter=c_miss)
        r2 = sess.symbolic_bounds(a, b, m, complement=False, counter=c_hit)
        from repro.core.symbolic import symbolic_masked

        ref = symbolic_masked(a, b, m, complement=False, counter=c_ref)
        assert np.array_equal(r1, ref) and np.array_equal(r2, ref)
        assert c_miss == c_ref
        assert c_hit == c_ref  # replayed, not skipped
        assert sess.bound_cache_hits == 1

    def test_one_phase_bound_cached(self, square_problem):
        a, b, m = square_problem
        sess = ExecutionSession()
        r1 = sess.one_phase_bound(a, b, m, complement=False)
        r2 = sess.one_phase_bound(a, b, m, complement=False)
        assert r1 is r2
        assert sess.bound_cache_hits == 1


# ----------------------------------------------------------------------
# shm segment registry (process backend)
# ----------------------------------------------------------------------
needs_process = pytest.mark.skipif(
    not process_backend_available(),
    reason="platform lacks shared-memory process support",
)


def _process_run(a, b, m, session, algo="msa", parts=2, **kw):
    counter = OpCounter()
    c = run_partitioned(
        a, b, m, algo=algo, parts=block_partition(a.nrows, parts),
        backend="process", counter=counter, session=session, **kw,
    )
    return c, counter


@needs_process
class TestSegmentReuse:
    def test_second_call_reuses_segments(self):
        a = erdos_renyi(64, 64, 4, seed=1, values="uniform")
        b = rmat(6, seed=3)
        m = erdos_renyi(64, 64, 6, seed=5)
        with ExecutionSession() as sess:
            _, c1 = _process_run(a, b, m, sess)
            _, c2 = _process_run(a, b, m, sess)
            assert c1.segments_reused == 0  # three distinct operands: cold
            assert c2.segments_reused == 3  # all three served from the cache
        assert active_segments() == ()

    def test_values_mutation_republishes_values_only(self):
        a = erdos_renyi(64, 64, 4, seed=1, values="uniform")
        b = erdos_renyi(64, 64, 4, seed=2, values="uniform")
        with ExecutionSession() as sess:
            ref1, _ = _process_run(a, b, a, sess)
            b.data[:] = b.data * 2.0
            sess.invalidate(b)
            got, c3 = _process_run(a, b, a, sess)
            serial = run_partitioned(
                a, b, a, algo="msa", parts=block_partition(64, 2),
                backend="serial",
            )
            assert np.array_equal(got.indptr, serial.indptr)
            assert np.array_equal(got.indices, serial.indices)
            assert np.array_equal(got.data, serial.data)
            st = sess.segment_cache.stats()
            assert st["values_republished"] == 1
            assert c3.bytes_republished == b.data.nbytes

    def test_structure_mutation_full_republish(self):
        a = erdos_renyi(64, 64, 4, seed=1)
        with ExecutionSession() as sess:
            _process_run(a, a, a, sess)
            published = sess.segment_cache.stats()["segments_published"]
            a2 = erdos_renyi(64, 64, 4, seed=9)
            _process_run(a2, a2, a2, sess)
            st = sess.segment_cache.stats()
            assert st["segments_published"] > published
            assert st["values_republished"] == 0

    def test_intra_call_dedup(self):
        # the k-truss shape: A = B = M — one publication serves all three
        g = rmat(6, seed=3)
        with ExecutionSession() as sess:
            _, counter = _process_run(g, g, g, sess)
            assert counter.segments_reused >= 2
            assert sess.segment_cache.stats()["segments_published"] == 1

    def test_same_structure_different_values_in_one_call(self):
        # regression: mask = a.pattern() shares A's structure digest but
        # carries all-ones values — the values-only rewrite must never
        # touch A's pinned segment mid-call, or workers read the mask's
        # values as A's
        a = erdos_renyi(64, 64, 4, seed=1, values="uniform")
        b = erdos_renyi(64, 64, 4, seed=2, values="uniform")
        m = a.pattern()
        serial = run_partitioned(
            a, b, m, algo="msa", parts=block_partition(64, 2),
            backend="serial",
        )
        with ExecutionSession() as sess:
            got, _ = _process_run(a, b, m, sess)
            st = sess.segment_cache.stats()
            assert st["values_republished"] == 0
            assert st["segments_published"] == 3
            assert np.array_equal(got.indptr, serial.indptr)
            assert np.array_equal(got.indices, serial.indices)
            assert np.array_equal(got.data, serial.data)
            # both same-structure entries stay cached and full-hit next call
            got2, c2 = _process_run(a, b, m, sess)
            assert c2.segments_reused == 3
            assert np.array_equal(got2.data, serial.data)

    def test_close_releases_segments(self):
        g = rmat(6, seed=3)
        sess = ExecutionSession()
        _process_run(g, g, g, sess)
        assert len(active_segments()) > 0
        sess.close()
        assert active_segments() == ()
        # session stays usable (cold) after close
        _, counter = _process_run(g, g, g, sess)
        assert counter.segments_reused >= 2
        sess.close()
        assert active_segments() == ()


# ----------------------------------------------------------------------
# equivalence: sessioned == sessionless, bit for bit, counter for counter
# ----------------------------------------------------------------------
class TestEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("phases", [1, 2])
    def test_bitwise_and_counter_equivalence(self, square_problem, backend,
                                             phases):
        if backend == "process" and not process_backend_available():
            pytest.skip("no process backend")
        a, b, m = square_problem
        cold = OpCounter()
        ref = plan_and_execute(a, b, m, phases=phases, threads=2,
                               backend=backend, counter=cold)
        with ExecutionSession(
            plan_defaults={"threads": 2, "backend": backend}
        ) as sess:
            for _ in range(2):  # second pass exercises every warm path
                warm = OpCounter()
                got = plan_and_execute(a, b, m, phases=phases, counter=warm,
                                       session=sess)
                assert np.array_equal(got.indptr, ref.indptr)
                assert np.array_equal(got.indices, ref.indices)
                assert np.array_equal(got.data, ref.data)
                assert _work_fields(warm) == _work_fields(cold)
            assert sess.plan_cache_hits >= 1

    @pytest.mark.parametrize("algo", ["msa", "hash", "inner", "mca", "esc"])
    def test_explicit_algo_equivalence(self, square_problem, algo):
        a, b, m = square_problem
        cold = OpCounter()
        ref = masked_spgemm(a, b, m, algo=algo, phases=2, counter=cold)
        with ExecutionSession() as sess:
            for _ in range(2):
                warm = OpCounter()
                got = masked_spgemm(a, b, m, algo=algo, phases=2,
                                    counter=warm, session=sess)
                assert np.array_equal(got.indptr, ref.indptr)
                assert np.array_equal(got.indices, ref.indices)
                assert np.array_equal(got.data, ref.data)
                assert _work_fields(warm) == _work_fields(cold)


# ----------------------------------------------------------------------
# apps + CI smoke case
# ----------------------------------------------------------------------
class TestApps:
    def test_resolve_session_contract(self):
        assert resolve_session(False) == (None, False)
        assert resolve_session(None, auto=False) == (None, False)
        sess, owned = resolve_session(None, auto=True)
        assert isinstance(sess, ExecutionSession) and owned
        mine = ExecutionSession()
        assert resolve_session(mine) == (mine, False)

    def test_core_entry_points_accept_false_sentinel(self):
        # session=False must work on the core paths too, not just via
        # resolve_session in the apps
        a = erdos_renyi(64, 64, degree=4, seed=2)
        ref = masked_spgemm(a, a, a, algo="auto", session=None)
        got = masked_spgemm(a, a, a, algo="auto", session=False)
        assert np.array_equal(got.to_dense(), ref.to_dense())
        got = masked_spgemm(a, a, a, algo="hash", session=False)
        assert np.array_equal(got.to_dense(), ref.to_dense())
        got = plan_and_execute(a, a, a, session=False)
        assert np.array_equal(got.to_dense(), ref.to_dense())

    def test_ktruss_sessioned_equals_sessionless(self):
        g = rmat(7, seed=10)
        ref = __import__("repro.apps", fromlist=["ktruss"]).ktruss(
            g, 5, algo="auto", session=False
        )
        with ExecutionSession() as sess:
            got = __import__("repro.apps", fromlist=["ktruss"]).ktruss(
                g, 5, algo="auto", session=sess
            )
        assert np.array_equal(got.truss.to_dense(), ref.truss.to_dense())
        assert got.iterations == ref.iterations

    @needs_process
    def test_bc_batch_process_backend_reuses_segments(self):
        # the CI satellite case: a sessioned BC batch on R-MAT over the
        # process backend must hit the segment registry and leak nothing
        from repro.apps import betweenness_centrality

        g = rmat(7, seed=11)
        ref = betweenness_centrality(g, batch_size=16, algo="auto", seed=1,
                                     session=False)
        counter = OpCounter()
        with ExecutionSession(
            plan_defaults={"threads": 2, "backend": "process"}
        ) as sess:
            got = betweenness_centrality(g, batch_size=16, algo="auto",
                                         seed=1, counter=counter, session=sess)
            stats = sess.stats()
        assert np.array_equal(got.centrality, ref.centrality)
        assert stats["segments_reused"] > 0
        assert counter.segments_reused > 0
        assert active_segments() == ()

    def test_metrics_and_report_surface_session(self, square_problem):
        from repro.observe import metrics, report, tracing

        a, b, m = square_problem
        with ExecutionSession() as sess, tracing() as tr:
            masked_spgemm(a, b, m, algo="auto", session=sess)
            masked_spgemm(a, b, m, algo="auto", session=sess)
            mx = metrics(tr, session=sess)
            txt = report(tr, session=sess)
        assert mx["session"]["plan_cache_hits"] >= 1
        assert "session reuse" in txt
        assert metrics(tr)["session"] == {}
