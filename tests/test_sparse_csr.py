"""Unit tests for the CSR container."""

import io

import numpy as np
import pytest

from repro.sparse import CSR, read_mtx, write_mtx

from .conftest import assert_csr_equal, random_csr


class TestConstruction:
    def test_empty(self):
        m = CSR.empty((3, 4))
        assert m.shape == (3, 4)
        assert m.nnz == 0
        assert m.to_dense().shape == (3, 4)
        assert not m.to_dense().any()

    def test_from_coo_basic(self):
        m = CSR.from_coo((2, 3), [0, 1, 1], [2, 0, 1], [1.0, 2.0, 3.0])
        dense = np.array([[0, 0, 1.0], [2.0, 3.0, 0]])
        assert np.array_equal(m.to_dense(), dense)
        assert m.sorted_indices

    def test_from_coo_sums_duplicates(self):
        m = CSR.from_coo((2, 2), [0, 0, 0], [1, 1, 1], [1.0, 2.0, 3.0])
        assert m.nnz == 1
        assert m.to_dense()[0, 1] == 6.0

    def test_from_coo_rejects_duplicates_when_asked(self):
        with pytest.raises(ValueError, match="duplicate"):
            CSR.from_coo((2, 2), [0, 0], [1, 1], [1.0, 2.0], sum_duplicates=False)

    def test_from_coo_default_values_are_ones(self):
        m = CSR.from_coo((2, 2), [0, 1], [0, 1])
        assert np.array_equal(m.data, [1.0, 1.0])

    def test_from_coo_bounds_check(self):
        with pytest.raises(ValueError, match="row index"):
            CSR.from_coo((2, 2), [2], [0], [1.0])
        with pytest.raises(ValueError, match="column index"):
            CSR.from_coo((2, 2), [0], [5], [1.0])

    def test_from_dense_roundtrip(self):
        rng = np.random.default_rng(0)
        d = rng.random((7, 5))
        d[d < 0.6] = 0.0
        m = CSR.from_dense(d)
        assert np.allclose(m.to_dense(), d)

    def test_from_scipy_roundtrip(self):
        a = random_csr(20, 30, 3, seed=5)
        again = CSR.from_scipy(a.to_scipy())
        assert_csr_equal(again, a)

    def test_mismatched_coo_lengths(self):
        with pytest.raises(ValueError, match="identical shapes"):
            CSR.from_coo((2, 2), [0, 1], [0], [1.0, 2.0])


class TestValidation:
    def test_check_rejects_bad_indptr_length(self):
        with pytest.raises(ValueError, match="indptr"):
            CSR((2, 2), np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_check_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSR((2, 2), np.array([0, 2, 1]), np.array([0, 1]), np.array([1.0, 1.0]))

    def test_check_rejects_out_of_range_column(self):
        with pytest.raises(ValueError, match="column index"):
            CSR((2, 2), np.array([0, 1, 2]), np.array([0, 5]), np.array([1.0, 1.0]))

    def test_check_rejects_unsorted_when_claimed(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            CSR(
                (1, 4),
                np.array([0, 2]),
                np.array([2, 1]),
                np.array([1.0, 1.0]),
                sorted_indices=True,
            )

    def test_sorted_check_allows_row_boundaries(self):
        # row 0 ends with col 3, row 1 starts with col 0 — legal
        m = CSR(
            (2, 4),
            np.array([0, 2, 4]),
            np.array([1, 3, 0, 2]),
            np.ones(4),
            sorted_indices=True,
        )
        assert m.nnz == 4

    def test_sorted_check_with_empty_leading_rows(self):
        m = CSR(
            (3, 4),
            np.array([0, 0, 2, 2]),
            np.array([0, 2]),
            np.ones(2),
            sorted_indices=True,
        )
        assert m.row(0)[0].shape[0] == 0
        assert m.row(1)[0].shape[0] == 2


class TestAccessors:
    def test_row_views(self):
        m = CSR.from_coo((3, 5), [0, 0, 2], [1, 3, 4], [1.0, 2.0, 3.0])
        cols, vals = m.row(0)
        assert np.array_equal(cols, [1, 3])
        assert np.array_equal(vals, [1.0, 2.0])
        cols1, _ = m.row(1)
        assert cols1.shape[0] == 0

    def test_row_nnz(self):
        m = CSR.from_coo((3, 5), [0, 0, 2], [1, 3, 4], [1.0, 2.0, 3.0])
        assert np.array_equal(m.row_nnz(), [2, 0, 1])

    def test_iter_rows_covers_all(self):
        m = random_csr(10, 10, 3, seed=2)
        seen = 0
        for i, cols, vals in m.iter_rows():
            seen += cols.shape[0]
            assert cols.shape == vals.shape
        assert seen == m.nnz


class TestTransforms:
    def test_transpose_involution(self):
        a = random_csr(15, 25, 4, seed=7)
        assert_csr_equal(a.transpose().transpose(), a)

    def test_transpose_matches_scipy(self):
        a = random_csr(15, 25, 4, seed=8)
        assert_csr_equal(a.transpose(), CSR.from_scipy(a.to_scipy().T.tocsr()))

    def test_tril_triu_partition(self):
        a = random_csr(20, 20, 5, seed=9)
        low = a.tril(-1)
        up = a.triu(1)
        diag = a.tril(0).triu(0)
        assert low.nnz + up.nnz + diag.nnz == a.nnz

    def test_tril_matches_scipy(self):
        import scipy.sparse as sp

        a = random_csr(20, 20, 5, seed=10)
        assert_csr_equal(a.tril(-1), CSR.from_scipy(sp.tril(a.to_scipy(), -1).tocsr()))

    def test_pattern_sets_ones(self):
        a = random_csr(10, 10, 3, seed=11)
        p = a.pattern()
        assert p.nnz == a.nnz
        assert np.array_equal(p.data, np.ones(a.nnz))

    def test_drop_zeros(self):
        m = CSR.from_coo((2, 3), [0, 0, 1], [0, 1, 2], [0.0, 2.0, 0.0])
        d = m.drop_zeros()
        assert d.nnz == 1
        assert d.to_dense()[0, 1] == 2.0

    def test_permute_symmetric(self):
        a = random_csr(12, 12, 3, seed=12)
        perm = np.random.default_rng(0).permutation(12)
        p = a.permute(perm)
        da, dp = a.to_dense(), p.to_dense()
        assert np.allclose(dp, da[np.ix_(perm, perm)])

    def test_permute_identity(self):
        a = random_csr(9, 9, 3, seed=13)
        assert_csr_equal(a.permute(np.arange(9)), a)

    def test_permute_rejects_non_square(self):
        a = random_csr(4, 5, 2, seed=14)
        with pytest.raises(ValueError, match="square"):
            a.permute(np.arange(4))

    def test_permute_rejects_bad_perm(self):
        a = random_csr(4, 4, 2, seed=15)
        with pytest.raises(ValueError, match="permutation"):
            a.permute(np.array([0, 0, 1, 2]))

    def test_select_rows(self):
        a = random_csr(10, 8, 3, seed=16)
        sel = a.select_rows(np.array([2, 5]))
        assert sel.shape == a.shape
        d = sel.to_dense()
        full = a.to_dense()
        assert np.allclose(d[2], full[2])
        assert np.allclose(d[5], full[5])
        others = [i for i in range(10) if i not in (2, 5)]
        assert not d[others].any()

    def test_select_rows_boolean_mask(self):
        a = random_csr(6, 6, 2, seed=17)
        mask = np.zeros(6, dtype=bool)
        mask[1] = True
        sel = a.select_rows(mask)
        assert sel.row_nnz()[1] == a.row_nnz()[1]
        assert sel.nnz == a.row_nnz()[1]

    def test_astype(self):
        a = random_csr(5, 5, 2, seed=18)
        b = a.astype(np.float32)
        assert b.data.dtype == np.float32

    def test_to_coo_roundtrip(self):
        a = random_csr(14, 9, 3, seed=19)
        rows, cols, vals = a.to_coo()
        again = CSR.from_coo(a.shape, rows, cols, vals)
        assert_csr_equal(again, a)


class TestEquality:
    def test_equals_self(self):
        a = random_csr(10, 10, 3, seed=20)
        assert a.equals(a.copy())

    def test_equals_ignores_construction_order(self):
        m1 = CSR.from_coo((2, 2), [0, 1], [1, 0], [1.0, 2.0])
        m2 = CSR.from_coo((2, 2), [1, 0], [0, 1], [2.0, 1.0])
        assert m1.equals(m2)

    def test_not_equals_different_value(self):
        m1 = CSR.from_coo((2, 2), [0], [1], [1.0])
        m2 = CSR.from_coo((2, 2), [0], [1], [1.5])
        assert not m1.equals(m2)

    def test_not_equals_different_shape(self):
        m1 = CSR.empty((2, 2))
        m2 = CSR.empty((2, 3))
        assert not m1.equals(m2)


class TestMatrixMarketIO:
    def test_roundtrip(self):
        a = random_csr(12, 9, 3, seed=21)
        buf = io.StringIO()
        write_mtx(buf, a)
        buf.seek(0)
        again = read_mtx(buf)
        assert_csr_equal(again, a)

    def test_symmetric_expansion(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "1 1 5.0\n"
            "2 1 1.0\n"
            "3 2 2.0\n"
        )
        m = read_mtx(io.StringIO(text))
        d = m.to_dense()
        assert d[0, 0] == 5.0
        assert d[1, 0] == d[0, 1] == 1.0
        assert d[2, 1] == d[1, 2] == 2.0
        assert m.nnz == 5  # diagonal not duplicated

    def test_pattern_field(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n"
        m = read_mtx(io.StringIO(text))
        assert np.array_equal(m.data, [1.0, 1.0])

    def test_rejects_bad_header(self):
        with pytest.raises(ValueError, match="MatrixMarket"):
            read_mtx(io.StringIO("nope\n1 1 0\n"))

    def test_rejects_unsupported_symmetry(self):
        text = "%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 0\n"
        with pytest.raises(ValueError, match="symmetry"):
            read_mtx(io.StringIO(text))

    def test_file_roundtrip(self, tmp_path):
        a = random_csr(8, 8, 2, seed=22)
        path = tmp_path / "m.mtx"
        write_mtx(path, a)
        assert_csr_equal(read_mtx(path), a)


class TestNpzIO:
    def test_roundtrip(self, tmp_path):
        from repro.sparse import load_npz, save_npz

        a = random_csr(15, 12, 3, seed=40)
        path = tmp_path / "m.npz"
        save_npz(path, a)
        assert_csr_equal(load_npz(path), a)

    def test_preserves_sorted_flag(self, tmp_path):
        from repro.sparse import load_npz, save_npz

        a = random_csr(8, 8, 2, seed=41)
        path = tmp_path / "m.npz"
        save_npz(path, a)
        assert load_npz(path).sorted_indices == a.sorted_indices

    def test_rejects_foreign_archive(self, tmp_path):
        import numpy as np

        from repro.sparse import load_npz

        path = tmp_path / "bad.npz"
        np.savez(path, format=np.array("coo"), junk=np.zeros(3))
        with pytest.raises(ValueError, match="unsupported"):
            load_npz(path)


class TestMtxFuzz:
    """Property-based round-trips and malformed-input behaviour for the
    MatrixMarket reader."""

    def test_roundtrip_random_matrices(self):
        import io

        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(st.integers(1, 12), st.integers(1, 12), st.integers(0, 2**31))
        @settings(max_examples=30, deadline=None)
        def roundtrip(nr, nc, seed):
            rng = np.random.default_rng(seed)
            nnz = int(rng.integers(0, nr * nc // 2 + 1))
            rows = rng.integers(0, nr, size=nnz)
            cols = rng.integers(0, nc, size=nnz)
            vals = rng.normal(size=nnz)
            m = CSR.from_coo((nr, nc), rows, cols, vals)
            buf = io.StringIO()
            write_mtx(buf, m)
            buf.seek(0)
            assert_csr_equal(read_mtx(buf), m)

        roundtrip()

    @pytest.mark.parametrize("text", [
        "",  # empty file
        "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",  # array
        "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
        "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
    ])
    def test_malformed_headers_rejected(self, text):
        import io

        with pytest.raises(ValueError):
            read_mtx(io.StringIO(text))

    def test_comments_skipped(self):
        import io

        text = ("%%MatrixMarket matrix coordinate real general\n"
                "% a comment\n% another\n"
                "2 2 1\n1 2 3.5\n")
        m = read_mtx(io.StringIO(text))
        assert m.to_dense()[0, 1] == 3.5

    def test_values_preserved_to_full_precision(self):
        import io

        v = 0.1234567890123456789
        m = CSR.from_coo((1, 1), [0], [0], [v])
        buf = io.StringIO()
        write_mtx(buf, m)
        buf.seek(0)
        again = read_mtx(buf)
        assert again.data[0] == m.data[0]  # %.17g is lossless for float64
